// Umbrella header: the full HADES public API.
//
// Layering (see README.md / DESIGN.md):
//   util  -> sim  -> core -> sched
//                         -> services
#pragma once

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/hardware_clock.hpp"
#include "sim/network.hpp"
#include "sim/runtime.hpp"
#include "sim/trace.hpp"

#include "core/cost_model.hpp"
#include "core/dispatcher.hpp"
#include "core/monitor.hpp"
#include "core/net_task.hpp"
#include "core/processor.hpp"
#include "core/scheduling.hpp"
#include "core/system.hpp"
#include "core/task_model.hpp"

#include "sched/edf.hpp"
#include "sched/feasibility.hpp"
#include "sched/fixed_priority.hpp"
#include "sched/pcp.hpp"
#include "sched/spring.hpp"
#include "sched/srp.hpp"
#include "sched/workload.hpp"

#include "services/channels.hpp"
#include "services/clock_sync.hpp"
#include "services/consensus.hpp"
#include "services/dependency.hpp"
#include "services/fault_detector.hpp"
#include "services/mode_manager.hpp"
#include "services/reliable_comm.hpp"
#include "services/replication.hpp"
#include "services/storage.hpp"
