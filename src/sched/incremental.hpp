// Incremental admission feasibility (DESIGN.md, "Traffic edge & admission
// control").
//
// The batch analysis in feasibility.hpp re-derives the whole processor-
// demand test from the task set on every call — exact, but O(tasks x
// deadlines) and far too slow to sit on a per-request admission path. This
// accumulator keeps the demand bound *incrementally*: a fixed-size demand
// wheel over absolute deadlines, updated with O(1) integer deltas on
// admit/complete and checked with an O(slots) scan (constant in the number
// of admitted requests).
//
// Model: admitted requests are one-shot aperiodic jobs, each released on
// admission with computation time c and absolute deadline d. EDF feasibility
// for such a set is exactly "for every deadline d: sum of c over jobs with
// deadline <= d fits in (d - now) x available". The wheel makes that test
// O(1) by quantizing deadlines into `slots` buckets of `slot_width` and
// charging each job's full cost to its deadline's bucket; the check then
// treats all demand in a bucket as due at the bucket's *start*, which only
// ever under-states slack — the wheel's verdict is a conservative
// (sufficient) version of the exact test, and the exact test is re-run
// periodically off the hot path (admission_controller::revalidate) as a
// consistency gate.
//
// Exactness of the bookkeeping itself is non-negotiable: complete() must
// cancel admit() to the nanosecond or the accumulator drifts over millions
// of requests. Each admit returns a ticket recording the physical slot
// charged and that slot's fold epoch; a completion subtracts from the same
// slot while its epoch matches, and from the carried (already-expired)
// demand after the wheel folded it — integer bookkeeping, no residue.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace hades::sched {

class incremental_feasibility {
 public:
  /// Wheel resolution: 64 buckets of slot_width over absolute deadlines.
  /// Deadlines beyond the covered window are clamped into the last bucket
  /// (conservative: their demand is tested against an earlier date).
  static constexpr std::size_t slots = 64;

  struct config {
    duration slot_width = duration::microseconds(250);
    /// CPU fraction available to admitted requests (mode-change
    /// renegotiation moves it; the rest is reserved for periodic load).
    double available = 1.0;
  };

  /// Proof of one admitted charge; hand it back to complete() exactly once.
  struct ticket {
    std::int64_t cost = 0;       // charged nanoseconds
    std::uint32_t slot = 0;      // physical wheel bucket
    std::uint32_t epoch = 0;     // that bucket's fold epoch at admit time
  };

  explicit incremental_feasibility(config c);

  /// Rotate the wheel to `now`: buckets whose deadline range fully expired
  /// fold into the carried term (work admitted, deadline passed, not yet
  /// completed — it still occupies the processor, due immediately).
  void advance(time_point now);

  /// Conservative demand-bound check: would admitting (cost, deadline) keep
  /// every bucket boundary feasible? O(slots), no state change.
  [[nodiscard]] bool admissible(duration cost, time_point deadline) const;
  /// The same scan with no candidate — is the *current* admitted load
  /// feasible? (Used after renegotiation lowers `available`.)
  [[nodiscard]] bool currently_feasible() const {
    return scan(0, slots);  // candidate slot past the wheel: never added
  }

  /// Charge an admitted request. Caller decides admissibility first; the
  /// charge itself never fails.
  ticket admit(duration cost, time_point deadline);
  /// Exact inverse of admit().
  void complete(const ticket& t);

  /// Mode-change renegotiation: change the CPU fraction (clamped [0, 1]).
  void set_available(double fraction);
  [[nodiscard]] double available() const { return avail_; }

  [[nodiscard]] std::int64_t outstanding() const { return outstanding_; }
  [[nodiscard]] std::int64_t carried() const { return carry_; }
  [[nodiscard]] time_point now() const {
    return time_point::zero() + duration::nanoseconds(now_);
  }

 private:
  [[nodiscard]] std::uint32_t slot_index(std::int64_t deadline_ns) const;
  /// Prefix-demand scan with `extra` charged to `candidate` (candidate >=
  /// slots means "no candidate").
  [[nodiscard]] bool scan(std::int64_t extra, std::size_t candidate) const;

  std::int64_t width_;            // slot width in ns
  std::int64_t base_;             // slot-aligned wheel base (ns)
  std::int64_t now_ = 0;          // last advance() date (ns)
  double avail_ = 1.0;
  std::uint64_t avail_q32_;       // available as a 32.32 fixed-point factor
  std::int64_t demand_[slots] = {};   // charged ns per bucket
  std::uint32_t epoch_[slots] = {};   // fold epoch per bucket
  std::int64_t carry_ = 0;        // demand folded out of expired buckets
  std::int64_t outstanding_ = 0;  // total admitted-not-completed ns
};

}  // namespace hades::sched
