#include "sched/pcp.hpp"

#include <algorithm>

namespace hades::sched {

pcp_policy::pcp_policy(std::map<task_id, priority> priorities,
                       const std::vector<const core::task_graph*>& tasks)
    : priorities_(std::move(priorities)) {
  for (const auto* g : tasks) {
    const auto pit = priorities_.find(g->id());
    const priority p =
        pit != priorities_.end() ? pit->second : prio::min_app;
    for (eu_index i = 0; i < g->eu_count(); ++i) {
      const auto* c = g->as_code(i);
      if (c == nullptr) continue;
      for (const auto& claim : c->resources) {
        auto [it, inserted] = ceiling_.emplace(claim.res, p);
        if (!inserted) it->second = std::max(it->second, p);
      }
    }
  }
}

priority pcp_policy::task_priority(task_id t) const {
  auto it = priorities_.find(t);
  return it != priorities_.end() ? it->second : prio::min_app;
}

priority pcp_policy::ceiling_of(
    const std::vector<core::resource_claim>& claims) const {
  priority c = prio::idle;
  for (const auto& claim : claims) {
    auto it = ceiling_.find(claim.res);
    if (it != ceiling_.end()) c = std::max(c, it->second);
  }
  return c;
}

priority pcp_policy::blocking_ceiling(kthread_id self) const {
  priority c = prio::idle;
  for (const auto& [t, h] : holders_)
    if (t != self) c = std::max(c, h.ceiling);
  return c;
}

void pcp_policy::handle(const core::notification& n,
                        core::scheduler_context& ctx) {
  using core::notification_kind;
  switch (n.kind) {
    case notification_kind::atv:
      ctx.set_priority(n.thread, task_priority(n.info.task));
      return;

    case notification_kind::rac: {
      const priority p = task_priority(n.info.task);
      const priority c = blocking_ceiling(n.thread);
      if (p > c) {
        holders_[n.thread] = holder{n.thread, p, ceiling_of(n.info.resources),
                                    {}};
        ctx.release(n.thread);  // dispatcher grants and queues the thread
        return;
      }
      // Blocked on the ceiling: hold the requester; the highest-ceiling
      // holder inherits its priority (priority-inheritance rule of PCP).
      blocked_.push_back({n.thread, p, n.info.resources});
      for (auto& [t, h] : holders_) {
        if (h.ceiling == c && p > h.base) {
          ctx.set_priority(t, p);
          ++inheritance_events_;
        }
      }
      return;
    }

    case notification_kind::rre: {
      auto it = holders_.find(n.thread);
      if (it != holders_.end()) {
        // Restore the pre-inheritance priority for the remainder of the EU
        // (the thread is about to terminate; harmless but correct).
        if (ctx.alive(n.thread)) ctx.set_priority(n.thread, it->second.base);
        holders_.erase(it);
      }
      reexamine(ctx);
      return;
    }

    case notification_kind::trm:
      holders_.erase(n.thread);
      std::erase_if(blocked_,
                    [&](const blocked_req& b) { return b.thread == n.thread; });
      return;
  }
}

void pcp_policy::reexamine(core::scheduler_context& ctx) {
  // Highest-priority blocked request first.
  std::stable_sort(blocked_.begin(), blocked_.end(),
                   [](const blocked_req& a, const blocked_req& b) {
                     return a.prio > b.prio;
                   });
  std::vector<blocked_req> still;
  for (const blocked_req& req : blocked_) {
    if (!ctx.alive(req.thread)) continue;
    bool granted = false;
    try_grant(req, ctx, granted);
    if (!granted) still.push_back(req);
  }
  blocked_ = std::move(still);
}

void pcp_policy::try_grant(const blocked_req& req,
                           core::scheduler_context& ctx, bool& granted) {
  if (req.prio > blocking_ceiling(req.thread)) {
    holders_[req.thread] =
        holder{req.thread, req.prio, ceiling_of(req.resources), {}};
    ctx.release(req.thread);
    granted = true;
  }
}

std::shared_ptr<pcp_policy> make_rm_pcp(
    const std::vector<const core::task_graph*>& tasks) {
  return std::make_shared<pcp_policy>(rate_monotonic_priorities(tasks), tasks);
}

}  // namespace hades::sched
