// Earliest Deadline First scheduler (paper section 3.2.2, Figure 2).
//
// The policy keeps the set of live threads ordered by absolute deadline and
// maps that order onto the application priority band through the dispatcher
// primitive. Exactly as in Figure 2: upon an Atv notification it raises the
// newly activated thread above every thread with a later deadline (and
// lowers those); Trm notifications require no priority change — the paper
// says EDF "ignores" them — the policy only drops its bookkeeping entry.
#pragma once

#include <string>
#include <vector>

#include "core/scheduling.hpp"

namespace hades::sched {

class edf_policy : public core::policy {
 public:
  [[nodiscard]] std::string name() const override { return "EDF"; }

  void handle(const core::notification& n,
              core::scheduler_context& ctx) override;

  [[nodiscard]] std::size_t live_count() const { return live_.size(); }

 protected:
  struct live_thread {
    kthread_id thread;
    time_point deadline;
    std::uint64_t seq = 0;               // FIFO tie-break for equal deadlines
    priority current = prio::idle;       // last priority applied
  };

  /// Re-derive priorities from the deadline order; only threads whose rank
  /// changed are touched through the primitive (minimal-change property the
  /// Figure 2 trace relies on).
  void apply_ranks(core::scheduler_context& ctx);

  /// Current EDF priority for rank i (0 = earliest deadline).
  [[nodiscard]] static priority rank_priority(std::size_t i) {
    return prio::max_app - static_cast<priority>(i);
  }

  std::vector<live_thread> live_;  // sorted by (deadline, seq)

 private:
  std::uint64_t next_seq_ = 0;
};

}  // namespace hades::sched
