// Feasibility analysis (paper section 5).
//
// Implements Spuri's processor-demand test for preemptive EDF with SRP
// blocking ([Spu96] theorem 7.1, the paper's base test): for every absolute
// deadline d in the first busy period,
//
//     sum_{i : D_i <= d} max(0, floor((d - D_i)/T_i) + 1) * C_i + B(d) <= d
//
// where B(d) is the largest critical section of any task with D_j > d that
// can block tasks with deadlines <= d under SRP; plus the *cost-integrated*
// variant of section 5.3 (the paper's own contribution):
//
//   C'_i = C_i + n_i (c_act_start + c_act_end) + (n_i - 1) c_local
//          with n_i = 3 when task i uses a shared resource (the Figure 3
//          translation produces three Code_EUs linked by two local
//          precedence constraints) and n_i = 1 otherwise;
//   B'_i = B_i + c_act_start + c_act_end;
//   sigma(t) = sum_i ceil(t / T_i) (x + c_act_start + c_act_end)
//          — the scheduler runs once per activation at a priority above all
//          application threads, costing x plus its own action wrapping;
//   kappa(t) = (floor(t/p_clk)+1) w_clk + (floor(t/p_net)+1) w_net
//          — sporadic worst-case arrivals of the kernel background
//          activities of section 4.2;
//   test: demand'(d) + B'(d) <= d - sigma(d) - kappa(d).
//
// The source text of the report is OCR-damaged around these formulas; the
// interpretation above is recorded in DESIGN.md and EXPERIMENTS.md.
//
// A response-time analysis for fixed-priority scheduling with blocking
// ([BTW95], which the paper cites for the same cost-integration exercise)
// is provided for the RM/DM schedulers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "util/time.hpp"

namespace hades::sched {

/// Analysis-level view of one sporadic task (Spuri's model, paper 5.1).
struct analyzed_task {
  std::string name;
  duration c = duration::zero();      // worst-case computation time C_i
  duration d = duration::zero();      // relative deadline D_i
  duration t = duration::zero();      // (pseudo-)period T_i
  duration cs = duration::zero();     // longest critical section (0 = none)
  std::uint32_t resource = 0;         // resource id of the critical section
  bool uses_resource = false;

  [[nodiscard]] double utilization() const {
    return static_cast<double>(c.count()) / static_cast<double>(t.count());
  }
};

[[nodiscard]] double total_utilization(const std::vector<analyzed_task>& ts);

/// SRP blocking term per task: B_i = max cs_j over tasks j with D_j > D_i
/// sharing a resource whose ceiling is at least pi_i (i.e. also used by some
/// task with deadline <= D_i).
[[nodiscard]] std::vector<duration> srp_blocking(
    const std::vector<analyzed_task>& ts);

struct feasibility_verdict {
  bool feasible = false;
  std::string reason;                 // first violated deadline, if any
  duration busy_period = duration::zero();
  std::size_t deadlines_checked = 0;
};

/// Spuri theorem 7.1: EDF + SRP processor-demand test (no system costs).
[[nodiscard]] feasibility_verdict edf_feasible(
    const std::vector<analyzed_task>& ts);

/// Section 5.3: the same test with dispatcher, scheduler and kernel costs
/// integrated. `x` (scheduler per-activation cost) is taken from
/// costs.scheduler_per_event.
[[nodiscard]] feasibility_verdict edf_feasible_with_costs(
    const std::vector<analyzed_task>& ts, const core::cost_model& costs);

/// The section 5.3 task transformation, exposed for inspection/tests:
/// returns tasks with C'_i (and the inflated blocking terms).
[[nodiscard]] std::vector<analyzed_task> inflate_costs(
    const std::vector<analyzed_task>& ts, const core::cost_model& costs);

/// sigma(t) and kappa(t) of section 5.3.
[[nodiscard]] duration scheduler_cost(const std::vector<analyzed_task>& ts,
                                      const core::cost_model& costs,
                                      duration window);
[[nodiscard]] duration kernel_cost(const core::cost_model& costs,
                                   duration window);

/// Response-time analysis for fixed-priority scheduling with blocking
/// (tasks must be ordered highest priority first). Returns response times,
/// or nullopt when the recurrence diverges past the deadline.
[[nodiscard]] std::vector<std::optional<duration>> fixed_priority_response_times(
    const std::vector<analyzed_task>& ts_by_priority,
    const std::vector<duration>& blocking);

/// RM feasibility via response-time analysis (priority = rate order).
[[nodiscard]] feasibility_verdict rm_feasible(
    const std::vector<analyzed_task>& ts);

}  // namespace hades::sched
