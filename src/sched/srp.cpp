#include "sched/srp.hpp"

#include <algorithm>

namespace hades::sched {

edf_srp_policy::edf_srp_policy(
    const std::vector<const core::task_graph*>& tasks) {
  for (const auto* g : tasks) {
    for (eu_index i = 0; i < g->eu_count(); ++i) {
      const auto* c = g->as_code(i);
      if (c == nullptr) continue;
      for (const auto& claim : c->resources) {
        auto [it, inserted] = ceiling_.emplace(claim.res, g->deadline());
        if (!inserted) it->second = std::min(it->second, g->deadline());
      }
    }
  }
}

duration edf_srp_policy::system_ceiling() const {
  return stack_.empty() ? duration::infinity() : *stack_.begin();
}

void edf_srp_policy::handle(const core::notification& n,
                            core::scheduler_context& ctx) {
  using core::notification_kind;
  switch (n.kind) {
    case notification_kind::atv: {
      edf_policy::handle(n, ctx);  // EDF ranking first
      // SRP start gate: pi(i) > ceiling  <=>  D_i < ceiling-deadline. The
      // dispatcher holds every activation until this verdict (the policy
      // gates activations).
      if (n.info.relative_deadline >= system_ceiling()) {
        held_.push_back(
            {n.thread, n.info.relative_deadline, n.info.absolute_deadline});
      } else {
        ctx.release(n.thread);
      }
      return;
    }
    case notification_kind::rac: {
      // Rac is emitted at grant time for non-resource-gating policies: the
      // section is now active — raise the system ceiling before any
      // application thread regains the CPU.
      auto& entry = active_[n.thread];
      for (const auto& claim : n.info.resources) {
        auto it = ceiling_.find(claim.res);
        const duration c =
            it != ceiling_.end() ? it->second : n.info.relative_deadline;
        entry.push_back(c);
        stack_.insert(c);
      }
      return;
    }
    case notification_kind::rre: {
      auto it = active_.find(n.thread);
      if (it != active_.end()) {
        for (duration c : it->second) {
          auto sit = stack_.find(c);
          if (sit != stack_.end()) stack_.erase(sit);
        }
        active_.erase(it);
      }
      release_eligible(ctx);
      return;
    }
    case notification_kind::trm: {
      edf_policy::handle(n, ctx);
      std::erase_if(held_,
                    [&](const gated& g) { return g.thread == n.thread; });
      // Defensive: a killed thread may die holding a section (abort path
      // emits Rre first, but keep the stack consistent regardless).
      auto it = active_.find(n.thread);
      if (it != active_.end()) {
        for (duration c : it->second) {
          auto sit = stack_.find(c);
          if (sit != stack_.end()) stack_.erase(sit);
        }
        active_.erase(it);
        release_eligible(ctx);
      }
      return;
    }
  }
}

void edf_srp_policy::release_eligible(core::scheduler_context& ctx) {
  const duration ceiling = system_ceiling();
  // Release in EDF order for determinism.
  std::stable_sort(held_.begin(), held_.end(),
                   [](const gated& a, const gated& b) {
                     return a.deadline < b.deadline;
                   });
  std::vector<gated> still;
  for (const gated& g : held_) {
    if (g.level < ceiling && ctx.alive(g.thread)) {
      ctx.release(g.thread);
    } else if (ctx.alive(g.thread)) {
      still.push_back(g);
    }
  }
  held_ = std::move(still);
}

}  // namespace hades::sched
