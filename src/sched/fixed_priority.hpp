// Static priority-based scheduling policies: Rate Monotonic and Deadline
// Monotonic [LL73], two of the schedulers the paper builds on the generic
// dispatcher (section 3.3).
//
// The policy computes a static priority per task from the registered task
// set and applies it on every Atv notification — the runtime work of a
// static scheduler is exactly one priority assignment per activation, which
// is what the sigma term of the section 5.3 cost analysis charges.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/scheduling.hpp"
#include "core/task_model.hpp"

namespace hades::sched {

class fixed_priority_policy final : public core::policy {
 public:
  explicit fixed_priority_policy(std::map<task_id, priority> priorities,
                                 std::string name = "FP")
      : priorities_(std::move(priorities)), name_(std::move(name)) {}

  [[nodiscard]] std::string name() const override { return name_; }

  void handle(const core::notification& n,
              core::scheduler_context& ctx) override {
    if (n.kind != core::notification_kind::atv) return;
    auto it = priorities_.find(n.info.task);
    if (it == priorities_.end()) return;  // unmanaged task: keep declared prio
    ctx.set_priority(n.thread, it->second);
  }

  [[nodiscard]] const std::map<task_id, priority>& priorities() const {
    return priorities_;
  }

 private:
  std::map<task_id, priority> priorities_;
  std::string name_;
};

/// Rate-monotonic priority map: shorter period -> higher priority.
[[nodiscard]] std::map<task_id, priority> rate_monotonic_priorities(
    const std::vector<const core::task_graph*>& tasks);

/// Deadline-monotonic priority map: shorter relative deadline -> higher.
[[nodiscard]] std::map<task_id, priority> deadline_monotonic_priorities(
    const std::vector<const core::task_graph*>& tasks);

[[nodiscard]] std::shared_ptr<fixed_priority_policy> make_rate_monotonic(
    const std::vector<const core::task_graph*>& tasks);
[[nodiscard]] std::shared_ptr<fixed_priority_policy> make_deadline_monotonic(
    const std::vector<const core::task_graph*>& tasks);

}  // namespace hades::sched
