#include "sched/spring.hpp"

#include <algorithm>

namespace hades::sched {

bool spring_policy::plan(std::vector<job>& jobs,
                         std::vector<time_point>& starts,
                         time_point now) const {
  // Myopic heuristic: order by H = d + W * est.
  std::stable_sort(jobs.begin(), jobs.end(), [&](const job& a, const job& b) {
    const auto h = [&](const job& j) {
      const double d = static_cast<double>(j.deadline.nanoseconds());
      const double est = static_cast<double>(
          std::max(j.earliest, now).nanoseconds());
      return d + params_.est_weight * est;
    };
    return h(a) < h(b);
  });

  starts.assign(jobs.size(), now);
  time_point t = now;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const job& j = jobs[i];
    const time_point s = std::max(t, j.earliest);
    const time_point e = s + j.wcet;  // conservative: full WCET remaining
    if (e > j.deadline) return false;
    starts[i] = s;
    t = e;
  }
  return true;
}

void spring_policy::handle(const core::notification& n,
                           core::scheduler_context& ctx) {
  using core::notification_kind;
  switch (n.kind) {
    case notification_kind::atv: {
      std::vector<job> jobs;
      jobs.reserve(live_.size() + 1);
      for (const job& j : live_)
        if (ctx.alive(j.thread)) jobs.push_back(j);
      job fresh;
      fresh.thread = n.thread;
      fresh.deadline = n.info.absolute_deadline;
      fresh.wcet = n.info.wcet;
      fresh.earliest = n.info.activation;
      jobs.push_back(fresh);

      std::vector<time_point> starts;
      if (!plan(jobs, starts, ctx.now())) {
        ++rejected_;
        ctx.reject_instance(n.thread, "Spring admission: no feasible plan");
        // Keep previously guaranteed jobs exactly as they are.
        return;
      }
      ++accepted_;
      live_ = jobs;
      // Install the plan: priority by plan order; earliest = planned start
      // (the dispatcher ignores earliest changes for started threads, so
      // running jobs are unaffected).
      for (std::size_t i = 0; i < live_.size(); ++i) {
        if (!ctx.alive(live_[i].thread)) continue;
        ctx.set_priority(live_[i].thread,
                         prio::max_app - static_cast<priority>(i));
        ctx.set_earliest(live_[i].thread, starts[i]);
      }
      return;
    }
    case notification_kind::trm:
      std::erase_if(live_, [&](const job& j) { return j.thread == n.thread; });
      return;
    case notification_kind::rac:
    case notification_kind::rre:
      return;
  }
}

}  // namespace hades::sched
