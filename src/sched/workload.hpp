// Synthetic workload generation for experiments and property tests.
//
// Task-set utilizations are drawn with the UUniFast algorithm (unbiased
// uniform distribution over the simplex), periods log-uniformly over a
// configurable range — the standard methodology for schedulability
// experiments. Generated sets can be converted both to the analysis view
// (`analyzed_task`) and to runnable HEUGs (single-unit tasks, or the
// Figure 3 three-unit shape for resource users).
#pragma once

#include <vector>

#include "core/task_model.hpp"
#include "sched/feasibility.hpp"
#include "util/rng.hpp"

namespace hades::sched {

struct workload_params {
  std::size_t task_count = 5;
  double utilization = 0.6;            // total target utilization
  duration period_min = duration::milliseconds(5);
  duration period_max = duration::milliseconds(200);
  bool implicit_deadlines = true;      // D = T; else D uniform in [C, T]
  double resource_fraction = 0.0;      // share of tasks with a critical section
  double cs_fraction = 0.3;            // cs length as a share of C
  std::uint32_t resource_pool = 2;     // distinct resource ids
};

/// UUniFast: n utilizations summing to `total`.
[[nodiscard]] std::vector<double> uunifast(std::size_t n, double total,
                                           rng& r);

/// Generate one analyzed task set.
[[nodiscard]] std::vector<analyzed_task> generate_taskset(
    const workload_params& p, rng& r);

/// Convert an analyzed task to a runnable HEUG on `node` (sporadic law,
/// Figure 3 shape when it has a critical section).
[[nodiscard]] core::task_graph to_task_graph(const analyzed_task& t,
                                             node_id node);

}  // namespace hades::sched
