// Priority Ceiling Protocol [CL90] for fixed-priority scheduling — the
// other anti-priority-inversion mechanism the paper designed on top of the
// dispatcher (section 3.3, footnote 2: the Rac notification exists exactly
// so that protocols like PCP can be built).
//
// The policy *gates* resource access (gates_resources() == true): when an
// EU requests its resources the dispatcher defers the grant until this
// policy has processed the Rac notification. The classic PCP rule applies:
// the request is granted only if the requester's priority is strictly
// higher than the ceiling of every resource currently held by other
// threads; otherwise the requester is held (earliest = infinity) and the
// blocking holder inherits the requester's priority. On release (Rre),
// inherited priorities are restored and blocked requests re-examined.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/scheduling.hpp"
#include "core/task_model.hpp"
#include "sched/fixed_priority.hpp"

namespace hades::sched {

class pcp_policy final : public core::policy {
 public:
  /// `priorities` is the static task-priority map (e.g. rate-monotonic);
  /// ceilings are computed from every registered task that claims resources.
  pcp_policy(std::map<task_id, priority> priorities,
             const std::vector<const core::task_graph*>& tasks);

  [[nodiscard]] std::string name() const override { return "PCP"; }
  [[nodiscard]] bool gates_resources() const override { return true; }

  void handle(const core::notification& n,
              core::scheduler_context& ctx) override;

  [[nodiscard]] std::size_t blocked_count() const { return blocked_.size(); }
  [[nodiscard]] std::uint64_t inheritance_events() const {
    return inheritance_events_;
  }

 private:
  struct holder {
    kthread_id thread;
    priority base;            // priority before any inheritance
    priority ceiling;         // max ceiling among resources it holds
    std::vector<resource_id> resources;
  };
  struct blocked_req {
    kthread_id thread;
    priority prio;
    std::vector<core::resource_claim> resources;
  };

  [[nodiscard]] priority task_priority(task_id t) const;
  [[nodiscard]] priority ceiling_of(const std::vector<core::resource_claim>&
                                        claims) const;
  /// Highest ceiling among resources held by threads other than `self`.
  [[nodiscard]] priority blocking_ceiling(kthread_id self) const;
  void try_grant(const blocked_req& req, core::scheduler_context& ctx,
                 bool& granted);
  void reexamine(core::scheduler_context& ctx);

  std::map<task_id, priority> priorities_;
  std::map<resource_id, priority> ceiling_;
  std::map<kthread_id, holder> holders_;
  std::vector<blocked_req> blocked_;
  std::uint64_t inheritance_events_ = 0;
};

/// Convenience: PCP with rate-monotonic base priorities.
[[nodiscard]] std::shared_ptr<pcp_policy> make_rm_pcp(
    const std::vector<const core::task_graph*>& tasks);

}  // namespace hades::sched
