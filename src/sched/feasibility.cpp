#include "sched/feasibility.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace hades::sched {

namespace {

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Demand bound h(d) = sum over D_i <= d of (floor((d - D_i)/T_i) + 1) C_i.
duration demand(const std::vector<analyzed_task>& ts, duration d) {
  std::int64_t sum = 0;
  for (const auto& task : ts) {
    if (task.d > d) continue;
    const std::int64_t jobs =
        (d.count() - task.d.count()) / task.t.count() + 1;
    sum += jobs * task.c.count();
  }
  return duration::nanoseconds(sum);
}

/// Synchronous busy period: fixed point of
///   L = sum ceil(L/T_i) C_i [+ sigma(L) + kappa(L)].
/// When costs are integrated, the scheduler and kernel background loads keep
/// the processor busy too and must extend the busy period, otherwise
/// deadlines past the task-only busy period would escape the check.
std::optional<duration> busy_period(const std::vector<analyzed_task>& ts,
                                    const core::cost_model* costs) {
  std::int64_t l = 0;
  for (const auto& t : ts) l += t.c.count();
  if (l == 0) return duration::zero();
  for (int iter = 0; iter < 10'000; ++iter) {
    std::int64_t next = 0;
    for (const auto& t : ts)
      next += ceil_div(l, t.t.count()) * t.c.count();
    if (costs != nullptr) {
      next += scheduler_cost(ts, *costs, duration::nanoseconds(l)).count();
      next += kernel_cost(*costs, duration::nanoseconds(l)).count();
    }
    if (next == l) return duration::nanoseconds(l);
    l = next;
    // Divergence guard (total load >= 1): cap at 1000x the largest period.
    std::int64_t max_t = 0;
    for (const auto& t : ts) max_t = std::max(max_t, t.t.count());
    if (l > 1000 * max_t) return std::nullopt;
  }
  return std::nullopt;
}

feasibility_verdict run_demand_test(const std::vector<analyzed_task>& ts,
                                    const core::cost_model* costs) {
  feasibility_verdict v;
  if (ts.empty()) {
    v.feasible = true;
    return v;
  }
  for (const auto& t : ts) {
    validate(t.t > duration::zero() && !t.t.is_infinite(),
             "feasibility: task '" + t.name + "' needs a finite period");
    validate(!t.d.is_infinite(),
             "feasibility: task '" + t.name + "' needs a finite deadline");
  }
  if (total_utilization(ts) > 1.0) {
    v.reason = "utilization > 1";
    return v;
  }
  const auto l = busy_period(ts, costs);
  if (!l.has_value()) {
    v.reason = "busy period diverged";
    return v;
  }
  v.busy_period = *l;

  // Candidate deadlines within the busy period: d = k*T_i + D_i.
  std::set<duration> deadlines;
  for (const auto& t : ts)
    for (duration d = t.d; d <= *l; d += t.t) deadlines.insert(d);

  for (duration d : deadlines) {
    ++v.deadlines_checked;
    // B(d): largest critical section of a task with later deadline that
    // shares a resource with some earlier-deadline task (SRP blocking).
    duration b = duration::zero();
    for (const auto& low : ts) {
      if (low.d <= d || !low.uses_resource) continue;
      for (const auto& high : ts) {
        if (high.d > d || !high.uses_resource) continue;
        if (high.resource == low.resource) b = std::max(b, low.cs);
      }
    }
    duration budget = d;
    if (costs != nullptr) {
      budget = budget - scheduler_cost(ts, *costs, d) - kernel_cost(*costs, d);
      if (budget.is_negative()) {
        v.reason = "system costs exceed deadline " + d.to_string();
        return v;
      }
    }
    if (demand(ts, d) + b > budget) {
      v.reason = "demand exceeds deadline " + d.to_string();
      return v;
    }
  }
  v.feasible = true;
  return v;
}

}  // namespace

double total_utilization(const std::vector<analyzed_task>& ts) {
  double u = 0.0;
  for (const auto& t : ts) u += t.utilization();
  return u;
}

std::vector<duration> srp_blocking(const std::vector<analyzed_task>& ts) {
  std::vector<duration> b(ts.size(), duration::zero());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    for (std::size_t j = 0; j < ts.size(); ++j) {
      if (i == j) continue;
      // j can block i iff D_j > D_i and j's section ceiling reaches i:
      // the resource is shared with a task whose deadline <= D_i.
      if (ts[j].d <= ts[i].d || !ts[j].uses_resource) continue;
      for (const auto& k : ts) {
        if (k.d > ts[i].d || !k.uses_resource) continue;
        if (k.resource == ts[j].resource) b[i] = std::max(b[i], ts[j].cs);
      }
    }
  }
  return b;
}

feasibility_verdict edf_feasible(const std::vector<analyzed_task>& ts) {
  return run_demand_test(ts, nullptr);
}

std::vector<analyzed_task> inflate_costs(const std::vector<analyzed_task>& ts,
                                         const core::cost_model& costs) {
  std::vector<analyzed_task> out = ts;
  for (auto& t : out) {
    // Figure 3: a resource-using task translates to 3 Code_EUs joined by 2
    // local precedence constraints; a plain task is a single Code_EU.
    const std::int64_t n = t.uses_resource ? 3 : 1;
    t.c = t.c + (costs.c_act_start + costs.c_act_end) * n +
          costs.c_local * (n - 1);
    // B'_i = B_i + c_act_start + c_act_end: the blocking section carries its
    // own action wrapping. Model it by inflating the critical section.
    if (t.uses_resource)
      t.cs = t.cs + costs.c_act_start + costs.c_act_end;
  }
  return out;
}

duration scheduler_cost(const std::vector<analyzed_task>& ts,
                        const core::cost_model& costs, duration window) {
  // sigma(t) = sum_i ceil(t/T_i) (x + c_act_start + c_act_end).
  const duration per = costs.scheduler_per_event + costs.c_act_start +
                       costs.c_act_end;
  std::int64_t sum = 0;
  for (const auto& t : ts)
    sum += ceil_div(window.count(), t.t.count()) * per.count();
  return duration::nanoseconds(sum);
}

duration kernel_cost(const core::cost_model& costs, duration window) {
  duration k = duration::zero();
  if (!costs.p_clk.is_infinite() && costs.w_clk > duration::zero())
    k += costs.w_clk * (window.count() / costs.p_clk.count() + 1);
  if (!costs.p_net.is_infinite() && costs.w_net > duration::zero())
    k += costs.w_net * (window.count() / costs.p_net.count() + 1);
  return k;
}

feasibility_verdict edf_feasible_with_costs(
    const std::vector<analyzed_task>& ts, const core::cost_model& costs) {
  const auto inflated = inflate_costs(ts, costs);
  return run_demand_test(inflated, &costs);
}

std::vector<std::optional<duration>> fixed_priority_response_times(
    const std::vector<analyzed_task>& ts, const std::vector<duration>& blocking) {
  require(blocking.size() == ts.size(),
          "fixed_priority_response_times: blocking size mismatch");
  std::vector<std::optional<duration>> out(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    std::int64_t r = ts[i].c.count() + blocking[i].count();
    bool converged = false;
    for (int iter = 0; iter < 1'000; ++iter) {
      std::int64_t next = ts[i].c.count() + blocking[i].count();
      for (std::size_t j = 0; j < i; ++j)
        next += ceil_div(r, ts[j].t.count()) * ts[j].c.count();
      if (next == r) {
        converged = true;
        break;
      }
      r = next;
      if (r > ts[i].d.count() * 4 && r > ts[i].t.count() * 4) break;
    }
    if (converged) out[i] = duration::nanoseconds(r);
  }
  return out;
}

feasibility_verdict rm_feasible(const std::vector<analyzed_task>& ts) {
  feasibility_verdict v;
  std::vector<analyzed_task> sorted = ts;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const analyzed_task& a, const analyzed_task& b) {
                     return a.t < b.t;
                   });
  // Blocking under RM: reuse the SRP bound with deadline ~ period ordering.
  const auto b = srp_blocking(sorted);
  const auto rts = fixed_priority_response_times(sorted, b);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    ++v.deadlines_checked;
    if (!rts[i].has_value() || *rts[i] > sorted[i].d) {
      v.reason = "task '" + sorted[i].name + "' misses its deadline";
      return v;
    }
  }
  v.feasible = true;
  return v;
}

}  // namespace hades::sched
