// Stack Resource Policy [Bak91] layered over EDF — the combination the
// paper's worked example uses (section 5, after [Spu96]).
//
// Preemption levels are static: pi(i) > pi(j) iff D_i < D_j (relative
// deadlines). Every resource has a static ceiling: the minimum relative
// deadline among the tasks that ever claim it (computed from the registered
// HEUGs). The system ceiling is the minimum resource ceiling over currently
// granted resources. SRP's single rule — a job may not start until its
// preemption level exceeds the system ceiling — is enforced through the
// paper's dispatcher primitive: the policy holds a thread by setting its
// earliest start time to infinity on Atv, and releases eligible threads
// when the system ceiling drops (Rre). Because grants only ever happen to
// the highest-priority eligible thread and every later arrival passes
// through the Atv gate, the classic SRP invariants (no deadlock, at most
// one outermost blocking per job) carry over; tests verify both.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/task_model.hpp"
#include "sched/edf.hpp"

namespace hades::sched {

class edf_srp_policy final : public edf_policy {
 public:
  /// Ceilings are derived from every task that can ever run on the node.
  explicit edf_srp_policy(const std::vector<const core::task_graph*>& tasks);

  [[nodiscard]] std::string name() const override { return "EDF+SRP"; }
  [[nodiscard]] bool gates_activation() const override { return true; }

  void handle(const core::notification& n,
              core::scheduler_context& ctx) override;

  /// Current system ceiling expressed as a relative deadline (a *smaller*
  /// value means a *higher* ceiling); infinity when no resource is granted.
  [[nodiscard]] duration system_ceiling() const;

  [[nodiscard]] std::size_t held_count() const { return held_.size(); }

 private:
  void release_eligible(core::scheduler_context& ctx);

  // Static resource ceilings: min relative deadline over claiming tasks.
  std::map<resource_id, duration> ceiling_;
  // Granted sections: thread -> ceilings it activated.
  std::map<kthread_id, std::vector<duration>> active_;
  // Multiset of active ceilings (front = current system ceiling).
  std::multiset<duration> stack_;
  // Threads gated at activation, with their preemption level (rel. deadline).
  struct gated {
    kthread_id thread;
    duration level;
    time_point deadline;  // for deterministic release order (EDF first)
  };
  std::vector<gated> held_;
};

}  // namespace hades::sched
