#include "sched/edf.hpp"

#include <algorithm>

namespace hades::sched {

void edf_policy::handle(const core::notification& n,
                        core::scheduler_context& ctx) {
  using core::notification_kind;
  switch (n.kind) {
    case notification_kind::atv: {
      live_thread lt{n.thread, n.info.absolute_deadline, next_seq_++,
                     prio::idle};
      const auto pos = std::lower_bound(
          live_.begin(), live_.end(), lt, [](const auto& a, const auto& b) {
            if (a.deadline != b.deadline) return a.deadline < b.deadline;
            return a.seq < b.seq;
          });
      live_.insert(pos, lt);
      apply_ranks(ctx);
      return;
    }
    case notification_kind::trm: {
      // Figure 2: EDF ignores Trm for scheduling purposes; the remaining
      // threads already hold correct relative priorities.
      std::erase_if(live_,
                    [&](const live_thread& l) { return l.thread == n.thread; });
      return;
    }
    case notification_kind::rac:
    case notification_kind::rre:
      return;  // plain EDF does not arbitrate resources
  }
}

void edf_policy::apply_ranks(core::scheduler_context& ctx) {
  for (std::size_t i = 0; i < live_.size(); ++i) {
    live_thread& lt = live_[i];
    const priority want = rank_priority(i);
    if (lt.current == want) continue;
    if (ctx.alive(lt.thread)) ctx.set_priority(lt.thread, want);
    lt.current = want;
  }
}

}  // namespace hades::sched
