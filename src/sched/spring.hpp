// Planning-based (Spring-style) scheduler [RSS90] — the third scheduler
// family the paper implemented on the generic dispatcher (section 3.3).
//
// On every activation the policy runs an admission test: it builds a serial
// plan of all live jobs plus the newcomer, ordered by the Spring myopic
// heuristic H(J) = d_J + W * est_J (earliest-start-time weighted deadline;
// W = 0 degenerates to EDF order). Remaining work is conservatively
// estimated by the full WCET. If every job in the plan meets its deadline,
// the newcomer is *guaranteed*: planned start times are installed through
// the dispatcher primitive (earliest start time — the paper names exactly
// this attribute as the hook for planning-based scheduling, section 3.1.2)
// and priorities follow the plan order. Otherwise the newcomer's instance
// is rejected (admission control) and previously guaranteed jobs remain
// untouched.
#pragma once

#include <string>
#include <vector>

#include "core/scheduling.hpp"

namespace hades::sched {

class spring_policy final : public core::policy {
 public:
  struct params {
    double est_weight = 0.0;  // W in H = d + W * est; 0 => deadline-driven
  };

  spring_policy() = default;
  explicit spring_policy(params p) : params_(p) {}

  [[nodiscard]] std::string name() const override { return "Spring"; }
  [[nodiscard]] bool gates_activation() const override { return true; }

  void handle(const core::notification& n,
              core::scheduler_context& ctx) override;

  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

 private:
  struct job {
    kthread_id thread;
    time_point deadline;
    duration wcet;
    time_point earliest;  // declared earliest start (activation-derived)
  };

  /// Builds the plan for `jobs` (mutates order); returns true when every job
  /// meets its deadline; fills planned start times.
  bool plan(std::vector<job>& jobs, std::vector<time_point>& starts,
            time_point now) const;

  params params_;
  std::vector<job> live_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace hades::sched
