#include "sched/workload.hpp"

#include <cmath>

#include "util/error.hpp"

namespace hades::sched {

std::vector<double> uunifast(std::size_t n, double total, rng& r) {
  validate(n > 0, "uunifast: need at least one task");
  std::vector<double> u(n);
  double sum = total;
  for (std::size_t i = 0; i < n - 1; ++i) {
    const double next =
        sum * std::pow(r.uniform01(), 1.0 / static_cast<double>(n - 1 - i));
    u[i] = sum - next;
    sum = next;
  }
  u[n - 1] = sum;
  return u;
}

std::vector<analyzed_task> generate_taskset(const workload_params& p, rng& r) {
  const auto us = uunifast(p.task_count, p.utilization, r);
  std::vector<analyzed_task> out;
  out.reserve(p.task_count);
  const double log_lo = std::log(static_cast<double>(p.period_min.count()));
  const double log_hi = std::log(static_cast<double>(p.period_max.count()));
  for (std::size_t i = 0; i < p.task_count; ++i) {
    analyzed_task t;
    t.name = "tau" + std::to_string(i);
    const double period_ns = std::exp(r.uniform(log_lo, log_hi));
    t.t = duration::nanoseconds(static_cast<std::int64_t>(period_ns));
    std::int64_t c_ns = static_cast<std::int64_t>(period_ns * us[i]);
    c_ns = std::max<std::int64_t>(c_ns, 1'000);  // at least 1us
    t.c = duration::nanoseconds(c_ns);
    if (p.implicit_deadlines) {
      t.d = t.t;
    } else {
      t.d = duration::nanoseconds(
          r.uniform_int(t.c.count(), t.t.count()));
    }
    if (r.uniform01() < p.resource_fraction) {
      t.uses_resource = true;
      t.resource = static_cast<std::uint32_t>(
          r.uniform_int(0, std::max<std::int64_t>(0, p.resource_pool - 1)));
      std::int64_t cs_ns =
          static_cast<std::int64_t>(static_cast<double>(c_ns) * p.cs_fraction);
      cs_ns = std::clamp<std::int64_t>(cs_ns, 1, c_ns);
      t.cs = duration::nanoseconds(cs_ns);
    }
    out.push_back(std::move(t));
  }
  return out;
}

core::task_graph to_task_graph(const analyzed_task& t, node_id node) {
  if (!t.uses_resource) {
    core::task_builder b(t.name);
    b.deadline(t.d).law(core::arrival_law::sporadic(t.t));
    b.add_code_eu(t.name, node, t.c);
    return b.build();
  }
  // Figure 3 shape: before / critical section / after. Split the
  // non-critical budget evenly around the section.
  core::spuri_task s;
  s.name = t.name;
  s.processor = node;
  const duration rest = t.c - t.cs;
  s.c_before = rest / 2;
  s.cs = t.cs;
  s.c_after = rest - s.c_before;
  if (s.c_before.is_zero()) s.c_before = duration::nanoseconds(0);
  s.resource = t.resource;
  s.deadline = t.d;
  s.pseudo_period = t.t;
  return core::translate_spuri(s);
}

}  // namespace hades::sched
