#include "sched/incremental.hpp"

#include "util/error.hpp"

namespace hades::sched {

incremental_feasibility::incremental_feasibility(config c)
    : width_(c.slot_width.count()), base_(0) {
  require(width_ > 0, "incremental_feasibility: slot_width must be positive");
  set_available(c.available);
}

void incremental_feasibility::set_available(double fraction) {
  if (fraction < 0.0) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  avail_ = fraction;
  avail_q32_ = static_cast<std::uint64_t>(fraction * 4294967296.0);
}

void incremental_feasibility::advance(time_point now) {
  const std::int64_t t = now.nanoseconds();
  if (t <= now_) return;
  now_ = t;
  const std::int64_t new_base = (t / width_) * width_;
  if (new_base <= base_) return;
  std::int64_t steps = (new_base - base_) / width_;
  // Past a full revolution every bucket folds exactly once (the remainder
  // would re-fold already-emptied buckets).
  if (steps > static_cast<std::int64_t>(slots)) steps = slots;
  const std::int64_t base_slot = base_ / width_;
  for (std::int64_t i = 0; i < steps; ++i) {
    const auto phys = static_cast<std::size_t>((base_slot + i) %
                                               static_cast<std::int64_t>(slots));
    carry_ += demand_[phys];
    demand_[phys] = 0;
    ++epoch_[phys];
  }
  base_ = new_base;
}

bool incremental_feasibility::scan(std::int64_t extra,
                                   std::size_t candidate) const {
  std::int64_t cum = carry_;
  const std::int64_t base_slot = base_ / width_;
  for (std::size_t k = 0; k < slots; ++k) {
    const auto phys = static_cast<std::size_t>(
        (base_slot + static_cast<std::int64_t>(k)) %
        static_cast<std::int64_t>(slots));
    cum += demand_[phys];
    if (k == candidate) cum += extra;
    if (cum == 0) continue;
    // All demand bucketed here is conservatively due at the bucket start.
    std::int64_t slack = base_ + static_cast<std::int64_t>(k) * width_ - now_;
    if (slack < 0) slack = 0;
    const auto budget = static_cast<std::int64_t>(
        (static_cast<unsigned __int128>(slack) * avail_q32_) >> 32);
    if (cum > budget) return false;
  }
  return true;
}

bool incremental_feasibility::admissible(duration cost,
                                         time_point deadline) const {
  const std::int64_t d = deadline.nanoseconds();
  if (d <= now_) return false;
  std::int64_t k = (d - base_) / width_;
  if (k >= static_cast<std::int64_t>(slots))
    k = static_cast<std::int64_t>(slots) - 1;  // beyond the window: clamp
  return scan(cost.count(), static_cast<std::size_t>(k));
}

std::uint32_t incremental_feasibility::slot_index(
    std::int64_t deadline_ns) const {
  std::int64_t j = deadline_ns / width_;
  const std::int64_t base_slot = base_ / width_;
  if (j < base_slot) j = base_slot;
  if (j >= base_slot + static_cast<std::int64_t>(slots))
    j = base_slot + static_cast<std::int64_t>(slots) - 1;
  return static_cast<std::uint32_t>(j % static_cast<std::int64_t>(slots));
}

incremental_feasibility::ticket incremental_feasibility::admit(
    duration cost, time_point deadline) {
  const std::uint32_t phys = slot_index(deadline.nanoseconds());
  ticket t;
  t.cost = cost.count();
  t.slot = phys;
  t.epoch = epoch_[phys];
  demand_[phys] += t.cost;
  outstanding_ += t.cost;
  return t;
}

void incremental_feasibility::complete(const ticket& t) {
  outstanding_ -= t.cost;
  // The bucket's epoch still matching means the charge is still in it;
  // otherwise advance() folded it into the carried term.
  if (epoch_[t.slot] == t.epoch)
    demand_[t.slot] -= t.cost;
  else
    carry_ -= t.cost;
}

}  // namespace hades::sched
