#include "sched/fixed_priority.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hades::sched {

namespace {

std::map<task_id, priority> rank_by(
    const std::vector<const core::task_graph*>& tasks,
    duration (*key)(const core::task_graph&)) {
  validate(!tasks.empty(), "priority assignment needs at least one task");
  std::vector<const core::task_graph*> sorted = tasks;
  // Longest key first => lowest priority first; ties broken by task id for
  // determinism.
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](const core::task_graph* a, const core::task_graph* b) {
                     if (key(*a) != key(*b)) return key(*a) > key(*b);
                     return a->id() > b->id();
                   });
  std::map<task_id, priority> out;
  priority p = prio::min_app;
  for (const auto* g : sorted) out[g->id()] = p++;
  return out;
}

duration period_of(const core::task_graph& g) { return g.law().period; }
duration deadline_of(const core::task_graph& g) { return g.deadline(); }

}  // namespace

std::map<task_id, priority> rate_monotonic_priorities(
    const std::vector<const core::task_graph*>& tasks) {
  for (const auto* g : tasks)
    validate(!g->law().period.is_infinite(),
             "RM needs a (pseudo-)period for task '" + g->name() + "'");
  return rank_by(tasks, &period_of);
}

std::map<task_id, priority> deadline_monotonic_priorities(
    const std::vector<const core::task_graph*>& tasks) {
  for (const auto* g : tasks)
    validate(!g->deadline().is_infinite(),
             "DM needs a finite deadline for task '" + g->name() + "'");
  return rank_by(tasks, &deadline_of);
}

std::shared_ptr<fixed_priority_policy> make_rate_monotonic(
    const std::vector<const core::task_graph*>& tasks) {
  return std::make_shared<fixed_priority_policy>(
      rate_monotonic_priorities(tasks), "RM");
}

std::shared_ptr<fixed_priority_policy> make_deadline_monotonic(
    const std::vector<const core::task_graph*>& tasks) {
  return std::make_shared<fixed_priority_policy>(
      deadline_monotonic_priorities(tasks), "DM");
}

}  // namespace hades::sched
