#include "core/dispatcher.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/system.hpp"

namespace hades::core {

// ---------------------------------------------------------------- context --

time_point execution_context::now() const { return sys_->now(); }

duration execution_context::local_clock() const {
  return sys_->clock(node_).read();
}

void execution_context::set_condition(condition_id c) {
  sys_->set_condition_from(node_, c);
}

void execution_context::clear_condition(condition_id c) {
  sys_->clear_condition_from(node_, c);
}

void execution_context::send(node_id dst, int channel,
                             sim::wire_payload payload,
                             std::size_t size_bytes) {
  sys_->net(node_).send(dst, channel, std::move(payload), size_bytes);
}

std::any& execution_context::task_state() { return sys_->task_state(task_); }

// -------------------------------------------------------------- dispatcher --

dispatcher::dispatcher(system& sys, runtime& rt, node_id node,
                       processor& cpu, net_task& net, monitor& mon,
                       const cost_model& costs, sim::trace_recorder* trace)
    : sys_(&sys),
      rt_(&rt),
      node_(node),
      cpu_(&cpu),
      net_(&net),
      mon_(&mon),
      costs_(costs),
      trace_(trace) {
  net_->on_channel(control_channel, [this](const sim::message& m) {
    const auto* tok = m.payload.get<control_token>();
    require(tok != nullptr, "dispatcher: malformed control token");
    // Kinds needing the frame's source node are demuxed here; everything
    // else goes through on_token (shared with early-token replay).
    if (tok->k == control_token::kind::shard_complete) {
      sys_->on_shard_complete(tok->task, tok->instance, m.src);
    } else if (tok->k == control_token::kind::dl_probe) {
      if (!halted_) sys_->on_deadlock_probe(node_, tok->aux, m.src);
    } else {
      on_token(*tok);
    }
  });
}

dispatcher::~dispatcher() {
  if (sched_thread_ != invalid_kthread && cpu_->exists(sched_thread_))
    cpu_->destroy(sched_thread_);
}

void dispatcher::record_trace(sim::trace_kind k, const std::string& subject,
                              std::string detail) {
  if (trace_ != nullptr)
    trace_->record(rt_->now(), node_, k, subject, std::move(detail));
}

node_id dispatcher::eu_node(const task_graph& g, eu_index i) const {
  if (const auto* c = g.as_code(i)) return c->processor;
  return g.home_node();  // Inv_EUs are anchored at the home node
}

void dispatcher::attach_policy(std::shared_ptr<policy> p) {
  require(policy_ == nullptr, "dispatcher: a policy is already attached");
  policy_ = std::move(p);
  sched_thread_ =
      cpu_->create("sched:" + policy_->name() + "@" + std::to_string(node_),
                   prio::scheduler, prio::scheduler, duration::zero(),
                   [this] { scheduler_step(); });
  policy_->attach(*this);
}

// ----------------------------------------------------------- shard lifecycle

void dispatcher::create_shard(const task_graph& g, instance_number k,
                              time_point at) {
  if (halted_) return;
  const shard_key key{g.id(), k};
  require(!shards_.contains(key), "dispatcher: duplicate shard");

  // Advance the creation watermark first (see stash_if_early) and drop
  // stashes for older instances of this task — their creates were skipped
  // (abort before start, crash), so their tokens can never be consumed.
  instance_number& next = created_next_[g.id()];
  next = std::max(next, k + 1);
  for (auto it = early_tokens_.begin(); it != early_tokens_.end();) {
    if (it->first.first == g.id() && it->first.second < k)
      it = early_tokens_.erase(it);
    else
      ++it;
  }

  shard s;
  s.graph = &g;
  s.instance = k;
  s.activation = at;

  for (eu_index i = 0; i < g.eu_count(); ++i) {
    const bool local = eu_node(g, i) == node_;
    if (!local) continue;
    eu_rt eu;
    eu.idx = i;
    eu.code = g.as_code(i);
    eu.inv = g.as_inv(i);
    eu.preds_total = g.preds(i).size();
    eu.earliest_abs =
        eu.code ? at + eu.code->attrs.earliest_offset : at;
    s.eus.emplace(i, std::move(eu));
    ++s.pending;
  }
  if (s.eus.empty()) {
    // Involved with no local EU should not happen (system computes the
    // involved set from the graph), but a complete-on-creation shard must
    // still report completion.
    sys_->on_shard_complete(g.id(), k, node_);
    return;
  }

  auto [it, inserted] = shards_.emplace(key, std::move(s));
  shard& sh = it->second;
  ++stats_.shards_created;

  // Create one kernel thread per local Code_EU (paper 3.2.1) and notify the
  // scheduler of every activation.
  for (auto& [idx, eu] : sh.eus) {
    if (eu.code == nullptr) continue;
    const code_eu& c = *eu.code;

    eu.actual = c.actual
                    ? std::clamp(c.actual(k), duration::zero(), c.wcet)
                    : c.wcet;
    eu.pt_boost = c.attrs.preemption_threshold - c.attrs.prio;

    // Fold the dispatcher activities this unit will cause into its demand
    // (section 4.1): action start/end plus one c_local / c_rel per outgoing
    // precedence constraint.
    duration work = costs_.c_act_start + eu.actual + costs_.c_act_end;
    for (eu_index succ : g.succs(idx))
      work += (eu_node(g, succ) == node_) ? costs_.c_local : costs_.c_rel;

    eu.thread = cpu_->create(c.name + "#" + std::to_string(k), c.attrs.prio,
                             c.attrs.preemption_threshold, work,
                             [this, key, idx] { eu_complete(key, idx); });
    by_thread_[eu.thread] = eu_ref{key, idx};

    eu.info.task = g.id();
    eu.info.task_name = g.name();
    eu.info.instance = k;
    eu.info.eu = idx;
    eu.info.eu_name = c.name;
    eu.info.node = node_;
    eu.info.activation = at;
    eu.info.absolute_deadline = at + g.deadline();
    eu.info.relative_deadline = g.deadline();
    eu.info.period = g.law().period;
    eu.info.wcet = c.wcet;
    eu.info.resources = c.resources;
    eu.info.static_priority = c.attrs.prio;

    // Start-gating policies decide on every activation (the scheduler will
    // release or hold the unit through the primitive while handling Atv).
    if (policy_ != nullptr && policy_->gates_activation())
      eu.protocol_held = true;

    emit(notification_kind::atv, eu);

    // Latest-start monitoring (and, through it, suspected network
    // omissions: a remote precedence that still has not arrived when the
    // consumer must start).
    if (!c.attrs.latest_offset.is_infinite()) {
      // A remote create token may arrive after at + latest_offset (the
      // activation date travels with the token); clamp so the violation
      // check still fires — immediately — instead of scheduling in the past.
      const time_point latest =
          std::max(at + c.attrs.latest_offset, rt_->now());
      eu.latest_timer = rt_->at(latest, [this, key, idx] {
        shard* sp = find_shard(key);
        if (sp == nullptr) return;
        auto& e = sp->eus.at(idx);
        e.latest_timer = sim::invalid_event;
        if (e.st == eu_state::done) return;
        if (cpu_->exists(e.thread) && cpu_->has_started(e.thread)) return;
        monitor_event ev;
        ev.kind = monitor_event_kind::latest_start_violation;
        ev.at = rt_->now();
        ev.node = node_;
        ev.task = key.first;
        ev.instance = key.second;
        ev.subject = e.info.eu_name;
        mon_->record(ev);
        // Missing *remote* predecessors at this point are the signature of
        // a network omission (paper 3.2.1 event v).
        for (eu_index p : sp->graph->preds(idx)) {
          if (e.preds_done.contains(p)) continue;
          if (eu_node(*sp->graph, p) == node_) continue;
          monitor_event om;
          om.kind = monitor_event_kind::network_omission_suspected;
          om.at = rt_->now();
          om.node = node_;
          om.task = key.first;
          om.instance = key.second;
          om.subject = e.info.eu_name;
          om.detail = "remote precedence from '" +
                      sp->graph->eu_name(p) + "' missing";
          mon_->record(om);
        }
      });
    }
  }

  // Sources may be immediately eligible. Evaluation can cascade through
  // async invocations up to erasing this very shard, so walk a snapshot of
  // indices and re-find the shard at every step.
  std::vector<eu_index> indices;
  indices.reserve(sh.eus.size());
  for (const auto& [idx, eu] : sh.eus) indices.push_back(idx);
  for (eu_index idx : indices) {
    shard* sp = find_shard(key);
    if (sp == nullptr) break;
    auto eit = sp->eus.find(idx);
    if (eit != sp->eus.end()) evaluate(*sp, eit->second);
  }

  // Replay tokens that outran this create (nothing above may touch local
  // state afterwards: a replayed abort_shard can erase the shard).
  if (auto eit = early_tokens_.find(key); eit != early_tokens_.end()) {
    std::vector<control_token> replay = std::move(eit->second);
    early_tokens_.erase(eit);
    for (const control_token& tok : replay) on_token(tok);
  }
}

void dispatcher::cancel_timers(eu_rt& eu) {
  if (eu.earliest_timer != sim::invalid_event) {
    rt_->cancel(eu.earliest_timer);
    eu.earliest_timer = sim::invalid_event;
  }
  if (eu.latest_timer != sim::invalid_event) {
    rt_->cancel(eu.latest_timer);
    eu.latest_timer = sim::invalid_event;
  }
}

void dispatcher::drop_waiter_refs(const shard_key& key) {
  std::erase_if(resource_waiters_,
                [&](const eu_ref& r) { return r.key == key; });
  for (auto& [c, refs] : cond_waiters_)
    std::erase_if(refs, [&](const eu_ref& r) { return r.key == key; });
}

void dispatcher::abort_shard(task_id t, instance_number k,
                             const std::string& reason) {
  const shard_key key{t, k};
  shard* s = find_shard(key);
  if (s == nullptr) return;
  s->aborted = true;

  for (auto& [idx, eu] : s->eus) {
    cancel_timers(eu);
    if (eu.code == nullptr || eu.st == eu_state::done) continue;
    if (!cpu_->exists(eu.thread)) continue;
    const bool started = cpu_->has_started(eu.thread);
    if (started) {
      // Orphan execution (paper 3.2.1 event iii): the thread had consumed
      // CPU on behalf of an instance that no longer exists.
      monitor_event ev;
      ev.kind = monitor_event_kind::orphan_killed;
      ev.at = rt_->now();
      ev.node = node_;
      ev.task = t;
      ev.instance = k;
      ev.subject = eu.info.eu_name;
      ev.detail = reason;
      mon_->record(ev);
      record_trace(sim::trace_kind::thread_killed, cpu_->name(eu.thread),
                   reason);
    }
    if (eu.resources_granted) {
      release_resources(*s, eu);
      emit(notification_kind::rre, eu);
    }
    emit(notification_kind::trm, eu);  // let the policy clean up its state
    by_thread_.erase(eu.thread);
    cpu_->destroy(eu.thread);
  }
  drop_waiter_refs(key);
  shards_.erase(key);
  record_trace(sim::trace_kind::instance_aborted,
               "task" + std::to_string(t) + "#" + std::to_string(k), reason);
  reevaluate_resource_waiters();
}

void dispatcher::halt() {
  if (halted_) return;
  halted_ = true;
  for (auto& [key, s] : shards_) {
    for (auto& [idx, eu] : s.eus) {
      cancel_timers(eu);
      if (eu.code != nullptr && cpu_->exists(eu.thread))
        cpu_->destroy(eu.thread);
    }
  }
  shards_.clear();
  early_tokens_.clear();  // created_next_ survives: pre-crash tokens are late
  by_thread_.clear();
  resource_waiters_.clear();
  cond_waiters_.clear();
  resources_.clear();
  fifo_.clear();
  // A scheduler notification in flight dies with the thread; clear the
  // busy latch or a restarted node could never schedule again.
  sched_busy_ = false;
  if (sched_thread_ != invalid_kthread && cpu_->exists(sched_thread_)) {
    cpu_->destroy(sched_thread_);
    sched_thread_ = invalid_kthread;
  }
  net_->halt();
}

void dispatcher::restart() {
  if (!halted_) return;
  halted_ = false;
  net_->resume();
  if (policy_ != nullptr && sched_thread_ == invalid_kthread)
    sched_thread_ =
        cpu_->create("sched:" + policy_->name() + "@" + std::to_string(node_),
                     prio::scheduler, prio::scheduler, duration::zero(),
                     [this] { scheduler_step(); });
}

// ------------------------------------------------------- readiness machinery

dispatcher::shard* dispatcher::find_shard(shard_key k) {
  auto it = shards_.find(k);
  return it == shards_.end() ? nullptr : &it->second;
}

dispatcher::eu_rt* dispatcher::find_eu(const eu_ref& r) {
  shard* s = find_shard(r.key);
  if (s == nullptr) return nullptr;
  auto it = s->eus.find(r.idx);
  return it == s->eus.end() ? nullptr : &it->second;
}

dispatcher::eu_rt* dispatcher::find_by_thread(kthread_id t) {
  auto it = by_thread_.find(t);
  if (it == by_thread_.end()) return nullptr;
  return find_eu(it->second);
}

bool dispatcher::conds_satisfied(shard& s, eu_rt& eu) {
  if (eu.code == nullptr) return true;
  bool ok = true;
  for (condition_id c : eu.code->waits_all) {
    if (sys_->condition_on(node_, c)) continue;
    ok = false;
    auto& refs = cond_waiters_[c];
    const eu_ref ref{{s.graph->id(), s.instance}, eu.idx};
    if (std::find(refs.begin(), refs.end(), ref) == refs.end())
      refs.push_back(ref);
  }
  return ok;
}

bool dispatcher::grantable(const code_eu& c) const {
  for (const auto& claim : c.resources) {
    auto it = resources_.find(claim.res);
    if (it == resources_.end()) continue;
    const resource_state& rs = it->second;
    if (claim.mode == access_mode::exclusive) {
      if (rs.exclusive_held || rs.shared_holders > 0) return false;
    } else {
      if (rs.exclusive_held) return false;
    }
  }
  return true;
}

void dispatcher::grant(shard& s, eu_rt& eu) {
  for (const auto& claim : eu.code->resources) {
    resource_state& rs = resources_[claim.res];
    if (claim.mode == access_mode::exclusive)
      rs.exclusive_held = true;
    else
      ++rs.shared_holders;
  }
  eu.resources_granted = true;
  ++stats_.resource_grants;
  (void)s;
}

void dispatcher::release_resources(shard& s, eu_rt& eu) {
  for (const auto& claim : eu.code->resources) {
    resource_state& rs = resources_[claim.res];
    if (claim.mode == access_mode::exclusive)
      rs.exclusive_held = false;
    else
      --rs.shared_holders;
  }
  eu.resources_granted = false;
  (void)s;
}

void dispatcher::reevaluate_resource_waiters() {
  if (resource_waiters_.empty()) return;
  // Serve waiters in priority order (highest current priority first),
  // falling back to FIFO.
  std::vector<eu_ref> waiters = resource_waiters_;
  std::stable_sort(waiters.begin(), waiters.end(),
                   [this](const eu_ref& a, const eu_ref& b) {
                     eu_rt* ea = find_eu(a);
                     eu_rt* eb = find_eu(b);
                     const priority pa =
                         ea != nullptr && cpu_->exists(ea->thread)
                             ? cpu_->get_priority(ea->thread)
                             : prio::idle;
                     const priority pb =
                         eb != nullptr && cpu_->exists(eb->thread)
                             ? cpu_->get_priority(eb->thread)
                             : prio::idle;
                     return pa > pb;
                   });
  for (const eu_ref& r : waiters) {
    eu_rt* eu = find_eu(r);
    shard* s = find_shard(r.key);
    if (eu == nullptr || s == nullptr) continue;
    if (eu->st != eu_state::waiting) continue;
    evaluate(*s, *eu);
  }
}

void dispatcher::evaluate(shard& s, eu_rt& eu) {
  if (halted_ || s.aborted || eu.st != eu_state::waiting) return;
  if (eu.protocol_held) return;  // awaiting the policy's verdict
  if (eu.preds_done.size() < eu.preds_total) return;
  if (!conds_satisfied(s, eu)) return;

  if (eu.earliest_abs > rt_->now()) {
    if (!eu.earliest_abs.is_infinite() &&
        eu.earliest_timer == sim::invalid_event) {
      const shard_key key{s.graph->id(), s.instance};
      eu.earliest_timer = rt_->at(eu.earliest_abs, [this, key, i = eu.idx] {
        shard* sp = find_shard(key);
        if (sp == nullptr) return;
        auto it = sp->eus.find(i);
        if (it == sp->eus.end()) return;
        it->second.earliest_timer = sim::invalid_event;
        evaluate(*sp, it->second);
      });
    }
    return;
  }

  if (eu.inv != nullptr) {
    fire_invocation(s, eu);
    return;
  }

  const code_eu& c = *eu.code;
  if (!c.resources.empty() && !eu.resources_granted) {
    const bool gated = policy_ != nullptr && policy_->gates_resources();
    if (gated && !eu.rac_emitted) {
      // Request-time Rac: the policy will release (or keep holding) this
      // unit through the dispatcher primitive (PCP, footnote 2).
      eu.rac_emitted = true;
      emit(notification_kind::rac, eu);
      eu.protocol_held = true;
      return;
    }
    if (!grantable(c)) {
      const eu_ref ref{{s.graph->id(), s.instance}, eu.idx};
      if (!eu.in_resource_wait) {
        eu.in_resource_wait = true;
        ++stats_.resource_blocks;
        resource_waiters_.push_back(ref);
      }
      return;
    }
    grant(s, eu);
    if (!gated && !eu.rac_emitted) {
      // Grant-time Rac: ceiling protocols that merely *observe* accesses
      // (SRP) see exactly the granted sections.
      eu.rac_emitted = true;
      emit(notification_kind::rac, eu);
    }
  }

  if (eu.in_resource_wait) {
    eu.in_resource_wait = false;
    const eu_ref ref{{s.graph->id(), s.instance}, eu.idx};
    std::erase(resource_waiters_, ref);
  }
  eu.st = eu_state::queued;
  cpu_->make_runnable(eu.thread);
}

void dispatcher::on_condition_set(condition_id c) {
  auto it = cond_waiters_.find(c);
  if (it == cond_waiters_.end()) return;
  std::vector<eu_ref> refs = std::move(it->second);
  cond_waiters_.erase(it);
  for (const eu_ref& r : refs) {
    shard* s = find_shard(r.key);
    eu_rt* eu = find_eu(r);
    if (s != nullptr && eu != nullptr) evaluate(*s, *eu);
  }
}

// ------------------------------------------------------------------ execution

void dispatcher::eu_complete(shard_key key, eu_index idx) {
  shard* sp = find_shard(key);
  if (sp == nullptr) return;  // aborted while the completion event was queued
  shard& s = *sp;
  eu_rt& eu = s.eus.at(idx);
  eu.st = eu_state::done;
  --s.pending;
  ++stats_.eus_completed;
  cancel_timers(eu);

  // Early-termination detection (paper 3.2.1 event iii).
  if (eu.actual < eu.code->wcet) {
    monitor_event ev;
    ev.kind = monitor_event_kind::early_termination;
    ev.at = rt_->now();
    ev.node = node_;
    ev.task = key.first;
    ev.instance = key.second;
    ev.subject = eu.info.eu_name;
    ev.detail = "actual " + eu.actual.to_string() + " < wcet " +
                eu.code->wcet.to_string();
    mon_->record(ev);
  }

  if (eu.code->body) {
    execution_context ctx(*sys_, node_, key.first, key.second);
    eu.code->body(ctx);
  }
  for (condition_id c : eu.code->sets) sys_->set_condition_from(node_, c);
  for (condition_id c : eu.code->clears) sys_->clear_condition_from(node_, c);

  if (eu.resources_granted) {
    release_resources(s, eu);
    emit(notification_kind::rre, eu);
    reevaluate_resource_waiters();
  }

  emit(notification_kind::trm, eu);
  by_thread_.erase(eu.thread);
  cpu_->destroy(eu.thread);

  const task_graph& g = *s.graph;  // graphs outlive every shard
  propagate(key, idx, g);

  if (shard* sp = find_shard(key); sp != nullptr && sp->pending == 0)
    shard_done(key);
}

void dispatcher::propagate(shard_key key, eu_index from, const task_graph& g) {
  for (const precedence& p : g.precedences()) {
    if (p.from != from) continue;
    const node_id target = eu_node(g, p.to);
    if (target == node_) {
      shard* sp = find_shard(key);
      if (sp == nullptr) return;  // erased by an earlier cascade
      auto it = sp->eus.find(p.to);
      if (it != sp->eus.end() && it->second.preds_done.insert(p.from).second)
        evaluate(*sp, it->second);
    } else {
      control_token tok;
      tok.k = control_token::kind::precedence;
      tok.task = key.first;
      tok.instance = key.second;
      tok.from = p.from;
      tok.to = p.to;
      net_->send(target, control_channel, tok,
                 std::max<std::size_t>(p.payload_bytes, 32));
    }
  }
}

bool dispatcher::stash_if_early(const control_token& tok) {
  auto it = created_next_.find(tok.task);
  const instance_number next = it == created_next_.end() ? 0 : it->second;
  if (tok.instance < next) return false;  // created already (possibly gone)
  early_tokens_[{tok.task, tok.instance}].push_back(tok);
  return true;
}

void dispatcher::on_token(const control_token& tok) {
  if (halted_) return;
  switch (tok.k) {
    case control_token::kind::precedence:
    case control_token::kind::sync_return:
    case control_token::kind::sync_started:
    case control_token::kind::abort_shard:
      // Per-instance tokens may arrive before their shard's create token.
      if (stash_if_early(tok)) return;
      break;
    default:
      break;
  }
  switch (tok.k) {
    case control_token::kind::precedence: {
      shard* s = find_shard({tok.task, tok.instance});
      if (s == nullptr) return;
      auto it = s->eus.find(tok.to);
      if (it == s->eus.end()) return;
      eu_rt& eu = it->second;
      if (eu.preds_done.insert(tok.from).second) evaluate(*s, eu);
      return;
    }
    case control_token::kind::sync_return:
      on_sync_return(tok.task, tok.instance, tok.to);
      return;
    case control_token::kind::sync_started: {
      // Ack from a remote activation: record the child instance so the
      // deadlock scan sees the inv-wait edge (the return itself arrives as
      // sync_return; per-link FIFO orders the two).
      shard* s = find_shard({tok.task, tok.instance});
      if (s == nullptr) return;
      auto it = s->eus.find(tok.to);
      if (it == s->eus.end()) return;
      if (it->second.st == eu_state::inv_waiting)
        it->second.sync_child_instance = tok.aux;
      return;
    }
    case control_token::kind::create_shard:
      // Idempotent: a home that is also an involved node creates directly.
      if (!shards_.contains({tok.task, tok.instance}))
        create_shard(sys_->graph(tok.task), tok.instance, tok.at);
      return;
    case control_token::kind::abort_shard:
      abort_shard(tok.task, tok.instance,
                  std::string(tok.reason,
                              ::strnlen(tok.reason, sizeof tok.reason)));
      return;
    case control_token::kind::abort_request:
      sys_->abort_instance(tok.task, tok.instance,
                           std::string(tok.reason,
                                       ::strnlen(tok.reason,
                                                 sizeof tok.reason)),
                           /*as_rejection=*/true);
      return;
    case control_token::kind::activate_request:
      sys_->on_activate_request(node_, tok);
      return;
    case control_token::kind::cond_set:
    case control_token::kind::cond_clear:
    case control_token::kind::cond_update:
      sys_->on_condition_token(node_, tok);
      return;
    case control_token::kind::shard_complete:
    case control_token::kind::dl_probe:
      return;  // handled at the channel layer (need the source node)
  }
}

void dispatcher::fire_invocation(shard& s, eu_rt& eu) {
  const inv_eu& inv = *eu.inv;
  const shard_key key{s.graph->id(), s.instance};
  const node_id target_home = sys_->graph(inv.target).home_node();
  if (target_home != node_) {
    // The target's home owns the arrival-law check and instance
    // bookkeeping, so a remote activation rides the wire instead of
    // calling into a possibly concurrently-running shard. A synchronous
    // invoker parks in inv_waiting; the home answers with sync_started
    // (accepted, carrying the child instance for the deadlock scan) or an
    // immediate sync_return (rejected) — and a crashed home answers with
    // silence, the same observable as any lost remote instance: the
    // invoker's own latest-start/deadline monitors flag it.
    control_token tok;
    tok.k = control_token::kind::activate_request;
    tok.task = inv.target;
    if (inv.kind == invocation_kind::synchronous) {
      tok.flag = true;
      tok.waiter_node = node_;
      tok.waiter_task = key.first;
      tok.waiter_instance = key.second;
      tok.waiter_inv = eu.idx;
      eu.st = eu_state::inv_waiting;
      eu.sync_child_instance = 0;  // learned from the sync_started ack
    }
    net_->send(target_home, control_channel, tok, 48);
    if (inv.kind != invocation_kind::synchronous)
      finish_inv(key, eu.idx);
    return;
  }
  system::activation_origin origin;
  origin.k = system::activation_origin::kind::invocation;
  if (inv.kind == invocation_kind::synchronous) {
    origin.waiter_node = node_;
    origin.waiter_task = key.first;
    origin.waiter_instance = key.second;
    origin.waiter_inv = eu.idx;
  }
  const auto child = sys_->activate_internal(inv.target, origin);
  if (inv.kind == invocation_kind::synchronous && child.has_value()) {
    eu.st = eu_state::inv_waiting;
    eu.sync_child_instance = *child;
    return;
  }
  // Asynchronous, or the activation was rejected: the unit is finished
  // (a rejected invocation is observable through monitor events).
  finish_inv({s.graph->id(), s.instance}, eu.idx);
}

void dispatcher::finish_inv(shard_key key, eu_index idx) {
  shard* sp = find_shard(key);
  if (sp == nullptr) return;
  auto it = sp->eus.find(idx);
  if (it == sp->eus.end()) return;
  it->second.st = eu_state::done;
  --sp->pending;
  const task_graph& g = *sp->graph;
  propagate(key, idx, g);
  if (shard* again = find_shard(key); again != nullptr && again->pending == 0)
    shard_done(key);
}

void dispatcher::on_sync_return(task_id t, instance_number k, eu_index inv) {
  shard* s = find_shard({t, k});
  if (s == nullptr) return;
  auto it = s->eus.find(inv);
  if (it == s->eus.end()) return;
  if (it->second.st != eu_state::inv_waiting) return;
  finish_inv({t, k}, inv);
}

void dispatcher::shard_done(shard_key key) {
  shard* s = find_shard(key);
  require(s != nullptr, "shard_done: missing shard");
  const node_id home = s->graph->home_node();
  drop_waiter_refs(key);
  shards_.erase(key);
  if (home == node_) {
    sys_->on_shard_complete(key.first, key.second, node_);
  } else {
    control_token tok;
    tok.k = control_token::kind::shard_complete;
    tok.task = key.first;
    tok.instance = key.second;
    net_->send(home, control_channel, tok, 32);
  }
}

// --------------------------------------------------------------- scheduler --

void dispatcher::emit(notification_kind kind, const eu_rt& eu) {
  ++stats_.notifications;
  record_trace(sim::trace_kind::notification,
               eu.info.eu_name + "#" + std::to_string(eu.info.instance),
               to_string(kind));
  if (policy_ == nullptr) return;
  notification n;
  n.kind = kind;
  n.thread = eu.thread;
  n.info = eu.info;
  n.at = rt_->now();
  fifo_.push_back(std::move(n));
  pump_scheduler();
}

void dispatcher::pump_scheduler() {
  if (policy_ == nullptr || sched_busy_ || fifo_.empty() || halted_) return;
  sched_busy_ = true;
  cpu_->add_work(sched_thread_, costs_.scheduler_per_event);
  cpu_->make_runnable(sched_thread_);
}

void dispatcher::scheduler_step() {
  require(!fifo_.empty(), "scheduler ran with an empty FIFO");
  const notification n = std::move(fifo_.front());
  fifo_.pop_front();
  ++stats_.scheduler_runs;
  policy_->handle(n, *this);
  sched_busy_ = false;
  pump_scheduler();
}

// ------------------------------------------------- scheduler_context (API) --

time_point dispatcher::now() const { return rt_->now(); }

void dispatcher::set_priority(kthread_id t, priority p) {
  eu_rt* eu = find_by_thread(t);
  if (eu == nullptr || !cpu_->exists(t)) return;  // terminated meanwhile
  record_trace(sim::trace_kind::priority_change, cpu_->name(t),
               std::to_string(p));
  cpu_->set_priority(t, p);
  cpu_->set_threshold(t, p + eu->pt_boost);
}

void dispatcher::set_earliest(kthread_id t, time_point earliest) {
  eu_rt* eu = find_by_thread(t);
  if (eu == nullptr) return;
  if (eu->st != eu_state::waiting) return;  // only pre-start, per the paper
  record_trace(sim::trace_kind::earliest_change, cpu_->name(t),
               earliest.to_string());
  eu->earliest_abs = earliest;
  eu->protocol_held = false;
  if (eu->earliest_timer != sim::invalid_event) {
    rt_->cancel(eu->earliest_timer);
    eu->earliest_timer = sim::invalid_event;
  }
  auto it = by_thread_.find(t);
  shard* s = find_shard(it->second.key);
  if (s != nullptr) evaluate(*s, *eu);
}

const eu_info& dispatcher::info(kthread_id t) const {
  auto it = by_thread_.find(t);
  require(it != by_thread_.end(), "dispatcher::info: unknown thread");
  auto* self = const_cast<dispatcher*>(this);
  eu_rt* eu = self->find_eu(it->second);
  require(eu != nullptr, "dispatcher::info: stale thread");
  return eu->info;
}

bool dispatcher::alive(kthread_id t) const {
  auto it = by_thread_.find(t);
  if (it == by_thread_.end()) return false;
  auto* self = const_cast<dispatcher*>(this);
  eu_rt* eu = self->find_eu(it->second);
  return eu != nullptr && eu->st != eu_state::done;
}

void dispatcher::reject_instance(kthread_id t, const std::string& reason) {
  auto it = by_thread_.find(t);
  if (it == by_thread_.end()) return;
  const shard_key key = it->second.key;
  const node_id home = sys_->graph(key.first).home_node();
  if (home == node_) {
    sys_->abort_instance(key.first, key.second, reason, /*as_rejection=*/true);
    return;
  }
  // Instance bookkeeping lives on the home shard: a policy rejecting a
  // remote task's shard asks the home to abort instead of mutating
  // instances_ from this shard.
  control_token tok;
  tok.k = control_token::kind::abort_request;
  tok.task = key.first;
  tok.instance = key.second;
  std::snprintf(tok.reason, sizeof tok.reason, "%s", reason.c_str());
  net_->send(home, control_channel, tok, 64);
}

// ------------------------------------------------------------- observability

std::vector<dispatcher::waiting_eu> dispatcher::waiting_eus() const {
  std::vector<waiting_eu> out;
  for (const auto& [key, s] : shards_) {
    for (const auto& [idx, eu] : s.eus) {
      if (eu.st != eu_state::waiting && eu.st != eu_state::inv_waiting)
        continue;
      waiting_eu w;
      w.task = key.first;
      w.instance = key.second;
      w.eu = idx;
      for (eu_index p : s.graph->preds(idx))
        if (!eu.preds_done.contains(p)) w.waiting_preds.push_back(p);
      if (eu.code != nullptr)
        for (condition_id c : eu.code->waits_all)
          if (!sys_->condition_on(node_, c)) w.waiting_conds.push_back(c);
      if (eu.st == eu_state::inv_waiting) {
        w.sync_target = eu.inv->target;
        w.sync_target_instance = eu.sync_child_instance;
      }
      w.resource_wait = eu.in_resource_wait || eu.protocol_held;
      out.push_back(std::move(w));
    }
  }
  return out;
}

}  // namespace hades::core
