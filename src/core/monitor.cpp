#include "core/monitor.hpp"

#include <sstream>

namespace hades::core {

std::string monitor::render() const {
  std::ostringstream os;
  for (const auto& e : events_) {
    os << e.at.to_string() << "  n";
    if (e.node == invalid_node)
      os << '?';
    else
      os << e.node;
    os << "  [" << to_string(e.kind) << "] " << e.subject;
    if (!e.detail.empty()) os << " : " << e.detail;
    os << '\n';
  }
  return os.str();
}

}  // namespace hades::core
