#include "core/monitor.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

namespace hades::core {

void monitor::record(monitor_event e) {
  // Notify from a local copy, never from a reference into the partition: a
  // synchronous listener may re-enter record (dependency_tracker aborting
  // instances records fresh orphan events), and the resulting push_back
  // would invalidate any reference held across the callback.
  const monitor_event ev = e;
  log_.append(std::move(e));
  for (const auto& l : listeners_) l(ev);
  if (routed_.empty()) return;
  if (rt_ == nullptr) {
    for (const auto& r : routed_) r.fn(ev);
    return;
  }
  // Redeliver on each home shard at a backend-independent date. The event
  // is shared so the scheduled closure ({std::function, shared_ptr}) stays
  // within the event core's inline buffer instead of forcing a heap-backed
  // closure per listener.
  auto shared = std::make_shared<const monitor_event>(ev);
  // One wire frame per foreign home: the receiving process fans the event
  // out to every listener at that home, so duplicates would double-deliver.
  std::vector<node_id> forwarded_homes;
  for (const auto& r : routed_) {
    if (forwarder_ != nullptr) {
      const bool already =
          std::find(forwarded_homes.begin(), forwarded_homes.end(), r.home) !=
          forwarded_homes.end();
      if (already) continue;
      if (forwarder_(ev, r.home, r.delay)) {
        forwarded_homes.push_back(r.home);
        continue;
      }
    }
    rt_->at_node(r.home, rt_->now() + r.delay,
                 [fn = r.fn, shared] { fn(*shared); });
  }
}

void monitor::deliver_forwarded(const monitor_event& e, node_id home) {
  if (rt_ == nullptr) {
    for (const auto& r : routed_)
      if (r.home == home) r.fn(e);
    return;
  }
  auto shared = std::make_shared<const monitor_event>(e);
  for (const auto& r : routed_)
    if (r.home == home)
      rt_->at_node(home, rt_->now() + r.delay,
                   [fn = r.fn, shared] { fn(*shared); });
}

std::string monitor::render() const {
  std::ostringstream os;
  for (const auto& e : events()) {
    os << e.at.to_string() << "  n";
    if (e.node == invalid_node)
      os << '?';
    else
      os << e.node;
    os << "  [" << to_string(e.kind) << "] " << e.subject;
    if (!e.detail.empty()) os << " : " << e.detail;
    os << '\n';
  }
  return os.str();
}

}  // namespace hades::core
