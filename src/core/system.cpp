#include "core/system.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace hades::core {

system::system(std::size_t node_count) : system(node_count, config{}) {}

std::unique_ptr<hades::runtime> system::make_backend(const config& cfg,
                                                     std::size_t node_count) {
  hades::runtime::options o = cfg.runtime;
  if (o.backend.empty()) {
    // Deprecated-field shim (one PR): pre-factory configs selected the
    // backend through config.shards / config.workers.
    o.backend = cfg.shards == 0 ? "sim" : "sharded";
    o.shards = cfg.shards;
    o.workers = cfg.workers;
  }
  o.node_count = node_count;
  if (o.backend == "sharded") {
    validate(cfg.net.delta_min > duration::zero(),
             "system: the sharded backend needs net.delta_min > 0 (lookahead)");
    o.lookahead = cfg.net.delta_min;  // every cross-node event rides the LAN
    o.shards = std::min(o.shards, node_count);
  }
  // Backend policy beyond this translation — worker safety (system state is
  // shard-confined; every cross-node structural effect rides a wire control
  // token), the contiguous-blocks default node map — lives with the factory
  // registrations (src/rt/runtime_factory.cpp), not here: the system names
  // backends, never concrete types.
  return hades::runtime::make(o);
}

system::system(std::size_t node_count, config cfg) : cfg_(std::move(cfg)) {
  validate(node_count > 0, "system: need at least one node");
  rt_ = make_backend(cfg_, node_count);
  // Shard-confined sinks: one partition per shard, routed by the executing
  // shard (single-engine backends have exactly one).
  trace_.bind(*rt_);
  trace_.enable(cfg_.tracing);
  monitor_.bind(*rt_);
  net_ = std::make_unique<sim::network>(*rt_, cfg_.net, cfg_.seed);
  net_->reserve_nodes(node_count);

  kernel_params kp;
  kp.context_switch = cfg_.costs.context_switch;

  for (std::size_t n = 0; n < node_count; ++n) {
    auto ctx = std::make_unique<node_ctx>();
    ctx->cpu = std::make_unique<processor>(*rt_, static_cast<node_id>(n), kp,
                                           &trace_);
    const double drift =
        n < cfg_.clock_drift.size() ? cfg_.clock_drift[n] : 0.0;
    ctx->clock = std::make_unique<sim::hardware_clock>(*rt_, drift);
    ctx->net = std::make_unique<net_task>(*rt_, *ctx->cpu, *net_,
                                          static_cast<node_id>(n), cfg_.costs);
    ctx->disp = std::make_unique<dispatcher>(*this, *rt_,
                                             static_cast<node_id>(n),
                                             *ctx->cpu, *ctx->net, monitor_,
                                             cfg_.costs, &trace_);
    nodes_.push_back(std::move(ctx));
    arm_clock_interrupts(static_cast<node_id>(n));
  }
  node_conditions_.resize(node_count);
  // Deadlock-scan replies (variable-length stalled-EU lists) ride the
  // system channel; only the scan home consumes them, but every node gets
  // the handler so the scan home is not hard-wired into the wire format.
  for (std::size_t n = 0; n < node_count; ++n)
    nodes_[n]->net->on_channel(system_channel, [this](const sim::message& m) {
      const auto* r = m.payload.get<dl_reply>();
      require(r != nullptr, "system: malformed system-channel message");
      auto it = dl_pending_.find(r->epoch);
      if (it == dl_pending_.end()) return;  // epoch already analyzed
      for (const auto& w : r->waits) it->second.push_back({r->from, w});
    });
}

system::~system() = default;

void system::arm_clock_interrupts(node_id n) {
  if (!cfg_.kernel_background) return;
  if (cfg_.costs.w_clk.is_zero() || cfg_.costs.p_clk.is_infinite()) return;
  schedule_clock_tick(n, rt_->now() + cfg_.costs.p_clk);
}

void system::schedule_clock_tick(node_id n, time_point at) {
  // A node-anchored chain rather than one shard-0 periodic: every interrupt
  // executes on the shard owning the node (drift-free — each link is dated
  // off the previous one, not off now()), and crash_node can cancel the
  // pending link because the chain never leaves the node's shard.
  nodes_[n]->clk_timer = rt_->at_node(n, at, [this, n, at] {
    cpu(n).post_interrupt("clk@" + std::to_string(n), cfg_.costs.w_clk,
                          nullptr);
    schedule_clock_tick(n, at + cfg_.costs.p_clk);
  });
}

// ----------------------------------------------------------- registration --

task_id system::register_task(task_graph g) {
  for (node_id p : g.processors())
    validate(p < nodes_.size(),
             "task '" + g.name() + "' references unknown node " +
                 std::to_string(p));
  // Resources are local to one processor (paper 3.1.1): a resource id may
  // only ever be claimed from a single node.
  for (eu_index i = 0; i < g.eu_count(); ++i) {
    const auto* c = g.as_code(i);
    if (c == nullptr) continue;
    for (const auto& claim : c->resources) {
      auto [it, inserted] = resource_home_.emplace(claim.res, c->processor);
      validate(inserted || it->second == c->processor,
               "resource " + std::to_string(claim.res) +
                   " claimed from two different nodes (resources are local)");
    }
  }
  for (eu_index i = 0; i < g.eu_count(); ++i)
    if (const auto* inv = g.as_inv(i))
      validate(graphs_.contains(inv->target),
               "task '" + g.name() + "' invokes unregistered task id " +
                   std::to_string(inv->target));

  // Shard-spanning task graphs are legal under any worker count: shard
  // creation/abortion and invocation activation across nodes ride wire
  // control tokens (create_shard / abort_shard / activate_request), so the
  // home shard's instance machinery never calls into a concurrently-running
  // dispatcher.
  const task_id id = next_task_++;
  g.id_ = id;
  auto shared = std::make_shared<const task_graph>(std::move(g));
  graphs_.emplace(id, shared);
  // Pre-create every per-task entry: from here on the outer maps are
  // structurally immutable and each value is owned by the home shard.
  next_instance_[id] = 0;
  last_activation_[id] = time_point::zero();
  ever_activated_[id] = false;
  instances_[id];
  task_states_[id];
  task_stats_[id];
  if (shared->law().kind == arrival_kind::periodic) arm_periodic(id);
  return id;
}

std::vector<task_id> system::tasks() const {
  std::vector<task_id> out;
  out.reserve(graphs_.size());
  for (const auto& [id, g] : graphs_) out.push_back(id);
  return out;
}

void system::attach_policy_everywhere(std::shared_ptr<policy> p) {
  for (std::size_t n = 0; n < nodes_.size(); ++n)
    disp(static_cast<node_id>(n)).attach_policy(p);
}

// -------------------------------------------------------------- activation --

void system::arm_periodic(task_id t) {
  const auto& g = *graphs_.at(t);
  const time_point first =
      std::max(time_point::zero() + g.law().offset, rt_->now());
  // A drift-free chain anchored at the home node (not one shard-0
  // periodic): every activation then executes on the shard owning the
  // task's bookkeeping — the confinement rule worker-threaded runs need.
  rt_->periodic_at_node(g.home_node(), first, g.law().period, [this, t] {
    activation_origin origin;
    origin.k = activation_origin::kind::timer;
    activate_internal(t, origin);
  });
}

bool system::activate(task_id t) {
  activation_origin origin;
  origin.k = activation_origin::kind::external;
  return activate_internal(t, origin).has_value();
}

void system::activate_at(task_id t, time_point at) {
  // Anchored at the home node: the activation executes on the shard owning
  // the task's bookkeeping.
  rt_->at_node(graphs_.at(t)->home_node(), at, [this, t] { activate(t); });
}

std::optional<instance_number> system::activate_internal(
    task_id t, const activation_origin& origin) {
  auto git = graphs_.find(t);
  require(git != graphs_.end(), "activate: unknown task");
  const task_graph& g = *git->second;
  const node_id home = g.home_node();
  if (disp(home).halted()) return std::nullopt;

  auto& st = task_stats_[t];
  const time_point now = rt_->now();

  // Arrival-law supervision (paper 3.2.1 event ii).
  if (ever_activated_[t]) {
    const duration gap = now - last_activation_[t];
    const bool violated =
        (g.law().kind == arrival_kind::sporadic && gap < g.law().period) ||
        (g.law().kind == arrival_kind::periodic && gap < g.law().period);
    if (violated) {
      monitor_event ev;
      ev.kind = monitor_event_kind::arrival_law_violation;
      ev.at = now;
      ev.node = home;
      ev.task = t;
      ev.subject = g.name();
      ev.detail = "gap " + gap.to_string() + " < " + g.law().period.to_string();
      monitor_.record(ev);
      if (cfg_.reject_arrival_violations) {
        monitor_event rej = ev;
        rej.kind = monitor_event_kind::instance_rejected;
        rej.detail = "arrival-law violation";
        monitor_.record(rej);
        ++st.rejections;
        return std::nullopt;
      }
    }
  }
  ever_activated_[t] = true;
  last_activation_[t] = now;

  // Admission hook (traffic edge): the home dispatcher may veto the
  // activation before any instance state exists — the rejected request
  // costs one hook call and one monitor event, nothing else.
  if (const auto& admit = disp(home).admission_hook();
      admit && !admit(t, now)) {
    monitor_event rej;
    rej.kind = monitor_event_kind::instance_rejected;
    rej.at = now;
    rej.node = home;
    rej.task = t;
    rej.subject = g.name();
    rej.detail = "admission control";
    monitor_.record(rej);
    ++st.rejections;
    return std::nullopt;
  }

  const instance_number k = next_instance_[t]++;
  instance_record rec;
  rec.activation = now;
  auto procs = g.processors();
  if (procs.empty()) procs.push_back(home);
  rec.pending_shards.insert(procs.begin(), procs.end());
  if (origin.waiter_node.has_value()) rec.sync_waiter = origin;
  // Completing exactly at the deadline is timely: the check runs one tick
  // after a+D so that same-instant completion events are processed first.
  // Anchored at the home node so the timer lands on the home shard even
  // when armed from outside event execution.
  if (!g.deadline().is_infinite())
    rec.deadline_timer =
        rt_->at_node(home, now + g.deadline() + duration::nanoseconds(1),
                     [this, t, k] { on_deadline(t, k); });
  instances_.at(t).emplace(k, std::move(rec));
  ++st.activations;
  trace_.record(now, home, sim::trace_kind::instance_activated,
                g.name() + "#" + std::to_string(k));

  // Charge c_inv_start in kernel context on the home node, then create the
  // shards on every involved node (they share the activation date `now`):
  // the home's own shard directly, remote nodes by create_shard token —
  // the only cross-node effect is a message, so worker threads never call
  // into a foreign dispatcher.
  const auto start_shards = [this, t, k, now, home,
                             procs = std::move(procs)] {
    cpu(home).post_interrupt(
        "inv_start:" + graphs_.at(t)->name(), cfg_.costs.c_inv_start,
        [this, t, k, now, home, procs] {
          auto it = graphs_.find(t);
          if (it == graphs_.end()) return;
          if (!instance_live(t, k)) return;  // aborted before start
          for (node_id n : procs) {
            if (n == home) {
              if (!disp(n).halted()) disp(n).create_shard(*it->second, k, now);
            } else {
              control_token tok;
              tok.k = control_token::kind::create_shard;
              tok.task = t;
              tok.instance = k;
              tok.at = now;
              net(home).send(n, control_channel, tok, 48);
            }
          }
        });
  };
  if (rt_->in_event_context()) {
    // Already on the home shard (periodic chains, invocation handlers and
    // token handlers all execute there).
    start_shards();
  } else {
    // External activation between events: route onto the home shard first.
    rt_->at_node(home, now, start_shards);
  }
  return k;
}

// -------------------------------------------------------- instance tracking --

void system::on_deadline(task_id t, instance_number k) {
  auto& per_task = instances_.at(t);
  auto it = per_task.find(k);
  if (it == per_task.end()) return;  // completed in time
  it->second.deadline_timer = sim::invalid_event;
  const task_graph& g = *graphs_.at(t);
  monitor_event ev;
  ev.kind = monitor_event_kind::deadline_miss;
  ev.at = rt_->now();
  ev.node = g.home_node();
  ev.task = t;
  ev.instance = k;
  ev.subject = g.name();
  monitor_.record(ev);
  if (g.abort_on_deadline_miss())
    abort_instance(t, k, "deadline miss", /*as_rejection=*/false);
}

void system::on_shard_complete(task_id t, instance_number k, node_id from) {
  auto& per_task = instances_.at(t);
  auto it = per_task.find(k);
  if (it == per_task.end()) return;
  it->second.pending_shards.erase(from);
  if (it->second.pending_shards.empty()) finish_instance(t, k);
}

void system::finish_instance(task_id t, instance_number k) {
  auto& per_task = instances_.at(t);
  auto it = per_task.find(k);
  require(it != per_task.end(), "finish_instance: unknown instance");
  instance_record rec = std::move(it->second);
  per_task.erase(it);
  if (rec.deadline_timer != sim::invalid_event)
    rt_->cancel(rec.deadline_timer);

  const task_graph& g = *graphs_.at(t);
  auto& st = task_stats_[t];
  ++st.completions;
  st.response_times.add(rt_->now() - rec.activation);
  trace_.record(rt_->now(), g.home_node(), sim::trace_kind::instance_completed,
                g.name() + "#" + std::to_string(k));
  if (const auto& retire = disp(g.home_node()).retire_hook())
    retire(t, k, rec.activation, rt_->now(), /*completed=*/true);

  // c_inv_end in kernel context on the home node; a synchronous invoker (if
  // any) resumes after the handler.
  const node_id home = g.home_node();
  cpu(home).post_interrupt(
      "inv_end:" + g.name(), cfg_.costs.c_inv_end,
      [this, home, waiter = rec.sync_waiter] {
        if (waiter.has_value()) deliver_sync_return(home, *waiter);
      });
}

void system::deliver_sync_return(node_id from,
                                 const activation_origin& origin) {
  const node_id wn = *origin.waiter_node;
  if (wn == from) {
    if (disp(wn).halted()) return;
    disp(wn).on_sync_return(origin.waiter_task, origin.waiter_instance,
                            origin.waiter_inv);
    return;
  }
  // Remote waiter: send unconditionally — the network drops frames to down
  // nodes and the receiver's token handler checks halted_, so no
  // cross-shard read of the waiter's state is needed here.
  control_token tok;
  tok.k = control_token::kind::sync_return;
  tok.task = origin.waiter_task;
  tok.instance = origin.waiter_instance;
  tok.to = origin.waiter_inv;
  net(from).send(wn, control_channel, tok, 32);
}

void system::abort_instance(task_id t, instance_number k,
                            const std::string& reason, bool as_rejection) {
  auto tit = instances_.find(t);
  if (tit == instances_.end()) return;
  auto it = tit->second.find(k);
  if (it == tit->second.end()) return;
  if (it->second.deadline_timer != sim::invalid_event)
    rt_->cancel(it->second.deadline_timer);
  const time_point activation = it->second.activation;
  tit->second.erase(it);

  const task_graph& g = *graphs_.at(t);
  const node_id home = g.home_node();
  auto procs = g.processors();
  if (procs.empty()) procs.push_back(home);
  for (node_id n : procs) {
    if (n == home) {
      if (!disp(n).halted()) disp(n).abort_shard(t, k, reason);
    } else {
      // Remote shards die by token, mirroring how they were created.
      control_token tok;
      tok.k = control_token::kind::abort_shard;
      tok.task = t;
      tok.instance = k;
      std::snprintf(tok.reason, sizeof tok.reason, "%s", reason.c_str());
      net(home).send(n, control_channel, tok, 64);
    }
  }

  if (as_rejection) {
    auto& st = task_stats_[t];
    ++st.rejections;
    monitor_event ev;
    ev.kind = monitor_event_kind::instance_rejected;
    ev.at = rt_->now();
    ev.node = g.home_node();
    ev.task = t;
    ev.instance = k;
    ev.subject = g.name();
    ev.detail = reason;
    monitor_.record(ev);
  }

  if (!disp(home).halted())
    if (const auto& retire = disp(home).retire_hook())
      retire(t, k, activation, rt_->now(), /*completed=*/false);
}

void system::on_activate_request(node_id home, const control_token& tok) {
  activation_origin origin;
  origin.k = activation_origin::kind::invocation;
  if (tok.flag) {
    origin.waiter_node = tok.waiter_node;
    origin.waiter_task = tok.waiter_task;
    origin.waiter_instance = tok.waiter_instance;
    origin.waiter_inv = tok.waiter_inv;
  }
  const auto child = activate_internal(tok.task, origin);
  if (!tok.flag) return;
  // Answer a synchronous invoker: sync_started carries the child instance
  // (for the deadlock scan's inv-wait edge); a rejection unblocks the
  // invoker immediately with sync_return, matching the local path where a
  // failed activate_internal finishes the Inv_EU at once.
  control_token back;
  back.task = tok.waiter_task;
  back.instance = tok.waiter_instance;
  back.to = tok.waiter_inv;
  if (child.has_value()) {
    back.k = control_token::kind::sync_started;
    back.aux = *child;
  } else {
    back.k = control_token::kind::sync_return;
  }
  net(home).send(tok.waiter_node, control_channel, back, 32);
}

// ------------------------------------------------------ condition variables --

namespace {
// The condition authority: a fixed home keeps single-setter timing
// identical across node counts and makes ownership backend-independent.
constexpr node_id cond_home = 0;
}  // namespace

void system::apply_condition_home(condition_id c, bool v) {
  // Runs on the authority's shard. Dedupe before broadcasting: a no-op
  // set/clear must not generate wire traffic (or wakeups).
  bool& cur = node_conditions_[cond_home][c];
  if (cur == v) return;
  cur = v;
  if (v && !disp(cond_home).halted()) disp(cond_home).on_condition_set(c);
  if (nodes_.size() == 1) return;
  control_token tok;
  tok.k = control_token::kind::cond_update;
  tok.cond = c;
  tok.flag = v;
  net(cond_home).send_all(control_channel, tok, 32);
}

void system::apply_condition_everywhere(condition_id c, bool v) {
  // Outside event execution every shard is quiescent: update all views at
  // once (the historical serial semantics of the public setters).
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    bool& cur = node_conditions_[n][c];
    if (cur == v) continue;
    cur = v;
    if (v && !nodes_[n]->disp->halted())
      nodes_[n]->disp->on_condition_set(c);
  }
}

void system::set_condition(condition_id c) {
  if (rt_->in_event_context())
    apply_condition_home(c, true);
  else
    apply_condition_everywhere(c, true);
}

void system::clear_condition(condition_id c) {
  if (rt_->in_event_context())
    apply_condition_home(c, false);
  else
    apply_condition_everywhere(c, false);
}

void system::set_condition_from(node_id origin, condition_id c) {
  if (!rt_->in_event_context()) {
    apply_condition_everywhere(c, true);
    return;
  }
  if (origin == cond_home) {
    apply_condition_home(c, true);
    return;
  }
  control_token tok;
  tok.k = control_token::kind::cond_set;
  tok.cond = c;
  net(origin).send(cond_home, control_channel, tok, 32);
}

void system::clear_condition_from(node_id origin, condition_id c) {
  if (!rt_->in_event_context()) {
    apply_condition_everywhere(c, false);
    return;
  }
  if (origin == cond_home) {
    apply_condition_home(c, false);
    return;
  }
  control_token tok;
  tok.k = control_token::kind::cond_clear;
  tok.cond = c;
  net(origin).send(cond_home, control_channel, tok, 32);
}

void system::on_condition_token(node_id n, const control_token& tok) {
  switch (tok.k) {
    case control_token::kind::cond_set:
      apply_condition_home(tok.cond, true);
      return;
    case control_token::kind::cond_clear:
      apply_condition_home(tok.cond, false);
      return;
    case control_token::kind::cond_update: {
      node_conditions_[n][tok.cond] = tok.flag;
      if (tok.flag) disp(n).on_condition_set(tok.cond);
      return;
    }
    default:
      return;
  }
}

bool system::condition(condition_id c) const {
  return condition_on(cond_home, c);
}

bool system::condition_on(node_id n, condition_id c) const {
  const auto& view = node_conditions_.at(n);
  auto it = view.find(c);
  return it != view.end() && it->second;
}

// ------------------------------------------------------------------- faults --

void system::crash_node(node_id n) {
  if (crashed(n)) return;
  // A dead node's oscillator interrupts no one.
  rt_->cancel(nodes_[n]->clk_timer);
  nodes_[n]->clk_timer = sim::invalid_event;
  // Symmetric wire silence: outbound frames from stale timers die at submit
  // time, inbound frames at delivery time (regression: sim/network_test
  // NodeDownSilencesOutbound).
  net_->set_node_down(n, true);
  monitor_event ev;
  ev.kind = monitor_event_kind::node_crash;
  ev.at = rt_->now();
  ev.node = n;
  ev.subject = "node" + std::to_string(n);
  monitor_.record(ev);
  disp(n).halt();
}

void system::recover_node(node_id n) {
  if (!crashed(n)) return;
  disp(n).restart();
  net_->set_node_down(n, false);
  arm_clock_interrupts(n);
  monitor_event ev;
  ev.kind = monitor_event_kind::node_recover;
  ev.at = rt_->now();
  ev.node = n;
  ev.subject = "node" + std::to_string(n);
  monitor_.record(ev);
}

// -------------------------------------------------------- deadlock detection --

std::size_t system::detect_deadlocks() {
  std::vector<stalled_eu> all;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (crashed(static_cast<node_id>(n))) continue;
    for (auto& w : disp(static_cast<node_id>(n)).waiting_eus())
      all.push_back({static_cast<node_id>(n), std::move(w)});
  }
  return analyze_stalled(all);
}

std::size_t system::analyze_stalled(std::vector<stalled_eu>& all) {
  // Index stalled EUs by (task, instance, eu).
  auto key_of = [](task_id t, instance_number k, eu_index e) {
    std::ostringstream os;
    os << t << '/' << k << '/' << e;
    return os.str();
  };
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < all.size(); ++i)
    index[key_of(all[i].w.task, all[i].w.instance, all[i].w.eu)] = i;

  // Condition setters: map condition -> stalled EUs that would set it.
  std::map<condition_id, std::vector<std::size_t>> stalled_setters;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto* c = graphs_.at(all[i].w.task)->as_code(all[i].w.eu);
    if (c == nullptr) continue;
    for (condition_id cd : c->sets) stalled_setters[cd].push_back(i);
  }

  std::vector<std::vector<std::size_t>> adj(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto& w = all[i].w;
    for (eu_index p : w.waiting_preds) {
      auto it = index.find(key_of(w.task, w.instance, p));
      if (it != index.end()) adj[i].push_back(it->second);
    }
    for (condition_id c : w.waiting_conds) {
      auto it = stalled_setters.find(c);
      if (it != stalled_setters.end())
        for (std::size_t s : it->second)
          if (s != i) adj[i].push_back(s);
    }
    if (w.sync_target.has_value()) {
      for (std::size_t j = 0; j < all.size(); ++j)
        if (all[j].w.task == *w.sync_target &&
            all[j].w.instance == w.sync_target_instance)
          adj[i].push_back(j);
    }
  }

  // Iterative three-colour DFS to find nodes on cycles.
  enum { white, grey, black };
  std::vector<int> colour(all.size(), white);
  std::vector<bool> on_cycle(all.size(), false);
  std::vector<std::size_t> stack;
  for (std::size_t root = 0; root < all.size(); ++root) {
    if (colour[root] != white) continue;
    std::vector<std::pair<std::size_t, std::size_t>> dfs{{root, 0}};
    colour[root] = grey;
    stack.push_back(root);
    while (!dfs.empty()) {
      auto& [v, ei] = dfs.back();
      if (ei < adj[v].size()) {
        const std::size_t u = adj[v][ei++];
        if (colour[u] == white) {
          colour[u] = grey;
          stack.push_back(u);
          dfs.emplace_back(u, 0);
        } else if (colour[u] == grey) {
          // Back edge: everything from u to the stack top is on a cycle.
          for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            on_cycle[*it] = true;
            if (*it == u) break;
          }
        }
      } else {
        colour[v] = black;
        stack.pop_back();
        dfs.pop_back();
      }
    }
  }

  std::size_t involved = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (!on_cycle[i]) continue;
    ++involved;
    const auto& w = all[i].w;
    monitor_event ev;
    ev.kind = monitor_event_kind::deadlock_suspected;
    ev.at = rt_->now();
    ev.node = all[i].node;
    ev.task = w.task;
    ev.instance = w.instance;
    ev.subject = graphs_.at(w.task)->eu_name(w.eu);
    ev.detail = "wait-for cycle";
    monitor_.record(ev);
  }
  return involved;
}

void system::arm_deadlock_scan(duration period) {
  // Anchored at the scan home so every tick — and the analysis it leads
  // to — executes on one shard.
  const node_id scan_home = 0;
  rt_->periodic_at_node(scan_home, rt_->now() + period, period,
                        [this] { deadlock_scan_tick(); });
}

void system::deadlock_scan_tick() {
  const node_id scan_home = 0;
  if (crashed(scan_home)) return;  // resumes on the next tick after recovery
  if (nodes_.size() == 1) {
    // No wire needed: the home's own waiters are the whole graph.
    detect_deadlocks();
    return;
  }
  const std::uint64_t epoch = ++dl_epoch_;
  auto& pending = dl_pending_[epoch];
  for (auto& w : disp(scan_home).waiting_eus())
    pending.push_back({scan_home, std::move(w)});
  control_token tok;
  tok.k = control_token::kind::dl_probe;
  tok.aux = epoch;
  net(scan_home).send_all(control_channel, tok, 32);
  // Probe out plus reply back bounds the collect window: two worst-case
  // hops (with the modeled per-byte cost of the 64-byte reply) plus a
  // margin for net-task processing — a backend-independent date, so the
  // analysis time is identical across shard and worker counts.
  const duration hop =
      cfg_.net.delta_max + cfg_.net.per_byte * 64 + cfg_.costs.w_net * 4;
  rt_->at_node(scan_home, rt_->now() + hop + hop + duration::microseconds(10),
               [this, epoch] { finish_deadlock_scan(epoch); });
}

void system::on_deadlock_probe(node_id n, std::uint64_t epoch,
                               node_id reply_to) {
  dl_reply r;
  r.epoch = epoch;
  r.from = n;
  r.waits = disp(n).waiting_eus();
  net(n).send(reply_to, system_channel, std::move(r), 64);
}

void system::finish_deadlock_scan(std::uint64_t epoch) {
  auto it = dl_pending_.find(epoch);
  if (it == dl_pending_.end()) return;
  std::vector<stalled_eu> all = std::move(it->second);
  dl_pending_.erase(it);
  // Canonical order: cross-link arrival order is a network property, so
  // sort by content before analyzing — the recorded events (and the DFS)
  // then depend only on *what* is stalled, not on reply interleaving.
  std::sort(all.begin(), all.end(),
            [](const stalled_eu& a, const stalled_eu& b) {
              if (a.node != b.node) return a.node < b.node;
              if (a.w.task != b.w.task) return a.w.task < b.w.task;
              if (a.w.instance != b.w.instance)
                return a.w.instance < b.w.instance;
              return a.w.eu < b.w.eu;
            });
  analyze_stalled(all);
}

}  // namespace hades::core
