#include "core/net_task.hpp"

namespace hades::core {

net_task::net_task(runtime& rt, processor& cpu, sim::network& net,
                   node_id node, const cost_model& costs, priority prio)
    : rt_(&rt), cpu_(&cpu), net_(&net), node_(node), costs_(costs) {
  thread_ = cpu_->create("net_mngt@" + std::to_string(node), prio, prio,
                         duration::zero(), [this] { transmit_head(); });
  net_->attach(node_, [this](const sim::message& m) { on_frame(m); });
}

net_task::~net_task() {
  if (net_->attached(node_)) net_->detach(node_);
  if (cpu_->exists(thread_)) cpu_->destroy(thread_);
}

void net_task::send(node_id dst, int channel, sim::wire_payload payload,
                    std::size_t size_bytes) {
  if (halted_) return;
  queue_.push_back({dst, channel, std::move(payload), size_bytes});
  pump();
}

void net_task::send_all(int channel, const sim::wire_payload& payload,
                        std::size_t size_bytes) {
  for (node_id n : net_->attached_nodes()) {
    if (n == node_) continue;
    send(n, channel, payload, size_bytes);
  }
}

void net_task::on_channel(int channel, channel_handler h) {
  require(channel >= 0, "net_task: channel ids are non-negative");
  if (channels_.size() <= static_cast<std::size_t>(channel))
    channels_.resize(static_cast<std::size_t>(channel) + 1);
  channels_[static_cast<std::size_t>(channel)] = std::move(h);
}

void net_task::pump() {
  if (halted_ || thread_busy_ || queue_.empty()) return;
  thread_busy_ = true;
  cpu_->add_work(thread_, costs_.net_task_per_msg);
  cpu_->make_runnable(thread_);
}

void net_task::transmit_head() {
  thread_busy_ = false;
  if (halted_ || queue_.empty()) return;
  outbound out = std::move(queue_.front());
  queue_.pop_front();
  ++sent_;
  net_->unicast(node_, out.dst, out.channel, std::move(out.payload),
                out.size_bytes);
  pump();
}

void net_task::on_frame(const sim::message& m) {
  if (halted_) return;
  // The ATM-card interrupt handler (w_net at interrupt priority) runs
  // first; the frame is demultiplexed when the handler completes.
  cpu_->post_interrupt("nic@" + std::to_string(node_), costs_.w_net,
                       [this, m] {
                         if (halted_) return;
                         ++received_;
                         const auto ch = static_cast<std::size_t>(m.channel);
                         if (ch < channels_.size() && channels_[ch])
                           channels_[ch](m);
                       });
}

void net_task::halt() {
  halted_ = true;
  queue_.clear();
  thread_busy_ = false;
  // Stay attached to the LAN: the wire-level node-down state
  // (network::set_node_down, driven by system::crash_node) is what silences
  // the node in both directions, and it is time-indexed so in-flight frames
  // are judged against the node state at their own delivery date. The
  // halted_ flag is the belt to that suspender for inbound frames.
  if (cpu_->exists(thread_)) cpu_->suspend(thread_);
}

void net_task::resume() {
  if (!halted_) return;
  halted_ = false;
  thread_busy_ = false;
  if (!net_->attached(node_))
    net_->attach(node_, [this](const sim::message& m) { on_frame(m); });
}

}  // namespace hades::core
