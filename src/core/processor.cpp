#include "core/processor.hpp"

#include <algorithm>

namespace hades::core {

namespace {
constexpr duration zero = duration::zero();
}

processor::thread& processor::get(kthread_id t) {
  auto it = threads_.find(t);
  require(it != threads_.end(),
          "processor: unknown thread #" + std::to_string(t.value));
  return it->second;
}

const processor::thread& processor::get(kthread_id t) const {
  auto it = threads_.find(t);
  require(it != threads_.end(),
          "processor: unknown thread #" + std::to_string(t.value));
  return it->second;
}

void processor::trace(sim::trace_kind k, const std::string& subject,
                      std::string detail) {
  if (trace_ != nullptr)
    trace_->record(rt_->now(), node_, k, subject, std::move(detail));
}

kthread_id processor::create(std::string name, priority prio, priority pt,
                             duration work, completion_fn on_done) {
  require(!work.is_infinite() && !work.is_negative(),
          "processor::create: work must be finite and non-negative");
  const kthread_id id{next_thread_++};
  thread th;
  th.name = std::move(name);
  th.prio = prio;
  th.pt = std::max(pt, prio);
  th.remaining = work;
  th.on_done = std::move(on_done);
  trace(sim::trace_kind::thread_created, th.name);
  threads_.emplace(id, std::move(th));
  return id;
}

void processor::destroy(kthread_id t) {
  auto it = threads_.find(t);
  require(it != threads_.end(), "processor::destroy: unknown thread");
  if (it->second.st == state::queued || it->second.st == state::running)
    suspend(t);
  threads_.erase(t);
}

void processor::make_runnable(kthread_id t) {
  thread& th = get(t);
  require(th.st == state::suspended,
          "processor::make_runnable: thread '" + th.name +
              "' is not suspended");
  th.st = state::queued;
  th.queue_seq = next_queue_seq_++;
  queue_.emplace(key_of(th), t);
  trace(sim::trace_kind::thread_runnable, th.name);
  reschedule();
}

void processor::pause_running() {
  if (running_ == invalid_kthread) return;
  thread& th = get(running_);
  if (th.completion == sim::invalid_event) return;  // already paused
  rt_->cancel(th.completion);
  th.completion = sim::invalid_event;
  const duration burst = rt_->now() - th.burst_start;
  // The first part of a burst is the context-switch overhead; only time past
  // it consumes the thread's own work.
  const duration cs = std::min(burst, th.burst_cs);
  const duration work = burst - cs;
  th.remaining = std::max(zero, th.remaining - work);
  th.total_executed += work;
  stats_.busy += burst;
}

void processor::requeue(kthread_id t) {
  pause_running();
  thread& th = get(t);
  th.st = state::queued;
  th.boosted = true;  // started jobs compete at their preemption threshold
  // Keep the original queue_seq: a preempted thread resumes before
  // same-priority threads that arrived later.
  queue_.emplace(key_of(th), t);
  running_ = invalid_kthread;
  ++stats_.preemptions;
  trace(sim::trace_kind::thread_preempted, th.name);
}

void processor::start_burst(kthread_id t) {
  thread& th = get(t);
  if (th.st == state::queued) queue_.erase(key_of(th));
  th.st = state::running;
  running_ = t;
  th.burst_cs = (last_on_cpu_ == t) ? zero : params_.context_switch;
  if (th.burst_cs > zero) ++stats_.context_switches;
  last_on_cpu_ = t;
  th.burst_start = rt_->now();
  trace(sim::trace_kind::thread_running, th.name);
  th.completion = rt_->at(rt_->now() + th.burst_cs + th.remaining,
                           [this, t] { complete(t); });
}

void processor::complete(kthread_id t) {
  thread& th = get(t);
  th.completion = sim::invalid_event;
  const duration burst = rt_->now() - th.burst_start;
  stats_.busy += burst;
  th.total_executed += th.remaining;
  th.remaining = zero;
  th.st = state::done;
  th.boosted = false;
  running_ = invalid_kthread;
  trace(sim::trace_kind::thread_done, th.name);
  // The callback may destroy this thread or create/release others; copy it
  // out before anything else happens.
  const completion_fn on_done = th.on_done;
  if (on_done) on_done();
  reschedule();
}

void processor::reschedule() {
  if (irq_active()) return;

  const bool have_candidate = !queue_.empty();
  const kthread_id candidate =
      have_candidate ? queue_.begin()->second : invalid_kthread;

  if (running_ != invalid_kthread) {
    thread& run = get(running_);
    if (have_candidate && effective_prio(get(candidate)) > run.pt) {
      requeue(running_);
      start_burst(candidate);
      return;
    }
    if (run.completion == sim::invalid_event) {
      // Paused by an interrupt burst that has now drained: resume.
      run.burst_cs = zero;  // returning from interrupt, no full switch
      run.burst_start = rt_->now();
      trace(sim::trace_kind::thread_running, run.name);
      run.completion =
          rt_->at(rt_->now() + run.remaining, [this, t = running_] { complete(t); });
    }
    return;
  }

  if (have_candidate) start_burst(candidate);
}

void processor::suspend(kthread_id t) {
  thread& th = get(t);
  switch (th.st) {
    case state::running:
      pause_running();
      running_ = invalid_kthread;
      th.st = state::suspended;
      trace(sim::trace_kind::thread_blocked, th.name);
      reschedule();
      return;
    case state::queued:
      queue_.erase(key_of(th));
      th.st = state::suspended;
      trace(sim::trace_kind::thread_blocked, th.name);
      return;
    case state::suspended:
    case state::done:
      return;
  }
}

void processor::set_priority(kthread_id t, priority prio) {
  thread& th = get(t);
  if (th.prio == prio) return;
  const bool queued = th.st == state::queued;
  if (queued) queue_.erase(key_of(th));
  th.prio = prio;
  th.pt = std::max(th.pt, prio);
  if (queued) queue_.emplace(key_of(th), t);
  reschedule();
}

void processor::set_threshold(kthread_id t, priority pt) {
  thread& th = get(t);
  // The threshold participates in the queue key of boosted (preempted)
  // threads: reposition to keep the key consistent.
  const bool queued = th.st == state::queued;
  if (queued) queue_.erase(key_of(th));
  th.pt = std::max(pt, th.prio);
  if (queued) queue_.emplace(key_of(th), t);
  reschedule();
}

void processor::add_work(kthread_id t, duration extra) {
  require(!extra.is_negative(), "processor::add_work: negative work");
  thread& th = get(t);
  if (th.st == state::running && th.completion != sim::invalid_event) {
    // Re-baseline the burst, then extend.
    pause_running();
    th.remaining += extra;
    th.st = state::running;  // pause_running does not change state
    th.burst_cs = zero;
    th.burst_start = rt_->now();
    th.completion =
        rt_->at(rt_->now() + th.remaining, [this, t] { complete(t); });
    return;
  }
  th.remaining += extra;
  if (th.st == state::done) th.st = state::suspended;  // revivable
}

void processor::post_interrupt(std::string name, duration wcet,
                               std::function<void()> body) {
  require(!wcet.is_negative() && !wcet.is_infinite(),
          "processor::post_interrupt: bad handler WCET");
  if (!irq_active()) {
    irq_busy_until_ = rt_->now();
    pause_running();  // the incumbent resumes after the burst drains
  }
  irq_busy_until_ += wcet;
  ++stats_.interrupts;
  stats_.interrupt_time += wcet;
  stats_.busy += wcet;
  trace(sim::trace_kind::custom, name, "interrupt");

  rt_->at(irq_busy_until_, [this, body = std::move(body)] {
    if (body) body();
    if (!irq_active()) reschedule();
  });
}

bool processor::is_runnable(kthread_id t) const {
  auto it = threads_.find(t);
  return it != threads_.end() && it->second.st == state::queued;
}

bool processor::has_started(kthread_id t) const {
  const thread& th = get(t);
  if (th.total_executed > zero || th.st == state::done) return true;
  if (th.st != state::running) return false;
  // Running: started once past the context-switch part of the burst.
  return rt_->now() - th.burst_start > th.burst_cs;
}

duration processor::executed(kthread_id t) const {
  const thread& th = get(t);
  duration total = th.total_executed;
  if (th.st == state::running && th.completion != sim::invalid_event) {
    const duration burst = rt_->now() - th.burst_start;
    total += std::max(zero, burst - th.burst_cs);
  }
  return total;
}

duration processor::remaining(kthread_id t) const {
  const thread& th = get(t);
  duration rem = th.remaining;
  if (th.st == state::running && th.completion != sim::invalid_event) {
    const duration burst = rt_->now() - th.burst_start;
    rem = std::max(zero, rem - std::max(zero, burst - th.burst_cs));
  }
  return rem;
}

priority processor::get_priority(kthread_id t) const { return get(t).prio; }

const std::string& processor::name(kthread_id t) const { return get(t).name; }

std::vector<kthread_id> processor::run_queue() const {
  std::vector<kthread_id> out;
  out.reserve(queue_.size());
  for (const auto& [k, id] : queue_) out.push_back(id);
  return out;
}

}  // namespace hades::core
