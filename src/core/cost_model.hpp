// The HADES cost model (paper section 4).
//
// Dispatcher activities recur with the frequency of the application tasks
// they serve, so their costs are folded into the tasks' execution costs
// (section 4.1): c_act_start / c_act_end around every action, c_local per
// local precedence constraint, c_rel per remote precedence handed to the
// communication-protocol task, c_inv_start / c_inv_end around every task
// invocation. Kernel background activities are independent of any task and
// are modelled as sporadic top-priority activities (section 4.2): the clock
// interrupt (w_clk every p_clk) and the network-card interrupt (w_net per
// message receipt, pseudo-period p_net).
//
// The same constants parameterize (a) the simulated dispatcher, which
// *charges* them during execution, and (b) the cost-integrated feasibility
// test of section 5.3, which *accounts* for them — making the
// test-versus-simulation experiments of EXPERIMENTS.md meaningful.
#pragma once

#include "util/time.hpp"

namespace hades::core {

struct cost_model {
  // -- dispatcher activities (section 4.1) --------------------------------
  duration c_local = duration::zero();      // local precedence: copy + switch
  duration c_rel = duration::zero();        // hand a remote precedence to net task
  duration c_act_start = duration::zero();  // begin an action
  duration c_act_end = duration::zero();    // end an action
  duration c_inv_start = duration::zero();  // begin a task invocation
  duration c_inv_end = duration::zero();    // end a task invocation

  // -- kernel background activities (section 4.2) -------------------------
  duration w_clk = duration::zero();        // clock-interrupt handler WCET
  duration p_clk = duration::infinity();    // clock-interrupt period
  duration w_net = duration::zero();        // network-card handler WCET
  duration p_net = duration::infinity();    // minimum inter-arrival of receipts

  // -- kernel mechanisms ----------------------------------------------------
  duration context_switch = duration::zero();

  // -- scheduler (section 5.3: x, the per-activation scheduling cost) ------
  duration scheduler_per_event = duration::zero();

  // -- network-management task (models the communication protocol) ---------
  duration net_task_per_msg = duration::zero();

  /// Zero-cost model: pure algorithmic behaviour (useful in unit tests).
  static cost_model zero() { return {}; }

  /// Constants in the order of magnitude the paper's platform exhibits
  /// (ChorusOS r3 on Pentium; microsecond-scale kernel activities).
  static cost_model chorus_like() {
    cost_model m;
    m.c_local = duration::microseconds(18);
    m.c_rel = duration::microseconds(25);
    m.c_act_start = duration::microseconds(12);
    m.c_act_end = duration::microseconds(10);
    m.c_inv_start = duration::microseconds(20);
    m.c_inv_end = duration::microseconds(15);
    m.w_clk = duration::microseconds(8);
    m.p_clk = duration::milliseconds(1);
    m.w_net = duration::microseconds(30);
    m.p_net = duration::microseconds(200);
    m.context_switch = duration::microseconds(6);
    m.scheduler_per_event = duration::microseconds(15);
    m.net_task_per_msg = duration::microseconds(40);
    return m;
  }
};

}  // namespace hades::core
