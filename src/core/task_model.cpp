#include "core/task_model.hpp"

#include <algorithm>
#include <set>

namespace hades::core {

std::string task_graph::eu_name(eu_index i) const {
  if (const auto* c = as_code(i)) return c->name;
  return std::get<inv_eu>(eus_.at(i)).name;
}

std::vector<node_id> task_graph::processors() const {
  std::set<node_id> set;
  for (const auto& eu : eus_)
    if (const auto* c = std::get_if<code_eu>(&eu)) set.insert(c->processor);
  return {set.begin(), set.end()};
}

bool task_graph::is_remote(const precedence& p) const {
  const auto* a = as_code(p.from);
  const auto* b = as_code(p.to);
  if (a == nullptr || b == nullptr) return false;  // invocation edges are local
  return a->processor != b->processor;
}

duration task_graph::total_wcet() const {
  duration sum = duration::zero();
  for (const auto& eu : eus_)
    if (const auto* c = std::get_if<code_eu>(&eu)) sum += c->wcet;
  return sum;
}

bool task_graph::uses_resources() const {
  for (const auto& eu : eus_)
    if (const auto* c = std::get_if<code_eu>(&eu); c && !c->resources.empty())
      return true;
  return false;
}

std::size_t task_graph::local_precedence_count() const {
  std::size_t n = 0;
  for (const auto& p : precs_)
    if (!is_remote(p)) ++n;
  return n;
}

eu_index task_builder::add_code_eu(code_eu eu) {
  validate(!eu.name.empty(), "Code_EU needs a name");
  validate(eu.wcet > duration::zero() && !eu.wcet.is_infinite(),
           "Code_EU '" + eu.name + "': WCET must be positive and finite " +
               "(actions must have a characterizable worst case, paper 3.1)");
  // Normalize: the preemption threshold is never below the priority.
  eu.attrs.preemption_threshold =
      std::max(eu.attrs.preemption_threshold, eu.attrs.prio);
  validate(eu.attrs.prio >= prio::min_app && eu.attrs.prio <= prio::max_app,
           "Code_EU '" + eu.name + "': priority outside application band");
  std::set<resource_id> seen;
  for (const auto& claim : eu.resources)
    validate(seen.insert(claim.res).second,
             "Code_EU '" + eu.name + "': duplicate resource claim");
  graph_.eus_.emplace_back(std::move(eu));
  return static_cast<eu_index>(graph_.eus_.size() - 1);
}

eu_index task_builder::add_code_eu(std::string name, node_id processor,
                                   duration wcet, timing_attrs attrs) {
  code_eu eu;
  eu.name = std::move(name);
  eu.processor = processor;
  eu.wcet = wcet;
  eu.attrs = attrs;
  return add_code_eu(std::move(eu));
}

eu_index task_builder::add_inv_eu(std::string name, task_id target,
                                  invocation_kind kind) {
  validate(!name.empty(), "Inv_EU needs a name");
  validate(target != invalid_task, "Inv_EU '" + name + "': invalid target");
  graph_.eus_.emplace_back(inv_eu{std::move(name), target, kind});
  return static_cast<eu_index>(graph_.eus_.size() - 1);
}

task_builder& task_builder::precede(eu_index from, eu_index to,
                                    std::size_t payload_bytes) {
  validate(from < graph_.eus_.size() && to < graph_.eus_.size(),
           "precedence references an unknown EU");
  validate(from != to, "precedence cannot be a self-loop");
  graph_.precs_.push_back({from, to, payload_bytes});
  return *this;
}

task_graph task_builder::build() {
  validate(!graph_.eus_.empty(), "task '" + graph_.name_ + "' has no EU");

  const auto n = graph_.eus_.size();
  graph_.preds_.assign(n, {});
  graph_.succs_.assign(n, {});
  for (const auto& p : graph_.precs_) {
    graph_.succs_[p.from].push_back(p.to);
    graph_.preds_[p.to].push_back(p.from);
  }

  // Kahn's algorithm: topological order + cycle detection. Stable: ready
  // units are taken in index order, so the order is deterministic.
  std::vector<std::size_t> indegree(n);
  for (std::size_t i = 0; i < n; ++i) indegree[i] = graph_.preds_[i].size();
  std::vector<eu_index> order;
  order.reserve(n);
  std::set<eu_index> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (indegree[i] == 0) ready.insert(static_cast<eu_index>(i));
  while (!ready.empty()) {
    const eu_index i = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(i);
    for (eu_index s : graph_.succs_[i])
      if (--indegree[s] == 0) ready.insert(s);
  }
  validate(order.size() == n,
           "task '" + graph_.name_ + "' has a precedence cycle (HEUGs are DAGs)");
  graph_.topo_ = std::move(order);

  // Home node: processor of the first Code_EU in topological order.
  graph_.home_ = 0;
  for (eu_index i : graph_.topo_)
    if (const auto* c = graph_.as_code(i)) {
      graph_.home_ = c->processor;
      break;
    }

  // Duplicate names would make traces ambiguous.
  std::set<std::string> names;
  for (std::size_t i = 0; i < n; ++i)
    validate(names.insert(graph_.eu_name(static_cast<eu_index>(i))).second,
             "task '" + graph_.name_ + "': duplicate EU name");

  return std::move(graph_);
}

task_graph translate_spuri(const spuri_task& t) {
  validate(t.cs.is_zero() == !t.resource.has_value(),
           "spuri_task: cs and resource must be given together");

  task_builder b(t.name);
  b.deadline(t.deadline);
  if (!t.pseudo_period.is_infinite()) b.law(arrival_law::sporadic(t.pseudo_period));

  std::vector<eu_index> chain;
  if (t.c_before > duration::zero()) {
    code_eu eu;
    eu.name = t.name + ".before";
    eu.processor = t.processor;
    eu.wcet = t.c_before;
    chain.push_back(b.add_code_eu(std::move(eu)));
  }
  if (t.resource.has_value()) {
    code_eu eu;
    eu.name = t.name + ".cs";
    eu.processor = t.processor;
    eu.wcet = t.cs;
    eu.resources.push_back({*t.resource, access_mode::exclusive});
    eu.attrs.latest_offset = t.blocking_latest;  // Figure 3: latest = B'_i
    chain.push_back(b.add_code_eu(std::move(eu)));
  }
  if (t.c_after > duration::zero()) {
    code_eu eu;
    eu.name = t.name + ".after";
    eu.processor = t.processor;
    eu.wcet = t.c_after;
    eu.attrs.deadline_offset = t.deadline;  // Figure 3: D = D_i on the last unit
    chain.push_back(b.add_code_eu(std::move(eu)));
  }
  validate(!chain.empty(), "spuri_task: all phases are empty");
  for (std::size_t i = 1; i < chain.size(); ++i)
    b.precede(chain[i - 1], chain[i]);
  return b.build();
}

}  // namespace hades::core
