// The network-management task (paper section 3.1).
//
// Remote precedence constraints "model the invocation of a task net_mngt
// implementing the communication protocol of a particular hardware and
// software configuration". Modelling the network as an independent task
// lets applications be designed independently of the protocol, and lets the
// protocol be assigned its own scheduling parameters — here, a kernel
// thread at a configurable priority that consumes `net_task_per_msg` CPU
// per outbound message before handing the frame to the wire.
//
// Inbound frames cost `w_net` in interrupt context (the ATM-card handler of
// paper section 4.2) before being demultiplexed to the registered channel
// handler. Dispatchers use channel 0 for control tokens; services register
// their own channels.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "core/cost_model.hpp"
#include "core/processor.hpp"
#include "sim/network.hpp"
#include "util/types.hpp"

namespace hades::core {

class net_task {
 public:
  using channel_handler = std::function<void(const sim::message&)>;

  net_task(runtime& rt, processor& cpu, sim::network& net, node_id node,
           const cost_model& costs, priority prio = prio::net_task);
  ~net_task();
  net_task(const net_task&) = delete;
  net_task& operator=(const net_task&) = delete;

  /// Queue a message for transmission through the protocol task.
  void send(node_id dst, int channel, sim::wire_payload payload,
            std::size_t size_bytes = 64);

  /// Send to every attached node except this one. The pooled payload is
  /// shared across the fan-out by refcount, never deep-copied.
  void send_all(int channel, const sim::wire_payload& payload,
                std::size_t size_bytes = 64);

  /// Register the consumer of one inbound channel.
  void on_channel(int channel, channel_handler h);

  /// Stop processing (node crash): pending messages are dropped and inbound
  /// frames ignored.
  void halt();
  /// Undo `halt` (node recovery): the NIC listens again and the protocol
  /// thread accepts new outbound messages. The pre-crash queue stays lost.
  void resume();
  [[nodiscard]] bool halted() const { return halted_; }

  [[nodiscard]] node_id node() const { return node_; }
  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t received() const { return received_; }

 private:
  struct outbound {
    node_id dst;
    int channel;
    sim::wire_payload payload;
    std::size_t size_bytes;
  };

  void pump();              // ensure the protocol thread is working
  void transmit_head();     // thread completion: put the head on the wire
  void on_frame(const sim::message& m);

  runtime* rt_;
  processor* cpu_;
  sim::network* net_;
  node_id node_;
  cost_model costs_;
  kthread_id thread_;
  bool thread_busy_ = false;
  bool halted_ = false;
  std::deque<outbound> queue_;
  std::vector<channel_handler> channels_;  // channel-indexed; registration-time growth
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

}  // namespace hades::core
