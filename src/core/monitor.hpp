// Monitoring service (paper section 3.2.1).
//
// The dispatcher monitors thread execution to detect: (i) deadline
// violations; (ii) violations of the arrival law of task activation
// requests; (iii) early thread termination and orphan thread execution;
// (iv) deadlocks; and (v) network omission failures, observed through
// remote precedence constraints that fail to arrive by the latest start
// time of their consumer. The paper notes no existing real-time
// environment implemented all of these — this module does. The fault
// detector additionally feeds node-suspicion events into the same stream,
// so mode policies can react to partitions as well as crashes.
//
// The monitor itself is an event sink with query helpers; the detectors
// live in the dispatcher/system, which know the execution state.
//
// Shard confinement (DESIGN.md): once bound to a runtime the monitor keeps
// one event partition per shard; `record` appends only to the partition of
// the executing shard, so worker threads never share a vector. Readers see
// one merged stream ordered by {time, shard, per-shard sequence} — the
// cross-shard inbox key, making the merged order independent of worker
// interleaving. Two subscription flavours exist:
//   * `subscribe` — synchronous, runs on the recording shard. The listener
//     must only touch state owned by that shard (or the monitor must only
//     be used in serial runs).
//   * `subscribe_at_node` — the listener is re-invoked on the shard owning
//     `home`, at `record date + delay`, via `runtime::at_node`. With a
//     `delay` no smaller than the backend's lookahead this is legal from
//     any shard, and because the delay is a constant the redelivery date is
//     identical on every backend — what keeps mode switching bit-identical
//     across shard and worker counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/runtime.hpp"
#include "sim/shard_log.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace hades::core {

enum class monitor_event_kind {
  deadline_miss,
  arrival_law_violation,
  early_termination,
  orphan_killed,
  latest_start_violation,
  network_omission_suspected,
  deadlock_suspected,
  instance_rejected,
  node_crash,
  node_recover,
  node_suspected,    // fault detector: observer started suspecting `node`
  node_unsuspected,  // fault detector: observer heard `node` again
};

[[nodiscard]] constexpr const char* to_string(monitor_event_kind k) {
  switch (k) {
    case monitor_event_kind::deadline_miss: return "deadline-miss";
    case monitor_event_kind::arrival_law_violation: return "arrival-law-violation";
    case monitor_event_kind::early_termination: return "early-termination";
    case monitor_event_kind::orphan_killed: return "orphan-killed";
    case monitor_event_kind::latest_start_violation: return "latest-start-violation";
    case monitor_event_kind::network_omission_suspected: return "network-omission-suspected";
    case monitor_event_kind::deadlock_suspected: return "deadlock-suspected";
    case monitor_event_kind::instance_rejected: return "instance-rejected";
    case monitor_event_kind::node_crash: return "node-crash";
    case monitor_event_kind::node_recover: return "node-recover";
    case monitor_event_kind::node_suspected: return "node-suspected";
    case monitor_event_kind::node_unsuspected: return "node-unsuspected";
  }
  return "?";
}

struct monitor_event {
  monitor_event_kind kind = monitor_event_kind::deadline_miss;
  time_point at;
  node_id node = invalid_node;
  task_id task = invalid_task;
  instance_number instance = 0;
  std::string subject;
  std::string detail;
};

class monitor {
 public:
  using listener = std::function<void(const monitor_event&)>;

  monitor() = default;

  /// Attach to a runtime: grows one partition per shard, routes `record` by
  /// the executing shard, and enables `subscribe_at_node` redelivery. The
  /// owning `core::system` calls this from its constructor.
  void bind(hades::runtime& rt) {
    rt_ = &rt;
    log_.bind(rt);
  }

  void record(monitor_event e);

  /// Subscribe to every future event, synchronously on the recording shard
  /// (shard-local listeners and serial-mode services).
  void subscribe(listener l) { listeners_.push_back(std::move(l)); }

  /// Subscribe with deterministic cross-shard redelivery: the listener runs
  /// on the shard owning `home`, at the event date + `delay`. `delay` must
  /// be >= the backend's cross-shard lookahead (the network's delta_min for
  /// system runs); it is applied on every backend so redelivery dates are
  /// backend-independent. Without a bound runtime the listener fires
  /// synchronously.
  void subscribe_at_node(node_id home, duration delay, listener l) {
    routed_.push_back({home, delay, std::move(l)});
  }

  /// Multi-process runtimes: a routed listener whose home node lives in
  /// another OS process cannot be re-invoked through `at_node` (closures do
  /// not cross address spaces — the realtime backend silently drops foreign
  /// `at_node`s). A forwarder intercepts those redeliveries: `record` offers
  /// it each (event, home, delay) triple once per distinct home; returning
  /// true means "home is foreign, I shipped the event" (the owning process
  /// re-injects it via `deliver_forwarded`), false falls through to the
  /// local `at_node` path. Null (every sim run) changes nothing.
  using forward_fn =
      std::function<bool(const monitor_event&, node_id home, duration delay)>;
  void set_forwarder(forward_fn f) { forwarder_ = std::move(f); }

  /// Re-deliver an event forwarded from another process to the routed
  /// listeners subscribed at `home` (which this process owns). The event is
  /// NOT re-recorded — its originating process already logged it — so merged
  /// streams concatenated across processes stay duplicate-free. Callable
  /// from a transport receiver thread.
  void deliver_forwarded(const monitor_event& e, node_id home);

  /// Merged event stream, ordered by {time, shard, per-shard sequence}.
  /// Rebuilt lazily; do not call while worker threads are recording.
  [[nodiscard]] const std::vector<monitor_event>& events() const {
    return log_.merged();
  }

  [[nodiscard]] std::vector<monitor_event> of_kind(monitor_event_kind k) const {
    std::vector<monitor_event> out;
    for (const auto& e : events())
      if (e.kind == k) out.push_back(e);
    return out;
  }
  [[nodiscard]] std::size_t count(monitor_event_kind k) const {
    std::size_t n = 0;
    log_.for_each([&](const monitor_event& e) {
      if (e.kind == k) ++n;
    });
    return n;
  }
  [[nodiscard]] std::size_t count_for_task(monitor_event_kind k,
                                           task_id t) const {
    std::size_t n = 0;
    log_.for_each([&](const monitor_event& e) {
      if (e.kind == k && e.task == t) ++n;
    });
    return n;
  }
  void clear() { log_.clear(); }

  [[nodiscard]] std::string render() const;

 private:
  struct time_of {
    time_point operator()(const monitor_event& e) const { return e.at; }
  };
  struct routed_listener {
    node_id home = 0;
    duration delay = duration::zero();
    listener fn;
  };

  hades::runtime* rt_ = nullptr;
  sim::shard_log<monitor_event, time_of> log_;
  std::vector<listener> listeners_;
  std::vector<routed_listener> routed_;
  forward_fn forwarder_;  // null outside multi-process realtime runs
};

}  // namespace hades::core
