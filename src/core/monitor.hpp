// Monitoring service (paper section 3.2.1).
//
// The dispatcher monitors thread execution to detect: (i) deadline
// violations; (ii) violations of the arrival law of task activation
// requests; (iii) early thread termination and orphan thread execution;
// (iv) deadlocks; and (v) network omission failures, observed through
// remote precedence constraints that fail to arrive by the latest start
// time of their consumer. The paper notes no existing real-time
// environment implemented all of these — this module does.
//
// The monitor itself is an event sink with query helpers; the detectors
// live in the dispatcher/system, which know the execution state.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/time.hpp"
#include "util/types.hpp"

namespace hades::core {

enum class monitor_event_kind {
  deadline_miss,
  arrival_law_violation,
  early_termination,
  orphan_killed,
  latest_start_violation,
  network_omission_suspected,
  deadlock_suspected,
  instance_rejected,
  node_crash,
  node_recover,
};

[[nodiscard]] constexpr const char* to_string(monitor_event_kind k) {
  switch (k) {
    case monitor_event_kind::deadline_miss: return "deadline-miss";
    case monitor_event_kind::arrival_law_violation: return "arrival-law-violation";
    case monitor_event_kind::early_termination: return "early-termination";
    case monitor_event_kind::orphan_killed: return "orphan-killed";
    case monitor_event_kind::latest_start_violation: return "latest-start-violation";
    case monitor_event_kind::network_omission_suspected: return "network-omission-suspected";
    case monitor_event_kind::deadlock_suspected: return "deadlock-suspected";
    case monitor_event_kind::instance_rejected: return "instance-rejected";
    case monitor_event_kind::node_crash: return "node-crash";
    case monitor_event_kind::node_recover: return "node-recover";
  }
  return "?";
}

struct monitor_event {
  monitor_event_kind kind = monitor_event_kind::deadline_miss;
  time_point at;
  node_id node = invalid_node;
  task_id task = invalid_task;
  instance_number instance = 0;
  std::string subject;
  std::string detail;
};

class monitor {
 public:
  using listener = std::function<void(const monitor_event&)>;

  void record(monitor_event e) {
    events_.push_back(std::move(e));
    for (const auto& l : listeners_) l(events_.back());
  }

  /// Subscribe to every future event (used by mode managers / tests).
  void subscribe(listener l) { listeners_.push_back(std::move(l)); }

  [[nodiscard]] const std::vector<monitor_event>& events() const {
    return events_;
  }
  [[nodiscard]] std::vector<monitor_event> of_kind(monitor_event_kind k) const {
    std::vector<monitor_event> out;
    for (const auto& e : events_)
      if (e.kind == k) out.push_back(e);
    return out;
  }
  [[nodiscard]] std::size_t count(monitor_event_kind k) const {
    std::size_t n = 0;
    for (const auto& e : events_)
      if (e.kind == k) ++n;
    return n;
  }
  [[nodiscard]] std::size_t count_for_task(monitor_event_kind k,
                                           task_id t) const {
    std::size_t n = 0;
    for (const auto& e : events_)
      if (e.kind == k && e.task == t) ++n;
    return n;
  }
  void clear() { events_.clear(); }

  [[nodiscard]] std::string render() const;

 private:
  std::vector<monitor_event> events_;
  std::vector<listener> listeners_;
};

}  // namespace hades::core
