// The HADES dispatcher (paper sections 3.2.1, 3.2.2 and 4.1).
//
// One dispatcher runs per node. It allocates resources (CPU included) to
// threads — one kernel thread per Code_EU instance — and inserts a thread
// into the run queue exactly when the paper's four conditions hold:
//
//   1. every predecessor (precedence constraint) has finished,
//   2. all resources the unit claims can be granted,
//   3. all awaited condition variables are set,
//   4. the current time has passed the unit's earliest start time.
//
// It cooperates with the attached scheduler through the notification FIFO
// (Atv, Trm, Rac, Rre) and exposes the dispatcher primitive — modify a
// thread's priority and/or earliest start time — through the
// `scheduler_context` interface it implements. The scheduler itself
// executes as a thread at a priority above every application thread, so a
// queued notification is always processed before any application thread
// regains the CPU (this is what makes ceiling protocols race-free, see
// DESIGN.md).
//
// The dispatcher also implements the monitoring activities of section
// 3.2.1: deadline violations are armed by the owning `system`; this module
// detects latest-start violations, early terminations, orphan executions
// and suspected network omissions (a remote precedence still missing at
// its consumer's latest start time).
//
// Cost charging (section 4.1): every Code_EU thread's demand is
//   c_act_start + actual_execution + c_act_end
//   + (#outgoing local precedences) * c_local
//   + (#outgoing remote precedences) * c_rel
// and instance activation / completion cost c_inv_start / c_inv_end in
// kernel (interrupt) context on the home node — mirroring exactly the
// terms the cost-integrated feasibility test accounts for.
#pragma once

#include <any>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/monitor.hpp"
#include "core/net_task.hpp"
#include "core/processor.hpp"
#include "core/scheduling.hpp"
#include "core/task_model.hpp"
#include "sim/runtime.hpp"
#include "sim/trace.hpp"

namespace hades::core {

class system;
class dispatcher;

/// Control tokens exchanged between dispatchers on channel 0. They carry
/// every cross-node structural effect of the core — shard creation and
/// abortion, invocation activation, condition updates, deadlock probes —
/// so that no event handler ever calls into another node's dispatcher
/// directly (DESIGN.md, "Cross-shard control tokens"). The struct stays
/// trivially copyable and under the wire payload's pooled-class ceiling.
struct control_token {
  enum class kind {
    precedence,        // from -> to precedence edge satisfied
    shard_complete,    // a non-home shard of (task, instance) finished
    sync_return,       // synchronous invocation made by `to` returned
    create_shard,      // home -> involved node: build the local shard at `at`
    abort_shard,       // home -> involved node: kill the local shard
    abort_request,     // policy node -> home: abort the whole instance
    activate_request,  // invoking node -> target's home: activate `task`
    sync_started,      // target's home -> sync invoker: child instance = aux
    cond_set,          // origin -> condition authority: set `cond`
    cond_clear,        // origin -> condition authority: clear `cond`
    cond_update,       // condition authority -> everyone: `cond` is now `flag`
    dl_probe,          // deadlock-scan home -> node: report stalled EUs (epoch aux)
  };
  kind k = kind::precedence;
  task_id task = invalid_task;
  instance_number instance = 0;
  eu_index from = 0;
  eu_index to = 0;
  time_point at;              // create_shard: the shared activation date
  condition_id cond = 0;      // cond_*: the subject condition variable
  bool flag = false;          // cond_update: new value; activate_request: has waiter
  std::uint64_t aux = 0;      // sync_started: child instance; dl_probe: epoch
  node_id waiter_node = 0;    // activate_request: synchronous continuation
  task_id waiter_task = invalid_task;
  instance_number waiter_instance = 0;
  eu_index waiter_inv = 0;
  char reason[24] = {};       // abort_*: truncated human-readable cause
};

inline constexpr int control_channel = 0;
/// System-level replies that are not fixed-size tokens (deadlock-scan
/// reports carrying variable-length waiter lists) ride channel 1, handled
/// by the owning `system`.
inline constexpr int system_channel = 1;

/// Handed to Code_EU bodies when they complete: the window through which
/// application code interacts with HADES.
class execution_context {
 public:
  execution_context(system& sys, node_id node, task_id task,
                    instance_number instance)
      : sys_(&sys), node_(node), task_(task), instance_(instance) {}

  [[nodiscard]] time_point now() const;
  [[nodiscard]] node_id node() const { return node_; }
  [[nodiscard]] task_id task() const { return task_; }
  [[nodiscard]] instance_number instance() const { return instance_; }

  /// Local synchronized-clock reading (hardware clock + adjustments).
  [[nodiscard]] duration local_clock() const;

  void set_condition(condition_id c);
  void clear_condition(condition_id c);

  /// Send an application message through this node's net_mngt task.
  void send(node_id dst, int channel, sim::wire_payload payload,
            std::size_t size_bytes = 64);

  /// Mutable per-task state blob (shared by all instances of the task).
  [[nodiscard]] std::any& task_state();

  [[nodiscard]] system& sys() { return *sys_; }

 private:
  system* sys_;
  node_id node_;
  task_id task_;
  instance_number instance_;
};

class dispatcher final : public scheduler_context {
 public:
  dispatcher(system& sys, runtime& rt, node_id node, processor& cpu,
             net_task& net, monitor& mon, const cost_model& costs,
             sim::trace_recorder* trace);
  ~dispatcher() override;
  dispatcher(const dispatcher&) = delete;
  dispatcher& operator=(const dispatcher&) = delete;

  [[nodiscard]] node_id node() const { return node_; }

  // --- scheduler attachment (paper 3.2.2) --------------------------------
  void attach_policy(std::shared_ptr<policy> p);
  [[nodiscard]] policy* attached_policy() { return policy_.get(); }

  // --- admission hooks (traffic edge) -------------------------------------
  /// Consulted by the owning system inside activation, before any instance
  /// state is created: return false to reject the activation (recorded as
  /// an instance_rejected event against the task). The hook runs on this
  /// node's shard and must not allocate — it sits on the admission hot
  /// path. Tasks the hook does not recognize must return true.
  using admission_fn = std::function<bool(task_id, time_point)>;
  /// Fired when an instance of a task homed here leaves the system —
  /// `completed` is true for a timely finish, false for an abort (deadline
  /// miss or shed). Runs on this node's shard.
  using retire_fn =
      std::function<void(task_id, instance_number, time_point activation,
                         time_point now, bool completed)>;
  void set_admission_hook(admission_fn f) { admission_ = std::move(f); }
  void set_retire_hook(retire_fn f) { retire_ = std::move(f); }
  [[nodiscard]] const admission_fn& admission_hook() const {
    return admission_;
  }
  [[nodiscard]] const retire_fn& retire_hook() const { return retire_; }

  // --- shard lifecycle (driven by the owning system) ----------------------
  /// Create the local portion of instance (task, k) activated at `at`:
  /// threads for the local Code_EUs (emitting Atv), bookkeeping for
  /// locally-anchored Inv_EUs, and latest-start monitors.
  void create_shard(const task_graph& g, instance_number k, time_point at);

  /// Abort the local shard: kill threads (recording orphan events for
  /// threads that had started), drop waiters, release resources.
  void abort_shard(task_id t, instance_number k, const std::string& reason);

  [[nodiscard]] bool has_shard(task_id t, instance_number k) const {
    return shards_.contains({t, k});
  }

  /// Condition variable `c` became set system-wide: re-evaluate waiters.
  void on_condition_set(condition_id c);

  /// A synchronous invocation made by (t, k, inv) returned.
  void on_sync_return(task_id t, instance_number k, eu_index inv);

  /// Node crash: stop everything silently (the rest of the system only
  /// observes it through missing messages and missed deadlines).
  void halt();
  /// Undo `halt` (node recovery, driven by system::recover_node): the
  /// dispatcher accepts new shards again. State lost in the crash stays
  /// lost — pre-crash shards were destroyed and are not resurrected.
  void restart();
  [[nodiscard]] bool halted() const { return halted_; }

  // --- scheduler_context (the dispatcher primitive) ------------------------
  [[nodiscard]] time_point now() const override;
  void set_priority(kthread_id t, priority p) override;
  void set_earliest(kthread_id t, time_point earliest) override;
  [[nodiscard]] const eu_info& info(kthread_id t) const override;
  [[nodiscard]] bool alive(kthread_id t) const override;
  void reject_instance(kthread_id t, const std::string& reason) override;

  // --- observability --------------------------------------------------------
  struct counters {
    std::uint64_t shards_created = 0;
    std::uint64_t eus_completed = 0;
    std::uint64_t notifications = 0;
    std::uint64_t scheduler_runs = 0;
    std::uint64_t resource_grants = 0;
    std::uint64_t resource_blocks = 0;  // grant attempts that had to wait
  };
  [[nodiscard]] const counters& stats() const { return stats_; }

  /// Threads of EUs that are currently waiting (any unmet condition), with
  /// a human-readable blocking reason. Used by the deadlock detector.
  struct waiting_eu {
    task_id task;
    instance_number instance;
    eu_index eu;
    std::vector<eu_index> waiting_preds;       // unsatisfied predecessors
    std::vector<condition_id> waiting_conds;   // unset condition variables
    std::optional<task_id> sync_target;        // invoked task, if inv-waiting
    instance_number sync_target_instance = 0;
    bool resource_wait = false;
  };
  [[nodiscard]] std::vector<waiting_eu> waiting_eus() const;

 private:
  friend class system;

  using shard_key = std::pair<task_id, instance_number>;

  enum class eu_state { waiting, queued, done, inv_waiting };

  struct eu_rt {
    eu_index idx = 0;
    const code_eu* code = nullptr;  // null for Inv_EUs
    const inv_eu* inv = nullptr;
    kthread_id thread;
    std::set<eu_index> preds_done;  // tolerates duplicate tokens
    std::size_t preds_total = 0;
    instance_number sync_child_instance = 0;
    eu_state st = eu_state::waiting;
    bool rac_emitted = false;
    bool protocol_held = false;      // waiting for the policy's verdict
    bool resources_granted = false;
    bool in_resource_wait = false;
    duration actual = duration::zero();   // resolved actual execution time
    time_point earliest_abs;
    sim::event_id earliest_timer = sim::invalid_event;
    sim::event_id latest_timer = sim::invalid_event;
    priority pt_boost = 0;           // declared threshold - declared priority
    eu_info info;
  };

  struct shard {
    const task_graph* graph = nullptr;
    instance_number instance = 0;
    time_point activation;
    std::map<eu_index, eu_rt> eus;
    std::size_t pending = 0;  // local EUs not yet done
    bool aborted = false;
  };

  struct resource_state {
    int shared_holders = 0;
    bool exclusive_held = false;
  };

  struct eu_ref {
    shard_key key;
    eu_index idx;
    friend bool operator==(const eu_ref&, const eu_ref&) = default;
  };

  // lookup helpers
  shard* find_shard(shard_key k);
  eu_rt* find_eu(const eu_ref& r);
  eu_rt* find_by_thread(kthread_id t);

  // readiness machinery
  void evaluate(shard& s, eu_rt& eu);
  [[nodiscard]] bool conds_satisfied(shard& s, eu_rt& eu);
  [[nodiscard]] bool grantable(const code_eu& c) const;
  void grant(shard& s, eu_rt& eu);
  void release_resources(shard& s, eu_rt& eu);
  void reevaluate_resource_waiters();

  // execution
  // Completion cascades can erase shards (an async Inv_EU sink may finish a
  // shard from inside a propagation); these stages therefore address shards
  // by key and re-find them after every step that may cascade.
  void eu_complete(shard_key key, eu_index idx);
  void propagate(shard_key key, eu_index from, const task_graph& g);
  void fire_invocation(shard& s, eu_rt& eu);
  void finish_inv(shard_key key, eu_index idx);
  void shard_done(shard_key key);

  // scheduler FIFO
  void emit(notification_kind kind, const eu_rt& eu);
  void pump_scheduler();
  void scheduler_step();

  // tokens
  void on_token(const control_token& tok);
  /// A per-instance token (precedence, sync_*, abort_shard) can outrun its
  /// own shard's create_shard token: the two ride different links (home->A
  /// then A->B vs home->B) whose latencies are independent. Tokens for
  /// instances this node has not created yet are stashed and replayed at
  /// the end of create_shard; tokens for instances *below* the creation
  /// watermark are late (shard completed or aborted) and flow through the
  /// normal find_shard miss path. Per-link FIFO guarantees creates for one
  /// (task, target) pair arrive in increasing instance order, which is what
  /// makes the watermark sound.
  bool stash_if_early(const control_token& tok);

  void record_trace(sim::trace_kind k, const std::string& subject,
                    std::string detail = {});
  void cancel_timers(eu_rt& eu);
  void drop_waiter_refs(const shard_key& key);
  [[nodiscard]] node_id eu_node(const task_graph& g, eu_index i) const;

  system* sys_;
  runtime* rt_;
  node_id node_;
  processor* cpu_;
  net_task* net_;
  monitor* mon_;
  cost_model costs_;
  sim::trace_recorder* trace_;

  std::shared_ptr<policy> policy_;
  kthread_id sched_thread_;
  bool sched_busy_ = false;
  std::deque<notification> fifo_;

  std::map<shard_key, shard> shards_;
  // Early-token machinery (see stash_if_early): the next instance number
  // each task is expected to create here, and tokens that arrived ahead of
  // their create. The watermark survives halt() — it tracks what the home
  // already sent, and a recovered node must still treat pre-crash instances
  // as late.
  std::map<task_id, instance_number> created_next_;
  std::map<shard_key, std::vector<control_token>> early_tokens_;
  std::map<kthread_id, eu_ref> by_thread_;
  std::map<resource_id, resource_state> resources_;
  std::vector<eu_ref> resource_waiters_;
  std::map<condition_id, std::vector<eu_ref>> cond_waiters_;

  bool halted_ = false;
  counters stats_;
  admission_fn admission_;
  retire_fn retire_;
};

}  // namespace hades::core
