// Dispatcher <-> scheduler cooperation interface (paper section 3.2.2).
//
// Every scheduler is a task with a statically-defined priority above all
// application threads. The dispatcher notifies it through a shared FIFO
// queue — thread activations (Atv), terminations (Trm) and resource
// access / release requests (Rac / Rre) — and the scheduler reacts by
// calling the dispatcher primitive, which can modify a thread's priority
// and/or earliest start time. Everything a concrete scheduling policy may
// observe or do flows through the two interfaces below.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/task_model.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace hades::core {

enum class notification_kind { atv, trm, rac, rre };

[[nodiscard]] constexpr const char* to_string(notification_kind k) {
  switch (k) {
    case notification_kind::atv: return "Atv";
    case notification_kind::trm: return "Trm";
    case notification_kind::rac: return "Rac";
    case notification_kind::rre: return "Rre";
  }
  return "?";
}

/// Static and per-instance facts about the EU behind a thread; what a
/// scheduling policy is allowed to know.
struct eu_info {
  task_id task = invalid_task;
  std::string task_name;
  instance_number instance = 0;
  eu_index eu = 0;
  std::string eu_name;
  node_id node = 0;
  time_point activation;              // instance activation date
  time_point absolute_deadline;       // activation + task deadline
  duration relative_deadline = duration::infinity();  // task D
  duration period = duration::infinity();             // task period / pseudo-period
  duration wcet = duration::zero();
  std::vector<resource_claim> resources;
  priority static_priority = prio::min_app;
};

struct notification {
  notification_kind kind = notification_kind::atv;
  kthread_id thread;
  eu_info info;
  time_point at;  // insertion date
};

/// The dispatcher-side API handed to a policy while it handles one
/// notification. Priority / earliest changes are the paper's primitive.
class scheduler_context {
 public:
  virtual ~scheduler_context() = default;

  [[nodiscard]] virtual time_point now() const = 0;

  /// Dispatcher primitive: change the priority of a live thread.
  virtual void set_priority(kthread_id t, priority p) = 0;

  /// Dispatcher primitive: change the earliest start time of a thread that
  /// has not started yet. `time_point::infinity()` holds it indefinitely.
  virtual void set_earliest(kthread_id t, time_point earliest) = 0;

  /// Convenience forms of set_earliest used by resource protocols.
  void hold(kthread_id t) { set_earliest(t, time_point::infinity()); }
  void release(kthread_id t) { set_earliest(t, now()); }

  /// Facts about a live thread (valid between its Atv and Trm).
  [[nodiscard]] virtual const eu_info& info(kthread_id t) const = 0;
  [[nodiscard]] virtual bool alive(kthread_id t) const = 0;

  /// Reject an activation: abort the whole task instance this thread
  /// belongs to (admission control, e.g. planning-based schedulers).
  virtual void reject_instance(kthread_id t, const std::string& reason) = 0;
};

/// A scheduling policy (the application-domain-specific part of HADES).
class policy {
 public:
  virtual ~policy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Handle one FIFO notification; runs at scheduler priority after the
  /// scheduler consumed its per-event cost.
  virtual void handle(const notification& n, scheduler_context& ctx) = 0;

  /// True when the policy wants to arbitrate resource grants itself: the
  /// dispatcher will then *not* grant resources to an EU until the policy
  /// releases it (via set_earliest), paper footnote 2 (PCP). For such
  /// policies Rac is emitted at *request* time; for non-gating policies it
  /// is emitted when the grant actually happens (so protocols like SRP can
  /// track ceilings exactly).
  [[nodiscard]] virtual bool gates_resources() const { return false; }

  /// True when the policy arbitrates job *starts*: every Code_EU is held at
  /// activation until the policy releases it while processing the Atv
  /// notification (SRP's start gate, Spring's planned start times). Because
  /// the scheduler outranks all application threads, the decision is always
  /// made before the unit could run.
  [[nodiscard]] virtual bool gates_activation() const { return false; }

  /// Called once when attached to a node's dispatcher.
  virtual void attach(scheduler_context&) {}
};

}  // namespace hades::core
