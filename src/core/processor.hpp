// Simulated COTS real-time kernel for one mono-processor node.
//
// This stands in for ChorusOS r3 of the paper's prototype (see DESIGN.md).
// It provides exactly the mechanisms HADES requires from its underlying
// kernel (paper 2.2.1): priority-based preemptive scheduling of threads,
// with the preemption-threshold rule of section 3.2.1 — a runnable thread
// t_i runs iff it has the highest priority among runnable threads, or, once
// it is the incumbent, no runnable t_j with prio_j > pt_i exists — plus
// non-preemptible interrupt handling above every thread priority (kernel
// calls and interrupts have pt = prio_max, paper 3.1.2), and a context
// switch whose cost is part of the characterized kernel cost model.
//
// Execution is modelled in virtual time: a thread owns `remaining` work; a
// completion event is scheduled while it runs and re-computed whenever it is
// preempted or paused by an interrupt burst.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/runtime.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace hades::core {

struct kernel_params {
  duration context_switch = duration::zero();
};

class processor {
 public:
  using completion_fn = std::function<void()>;

  processor(runtime& rt, node_id node, kernel_params params,
            sim::trace_recorder* trace = nullptr)
      : rt_(&rt), node_(node), params_(params), trace_(trace) {}
  processor(const processor&) = delete;
  processor& operator=(const processor&) = delete;

  [[nodiscard]] node_id node() const { return node_; }
  [[nodiscard]] const kernel_params& params() const { return params_; }

  // --- thread lifecycle --------------------------------------------------
  /// Create a suspended thread with `work` units of CPU demand.
  kthread_id create(std::string name, priority prio, priority pt,
                    duration work, completion_fn on_done);
  /// Remove a thread entirely. Running/runnable threads are stopped first.
  void destroy(kthread_id t);
  /// Insert into the run queue (the dispatcher decided it is eligible).
  void make_runnable(kthread_id t);
  /// Remove from the run queue / stop execution; accrued work is kept.
  void suspend(kthread_id t);

  // --- attribute changes (dispatcher primitive, paper 3.2.2) --------------
  void set_priority(kthread_id t, priority prio);
  void set_threshold(kthread_id t, priority pt);

  /// Extend the thread's CPU demand (used to fold dispatcher activity costs
  /// into the EU that caused them, paper section 4.1).
  void add_work(kthread_id t, duration extra);

  // --- interrupts ----------------------------------------------------------
  /// Run a non-preemptible handler of length `wcet` at interrupt priority;
  /// `body` executes when the handler completes. Back-to-back interrupts
  /// queue FIFO.
  void post_interrupt(std::string name, duration wcet,
                      std::function<void()> body);

  // --- queries -------------------------------------------------------------
  [[nodiscard]] bool exists(kthread_id t) const { return threads_.contains(t); }
  [[nodiscard]] kthread_id running() const { return running_; }
  [[nodiscard]] bool is_runnable(kthread_id t) const;
  [[nodiscard]] bool is_running(kthread_id t) const { return running_ == t; }
  [[nodiscard]] bool has_started(kthread_id t) const;
  [[nodiscard]] duration executed(kthread_id t) const;
  [[nodiscard]] duration remaining(kthread_id t) const;
  [[nodiscard]] priority get_priority(kthread_id t) const;
  [[nodiscard]] const std::string& name(kthread_id t) const;

  struct counters {
    std::uint64_t context_switches = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t interrupts = 0;
    duration busy = duration::zero();
    duration interrupt_time = duration::zero();
  };
  [[nodiscard]] const counters& stats() const { return stats_; }

  /// Threads currently in the run queue (highest priority first).
  [[nodiscard]] std::vector<kthread_id> run_queue() const;

 private:
  enum class state { suspended, queued, running, done };

  struct thread {
    std::string name;
    priority prio = prio::min_app;
    priority pt = prio::min_app;
    duration remaining = duration::zero();
    duration total_executed = duration::zero();
    completion_fn on_done;
    state st = state::suspended;
    // A job that has started holds the CPU at its preemption threshold;
    // while preempted it competes at that boosted level (section 3.2.1).
    bool boosted = false;
    std::uint64_t queue_seq = 0;       // FIFO order within a priority level
    time_point burst_start;            // valid while running
    duration burst_cs = duration::zero();  // switch overhead of this burst
    sim::event_id completion = sim::invalid_event;
  };

  // Run-queue key: higher effective priority first, then FIFO.
  using queue_key = std::pair<std::int64_t, std::uint64_t>;
  static priority effective_prio(const thread& th) {
    return th.boosted ? std::max(th.prio, th.pt) : th.prio;
  }
  static queue_key key_of(const thread& th) {
    return {-static_cast<std::int64_t>(effective_prio(th)), th.queue_seq};
  }

  thread& get(kthread_id t);
  const thread& get(kthread_id t) const;

  void pause_running();          // stop the burst, keep state::running intent
  void requeue(kthread_id t);    // running -> queued (preemption)
  void start_burst(kthread_id t);
  void complete(kthread_id t);
  void reschedule();
  void trace(sim::trace_kind k, const std::string& subject,
             std::string detail = {});
  [[nodiscard]] bool irq_active() const {
    return rt_->now() < irq_busy_until_;
  }

  runtime* rt_;
  node_id node_;
  kernel_params params_;
  sim::trace_recorder* trace_;

  std::unordered_map<kthread_id, thread> threads_;
  std::map<queue_key, kthread_id> queue_;
  kthread_id running_ = invalid_kthread;
  kthread_id last_on_cpu_ = invalid_kthread;
  std::uint64_t next_thread_ = 1;
  std::uint64_t next_queue_seq_ = 1;

  time_point irq_busy_until_ = time_point::zero();
  counters stats_;
};

}  // namespace hades::core
