// System composition: the simulated distributed HADES deployment.
//
// A `system` owns the discrete-event engine, the LAN, and one node context
// per machine (processor + dispatcher + net_mngt task + hardware clock). It
// is the registration point for tasks (assigning task ids and validating
// that resources stay local to one node, paper 3.1.1), the activation
// authority (periodic timers, sporadic/aperiodic triggers, invocations —
// all checked against the declared arrival law, paper 3.1.2), the keeper of
// system-wide condition variables, and the seat of cross-node instance
// bookkeeping (deadline timers, shard completion, synchronous-invocation
// returns) plus the kernel background activities of section 4.2.
#pragma once

#include <any>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/dispatcher.hpp"
#include "core/monitor.hpp"
#include "core/net_task.hpp"
#include "core/processor.hpp"
#include "core/scheduling.hpp"
#include "core/task_model.hpp"
#include "sim/hardware_clock.hpp"
#include "sim/network.hpp"
#include "sim/runtime.hpp"
#include "sim/trace.hpp"
#include "util/stats.hpp"

namespace hades::core {

class system {
 public:
  struct config {
    cost_model costs;
    sim::network::params net;
    std::vector<double> clock_drift;   // per node; missing entries = 0
    bool kernel_background = true;     // clock interrupt per p_clk
    bool reject_arrival_violations = true;
    std::uint64_t seed = 42;
    bool tracing = true;
    /// Runtime backend selection through the factory registry
    /// (`hades::runtime::make`; DESIGN.md, "Runtime factory & injector
    /// API"). Leave `runtime.backend` empty to fall back to the deprecated
    /// `shards`/`workers` fields below. The system fills `node_count`, and
    /// for the sharded backend the lookahead (= net.delta_min, which must
    /// then be > 0) and a contiguous-blocks default node map; everything
    /// else passes through untouched, so a realtime multi-process config
    /// (epoch, process index/count, node->process map) rides here too. The
    /// system itself never names a concrete backend type.
    hades::runtime::options runtime = [] {
      hades::runtime::options o;
      o.backend = "";  // empty: fall back to the deprecated fields below
      return o;
    }();
    /// DEPRECATED (shim kept for one PR — use `runtime.backend = "sharded"`,
    /// `runtime.shards`): 0 = single engine, >0 = sharded with this many
    /// node groups. Honoured only while `runtime.backend` is empty.
    std::size_t shards = 0;
    /// DEPRECATED (shim kept for one PR — use `runtime.workers`): worker
    /// threads advancing shards concurrently (sharded backend only; ignored
    /// when shards == 0). The system's state is shard-confined (DESIGN.md,
    /// "Shard confinement"): per-shard monitor/trace partitions, per-task
    /// bookkeeping owned by the task's home shard, per-source network
    /// state, and every cross-node structural effect — shard creation,
    /// invocation activation, condition updates, deadlock probes — rides a
    /// wire control token (DESIGN.md, "Cross-shard control tokens"), so any
    /// worker count, including on shard-spanning task graphs, produces
    /// bit-identical runs.
    std::size_t workers = 0;
  };

  explicit system(std::size_t node_count);
  system(std::size_t node_count, config cfg);
  ~system();
  system(const system&) = delete;
  system& operator=(const system&) = delete;

  // --- composition access ---------------------------------------------------
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// The event runtime every component schedules against. The backend is
  /// the discrete-event engine today; nothing outside src/sim may assume so.
  [[nodiscard]] hades::runtime& engine() { return *rt_; }
  [[nodiscard]] sim::network& network() { return *net_; }
  [[nodiscard]] sim::trace_recorder& trace() { return trace_; }
  [[nodiscard]] monitor& mon() { return monitor_; }
  [[nodiscard]] processor& cpu(node_id n) { return *nodes_.at(n)->cpu; }
  [[nodiscard]] dispatcher& disp(node_id n) { return *nodes_.at(n)->disp; }
  [[nodiscard]] net_task& net(node_id n) { return *nodes_.at(n)->net; }
  [[nodiscard]] sim::hardware_clock& clock(node_id n) {
    return *nodes_.at(n)->clock;
  }
  [[nodiscard]] const cost_model& costs() const { return cfg_.costs; }

  // --- task registration ----------------------------------------------------
  /// Register a HEUG; returns its system-wide id. Periodic tasks are armed
  /// automatically (first activation at law.offset).
  task_id register_task(task_graph g);

  [[nodiscard]] const task_graph& graph(task_id t) const {
    return *graphs_.at(t);
  }
  [[nodiscard]] std::vector<task_id> tasks() const;

  /// Attach a scheduling policy to one node's dispatcher.
  void attach_policy(node_id n, std::shared_ptr<policy> p) {
    disp(n).attach_policy(std::move(p));
  }
  /// Attach the same policy object to every node.
  void attach_policy_everywhere(std::shared_ptr<policy> p);

  // --- activation -----------------------------------------------------------
  /// Trigger an activation request now (sporadic/aperiodic tasks; periodic
  /// tasks fire automatically). Returns false if rejected (arrival law).
  bool activate(task_id t);
  /// Schedule an activation request at an absolute date.
  void activate_at(task_id t, time_point at);

  // --- condition variables (system-wide booleans, paper 3.1.1) -------------
  // Conditions are home-owned: node 0's shard is the authority. An in-event
  // set/clear from another node rides a cond_set/cond_clear token to the
  // authority, which applies the change and broadcasts cond_update tokens,
  // so every waiter wakeup is evaluated by the waiter's own shard —
  // worker-legal on every backend. The public set/clear entry points below
  // are for use from *outside* event execution (test setup, between runs):
  // there they update every node's view directly, the historical serial
  // semantics. Event handlers go through execution_context::set_condition,
  // which routes by origin node.
  void set_condition(condition_id c);
  void clear_condition(condition_id c);
  /// The authority's view (node 0) — what outside-event callers observe.
  [[nodiscard]] bool condition(condition_id c) const;
  /// In-event entry points, routed by origin (dispatcher-internal).
  void set_condition_from(node_id origin, condition_id c);
  void clear_condition_from(node_id origin, condition_id c);
  /// A node's local view — what its dispatcher's readiness checks read.
  [[nodiscard]] bool condition_on(node_id n, condition_id c) const;

  // --- execution -------------------------------------------------------------
  void run_until(time_point t) { rt_->run_until(t); }
  void run_for(duration d) { rt_->run_until(rt_->now() + d); }
  [[nodiscard]] time_point now() const { return rt_->now(); }

  // --- fault injection --------------------------------------------------------
  /// Crash a node: its threads stop and the wire goes symmetric-silent
  /// (network node-down drops both outbound and inbound frames); only
  /// message loss and missed deadlines are observable from outside.
  void crash_node(node_id n);
  /// Recover a crashed node: the dispatcher accepts work again, the NIC
  /// listens, kernel clock interrupts re-arm. Pre-crash state stays lost
  /// (shards, queued frames); timer-driven services that guard their ticks
  /// with `crashed()` resume on their next tick.
  void recover_node(node_id n);
  [[nodiscard]] bool crashed(node_id n) const {
    return nodes_.at(n)->disp->halted();
  }

  // --- per-task state & results ----------------------------------------------
  [[nodiscard]] std::any& task_state(task_id t) { return task_states_[t]; }

  struct task_stats {
    std::uint64_t activations = 0;
    std::uint64_t completions = 0;
    std::uint64_t rejections = 0;
    sample_set response_times;  // nanoseconds
  };
  [[nodiscard]] task_stats& stats_for(task_id t) { return task_stats_[t]; }

  /// Scan all dispatchers for stalled-EU cycles (deadlock detection,
  /// monitoring activity (iv) of paper 3.2.1). Records deadlock_suspected
  /// events and returns the number of EUs involved in cycles. This
  /// synchronous form walks every node's dispatcher, so call it from
  /// outside event execution (between runs); periodic in-run scans armed
  /// with arm_deadlock_scan use the distributed probe/reply protocol and
  /// are worker-legal.
  std::size_t detect_deadlocks();

  /// Arm periodic deadlock scans. Multi-node systems run the distributed
  /// protocol: the scan home (node 0) probes every node with dl_probe
  /// tokens, nodes reply with their stalled EUs on the system channel, and
  /// the merged wait-for graph is analyzed on the home shard after a
  /// bounded collect window (two network hops) — sorted canonically, so
  /// the recorded events are backend- and worker-independent.
  void arm_deadlock_scan(duration period);

  // --- internal API for dispatchers (public for the component, not users) ---
  struct activation_origin {
    enum class kind { timer, external, invocation } k = kind::external;
    // synchronous-invocation continuation:
    std::optional<node_id> waiter_node;
    task_id waiter_task = invalid_task;
    instance_number waiter_instance = 0;
    eu_index waiter_inv = 0;
  };
  std::optional<instance_number> activate_internal(
      task_id t, const activation_origin& origin);
  void on_shard_complete(task_id t, instance_number k, node_id from);
  void abort_instance(task_id t, instance_number k, const std::string& reason,
                      bool as_rejection);
  /// An activate_request token landed on `home` (the target task's home
  /// node): run the activation there and answer a synchronous invoker with
  /// sync_started (accepted) or sync_return (rejected).
  void on_activate_request(node_id home, const control_token& tok);
  /// A cond_set/cond_clear/cond_update token landed on `n`.
  void on_condition_token(node_id n, const control_token& tok);
  /// A dl_probe token landed on `n`: report its stalled EUs to `reply_to`.
  void on_deadlock_probe(node_id n, std::uint64_t epoch, node_id reply_to);
  [[nodiscard]] bool instance_live(task_id t, instance_number k) const {
    auto it = instances_.find(t);
    return it != instances_.end() && it->second.contains(k);
  }

 private:
  struct node_ctx {
    std::unique_ptr<processor> cpu;
    std::unique_ptr<net_task> net;
    std::unique_ptr<dispatcher> disp;
    std::unique_ptr<sim::hardware_clock> clock;
    // Next link of the node-anchored clock-interrupt chain (re-armed on the
    // node's own shard after every firing; cancelled on crash).
    sim::event_id clk_timer = sim::invalid_event;
  };

  struct instance_record {
    time_point activation;
    std::set<node_id> pending_shards;
    sim::event_id deadline_timer = sim::invalid_event;
    std::optional<activation_origin> sync_waiter;
  };

  // A stalled EU as seen by the deadlock analysis, tagged with its node.
  struct stalled_eu {
    node_id node;
    dispatcher::waiting_eu w;
  };
  /// Reply to a dl_probe: one node's stalled EUs, tagged with the scan
  /// epoch. Rides the system channel as a wire payload (variable length).
  struct dl_reply {
    std::uint64_t epoch = 0;
    node_id from = 0;
    std::vector<dispatcher::waiting_eu> waits;
  };

  void arm_periodic(task_id t);
  void arm_clock_interrupts(node_id n);
  void schedule_clock_tick(node_id n, time_point at);
  void on_deadline(task_id t, instance_number k);
  void finish_instance(task_id t, instance_number k);
  void deliver_sync_return(node_id from, const activation_origin& origin);
  void apply_condition_home(condition_id c, bool v);
  void apply_condition_everywhere(condition_id c, bool v);
  std::size_t analyze_stalled(std::vector<stalled_eu>& all);
  void deadlock_scan_tick();
  void finish_deadlock_scan(std::uint64_t epoch);

  static std::unique_ptr<hades::runtime> make_backend(const config& cfg,
                                                      std::size_t node_count);

  config cfg_;
  std::unique_ptr<hades::runtime> rt_;
  sim::trace_recorder trace_;
  monitor monitor_;
  std::unique_ptr<sim::network> net_;
  std::vector<std::unique_ptr<node_ctx>> nodes_;

  // Per-task bookkeeping. Every per-task entry is created at registration
  // time and owned by the task's home shard from then on: activation,
  // deadline and completion handlers all execute on the home node's shard
  // (DESIGN.md, "Shard confinement"), so the outer maps see no structural
  // mutation during a run and the inner state no cross-shard access.
  std::map<task_id, std::shared_ptr<const task_graph>> graphs_;
  std::map<task_id, instance_number> next_instance_;
  std::map<task_id, time_point> last_activation_;
  std::map<task_id, bool> ever_activated_;
  std::map<resource_id, node_id> resource_home_;
  std::map<task_id, std::map<instance_number, instance_record>> instances_;
  // Per-node condition views (see set_condition): index [node][cond]. The
  // authority is node 0's view; the others converge one cond_update hop
  // later. Each inner map is only touched by its node's shard during a
  // run; outside event execution (tests, between runs) the public
  // setters update all views at once.
  std::vector<std::map<condition_id, bool>> node_conditions_;
  std::map<task_id, std::any> task_states_;
  std::map<task_id, task_stats> task_stats_;
  task_id next_task_ = 1;

  // Distributed deadlock-scan state, owned by the scan home's shard
  // (node 0): per-epoch collected stalled EUs; an epoch is erased when
  // analyzed, so a straggler reply for a finished epoch is dropped.
  std::uint64_t dl_epoch_ = 0;
  std::map<std::uint64_t, std::vector<stalled_eu>> dl_pending_;
};

}  // namespace hades::core
