// The HADES generic task model (paper section 3).
//
// Every activity in HADES — application task, service, scheduler — is a task
// defined as a directed acyclic graph of Elementary Units (a HEUG, "Hades
// Elementary Unit Graph"). An elementary unit is either a sequence of code
// with a known worst-case execution time (Code_EU) or a request to execute
// another task (Inv_EU). Precedence constraints connect EUs; a constraint is
// *local* when both ends are assigned to the same processor and *remote*
// otherwise — remote constraints are realized by the network-management task
// (paper section 3.1). EUs synchronize through statically declared resources
// (granted for the whole unit: actions may not synchronize internally, which
// is what makes their WCETs characterizable — section 3.3) and through
// system-wide condition variables. Timing attributes (priority, preemption
// threshold, earliest/latest start, deadline) drive the dispatcher and its
// monitoring.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "util/error.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace hades::core {

/// Resource access modes (paper 3.1.1): shared readers or one exclusive owner.
enum class access_mode { shared, exclusive };

struct resource_claim {
  resource_id res = 0;
  access_mode mode = access_mode::exclusive;
  friend bool operator==(const resource_claim&, const resource_claim&) = default;
};

/// Task arrival laws (paper 3.1.2).
enum class arrival_kind { periodic, sporadic, aperiodic };

struct arrival_law {
  arrival_kind kind = arrival_kind::aperiodic;
  duration period = duration::infinity();  // period or pseudo-period
  duration offset = duration::zero();      // date of first periodic activation

  static arrival_law periodic(duration t, duration offset = duration::zero()) {
    validate(t > duration::zero() && !t.is_infinite(),
             "periodic law requires a positive finite period");
    return {arrival_kind::periodic, t, offset};
  }
  static arrival_law sporadic(duration pseudo_period) {
    validate(pseudo_period > duration::zero(),
             "sporadic law requires a positive pseudo-period");
    return {arrival_kind::sporadic, pseudo_period, duration::zero()};
  }
  static arrival_law aperiodic() { return {}; }
};

/// Timing attributes of a Code_EU (paper 3.1.2). Offsets are relative to the
/// activation date of the task instance.
struct timing_attrs {
  priority prio = prio::min_app;
  priority preemption_threshold = prio::min_app;  // normalized to >= prio
  duration earliest_offset = duration::zero();
  duration latest_offset = duration::infinity();    // monitoring only
  duration deadline_offset = duration::infinity();  // monitoring only
};

class execution_context;  // defined in dispatcher.hpp
using action_fn = std::function<void(execution_context&)>;

/// Models how much of the WCET an instance actually consumes (early
/// termination, paper 3.2.1 event iii). Returns the actual execution time for
/// the given instance number; results are clamped to [0, wcet].
using actual_time_fn = std::function<duration(instance_number)>;

/// A sequence of code with known WCET, statically assigned to a processor.
struct code_eu {
  std::string name;
  node_id processor = 0;
  duration wcet = duration::zero();  // w
  std::vector<resource_claim> resources;
  std::vector<condition_id> waits_all;  // must all be set before start
  std::vector<condition_id> sets;       // set when the unit completes
  std::vector<condition_id> clears;     // cleared when the unit completes
  timing_attrs attrs;
  action_fn body;            // optional application code, runs at completion
  actual_time_fn actual;     // optional early-termination model
};

enum class invocation_kind { synchronous, asynchronous };

/// A request to execute another task (paper 3.1). Synchronous invocations
/// complete when the invoked task instance completes; asynchronous ones
/// complete immediately after triggering the activation.
struct inv_eu {
  std::string name;
  task_id target = invalid_task;
  invocation_kind kind = invocation_kind::asynchronous;
};

using elementary_unit = std::variant<code_eu, inv_eu>;

/// Precedence constraint between two EUs, optionally carrying data.
struct precedence {
  eu_index from = 0;
  eu_index to = 0;
  std::size_t payload_bytes = 0;
};

/// Immutable, validated HEUG. Build with `task_builder`.
class task_graph {
 public:
  [[nodiscard]] task_id id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] duration deadline() const { return deadline_; }
  [[nodiscard]] const arrival_law& law() const { return law_; }
  [[nodiscard]] bool abort_on_deadline_miss() const { return abort_on_miss_; }

  [[nodiscard]] const std::vector<elementary_unit>& eus() const { return eus_; }
  [[nodiscard]] const std::vector<precedence>& precedences() const {
    return precs_;
  }
  [[nodiscard]] std::size_t eu_count() const { return eus_.size(); }

  [[nodiscard]] const std::vector<eu_index>& preds(eu_index i) const {
    return preds_.at(i);
  }
  [[nodiscard]] const std::vector<eu_index>& succs(eu_index i) const {
    return succs_.at(i);
  }
  [[nodiscard]] bool is_source(eu_index i) const { return preds_.at(i).empty(); }
  [[nodiscard]] bool is_sink(eu_index i) const { return succs_.at(i).empty(); }

  [[nodiscard]] const code_eu* as_code(eu_index i) const {
    return std::get_if<code_eu>(&eus_.at(i));
  }
  [[nodiscard]] const inv_eu* as_inv(eu_index i) const {
    return std::get_if<inv_eu>(&eus_.at(i));
  }
  [[nodiscard]] std::string eu_name(eu_index i) const;

  /// Processor of the "home node": the node hosting the first Code_EU.
  /// Instance bookkeeping (activation, deadline monitoring) lives there.
  [[nodiscard]] node_id home_node() const { return home_; }

  /// Distinct processors referenced by this task's Code_EUs.
  [[nodiscard]] std::vector<node_id> processors() const;

  /// True when the precedence crosses processors (remote constraint).
  [[nodiscard]] bool is_remote(const precedence& p) const;

  /// Sum of Code_EU WCETs (the C_i of a single-node task).
  [[nodiscard]] duration total_wcet() const;

  /// EU indices in a (stable) topological order.
  [[nodiscard]] const std::vector<eu_index>& topological_order() const {
    return topo_;
  }

  /// True if any Code_EU claims at least one resource.
  [[nodiscard]] bool uses_resources() const;

  /// Number of local precedence constraints (both ends on the same node).
  [[nodiscard]] std::size_t local_precedence_count() const;

 private:
  friend class task_builder;
  friend class system;  // assigns the id at registration
  task_graph() = default;

  task_id id_ = invalid_task;
  std::string name_;
  duration deadline_ = duration::infinity();
  arrival_law law_;
  bool abort_on_miss_ = false;
  std::vector<elementary_unit> eus_;
  std::vector<precedence> precs_;
  std::vector<std::vector<eu_index>> preds_;
  std::vector<std::vector<eu_index>> succs_;
  std::vector<eu_index> topo_;
  node_id home_ = 0;
};

/// Fluent builder for HEUGs; `build()` validates the full graph.
class task_builder {
 public:
  explicit task_builder(std::string name) { graph_.name_ = std::move(name); }

  task_builder& deadline(duration d) {
    graph_.deadline_ = d;
    return *this;
  }
  task_builder& law(arrival_law l) {
    graph_.law_ = l;
    return *this;
  }
  task_builder& abort_on_deadline_miss(bool on = true) {
    graph_.abort_on_miss_ = on;
    return *this;
  }

  /// Add a Code_EU; returns its index for precedence wiring.
  eu_index add_code_eu(code_eu eu);

  /// Convenience: minimal Code_EU.
  eu_index add_code_eu(std::string name, node_id processor, duration wcet,
                       timing_attrs attrs = {});

  /// Add an Inv_EU; returns its index.
  eu_index add_inv_eu(std::string name, task_id target,
                      invocation_kind kind = invocation_kind::asynchronous);

  /// Add a precedence constraint from -> to.
  task_builder& precede(eu_index from, eu_index to,
                        std::size_t payload_bytes = 0);

  /// Validate and produce the immutable graph.
  [[nodiscard]] task_graph build();

 private:
  task_graph graph_;
};

/// Spuri's task model (paper section 5.1): a sporadic task with a critical
/// section on one resource, translated to a 3-unit HEUG (Figure 3).
struct spuri_task {
  std::string name;
  node_id processor = 0;
  duration c_before = duration::zero();
  duration cs = duration::zero();        // time inside the critical section
  duration c_after = duration::zero();
  std::optional<resource_id> resource;   // S; nullopt => no critical section
  duration deadline = duration::infinity();      // D_i
  duration pseudo_period = duration::infinity(); // T_i
  duration blocking_latest = duration::infinity();  // B'_i: latest start of cs unit
};

/// Figure 3 translation: Spuri model -> HEUG.
[[nodiscard]] task_graph translate_spuri(const spuri_task& t);

}  // namespace hades::core
