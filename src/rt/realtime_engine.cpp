#include "rt/realtime_engine.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>

#include "util/error.hpp"

namespace hades::rt {

namespace {

using sim::event_batch;
using sim::event_fn;
using sim::event_id;
using sim::invalid_event;

using steady = std::chrono::steady_clock;

[[nodiscard]] std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             steady::now().time_since_epoch())
      .count();
}

class realtime_engine final : public hades::runtime {
 public:
  explicit realtime_engine(realtime_params p) : p_(std::move(p)) {
    validate(p_.time_scale >= 1.0,
             "realtime_engine: time_scale must be >= 1 (real s per virtual s)");
    validate(p_.process_count >= 1, "realtime_engine: process_count >= 1");
    validate(p_.process_index < p_.process_count,
             "realtime_engine: process_index out of range");
    validate(p_.process_count == 1 || p_.node_count > 0,
             "realtime_engine: multi-process placement needs node_count");
    if (p_.epoch_ns == 0) p_.epoch_ns = steady_now_ns();
  }

  // --- clock ---------------------------------------------------------------

  [[nodiscard]] time_point now() const override {
    std::int64_t v = steady_now_ns() - p_.epoch_ns;
    if (v < 0) v = 0;  // pre-epoch (shared future epoch): virtual time is 0
    if (p_.time_scale != 1.0)
      v = static_cast<std::int64_t>(static_cast<double>(v) / p_.time_scale);
    // Monotone across threads: never report less than any prior answer (or
    // any date run_until already settled past).
    std::int64_t w = watermark_.load(std::memory_order_relaxed);
    while (v > w &&
           !watermark_.compare_exchange_weak(w, v, std::memory_order_relaxed)) {
    }
    return time_point::at(duration::nanoseconds(v > w ? v : w));
  }

  // --- scheduling ----------------------------------------------------------

  event_id at(time_point t, event_fn fn) override {
    validate(!t.is_infinite(), "realtime_engine::at: infinite date");
    std::lock_guard lk(mu_);
    return arm_locked(clamp(t), duration::infinity(), std::move(fn));
  }

  event_id at_node(node_id dst, time_point t, event_fn fn) override {
    // Foreign nodes run their own chains in their owning process; whatever
    // must cross processes rides the socket transport, never the scheduler.
    if (owner(dst) != p_.process_index) return invalid_event;
    return at(t, std::move(fn));
  }

  event_id schedule_periodic(time_point first, duration period,
                             event_fn fn) override {
    if (first.is_infinite() || period.is_infinite()) return invalid_event;
    validate(period.count() >= 1,
             "realtime_engine::schedule_periodic: period must be >= 1ns");
    std::lock_guard lk(mu_);
    return arm_locked(clamp(first), period, std::move(fn));
  }

  void cancel(event_id id) override {
    if (id == invalid_event) return;
    std::lock_guard lk(mu_);
    const auto idx = static_cast<std::uint32_t>(id.value >> 32) - 1;
    const auto gen = static_cast<std::uint32_t>(id.value & 0xFFFFFFFFu);
    if (idx >= slots_.size()) return;
    slot& s = slots_[idx];
    if (s.gen != gen || !s.active) return;  // stale: fired or cancelled
    s.active = false;
    if (s.staged) return;  // commit() frees skipped members
    if (s.queued) --pending_;  // not queued: a periodic executing right now
    free_slot_locked(idx);  // any heap entry goes stale and is skipped
  }

  // --- topology ------------------------------------------------------------

  [[nodiscard]] std::uint32_t shard_of(node_id n) const override {
    return owner(n);
  }
  [[nodiscard]] std::size_t shard_count() const override {
    return p_.process_count;
  }
  [[nodiscard]] std::uint32_t executing_shard() const override {
    return p_.process_index;
  }
  [[nodiscard]] std::size_t worker_count() const override { return 0; }
  [[nodiscard]] bool in_event_context() const override {
    return exec_tid_.load(std::memory_order_relaxed) ==
           std::this_thread::get_id();
  }

  // --- batches -------------------------------------------------------------

  event_batch open_batch(time_point t) override {
    validate(!t.is_infinite(), "realtime_engine::open_batch: infinite date");
    event_batch b;
    b.t = clamp(t);
    return b;
  }

  event_id batch_add(event_batch& b, event_fn fn) override {
    require(!b.committed, "realtime_engine::batch_add: batch already committed");
    std::lock_guard lk(mu_);
    const std::uint32_t idx = alloc_slot_locked();
    slot& s = slots_[idx];
    s.active = true;
    s.staged = true;
    s.t = b.t;
    s.period = duration::infinity();
    s.fn = std::move(fn);
    s.chain_next = nil;
    if (b.count == 0)
      b.head = idx;
    else
      slots_[b.tail].chain_next = idx;
    b.tail = idx;
    ++b.count;
    return make_id(idx);
  }

  void commit(event_batch& b) override {
    require(!b.committed, "realtime_engine::commit: batch already committed");
    b.committed = true;
    if (b.count == 0) return;
    std::lock_guard lk(mu_);
    // Members get consecutive sequence numbers at the commit point, so the
    // burst fires FIFO in add order and sits among same-instant events by
    // when it was committed — the contract's ordering rule.
    for (std::uint32_t idx = b.head; idx != nil;) {
      slot& s = slots_[idx];
      const std::uint32_t next = s.chain_next;
      if (s.active) {
        s.staged = false;
        s.queued = true;
        s.seq = ++seq_counter_;
        heap_.push({s.t, s.seq, idx, s.gen});
        ++pending_;
      } else {
        free_slot_locked(idx);  // cancelled while staged
      }
      idx = next;
    }
    cv_.notify_all();
  }

  // --- execution -----------------------------------------------------------

  bool step() override {
    std::unique_lock lk(mu_);
    for (;;) {
      if (!prune_top_locked()) return false;  // idle
      const entry e = heap_.top();
      if (!wait_for_locked(lk, e.t)) continue;  // an earlier event arrived
      if (!pop_top_if_locked(e)) continue;      // the head changed mid-wait
      if (fire_locked(e, lk)) return true;
    }
  }

  std::size_t run_until(time_point t) override {
    validate(!t.is_infinite(), "realtime_engine::run_until: infinite date");
    require(t >= now(), "realtime_engine::run_until: date in the past");
    std::size_t n = 0;
    std::unique_lock lk(mu_);
    for (;;) {
      if (prune_top_locked() && heap_.top().t <= t) {
        const entry e = heap_.top();
        if (!wait_for_locked(lk, e.t)) continue;
        if (!pop_top_if_locked(e)) continue;
        if (fire_locked(e, lk)) ++n;
        continue;
      }
      // Nothing (left) dated <= t: hold until the wall clock passes t — an
      // insertion meanwhile (a transport delivery) re-evaluates the loop.
      if (wait_for_locked(lk, t)) break;
    }
    // Settle the clock at exactly t for callers that schedule relative to
    // run_until's return (now() never regresses below this again).
    std::int64_t w = watermark_.load(std::memory_order_relaxed);
    while (t.nanoseconds() > w &&
           !watermark_.compare_exchange_weak(w, t.nanoseconds(),
                                             std::memory_order_relaxed)) {
    }
    return n;
  }

  std::size_t run(std::size_t max_events) override {
    std::size_t n = 0;
    std::unique_lock lk(mu_);
    while (n < max_events) {
      if (!prune_top_locked()) break;  // drained
      const entry e = heap_.top();
      if (!wait_for_locked(lk, e.t)) continue;
      if (!pop_top_if_locked(e)) continue;
      if (fire_locked(e, lk)) ++n;
    }
    return n;
  }

  [[nodiscard]] bool empty() const override {
    std::lock_guard lk(mu_);
    return pending_ == 0;
  }
  [[nodiscard]] std::size_t pending() const override {
    std::lock_guard lk(mu_);
    return pending_;
  }
  [[nodiscard]] std::uint64_t executed() const override {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint32_t nil = 0xFFFFFFFFu;

  struct slot {
    std::uint32_t gen = 1;
    bool active = false;
    bool staged = false;  // in an uncommitted batch chain, not in the heap
    bool queued = false;  // a live heap entry references this slot
    time_point t;
    duration period = duration::infinity();  // finite = periodic, slot persists
    std::uint64_t seq = 0;
    std::uint32_t chain_next = nil;  // staged-batch chain / free list
    event_fn fn;
  };

  struct entry {
    time_point t;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };
  struct entry_after {
    bool operator()(const entry& a, const entry& b) const {
      if (a.t.nanoseconds() != b.t.nanoseconds())
        return a.t.nanoseconds() > b.t.nanoseconds();
      return a.seq > b.seq;  // same instant: scheduling FIFO
    }
  };

  [[nodiscard]] std::uint32_t owner(node_id n) const {
    if (p_.process_count == 1) return 0;
    if (n < p_.node_process.size()) return p_.node_process[n];
    if (n < p_.node_count)
      return static_cast<std::uint32_t>(static_cast<std::size_t>(n) *
                                        p_.process_count / p_.node_count);
    return 0;
  }

  [[nodiscard]] time_point clamp(time_point t) const {
    // Real scheduling jitter can slide a chain's nominal date just behind
    // the clock; fire as soon as possible instead of rejecting (header).
    const time_point n = now();
    return t < n ? n : t;
  }

  [[nodiscard]] steady::time_point real_deadline(time_point t) const {
    std::int64_t ns = t.nanoseconds();
    if (p_.time_scale != 1.0)
      ns = static_cast<std::int64_t>(static_cast<double>(ns) * p_.time_scale);
    return steady::time_point(std::chrono::nanoseconds(p_.epoch_ns + ns));
  }

  [[nodiscard]] static event_id make_id_for(std::uint32_t idx,
                                            std::uint32_t gen) {
    return event_id{(static_cast<std::uint64_t>(idx) + 1) << 32 | gen};
  }
  [[nodiscard]] event_id make_id(std::uint32_t idx) const {
    return make_id_for(idx, slots_[idx].gen);
  }

  std::uint32_t alloc_slot_locked() {
    if (free_head_ != nil) {
      const std::uint32_t idx = free_head_;
      free_head_ = slots_[idx].chain_next;
      slots_[idx].chain_next = nil;
      return idx;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void free_slot_locked(std::uint32_t idx) {
    slot& s = slots_[idx];
    s.fn.reset();
    s.active = false;
    s.staged = false;
    s.queued = false;
    s.period = duration::infinity();
    ++s.gen;  // stale ids and stale heap entries can never alias the slot
    s.chain_next = free_head_;
    free_head_ = idx;
  }

  event_id arm_locked(time_point t, duration period, event_fn fn) {
    const std::uint32_t idx = alloc_slot_locked();
    slot& s = slots_[idx];
    s.active = true;
    s.staged = false;
    s.queued = true;
    s.t = t;
    s.period = period;
    s.seq = ++seq_counter_;
    s.fn = std::move(fn);
    heap_.push({t, s.seq, idx, s.gen});
    ++pending_;
    cv_.notify_all();  // a waiting run loop re-evaluates its horizon
    return make_id(idx);
  }

  /// Drop stale heap heads (cancelled or re-armed slots). Returns true when
  /// a live top entry remains.
  bool prune_top_locked() {
    while (!heap_.empty()) {
      const entry& e = heap_.top();
      const slot& s = slots_[e.slot];
      if (s.gen == e.gen && s.active && s.seq == e.seq) return true;
      heap_.pop();
    }
    return false;
  }

  /// Pop the heap head only if it is still exactly `e`. wait_for_locked
  /// releases mu_ inside the condvar wait, so a transport thread can arm a
  /// new entry that sorts before `e` and still observe the deadline passed
  /// on wake-up; a blind pop would then discard the NEW head while firing
  /// `e`, silently losing the new event (pending_ never drains). Any such
  /// new head sorts <= e, so its deadline has passed too — the caller just
  /// re-evaluates and fires it first.
  bool pop_top_if_locked(const entry& e) {
    if (heap_.empty()) return false;
    const entry& top = heap_.top();
    if (top.slot != e.slot || top.gen != e.gen || top.seq != e.seq)
      return false;
    heap_.pop();
    return true;
  }

  /// Block until the wall clock reaches virtual date `t`. Returns true when
  /// the date was reached; false when woken early (new work may have
  /// changed the earliest deadline — re-evaluate).
  bool wait_for_locked(std::unique_lock<std::mutex>& lk, time_point t) {
    const steady::time_point deadline = real_deadline(t);
    if (steady::now() >= deadline) return true;
    cv_.wait_until(lk, deadline);
    return steady::now() >= deadline;
  }

  /// Execute a popped (validated-or-stale) entry. The lock is released
  /// around the callback; periodic slots re-arm afterwards unless cancelled
  /// mid-flight. Returns false for stale entries.
  bool fire_locked(const entry& e, std::unique_lock<std::mutex>& lk) {
    slot& s = slots_[e.slot];
    if (s.gen != e.gen || !s.active || s.seq != e.seq) return false;
    s.queued = false;
    --pending_;
    const bool periodic = !s.period.is_infinite();
    const time_point next = s.t + s.period;
    const std::uint32_t idx = e.slot;
    const std::uint32_t gen = e.gen;
    event_fn fn = std::move(s.fn);
    // One-shot slots are freed before the callback runs: cancel-after-fire
    // is a generation mismatch, and the callback may re-use the slot.
    if (!periodic) free_slot_locked(idx);
    exec_tid_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    lk.unlock();
    fn();
    lk.lock();
    exec_tid_.store(std::thread::id{}, std::memory_order_relaxed);
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (periodic) {
      slot& s2 = slots_[idx];
      if (s2.gen == gen && s2.active) {
        // Drift-free: the next date advances by exactly one period from the
        // nominal date, not from the (jittered) firing instant.
        s2.fn = std::move(fn);
        s2.t = next;
        s2.seq = ++seq_counter_;
        s2.queued = true;
        heap_.push({next, s2.seq, idx, gen});
        ++pending_;
      }
      // else: cancelled during execution; the slot is already freed.
    }
    return true;
  }

  realtime_params p_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<slot> slots_;
  std::uint32_t free_head_ = nil;
  std::priority_queue<entry, std::vector<entry>, entry_after> heap_;
  std::uint64_t seq_counter_ = 0;
  std::size_t pending_ = 0;
  std::atomic<std::uint64_t> executed_{0};
  mutable std::atomic<std::int64_t> watermark_{0};
  std::atomic<std::thread::id> exec_tid_{};
};

}  // namespace

std::unique_ptr<hades::runtime> make_realtime_engine(realtime_params p) {
  return std::make_unique<realtime_engine>(std::move(p));
}

}  // namespace hades::rt
