// Real-clock runtime backend (DESIGN.md, "Runtime factory & injector API").
//
// The same `hades::runtime` contract the discrete-event backends implement,
// driven by `std::chrono::steady_clock`: virtual time t maps to the real
// instant `epoch + t * time_scale`, and a condvar wait loop fires each
// pending event when the wall clock passes its date. Dispatchers, services,
// the scenario injector — everything programmed against `hades::runtime` —
// run unmodified; what was simulated latency becomes actual elapsed time.
//
// Contract notes specific to this backend:
//   * `now()` derives from the wall clock (monotone via a watermark, so it
//     never regresses even across threads); during a callback it reads the
//     actual firing instant, which is >= the scheduled date, never exactly
//     equal. Time starts at ~0: construction (or the configured shared
//     epoch) is virtual zero, and pre-epoch reads clamp to 0.
//   * `at` clamps past dates to now instead of rejecting them — under real
//     scheduling jitter a periodic chain legitimately re-arms a date that
//     just slipped behind the clock; the event fires as soon as possible
//     and FIFO order among clamped events is preserved.
//   * every scheduling call (`at`, `cancel`, batches) is thread-safe: a
//     socket transport's receiver thread injects deliveries while the run
//     loop executes. Callbacks themselves execute on the thread inside
//     `run`/`run_until`/`step`, one at a time.
//   * multi-process placement: with `process_count > 1`, `node_process`
//     assigns each node an owning process. `shard_of` reports the owner,
//     `at_node` on a foreign node is dropped (returns `invalid_event`) —
//     the owner runs the equivalent chain; what must cross processes rides
//     the socket transport, not the scheduler.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/runtime.hpp"
#include "util/types.hpp"

namespace hades::rt {

struct realtime_params {
  /// Shared steady_clock epoch (nanoseconds since the clock's arbitrary
  /// zero) mapping to virtual time 0; 0 = construction instant. A
  /// multi-process harness picks one epoch slightly in the future and hands
  /// it to every process so their virtual clocks agree.
  std::int64_t epoch_ns = 0;
  /// Real seconds per virtual second (> 1 slows the run down, giving tight
  /// plans more real headroom per virtual Δ).
  double time_scale = 1.0;
  std::uint32_t process_index = 0;
  std::size_t process_count = 1;
  /// node -> owning process; nodes past the end (or with an empty vector)
  /// map to contiguous balanced blocks over `node_count`.
  std::vector<std::uint32_t> node_process;
  std::size_t node_count = 0;
};

std::unique_ptr<hades::runtime> make_realtime_engine(realtime_params p = {});

/// Ensure "sim", "sharded", and "realtime" are registered with
/// `hades::runtime::make`'s registry. Idempotent; `runtime::make` and
/// `runtime::registered_backends` call it on first use, so user code only
/// needs it when registering additional backends *before* the built-ins.
void register_builtin_backends();

}  // namespace hades::rt
