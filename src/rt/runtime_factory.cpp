// Runtime backend registry (the `runtime::make` factory) plus the built-in
// registrations. Lives in src/rt — the one layer allowed to name every
// concrete backend — so composition layers (core::system, the scenario
// deployment, tools) select backends by name only.
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "rt/realtime_engine.hpp"
#include "sim/runtime.hpp"
#include "util/error.hpp"

namespace hades {

namespace {

struct registry {
  std::mutex mu;
  std::map<std::string, runtime::factory_fn> backends;
};

registry& the_registry() {
  static registry r;
  return r;
}

/// The default node map every built-in multi-group backend shares:
/// contiguous balanced blocks (`n * groups / node_count`). Workloads place
/// communicating tasks on neighbouring node ids, so blocks minimize
/// cross-group traffic — and the sharded/realtime backends agree on
/// placement, which the sim-vs-real harness relies on.
std::vector<std::uint32_t> contiguous_blocks(std::size_t node_count,
                                             std::size_t groups) {
  std::vector<std::uint32_t> map(node_count);
  for (std::size_t n = 0; n < node_count; ++n)
    map[n] = static_cast<std::uint32_t>(n * groups / node_count);
  return map;
}

}  // namespace

void runtime::register_backend(const std::string& name, factory_fn f) {
  validate(!name.empty(), "runtime::register_backend: empty backend name");
  validate(f != nullptr, "runtime::register_backend: null factory");
  registry& r = the_registry();
  std::lock_guard lk(r.mu);
  r.backends[name] = std::move(f);  // last registration wins
}

std::unique_ptr<runtime> runtime::make(const options& o) {
  rt::register_builtin_backends();
  runtime::factory_fn f;
  {
    registry& r = the_registry();
    std::lock_guard lk(r.mu);
    auto it = r.backends.find(o.backend);
    validate(it != r.backends.end(),
             "runtime::make: unknown backend \"" + o.backend + "\"");
    f = it->second;
  }
  return f(o);
}

std::vector<std::string> runtime::registered_backends() {
  rt::register_builtin_backends();
  registry& r = the_registry();
  std::lock_guard lk(r.mu);
  std::vector<std::string> names;
  names.reserve(r.backends.size());
  for (const auto& [name, f] : r.backends) names.push_back(name);
  return names;  // std::map iterates sorted
}

namespace rt {

void register_builtin_backends() {
  static std::once_flag once;
  std::call_once(once, [] {
    runtime::register_backend(
        "sim", [](const runtime::options&) { return sim::make_engine(); });

    runtime::register_backend("sharded", [](const runtime::options& o) {
      sim::sharded_params sp;
      sp.shards = o.shards != 0 ? o.shards : sim::sharded_params{}.shards;
      if (o.node_count > 0) sp.shards = std::min(sp.shards, o.node_count);
      sp.workers = o.workers;
      sp.lookahead = o.lookahead;
      sp.node_shard = !o.node_shard.empty()
                          ? o.node_shard
                          : contiguous_blocks(o.node_count, sp.shards);
      return sim::make_sharded_engine(std::move(sp));
    });

    runtime::register_backend("realtime", [](const runtime::options& o) {
      realtime_params rp;
      rp.epoch_ns = o.epoch_ns;
      rp.time_scale = o.time_scale;
      rp.process_index = o.process_index;
      rp.process_count = o.process_count;
      rp.node_count = o.node_count;
      rp.node_process = !o.node_shard.empty()
                            ? o.node_shard
                            : (o.process_count > 1
                                   ? contiguous_blocks(o.node_count,
                                                       o.process_count)
                                   : std::vector<std::uint32_t>{});
      return make_realtime_engine(std::move(rp));
    });
  });
}

}  // namespace rt

}  // namespace hades
