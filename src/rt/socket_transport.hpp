// UDP loopback transport + netem-style fault shim for multi-process
// realtime runs (DESIGN.md, "Runtime factory & injector API").
//
// One transport per OS process, one UDP socket per transport, bound to
// 127.0.0.1:(base_port + process_index). It plugs into the process-local
// `sim::network` through the remote hook: frames whose destination node is
// owned by another process are serialized (sim/wire_codec) and shipped as
// one length-delimited datagram each; everything else falls through to the
// simulated LAN untouched.
//
// The shim side implements `scenario::fault_injector`, consuming the same
// declarative plans the simulated network does (via `scenario::
// preregister`). Fault decisions for cross-process frames happen on the
// sending side *before* a link sequence number is consumed:
//   * drop    — src/dst down, partition, or an omission-rate draw: the
//               frame is never sent, so receivers see no artificial gap;
//   * delay   — a performance-fault draw holds the frame in a timed sender
//               queue for the configured extra duration (which also yields
//               reordering, as later undelayed frames overtake it); the
//               intentional delay rides the frame header so the receiver's
//               Δ check does not count it against the network.
// Receivers recover per-link FIFO with a sequence hold-back window: a gap
// (a genuinely lost datagram) is declared lost after a bounded hold and
// skipped — the same observable outcome as an omission fault, which every
// HADES service already tolerates. The hold stretches to cover the largest
// registered performance-fault delay, and a declared-lost frame that does
// arrive later is still delivered (late, out of FIFO order — the sim's
// perf-fault semantics) instead of degenerating into an omission.
//
// Monitor events forwarded across processes (`monitor::set_forwarder`)
// ride the same socket but bypass both the fault shim and sequence
// recovery: in-process they travel through the scheduler, not the LAN, so
// the transport must not subject them to wire faults.
//
// The receiver measures real end-to-end latency (minus any intentional
// extra delay) against the configured delta_max and counts violations; the
// harness fails loudly when the wall clock broke the Δ bound the checkers'
// verdicts assume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/monitor.hpp"
#include "scenario/fault_injector.hpp"
#include "sim/network.hpp"
#include "sim/runtime.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace hades::rt {

struct socket_transport_params {
  std::uint32_t process_index = 0;
  std::size_t process_count = 1;
  /// node -> owning process; empty = contiguous balanced blocks over
  /// `node_count` (must match the realtime engine's map).
  std::vector<std::uint32_t> node_process;
  std::size_t node_count = 0;
  /// Peer i listens on 127.0.0.1:(base_port + i).
  std::uint16_t base_port = 47000;
  std::uint64_t seed = 42;  // omission / performance-fault draws
  /// Upper bound the Δ-violation check enforces on real (uninjected)
  /// delivery latency; use the network's delta_max.
  duration delta_max = duration::milliseconds(5);
  /// Real ns per virtual ns (the engine's time_scale): intentional delays
  /// are virtual durations and stretch accordingly in real time.
  double time_scale = 1.0;
  /// How long the receiver holds frames behind a sequence gap before
  /// declaring the missing frame lost (real time). The effective window
  /// additionally covers the largest registered performance-fault delay
  /// (stretched by time_scale) so an intentionally delayed frame is held
  /// for, not declared lost; one that still outlasts the window is
  /// delivered late on arrival rather than dropped as a duplicate.
  duration holdback = duration::milliseconds(5);
};

class socket_transport final : public scenario::fault_injector {
 public:
  socket_transport(hades::runtime& rt, sim::network& net, core::monitor& mon,
                   socket_transport_params p);
  ~socket_transport() override;
  socket_transport(const socket_transport&) = delete;
  socket_transport& operator=(const socket_transport&) = delete;

  /// Open the socket, start the receiver/delay threads, and install the
  /// network remote hook + monitor forwarder. Call after every node is
  /// attached and before the run loop starts.
  void start();
  /// Uninstall hooks, stop threads, close the socket. Idempotent; the
  /// destructor calls it.
  void stop();

  // --- scenario::fault_injector (the netem shim) -------------------------
  void set_node_down_at(time_point t, node_id n, bool down) override;
  void partition_at(time_point t,
                    const std::vector<std::vector<node_id>>& groups) override;
  void heal_partition_at(time_point t) override;
  void set_omission_rate_at(time_point t, double p) override;
  void set_performance_fault_at(time_point t, double rate,
                                duration extra) override;

  struct stats_t {
    std::uint64_t sent = 0;           // datagrams handed to the socket
    std::uint64_t received = 0;       // datagrams parsed
    std::uint64_t dropped_fault = 0;  // shim drops (down/partition/omission)
    std::uint64_t delayed = 0;        // performance-fault holds
    std::uint64_t dup_dropped = 0;    // below-floor / duplicate sequence
    std::uint64_t gaps_declared = 0;  // lost datagrams skipped by hold-back
    std::uint64_t late_delivered = 0; // declared-lost frames arriving late
    std::uint64_t delta_violations = 0;
    std::int64_t max_latency_ns = 0;  // real latency, intentional delay excluded
  };
  [[nodiscard]] stats_t stats() const;

  [[nodiscard]] std::uint32_t owner(node_id n) const;

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace hades::rt
