#include "rt/codecs.hpp"

#include <cstring>
#include <mutex>
#include <string>
#include <type_traits>

#include "core/dispatcher.hpp"
#include "services/reliable_comm.hpp"
#include "sim/wire_codec.hpp"
#include "util/error.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace hades::rt {

namespace {

// Stable payload tags — the cross-process protocol. Never renumber a
// shipped tag; add new types at the end.
enum : std::uint32_t {
  tag_u64 = 1,            // heartbeat counters (services/fault_detector)
  tag_int = 2,            // campaign application payload
  tag_control_token = 3,  // dispatcher control channel
  tag_node_vec = 4,       // fault-detector suspicion digests
  tag_bcast_msg = 5,      // reliable_broadcast envelope (nested payload)
};

void put_bytes(std::vector<std::byte>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  out.insert(out.end(), b, b + n);
}

template <typename T>
void put(std::vector<std::byte>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_bytes(out, &v, sizeof v);
}

/// Bounds-checked sequential reader for decode paths.
struct reader {
  const std::byte* p;
  std::size_t left;

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    validate(left >= sizeof(T), "rt codec: truncated frame");
    T v;
    std::memcpy(&v, p, sizeof v);
    p += sizeof(T);
    left -= sizeof(T);
    return v;
  }
  const std::byte* take(std::size_t n) {
    validate(left >= n, "rt codec: truncated frame");
    const std::byte* q = p;
    p += n;
    left -= n;
    return q;
  }
};

void put_string(std::vector<std::byte>& out, const std::string& s) {
  put(out, static_cast<std::uint32_t>(s.size()));
  put_bytes(out, s.data(), s.size());
}

std::string get_string(reader& r) {
  const auto n = r.get<std::uint32_t>();
  const std::byte* q = r.take(n);
  return {reinterpret_cast<const char*>(q), n};
}

}  // namespace

void register_hades_codecs() {
  static std::once_flag once;
  std::call_once(once, [] {
    using sim::wire_codec;
    using sim::wire_payload;

    wire_codec::register_trivial<std::uint64_t>(tag_u64);
    wire_codec::register_trivial<int>(tag_int);
    static_assert(std::is_trivially_copyable_v<core::control_token>);
    wire_codec::register_trivial<core::control_token>(tag_control_token);

    wire_codec::register_codec(
        tag_node_vec,
        [](const wire_payload& p, std::vector<std::byte>& out) {
          const auto* v = p.get<std::vector<node_id>>();
          if (v == nullptr) return false;
          put(out, static_cast<std::uint32_t>(v->size()));
          put_bytes(out, v->data(), v->size() * sizeof(node_id));
          return true;
        },
        [](const std::byte* data, std::size_t len) {
          reader r{data, len};
          const auto n = r.get<std::uint32_t>();
          std::vector<node_id> v(n);
          std::memcpy(v.data(), r.take(n * sizeof(node_id)),
                      n * sizeof(node_id));
          return wire_payload(std::move(v));
        });

    // Broadcast envelopes nest an arbitrary payload: encode it recursively
    // as (tag, length, bytes). An unregistered nested type throws from the
    // inner encode — the same loud failure as a bare payload.
    wire_codec::register_codec(
        tag_bcast_msg,
        [](const wire_payload& p, std::vector<std::byte>& out) {
          using bcast_msg = svc::reliable_broadcast::bcast_msg;
          const auto* m = p.get<bcast_msg>();
          if (m == nullptr) return false;
          put(out, m->origin);
          put(out, m->seq);
          put(out, m->sent_at.nanoseconds());
          put(out, static_cast<std::uint64_t>(m->size_bytes));
          std::vector<std::byte> nested;
          const std::uint32_t nested_tag = wire_codec::encode(m->payload, nested);
          put(out, nested_tag);
          put(out, static_cast<std::uint32_t>(nested.size()));
          put_bytes(out, nested.data(), nested.size());
          return true;
        },
        [](const std::byte* data, std::size_t len) {
          using bcast_msg = svc::reliable_broadcast::bcast_msg;
          reader r{data, len};
          bcast_msg m;
          m.origin = r.get<node_id>();
          m.seq = r.get<std::uint64_t>();
          m.sent_at = time_point::at(
              duration::nanoseconds(r.get<std::int64_t>()));
          m.size_bytes = static_cast<std::size_t>(r.get<std::uint64_t>());
          const auto nested_tag = r.get<std::uint32_t>();
          const auto nested_len = r.get<std::uint32_t>();
          m.payload = wire_codec::decode(nested_tag, r.take(nested_len),
                                         nested_len);
          return wire_payload(std::move(m));
        });
  });
}

void encode_monitor_event(const core::monitor_event& e,
                          std::vector<std::byte>& out) {
  put(out, static_cast<std::uint32_t>(e.kind));
  put(out, e.at.nanoseconds());
  put(out, e.node);
  put(out, e.task);
  put(out, e.instance);
  put_string(out, e.subject);
  put_string(out, e.detail);
}

core::monitor_event decode_monitor_event(const std::byte* data,
                                         std::size_t len) {
  reader r{data, len};
  core::monitor_event e;
  e.kind = static_cast<core::monitor_event_kind>(r.get<std::uint32_t>());
  e.at = time_point::at(duration::nanoseconds(r.get<std::int64_t>()));
  e.node = r.get<node_id>();
  e.task = r.get<task_id>();
  e.instance = r.get<instance_number>();
  e.subject = get_string(r);
  e.detail = get_string(r);
  return e;
}

}  // namespace hades::rt
