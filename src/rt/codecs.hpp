// Wire-codec registrations for the HADES service payload types, plus the
// monitor-event byte codec the socket transport's forwarding path uses.
// Every process of a multi-process deployment calls
// `register_hades_codecs()` once at startup so the (tag, type) protocol
// agrees across the fleet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/monitor.hpp"

namespace hades::rt {

/// Register codecs for everything HADES services put on the wire:
/// dispatcher control tokens, heartbeats, fault-detector digests,
/// reliable-broadcast envelopes (with their nested payload, recursively
/// encoded), and the plain `int` campaign application payload. Idempotent.
void register_hades_codecs();

/// Serialize / rebuild a monitor event (cross-process `subscribe_at_node`
/// forwarding). Length-prefixed strings; same-binary byte format, like the
/// trivial payload codecs.
void encode_monitor_event(const core::monitor_event& e,
                          std::vector<std::byte>& out);
core::monitor_event decode_monitor_event(const std::byte* data,
                                         std::size_t len);

}  // namespace hades::rt
