#include "rt/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <queue>
#include <set>
#include <string>
#include <thread>
#include <utility>

#include "rt/codecs.hpp"
#include "sim/wire_codec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hades::rt {

namespace {

using steady = std::chrono::steady_clock;

constexpr std::uint32_t frame_magic = 0x48444553;  // "HDES"
constexpr std::uint8_t kind_data = 0;
constexpr std::uint8_t kind_monitor = 1;
constexpr std::size_t max_datagram = 60000;
constexpr std::size_t max_held = 64;  // hold-back window per link

struct frame_header {
  std::uint32_t magic = frame_magic;
  std::uint8_t kind = kind_data;
  std::uint8_t pad[3] = {};
  node_id src = invalid_node;
  node_id dst = invalid_node;  // monitor frames: the home node
  std::int32_t channel = 0;
  std::uint64_t link_seq = 0;  // data frames only
  std::int64_t sent_at_ns = 0;
  std::int64_t extra_delay_ns = 0;  // intentional (perf-fault) delay
  std::uint64_t msg_id = 0;
  std::uint64_t size_bytes = 0;
  std::uint32_t payload_tag = 0;
  std::uint32_t payload_len = 0;
};
static_assert(std::is_trivially_copyable_v<frame_header>);

/// Date-keyed state timeline: upper_bound reads, last-write-wins at equal
/// dates — the same read discipline as `sim::network`'s snapshots, small
/// and mutex-protected because the socket path is not a hot path.
template <typename T>
struct timeline {
  std::vector<std::pair<std::int64_t, T>> entries;  // sorted by date

  void set(std::int64_t t, T v) {
    auto it = std::upper_bound(
        entries.begin(), entries.end(), t,
        [](std::int64_t a, const auto& e) { return a < e.first; });
    if (it != entries.begin() && std::prev(it)->first == t)
      std::prev(it)->second = std::move(v);
    else
      entries.insert(it, {t, std::move(v)});
  }
  [[nodiscard]] const T* at(std::int64_t t) const {
    auto it = std::upper_bound(
        entries.begin(), entries.end(), t,
        [](std::int64_t a, const auto& e) { return a < e.first; });
    return it == entries.begin() ? nullptr : &std::prev(it)->second;
  }
};

struct perf_state {
  double rate = 0.0;
  std::int64_t extra_ns = 0;
};

struct held_frame {
  std::vector<std::byte> bytes;
  steady::time_point arrived;
};

constexpr std::size_t max_lost_tracked = 4096;  // declared-gap seqs per link

struct link_state {
  std::uint64_t next_send_seq = 0;  // sender side
  std::uint64_t expected = 1;       // receiver side
  std::map<std::uint64_t, held_frame> held;
  // Sequences declared lost by the hold-back window: a below-floor frame
  // matching one of these is a delayed frame finally arriving, not a
  // duplicate — deliver it late instead of dropping it.
  std::set<std::uint64_t> lost;
};

struct delayed_send {
  steady::time_point due;
  std::uint32_t dest_proc;
  std::vector<std::byte> bytes;
  bool operator>(const delayed_send& o) const { return due > o.due; }
};

}  // namespace

struct socket_transport::impl {
  socket_transport_params p;
  hades::runtime* rt;
  sim::network* net;
  core::monitor* mon;

  int fd = -1;
  std::thread receiver;
  std::thread delayer;
  std::atomic<bool> running{false};
  bool started = false;

  // Sender-side state (hook runs on the event loop; the shim setters run
  // wherever preregistration happens): one mutex covers it all.
  mutable std::mutex mu;
  std::vector<timeline<bool>> node_down;           // node-indexed
  timeline<std::vector<std::uint32_t>> partition;  // node -> group (empty = healed)
  timeline<double> omission;
  timeline<perf_state> perf;
  std::int64_t max_perf_extra_ns = 0;  // largest registered intentional delay
  std::map<std::pair<node_id, node_id>, link_state> links;
  rng draws;
  stats_t st;

  std::condition_variable delay_cv;
  std::priority_queue<delayed_send, std::vector<delayed_send>,
                      std::greater<delayed_send>>
      delay_q;

  explicit impl(socket_transport_params params) : p(std::move(params)), draws(p.seed) {}

  [[nodiscard]] std::uint32_t owner_of(node_id n) const {
    if (n < p.node_process.size()) return p.node_process[n];
    if (p.node_count == 0 || p.process_count <= 1) return 0;
    return static_cast<std::uint32_t>(static_cast<std::size_t>(n) *
                                      p.process_count / p.node_count);
  }

  [[nodiscard]] bool partitioned_locked(node_id a, node_id b,
                                        std::int64_t t) const {
    const auto* groups = partition.at(t);
    if (groups == nullptr || groups->empty()) return false;
    const auto ga = a < groups->size() ? (*groups)[a] : UINT32_MAX;
    const auto gb = b < groups->size() ? (*groups)[b] : UINT32_MAX;
    // Nodes outside every named group stay connected to everyone.
    if (ga == UINT32_MAX || gb == UINT32_MAX) return false;
    return ga != gb;
  }

  [[nodiscard]] bool down_locked(node_id n, std::int64_t t) const {
    if (n >= node_down.size()) return false;
    const bool* d = node_down[n].at(t);
    return d != nullptr && *d;
  }

  void send_to(std::uint32_t proc, const std::byte* data, std::size_t len) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(p.base_port + proc));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    (void)::sendto(fd, data, len, 0, reinterpret_cast<sockaddr*>(&addr),
                   sizeof addr);
  }

  /// Network remote hook: true = frame consumed (shipped or shim-dropped).
  bool on_submit(const sim::message& m) {
    if (owner_of(m.dst) == p.process_index) return false;  // local: sim LAN
    const std::int64_t t = m.sent_at.nanoseconds();
    std::vector<std::byte> buf;
    std::uint32_t dest_proc;
    std::int64_t extra_ns = 0;
    {
      std::lock_guard lk(mu);
      // Fault decisions before a sequence number is consumed: a shim drop
      // leaves no gap for the receiver's recovery to wait on.
      if (down_locked(m.src, t) || down_locked(m.dst, t) ||
          partitioned_locked(m.src, m.dst, t)) {
        ++st.dropped_fault;
        return true;
      }
      if (const double* pr = omission.at(t);
          pr != nullptr && *pr > 0.0 && draws.chance(*pr)) {
        ++st.dropped_fault;
        return true;
      }
      if (const perf_state* pf = perf.at(t);
          pf != nullptr && pf->rate > 0.0 && draws.chance(pf->rate))
        extra_ns = pf->extra_ns;

      frame_header h;
      h.kind = kind_data;
      h.src = m.src;
      h.dst = m.dst;
      h.channel = m.channel;
      h.link_seq = ++links[{m.src, m.dst}].next_send_seq;
      h.sent_at_ns = t;
      h.extra_delay_ns = extra_ns;
      h.msg_id = m.id;
      h.size_bytes = m.size_bytes;

      std::vector<std::byte> payload;
      h.payload_tag = sim::wire_codec::encode(m.payload, payload);
      h.payload_len = static_cast<std::uint32_t>(payload.size());
      validate(sizeof h + payload.size() <= max_datagram,
               "socket_transport: payload exceeds one datagram");
      buf.resize(sizeof h + payload.size());
      std::memcpy(buf.data(), &h, sizeof h);
      std::memcpy(buf.data() + sizeof h, payload.data(), payload.size());
      dest_proc = owner_of(m.dst);
      ++st.sent;
      if (extra_ns > 0) ++st.delayed;
    }
    if (extra_ns > 0) {
      const auto real_extra = std::chrono::nanoseconds(static_cast<std::int64_t>(
          static_cast<double>(extra_ns) * p.time_scale));
      std::lock_guard lk(mu);
      delay_q.push({steady::now() + real_extra, dest_proc, std::move(buf)});
      delay_cv.notify_one();
    } else {
      send_to(dest_proc, buf.data(), buf.size());
    }
    return true;
  }

  /// Monitor forwarder: true = home is foreign, event shipped. Bypasses
  /// the fault shim — in-process this path is the scheduler, not the LAN.
  bool on_forward(const core::monitor_event& e, node_id home, duration) {
    const std::uint32_t dest_proc = owner_of(home);
    if (dest_proc == p.process_index) return false;
    std::vector<std::byte> payload;
    encode_monitor_event(e, payload);
    frame_header h;
    h.kind = kind_monitor;
    h.dst = home;
    h.sent_at_ns = e.at.nanoseconds();
    h.payload_len = static_cast<std::uint32_t>(payload.size());
    validate(sizeof h + payload.size() <= max_datagram,
             "socket_transport: monitor event exceeds one datagram");
    std::vector<std::byte> buf(sizeof h + payload.size());
    std::memcpy(buf.data(), &h, sizeof h);
    std::memcpy(buf.data() + sizeof h, payload.data(), payload.size());
    {
      std::lock_guard lk(mu);
      ++st.sent;
    }
    send_to(dest_proc, buf.data(), buf.size());
    return true;
  }

  void deliver(const frame_header& h, const std::byte* payload) {
    if (h.kind == kind_monitor) {
      mon->deliver_forwarded(decode_monitor_event(payload, h.payload_len),
                             h.dst);
      return;
    }
    sim::message m;
    m.src = h.src;
    m.dst = h.dst;
    m.channel = h.channel;
    m.size_bytes = static_cast<std::size_t>(h.size_bytes);
    m.id = h.msg_id;
    m.sent_at = time_point::at(duration::nanoseconds(h.sent_at_ns));
    m.payload = sim::wire_codec::decode(h.payload_tag, payload, h.payload_len);
    // Real delivery latency, the intentional perf-fault delay excluded,
    // must honor the Δ bound the checkers assume — or the harness fails.
    const std::int64_t lat =
        rt->now().nanoseconds() - h.sent_at_ns - h.extra_delay_ns;
    {
      std::lock_guard lk(mu);
      st.max_latency_ns = std::max(st.max_latency_ns, lat);
      if (lat > p.delta_max.count()) ++st.delta_violations;
    }
    net->deliver_remote(std::move(m));
  }

  void handle_datagram(const std::byte* data, std::size_t len) {
    frame_header h;
    if (len < sizeof h) return;
    std::memcpy(&h, data, sizeof h);
    if (h.magic != frame_magic || len != sizeof h + h.payload_len) return;
    {
      std::lock_guard lk(mu);
      ++st.received;
    }
    const std::byte* payload = data + sizeof h;
    if (h.kind == kind_monitor) {
      deliver(h, payload);
      return;
    }
    // Per-link FIFO recovery: deliver in sequence order, holding frames
    // that arrive ahead of a gap.
    std::vector<std::vector<std::byte>> ready;
    {
      std::lock_guard lk(mu);
      link_state& l = links[{h.src, h.dst}];
      if (h.link_seq < l.expected) {
        const auto it = l.lost.find(h.link_seq);
        if (it == l.lost.end()) {
          ++st.dup_dropped;
          return;
        }
        // A declared-lost frame finally arrived (a perf-fault delay that
        // outlasted the hold-back window): deliver it late, outside FIFO
        // order — the sim delivers a perf-faulted message late, never as
        // an extra omission.
        l.lost.erase(it);
        ++st.late_delivered;
      } else if (h.link_seq > l.expected) {
        held_frame held;
        held.bytes.assign(data, data + len);
        held.arrived = steady::now();
        l.held.emplace(h.link_seq, std::move(held));
        return;
      } else {
        ++l.expected;
        while (!l.held.empty() && l.held.begin()->first == l.expected) {
          ready.push_back(std::move(l.held.begin()->second.bytes));
          l.held.erase(l.held.begin());
          ++l.expected;
        }
      }
    }
    deliver(h, payload);
    for (const auto& bytes : ready) {
      frame_header rh;
      std::memcpy(&rh, bytes.data(), sizeof rh);
      deliver(rh, bytes.data() + sizeof rh);
    }
  }

  /// Declare datagrams behind an over-age or over-full hold-back window
  /// lost and resume from the oldest held frame (observably an omission).
  void flush_expired_holdbacks() {
    std::vector<std::vector<std::byte>> ready;
    {
      std::lock_guard lk(mu);
      const auto now = steady::now();
      // The base window covers real loopback jitter; a registered
      // performance fault additionally holds its victims for extra_ns
      // stretched by time_scale on the sender, so the window must stretch
      // with it or every injected delay degenerates into an omission.
      const auto max_age = std::chrono::nanoseconds(
          p.holdback.count() +
          static_cast<std::int64_t>(static_cast<double>(max_perf_extra_ns) *
                                    p.time_scale));
      for (auto& [link, l] : links) {
        if (l.held.empty()) continue;
        const bool expired =
            l.held.size() > max_held ||
            now - l.held.begin()->second.arrived > max_age;
        if (!expired) continue;
        ++st.gaps_declared;
        // Remember the skipped sequences: should one arrive after all (a
        // delay beyond even the stretched window), it is delivered late
        // rather than mistaken for a duplicate.
        for (std::uint64_t s = l.expected; s < l.held.begin()->first; ++s) {
          if (l.lost.size() >= max_lost_tracked) l.lost.erase(l.lost.begin());
          l.lost.insert(s);
        }
        l.expected = l.held.begin()->first;
        while (!l.held.empty() && l.held.begin()->first == l.expected) {
          ready.push_back(std::move(l.held.begin()->second.bytes));
          l.held.erase(l.held.begin());
          ++l.expected;
        }
      }
    }
    for (const auto& bytes : ready) {
      frame_header rh;
      std::memcpy(&rh, bytes.data(), sizeof rh);
      deliver(rh, bytes.data() + sizeof rh);
    }
  }

  void receive_loop() {
    std::vector<std::byte> buf(1 << 16);
    while (running.load(std::memory_order_relaxed)) {
      pollfd pfd{fd, POLLIN, 0};
      const int r = ::poll(&pfd, 1, 1 /*ms*/);
      if (r > 0 && (pfd.revents & POLLIN) != 0) {
        for (;;) {
          const ssize_t n =
              ::recvfrom(fd, buf.data(), buf.size(), MSG_DONTWAIT, nullptr,
                         nullptr);
          if (n <= 0) break;
          handle_datagram(buf.data(), static_cast<std::size_t>(n));
        }
      }
      flush_expired_holdbacks();
    }
  }

  void delay_loop() {
    std::unique_lock lk(mu);
    while (running.load(std::memory_order_relaxed)) {
      if (delay_q.empty()) {
        delay_cv.wait_for(lk, std::chrono::milliseconds(50));
        continue;
      }
      const auto due = delay_q.top().due;
      if (steady::now() < due) {
        delay_cv.wait_until(lk, due);
        continue;
      }
      delayed_send d = delay_q.top();
      delay_q.pop();
      lk.unlock();
      send_to(d.dest_proc, d.bytes.data(), d.bytes.size());
      lk.lock();
    }
  }
};

socket_transport::socket_transport(hades::runtime& rt, sim::network& net,
                                   core::monitor& mon,
                                   socket_transport_params p)
    : impl_(std::make_unique<impl>(std::move(p))) {
  impl_->rt = &rt;
  impl_->net = &net;
  impl_->mon = &mon;
  validate(impl_->p.process_count >= 1, "socket_transport: process_count >= 1");
  validate(impl_->p.process_index < impl_->p.process_count,
           "socket_transport: process_index out of range");
  register_hades_codecs();
}

socket_transport::~socket_transport() { stop(); }

void socket_transport::start() {
  impl& i = *impl_;
  require(!i.started, "socket_transport::start: already started");
  i.fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  validate(i.fd >= 0, "socket_transport: socket() failed: " +
                          std::string(std::strerror(errno)));
  const int rcvbuf = 1 << 21;
  (void)::setsockopt(i.fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port =
      htons(static_cast<std::uint16_t>(i.p.base_port + i.p.process_index));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  validate(::bind(i.fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
           "socket_transport: bind(port " +
               std::to_string(i.p.base_port + i.p.process_index) +
               ") failed: " + std::string(std::strerror(errno)));
  i.running.store(true);
  i.receiver = std::thread([&i] { i.receive_loop(); });
  i.delayer = std::thread([&i] { i.delay_loop(); });
  i.net->set_remote_hook([&i](const sim::message& m) { return i.on_submit(m); });
  i.mon->set_forwarder(
      [&i](const core::monitor_event& e, node_id home, duration d) {
        return i.on_forward(e, home, d);
      });
  i.started = true;
}

void socket_transport::stop() {
  impl& i = *impl_;
  if (!i.started) return;
  i.net->set_remote_hook(nullptr);
  i.mon->set_forwarder(nullptr);
  i.running.store(false);
  i.delay_cv.notify_all();
  if (i.receiver.joinable()) i.receiver.join();
  if (i.delayer.joinable()) i.delayer.join();
  ::close(i.fd);
  i.fd = -1;
  i.started = false;
}

void socket_transport::set_node_down_at(time_point t, node_id n, bool down) {
  impl& i = *impl_;
  std::lock_guard lk(i.mu);
  if (n >= i.node_down.size()) i.node_down.resize(n + 1);
  i.node_down[n].set(t.nanoseconds(), down);
}

void socket_transport::partition_at(
    time_point t, const std::vector<std::vector<node_id>>& groups) {
  impl& i = *impl_;
  // node -> group id, matching sim::network's membership rule: nodes in no
  // named group remain connected to everyone.
  std::size_t max_node = 0;
  for (const auto& g : groups)
    for (node_id n : g) max_node = std::max<std::size_t>(max_node, n);
  std::vector<std::uint32_t> member(max_node + 1, UINT32_MAX);
  for (std::uint32_t gi = 0; gi < groups.size(); ++gi)
    for (node_id n : groups[gi]) member[n] = gi;
  std::lock_guard lk(i.mu);
  i.partition.set(t.nanoseconds(), std::move(member));
}

void socket_transport::heal_partition_at(time_point t) {
  impl& i = *impl_;
  std::lock_guard lk(i.mu);
  i.partition.set(t.nanoseconds(), {});
}

void socket_transport::set_omission_rate_at(time_point t, double p) {
  impl& i = *impl_;
  std::lock_guard lk(i.mu);
  i.omission.set(t.nanoseconds(), p);
}

void socket_transport::set_performance_fault_at(time_point t, double rate,
                                                duration extra) {
  impl& i = *impl_;
  std::lock_guard lk(i.mu);
  i.perf.set(t.nanoseconds(), {rate, extra.count()});
  if (rate > 0.0)
    i.max_perf_extra_ns = std::max(i.max_perf_extra_ns, extra.count());
}

socket_transport::stats_t socket_transport::stats() const {
  std::lock_guard lk(impl_->mu);
  return impl_->st;
}

std::uint32_t socket_transport::owner(node_id n) const {
  return impl_->owner_of(n);
}

}  // namespace hades::rt
