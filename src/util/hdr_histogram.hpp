// Zero-allocation HDR-style latency histogram (DESIGN.md, "Traffic edge &
// admission control").
//
// Fixed log-linear bucketing over the full non-negative int64 nanosecond
// range: values below 2^P land in their own unit-width bucket, and every
// power-of-two "decade" above that is split into 2^(P-1) linear sub-buckets,
// so the recorded value is always within a relative error of 2^-(P-1) of the
// bucket it lands in (P = 8 gives <= 1/128 ~ 0.8%). The bucket array is a
// fixed-size member — `record` is a shift, a count-leading-zeros and one
// relaxed atomic increment, with no allocation and no locking, so it is safe
// on the admission hot path and from concurrent shard workers.
//
// Per-shard instances are merged with `merge` (bucket-wise integer adds —
// commutative and exact, so the merged histogram is identical for any merge
// order, the same contract as running_stats::merge; campaign code still
// merges in node order by convention).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace hades {

template <unsigned Precision = 8>
class basic_hdr_histogram {
  static_assert(Precision >= 2 && Precision <= 14,
                "sub-bucket magnitude out of range");

 public:
  static constexpr std::uint64_t sub_buckets = 1ull << Precision;
  static constexpr std::uint64_t sub_half = sub_buckets / 2;
  /// Highest bucket shift for values up to 2^63 - 1.
  static constexpr unsigned max_shift = 63 - Precision;
  static constexpr std::size_t slot_count =
      static_cast<std::size_t>(max_shift + 2) * sub_half;

  /// Guaranteed bound on |recorded - representative| / recorded.
  [[nodiscard]] static constexpr double relative_error() {
    return 1.0 / static_cast<double>(sub_half);
  }

  basic_hdr_histogram() = default;
  basic_hdr_histogram(const basic_hdr_histogram&) = delete;
  basic_hdr_histogram& operator=(const basic_hdr_histogram&) = delete;

  /// Bucket index of a value (negatives clamp to 0).
  [[nodiscard]] static constexpr std::size_t slot_of(std::int64_t value) {
    const std::uint64_t v = value < 0 ? 0 : static_cast<std::uint64_t>(value);
    // Smallest shift so that v >> shift fits in [0, sub_buckets): 0 for
    // values in the unit-resolution bottom bucket, else bit_width(v) - P
    // (the sub-bucket then lands in [sub_half, sub_buckets)).
    const unsigned width =
        64u - static_cast<unsigned>(std::countl_zero(v | (sub_buckets - 1)));
    const unsigned shift = width - Precision;
    if (shift == 0) return static_cast<std::size_t>(v);
    const std::uint64_t sub = v >> shift;  // in [sub_half, sub_buckets)
    return static_cast<std::size_t>((shift + 1) * sub_half +
                                    (sub - sub_half));
  }

  /// Lowest / highest value mapping to slot `i` (the bucket's bounds).
  [[nodiscard]] static constexpr std::int64_t lowest_equivalent(
      std::size_t i) {
    const auto [shift, sub] = decompose(i);
    return static_cast<std::int64_t>(sub << shift);
  }
  [[nodiscard]] static constexpr std::int64_t highest_equivalent(
      std::size_t i) {
    const auto [shift, sub] = decompose(i);
    return static_cast<std::int64_t>(((sub + 1) << shift) - 1);
  }

  void record(std::int64_t value) {
    counts_[slot_of(value)].fetch_add(1, std::memory_order_relaxed);
  }
  void record(std::int64_t value, std::uint64_t times) {
    counts_[slot_of(value)].fetch_add(times, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t n = 0;
    for (const auto& c : counts_) n += c.load(std::memory_order_relaxed);
    return n;
  }
  [[nodiscard]] std::uint64_t count_at(std::size_t slot) const {
    return counts_[slot].load(std::memory_order_relaxed);
  }

  /// Value at quantile q in [0, 1] (highest equivalent value of the bucket
  /// holding the q-th recorded sample; 0 on an empty histogram).
  [[nodiscard]] std::int64_t value_at_quantile(double q) const {
    const std::uint64_t n = total();
    if (n == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    auto target = static_cast<std::uint64_t>(q * static_cast<double>(n) + 0.5);
    if (target == 0) target = 1;
    if (target > n) target = n;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < slot_count; ++i) {
      cum += counts_[i].load(std::memory_order_relaxed);
      if (cum >= target) return highest_equivalent(i);
    }
    return highest_equivalent(slot_count - 1);
  }

  [[nodiscard]] std::int64_t min() const {
    for (std::size_t i = 0; i < slot_count; ++i)
      if (counts_[i].load(std::memory_order_relaxed) != 0)
        return lowest_equivalent(i);
    return 0;
  }
  [[nodiscard]] std::int64_t max() const {
    for (std::size_t i = slot_count; i-- > 0;)
      if (counts_[i].load(std::memory_order_relaxed) != 0)
        return highest_equivalent(i);
    return 0;
  }

  /// Bucket-wise add. Exact and commutative: any merge order over a set of
  /// histograms produces the identical result.
  void merge(const basic_hdr_histogram& o) {
    for (std::size_t i = 0; i < slot_count; ++i) {
      const std::uint64_t v = o.counts_[i].load(std::memory_order_relaxed);
      if (v != 0) counts_[i].fetch_add(v, std::memory_order_relaxed);
    }
  }

  void reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  }

  /// FNV-1a over (slot, count) of the non-empty buckets — the deterministic
  /// fold the campaign checksum consumes.
  [[nodiscard]] std::uint64_t digest() const {
    std::uint64_t h = 0xCBF29CE484222325ull;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 0x100000001B3ull;
      }
    };
    for (std::size_t i = 0; i < slot_count; ++i) {
      const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
      if (c != 0) {
        mix(i);
        mix(c);
      }
    }
    return h;
  }

 private:
  struct bucket_pos {
    unsigned shift;
    std::uint64_t sub;
  };
  [[nodiscard]] static constexpr bucket_pos decompose(std::size_t i) {
    if (i < sub_half) return {0, static_cast<std::uint64_t>(i)};
    const auto shift = static_cast<unsigned>(i / sub_half) - 1;
    const std::uint64_t sub = static_cast<std::uint64_t>(i % sub_half);
    if (shift == 0) return {0, sub + sub_half};
    return {shift, sub + sub_half};
  }

  std::atomic<std::uint64_t> counts_[slot_count] = {};
};

using hdr_histogram = basic_hdr_histogram<8>;

}  // namespace hades
