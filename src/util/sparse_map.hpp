// Open-addressed node_id -> T map for sparse per-node protocol state
// (DESIGN.md, "Scalable topology layer").
//
// The flat protocols kept per-(source, destination) state in dense
// reserve_nodes-sized vectors: O(N) per node, O(N²) system-wide — 10k nodes
// put the wire's FIFO floors alone in the gigabytes. The scalable
// topologies talk to a bounded neighbour set (cluster members, tree
// children, aggregator peers), so per-node state is keyed by the handful of
// nodes actually communicated with. This map is the shared container for
// that: linear-probe open addressing over power-of-two slot arrays, keys
// are node ids, empty slots are marked by a reserved sentinel key, and the
// backing array doubles at 70% load.
//
// Concurrency contract: a sparse_map instance is confined to the shard that
// owns its enclosing per-node state (the same rule as every other per-node
// structure, DESIGN.md "Shard confinement"). Growth allocates, but the
// allocation happens on the owning shard while it executes that node's
// events, which is legal under worker-threaded runs — unlike growing a
// structure shared across shards. After warm-up (each node has met its
// neighbour set) lookups and updates allocate nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace hades::util {

template <typename T>
class sparse_node_map {
 public:
  static constexpr node_id empty_key = std::numeric_limits<node_id>::max();

  sparse_node_map() = default;

  /// Value for `key`, default-constructing the slot on first touch.
  T& operator[](node_id key) {
    if (slots_.empty()) rehash(8);
    std::size_t i = probe(key);
    if (slots_[i].key == empty_key) {
      if ((size_ + 1) * 10 > slots_.size() * 7) {
        rehash(slots_.size() * 2);
        i = probe(key);
      }
      slots_[i].key = key;
      slots_[i].value = T{};
      ++size_;
    }
    return slots_[i].value;
  }

  /// Pointer to the value for `key`, or nullptr. Never allocates.
  [[nodiscard]] T* find(node_id key) noexcept {
    if (slots_.empty()) return nullptr;
    const std::size_t i = probe(key);
    return slots_[i].key == key ? &slots_[i].value : nullptr;
  }
  [[nodiscard]] const T* find(node_id key) const noexcept {
    return const_cast<sparse_node_map*>(this)->find(key);
  }

  [[nodiscard]] bool contains(node_id key) const noexcept {
    return find(key) != nullptr;
  }

  /// Remove `key` if present (backward-shift deletion keeps probes intact).
  void erase(node_id key) noexcept {
    if (slots_.empty()) return;
    std::size_t i = probe(key);
    if (slots_[i].key != key) return;
    const std::size_t mask = slots_.size() - 1;
    std::size_t hole = i;
    for (std::size_t j = (hole + 1) & mask; slots_[j].key != empty_key;
         j = (j + 1) & mask) {
      const std::size_t home = hash(slots_[j].key) & mask;
      // Slot j may shift back into the hole if the hole lies on j's probe
      // path (cyclic distance test).
      if (((hole - home) & mask) <= ((j - home) & mask)) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
    }
    slots_[hole].key = empty_key;
    slots_[hole].value = T{};
    --size_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Bytes of backing storage — the scaling benches' memory accounting.
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return slots_.capacity() * sizeof(slot);
  }

  void clear() noexcept {
    for (auto& s : slots_) {
      s.key = empty_key;
      s.value = T{};
    }
    size_ = 0;
  }

  /// Visit every (key, value) pair; order is unspecified but deterministic
  /// for a given insertion history (no pointer-keyed hashing anywhere).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& s : slots_)
      if (s.key != empty_key) fn(s.key, s.value);
  }
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& s : slots_)
      if (s.key != empty_key) fn(s.key, s.value);
  }

 private:
  struct slot {
    node_id key = empty_key;
    T value{};
  };

  [[nodiscard]] static std::size_t hash(node_id k) noexcept {
    // Fibonacci multiplicative hash: node ids are sequential, so identity
    // hashing would cluster every cluster's members into one probe run.
    std::uint64_t x = static_cast<std::uint64_t>(k) + 1;
    x *= 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(x >> 32);
  }

  /// Index of `key`'s slot, or of the empty slot where it would insert.
  [[nodiscard]] std::size_t probe(node_id key) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(key) & mask;
    while (slots_[i].key != empty_key && slots_[i].key != key)
      i = (i + 1) & mask;
    return i;
  }

  void rehash(std::size_t new_cap) {
    std::vector<slot> old = std::move(slots_);
    slots_.assign(new_cap, slot{});
    size_ = 0;
    for (auto& s : old)
      if (s.key != empty_key) (*this)[s.key] = std::move(s.value);
  }

  std::vector<slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace hades::util
