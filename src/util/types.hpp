// Shared vocabulary identifiers used across HADES modules.
#pragma once

#include <cstdint>
#include <functional>

namespace hades {

/// Index of a processing node (one mono-processor machine of the LAN).
using node_id = std::uint32_t;

/// System-wide task (HEUG) identifier.
using task_id = std::uint32_t;

/// Index of an elementary unit inside one HEUG.
using eu_index = std::uint32_t;

/// System-wide resource identifier (resources are local to one node).
using resource_id = std::uint32_t;

/// System-wide condition-variable identifier.
using condition_id = std::uint32_t;

/// Identifier of one activation of a task (instance number, starting at 0).
using instance_number = std::uint64_t;

inline constexpr node_id invalid_node = ~node_id{0};
inline constexpr task_id invalid_task = ~task_id{0};

/// Scheduling priority. Higher value means more urgent.
using priority = std::int32_t;

/// Priority bands (paper section 3.1.2: [prio_min, prio_max], with prio_max
/// reserved for kernel mechanisms and the scheduler above all applications).
namespace prio {
inline constexpr priority idle = 0;
inline constexpr priority min_app = 1;
inline constexpr priority max_app = 1'000'000;  // wide band so EDF can re-rank freely
inline constexpr priority scheduler = max_app + 1;
inline constexpr priority net_task = max_app + 2;
inline constexpr priority kernel = max_app + 10;  // prio_max of the paper
inline constexpr priority interrupt = kernel + 1;
}  // namespace prio

/// Strongly-typed handle to one kernel thread of a simulated processor.
struct kthread_id {
  std::uint64_t value = 0;
  friend constexpr bool operator==(kthread_id, kthread_id) = default;
  friend constexpr auto operator<=>(kthread_id, kthread_id) = default;
};

inline constexpr kthread_id invalid_kthread{0};

}  // namespace hades

template <>
struct std::hash<hades::kthread_id> {
  std::size_t operator()(hades::kthread_id id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
