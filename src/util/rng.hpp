// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (network latency, omission
// faults, workload generators) draws from an explicitly-seeded xoshiro256**
// stream so that every experiment is exactly reproducible.
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace hades {

class rng {
 public:
  explicit rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Range reduction is Lemire's
  /// multiply-shift (a 128-bit multiply instead of a 64-bit division —
  /// the division dominated the wire's latency-jitter draw).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    require(lo <= hi, "rng::uniform_int: empty range");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    const auto scaled = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * span) >> 64);
    return lo + static_cast<std::int64_t>(scaled);
  }

  /// Uniform real in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Bernoulli trial.
  bool chance(double p) { return uniform01() < p; }

  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean);

  /// Fork a decorrelated child stream (for per-component determinism).
  rng split() { return rng(next_u64() ^ 0xD1B54A32D192ED03ull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace hades
