#include "util/rng.hpp"

#include <cmath>

namespace hades {

double rng::exponential(double mean) {
  require(mean > 0.0, "rng::exponential: mean must be positive");
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

}  // namespace hades
