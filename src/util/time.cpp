#include "util/time.hpp"

#include <cinttypes>
#include <cstdio>

namespace hades {

std::string duration::to_string() const {
  if (is_infinite()) return "inf";
  char buf[64];
  const std::int64_t abs_ns = ns_ < 0 ? -ns_ : ns_;
  if (abs_ns >= 1'000'000'000 && ns_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%.3fs", to_seconds());
  } else if (abs_ns >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns_) / 1e6);
  } else if (abs_ns >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(ns_) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%" PRId64 "ns", ns_);
  }
  return buf;
}

std::string time_point::to_string() const {
  if (is_infinite()) return "t=inf";
  return "t=" + since_epoch().to_string();
}

}  // namespace hades
