// Error handling helpers.
//
// HADES follows the C++ Core Guidelines: configuration and construction
// errors throw `hades::error`; internal invariants are checked with
// `require()` which throws `hades::invariant_violation` — tests rely on
// these being real exceptions rather than aborts.
#pragma once

#include <stdexcept>
#include <string>

namespace hades {

class error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class invariant_violation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Precondition / invariant check. Always on (safety-critical domain).
/// The `const char*` overloads matter: literal messages must not construct
/// a temporary std::string on the hot path when the condition holds (the
/// event core and the wire are gated on zero steady-state allocations).
inline void require(bool condition, const char* message) {
  if (!condition) throw invariant_violation(message);
}
inline void require(bool condition, const std::string& message) {
  if (!condition) throw invariant_violation(message);
}

/// Configuration validation helper: throws hades::error on failure.
inline void validate(bool condition, const char* message) {
  if (!condition) throw error(message);
}
inline void validate(bool condition, const std::string& message) {
  if (!condition) throw error(message);
}

}  // namespace hades
