// Strong time types for HADES.
//
// All of HADES reasons about time as 64-bit signed nanosecond counts. Two
// distinct vocabulary types are provided so that absolute dates and spans
// cannot be confused: `duration` (a span) and `time_point` (an absolute
// simulated date). Both support a saturating "infinity" used for open-ended
// timing attributes (e.g. a latest start time that is never enforced, or a
// scheduler gate that holds a thread indefinitely — see DESIGN.md).
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace hades {

namespace detail {
inline constexpr std::int64_t time_infinity = std::numeric_limits<std::int64_t>::max();

constexpr std::int64_t saturating_add(std::int64_t a, std::int64_t b) {
  if (a == time_infinity || b == time_infinity) return time_infinity;
  if (a > 0 && b > time_infinity - a) return time_infinity;
  if (a < 0 && b < std::numeric_limits<std::int64_t>::min() - a)
    return std::numeric_limits<std::int64_t>::min();
  return a + b;
}
}  // namespace detail

/// A span of simulated time in nanoseconds. Value-semantic, totally ordered.
class duration {
 public:
  constexpr duration() = default;

  static constexpr duration nanoseconds(std::int64_t v) { return duration{v}; }
  static constexpr duration microseconds(std::int64_t v) { return duration{v * 1000}; }
  static constexpr duration milliseconds(std::int64_t v) { return duration{v * 1000 * 1000}; }
  static constexpr duration seconds(std::int64_t v) { return duration{v * 1000 * 1000 * 1000}; }
  static constexpr duration zero() { return duration{0}; }
  static constexpr duration infinity() { return duration{detail::time_infinity}; }

  /// Nanosecond count. Infinity reports std::numeric_limits<int64_t>::max().
  [[nodiscard]] constexpr std::int64_t count() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_microseconds() const { return static_cast<double>(ns_) * 1e-3; }
  [[nodiscard]] constexpr bool is_infinite() const { return ns_ == detail::time_infinity; }
  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  constexpr auto operator<=>(const duration&) const = default;

  constexpr duration operator+(duration o) const {
    return duration{detail::saturating_add(ns_, o.ns_)};
  }
  constexpr duration operator-(duration o) const {
    if (is_infinite()) return infinity();
    return duration{detail::saturating_add(ns_, -o.ns_)};
  }
  constexpr duration operator*(std::int64_t k) const {
    if (is_infinite()) return infinity();
    return duration{ns_ * k};
  }
  constexpr duration operator/(std::int64_t k) const { return duration{ns_ / k}; }
  constexpr duration& operator+=(duration o) { return *this = *this + o; }
  constexpr duration& operator-=(duration o) { return *this = *this - o; }
  constexpr duration operator-() const { return duration{-ns_}; }

  /// Scale by a real factor (used for clock drift modelling). Rounds toward zero.
  [[nodiscard]] constexpr duration scaled(double factor) const {
    return duration{static_cast<std::int64_t>(static_cast<double>(ns_) * factor)};
  }

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An absolute simulated date (nanoseconds since simulation start).
class time_point {
 public:
  constexpr time_point() = default;

  static constexpr time_point zero() { return time_point{0}; }
  static constexpr time_point infinity() { return time_point{detail::time_infinity}; }
  static constexpr time_point at(duration since_epoch) {
    return time_point{since_epoch.count()};
  }

  [[nodiscard]] constexpr std::int64_t nanoseconds() const { return ns_; }
  [[nodiscard]] constexpr duration since_epoch() const {
    return duration::nanoseconds(ns_);
  }
  [[nodiscard]] constexpr bool is_infinite() const { return ns_ == detail::time_infinity; }

  constexpr auto operator<=>(const time_point&) const = default;

  constexpr time_point operator+(duration d) const {
    return time_point{detail::saturating_add(ns_, d.count())};
  }
  constexpr time_point operator-(duration d) const {
    if (is_infinite()) return infinity();
    return time_point{detail::saturating_add(ns_, -d.count())};
  }
  constexpr duration operator-(time_point o) const {
    if (is_infinite()) return duration::infinity();
    return duration::nanoseconds(ns_ - o.ns_);
  }
  constexpr time_point& operator+=(duration d) { return *this = *this + d; }

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr time_point(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

namespace literals {
constexpr duration operator"" _ns(unsigned long long v) {
  return duration::nanoseconds(static_cast<std::int64_t>(v));
}
constexpr duration operator"" _us(unsigned long long v) {
  return duration::microseconds(static_cast<std::int64_t>(v));
}
constexpr duration operator"" _ms(unsigned long long v) {
  return duration::milliseconds(static_cast<std::int64_t>(v));
}
constexpr duration operator"" _s(unsigned long long v) {
  return duration::seconds(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace hades
