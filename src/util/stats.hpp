// Small statistics helpers used by the monitor, benches and experiments.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/error.hpp"
#include "util/time.hpp"

namespace hades {

/// Total of a vector of node-confined counters (the shard-confinement
/// pattern: each node/shard increments its own slot, readers sum — see
/// DESIGN.md, "Shard confinement").
[[nodiscard]] inline std::uint64_t sum_counters(
    const std::vector<std::uint64_t>& per_node) {
  std::uint64_t total = 0;
  for (std::uint64_t v : per_node) total += v;
  return total;
}

/// Streaming summary statistics (Welford's algorithm), value-semantic.
class running_stats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  void add(duration d) { add(static_cast<double>(d.count())); }

  /// Fold another summary into this one (Chan et al.'s parallel update).
  /// Used to combine node-confined accumulators into one report; merging in
  /// a fixed order keeps the result deterministic.
  void merge(const running_stats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double total = na + nb;
    m2_ += o.m2_ + delta * delta * na * nb / total;
    mean_ += delta * nb / total;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample collector with percentile queries (copies are sorted lazily).
class sample_set {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void add(duration d) { add(static_cast<double>(d.count())); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Percentile in [0, 100], nearest-rank method.
  [[nodiscard]] double percentile(double p) {
    require(!samples_.empty(), "sample_set::percentile on empty set");
    sort();
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }
  [[nodiscard]] double median() { return percentile(50.0); }
  [[nodiscard]] double max() {
    require(!samples_.empty(), "sample_set::max on empty set");
    sort();
    return samples_.back();
  }
  [[nodiscard]] double min() {
    require(!samples_.empty(), "sample_set::min on empty set");
    sort();
    return samples_.front();
  }
  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

 private:
  void sort() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  std::vector<double> samples_;
  bool sorted_ = true;
};

}  // namespace hades
