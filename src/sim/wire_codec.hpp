// Wire codec registry: serializes `wire_payload` values for transports
// that leave the address space (the realtime backend's UDP sockets).
//
// The simulated network passes payloads by handle — a type-erased pointer
// copied between nodes that share one process. A real deployment needs
// bytes. The codec registry maps each payload type to a stable 32-bit tag
// plus encode/decode functions, chosen at registration time; `encode`
// probes the registered types against a payload (via `wire_payload::get`)
// and `decode` rebuilds the typed payload on the receiving process.
//
// Registration is explicit and loud: encoding a payload whose type was
// never registered throws `hades::error` rather than silently dropping or
// bit-blasting the frame — a process boundary must not change what a
// scenario observes without someone noticing. The HADES service types are
// registered by `rt::register_hades_codecs()` (src/rt/codecs.cpp); tests
// and applications can add their own with `register_codec` /
// `register_trivial`.
//
// Tags are part of the cross-process protocol: every cooperating process
// must register the same (tag, type) pairs. Registry mutation is mutexed
// and intended for startup; encode/decode take the same mutex, which is
// uncontended once registration settles (the socket path is not a
// same-process hot path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <type_traits>
#include <vector>

#include "sim/wire_payload.hpp"
#include "util/error.hpp"

namespace hades::sim {

class wire_codec {
 public:
  /// Probe `p`; if it holds this codec's type, append its serialized bytes
  /// to `out` and return true. Must not touch `out` when returning false.
  using encode_fn = std::function<bool(const wire_payload& p,
                                       std::vector<std::byte>& out)>;
  /// Rebuild the typed payload from `len` serialized bytes.
  using decode_fn =
      std::function<wire_payload(const std::byte* data, std::size_t len)>;

  /// Register (tag, encode, decode). Re-registering a tag replaces the
  /// previous entry (idempotent startup helpers re-register freely).
  static void register_codec(std::uint32_t tag, encode_fn enc, decode_fn dec);

  /// Register a trivially-copyable type with memcpy encoding. The bytes are
  /// the in-memory representation: fine between processes built from the
  /// same binary on one host (the loopback harness), not an archival or
  /// cross-architecture format.
  template <typename T>
  static void register_trivial(std::uint32_t tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    register_codec(
        tag,
        [](const wire_payload& p, std::vector<std::byte>& out) {
          const T* v = p.get<T>();
          if (v == nullptr) return false;
          const auto* b = reinterpret_cast<const std::byte*>(v);
          out.insert(out.end(), b, b + sizeof(T));
          return true;
        },
        [](const std::byte* data, std::size_t len) {
          validate(len == sizeof(T), "wire_codec: trivial payload size mismatch");
          T v;
          std::memcpy(&v, data, sizeof(T));
          return wire_payload(std::move(v));
        });
  }

  /// Serialize `p` into `out` (appending); returns the matching tag.
  /// Throws `hades::error` when no registered codec recognizes the type.
  static std::uint32_t encode(const wire_payload& p,
                              std::vector<std::byte>& out);

  /// Rebuild the payload `tag` names. Throws on unknown tags.
  static wire_payload decode(std::uint32_t tag, const std::byte* data,
                             std::size_t len);
};

}  // namespace hades::sim
