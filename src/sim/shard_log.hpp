// Shard-partitioned append-only event log (DESIGN.md, "Shard confinement").
//
// The common machinery behind the observation sinks (`core::monitor`,
// `sim::trace_recorder`): one vector per shard so worker threads never
// share a container, appends routed by `runtime::executing_shard()`, and a
// lazily-rebuilt merged view ordered by the deterministic key
// {time, shard, per-shard sequence} — the sharded backend's cross-shard
// inbox key, so the merged order is independent of worker interleaving.
// Appending is safe from concurrent shards; every read-side member is
// single-threaded (query between runs, not from inside event handlers).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/runtime.hpp"

namespace hades::sim {

/// `TimeOf` projects an entry to its date: `time_point operator()(const T&)`.
template <typename T, typename TimeOf>
class shard_log {
 public:
  shard_log() { parts_.push_back(std::make_unique<partition>()); }

  /// Attach to a runtime: grows one partition per shard and routes
  /// `append` by the executing shard. Call before the run starts.
  void bind(const hades::runtime& rt) {
    rt_ = &rt;
    while (parts_.size() < rt.shard_count())
      parts_.push_back(std::make_unique<partition>());
  }

  /// Append to the executing shard's partition. The returned reference is
  /// invalidated by any further append (including re-entrant ones) — copy
  /// before calling out.
  T& append(T v) {
    const std::uint32_t s = rt_ != nullptr ? rt_->executing_shard() : 0;
    auto& events = parts_[s]->events;
    events.push_back(std::move(v));
    return events.back();
  }

  /// Merged view over all partitions, ordered by {time, shard, sequence}.
  [[nodiscard]] const std::vector<T>& merged() const {
    std::size_t total = 0;
    for (const auto& p : parts_) total += p->events.size();
    if (total != merged_from_) {
      // Concatenate in shard order, then stable-sort on time alone: ties
      // keep concatenation order, i.e. exactly the {time, shard, per-shard
      // sequence} key (per-shard streams are already time-ordered — engine
      // time is monotonic within a shard).
      merged_.clear();
      merged_.reserve(total);
      for (const auto& p : parts_)
        merged_.insert(merged_.end(), p->events.begin(), p->events.end());
      std::stable_sort(merged_.begin(), merged_.end(),
                       [this](const T& a, const T& b) {
                         return time_of_(a) < time_of_(b);
                       });
      merged_from_ = total;
    }
    return merged_;
  }

  /// Order-independent scan (counters, filters that re-sort anyway).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& p : parts_)
      for (const T& e : p->events) fn(e);
  }

  void clear() {
    for (auto& p : parts_) p->events.clear();
    merged_.clear();
    merged_from_ = 0;
  }

 private:
  struct partition {
    std::vector<T> events;
  };

  TimeOf time_of_{};
  const hades::runtime* rt_ = nullptr;
  std::vector<std::unique_ptr<partition>> parts_;
  mutable std::vector<T> merged_;
  mutable std::size_t merged_from_ = 0;  // total size at last merge
};

}  // namespace hades::sim
