#include "sim/wire_codec.hpp"

#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace hades::sim {

namespace {

struct codec_entry {
  wire_codec::encode_fn encode;
  wire_codec::decode_fn decode;
};

struct codec_registry {
  std::mutex mu;
  // Probe order = tag order: deterministic, and registrars pick low tags
  // for the hottest types.
  std::map<std::uint32_t, codec_entry> codecs;
};

codec_registry& the_registry() {
  static codec_registry r;
  return r;
}

}  // namespace

void wire_codec::register_codec(std::uint32_t tag, encode_fn enc,
                                decode_fn dec) {
  validate(enc != nullptr && dec != nullptr,
           "wire_codec::register_codec: null function");
  codec_registry& r = the_registry();
  std::lock_guard lk(r.mu);
  r.codecs[tag] = {std::move(enc), std::move(dec)};
}

std::uint32_t wire_codec::encode(const wire_payload& p,
                                 std::vector<std::byte>& out) {
  validate(p.has_value(), "wire_codec::encode: empty payload");
  // Probe outside the lock: composite codecs (nested payloads) re-enter
  // encode recursively, and the registry mutex is not recursive.
  std::vector<std::pair<std::uint32_t, encode_fn>> probes;
  {
    codec_registry& r = the_registry();
    std::lock_guard lk(r.mu);
    probes.reserve(r.codecs.size());
    for (const auto& [tag, entry] : r.codecs)
      probes.emplace_back(tag, entry.encode);
  }
  for (const auto& [tag, enc] : probes)
    if (enc(p, out)) return tag;
  throw error(
      "wire_codec::encode: payload type has no registered codec — register "
      "it (wire_codec::register_trivial / register_codec) before sending it "
      "across a process boundary");
}

wire_payload wire_codec::decode(std::uint32_t tag, const std::byte* data,
                                std::size_t len) {
  decode_fn dec;
  {
    codec_registry& r = the_registry();
    std::lock_guard lk(r.mu);
    auto it = r.codecs.find(tag);
    validate(it != r.codecs.end(),
             "wire_codec::decode: unknown payload tag " + std::to_string(tag));
    dec = it->second.decode;
  }
  return dec(data, len);
}

}  // namespace hades::sim
