#include "sim/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace hades::sim {

std::string_view to_string(trace_kind k) {
  switch (k) {
    case trace_kind::thread_created: return "created";
    case trace_kind::thread_runnable: return "runnable";
    case trace_kind::thread_running: return "running";
    case trace_kind::thread_preempted: return "preempted";
    case trace_kind::thread_blocked: return "blocked";
    case trace_kind::thread_done: return "done";
    case trace_kind::thread_killed: return "killed";
    case trace_kind::notification: return "notification";
    case trace_kind::priority_change: return "priority-change";
    case trace_kind::earliest_change: return "earliest-change";
    case trace_kind::instance_activated: return "instance-activated";
    case trace_kind::instance_completed: return "instance-completed";
    case trace_kind::instance_aborted: return "instance-aborted";
    case trace_kind::monitor_event: return "monitor";
    case trace_kind::message_sent: return "msg-sent";
    case trace_kind::message_delivered: return "msg-delivered";
    case trace_kind::service_event: return "service";
    case trace_kind::custom: return "custom";
  }
  return "?";
}

std::vector<trace_event> trace_recorder::of_kind(trace_kind k) const {
  std::vector<trace_event> out;
  for (const auto& e : events())
    if (e.kind == k) out.push_back(e);
  return out;
}

std::vector<trace_event> trace_recorder::for_subject(
    std::string_view subject) const {
  std::vector<trace_event> out;
  for (const auto& e : events())
    if (e.subject == subject) out.push_back(e);
  return out;
}

std::string trace_recorder::render_log() const {
  std::ostringstream os;
  for (const auto& e : events()) {
    os << e.t.to_string() << "  n" << e.node << "  [" << to_string(e.kind)
       << "] " << e.subject;
    if (!e.detail.empty()) os << " : " << e.detail;
    os << '\n';
  }
  return os.str();
}

std::string trace_recorder::render_gantt(time_point t0, time_point t1,
                                         duration column) const {
  // Build running intervals per subject from the state-transition events.
  struct open_run {
    time_point start;
  };
  std::map<std::string, std::vector<std::pair<time_point, time_point>>> runs;
  std::map<std::string, open_run> open;

  for (const auto& e : events()) {
    if (e.kind == trace_kind::thread_running) {
      open[e.subject] = {e.t};
    } else if (e.kind == trace_kind::thread_preempted ||
               e.kind == trace_kind::thread_blocked ||
               e.kind == trace_kind::thread_done ||
               e.kind == trace_kind::thread_killed) {
      auto it = open.find(e.subject);
      if (it != open.end()) {
        runs[e.subject].emplace_back(it->second.start, e.t);
        open.erase(it);
      }
    }
  }
  for (const auto& [subject, o] : open) runs[subject].emplace_back(o.start, t1);

  std::size_t name_width = 8;
  for (const auto& [subject, r] : runs)
    name_width = std::max(name_width, subject.size());

  const auto span = t1 - t0;
  const auto cols =
      static_cast<std::size_t>(std::max<std::int64_t>(1, span.count() / std::max<std::int64_t>(1, column.count())));

  std::ostringstream os;
  os << std::string(name_width + 2, ' ') << t0.to_string() << " ... "
     << t1.to_string() << "  (one column = " << column.to_string() << ")\n";
  for (const auto& [subject, intervals] : runs) {
    std::string row(cols, '.');
    bool any = false;
    for (const auto& [s, e] : intervals) {
      const auto from = std::max(s, t0);
      const auto to = std::min(e, t1);
      if (to <= from) continue;
      any = true;
      auto c0 = static_cast<std::size_t>((from - t0).count() / column.count());
      auto c1 = static_cast<std::size_t>((to - t0).count() / column.count());
      c0 = std::min(c0, cols - 1);
      c1 = std::min(std::max(c1, c0 + 1), cols);
      for (std::size_t c = c0; c < c1; ++c) row[c] = '#';
    }
    if (!any) continue;  // subject never ran inside the window
    os << subject << std::string(name_width - subject.size() + 2, ' ') << row
       << '\n';
  }
  return os.str();
}

}  // namespace hades::sim
