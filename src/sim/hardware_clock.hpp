// Per-node hardware clock with bounded drift and a Byzantine fault mode.
//
// The paper's fault model (section 2.1) admits Byzantine failures for
// clocks; the Lundelius–Lynch clock-synchronization service (section 2.2.1)
// tolerates them for n >= 3f+1. The hardware clock models a crystal with a
// constant drift rate rho: H(t) = base_local + (t - base_real) * (1 + rho).
// A logical clock is derived as C(t) = H(t) + adjustment; the clock-sync
// service applies discrete corrections to the adjustment term.
#pragma once

#include <functional>

#include "sim/runtime.hpp"
#include "util/time.hpp"

namespace hades::sim {

class hardware_clock {
 public:
  /// `drift_rate` is rho (e.g. 1e-5 = 10 ppm). May be negative.
  explicit hardware_clock(const runtime& rt, double drift_rate = 0.0,
                          duration initial_offset = duration::zero())
      : rt_(&rt), drift_(drift_rate), base_local_(initial_offset) {}

  /// Raw hardware clock reading (local elapsed time since simulation start).
  [[nodiscard]] duration read_hardware() const {
    if (fault_) return fault_(rt_->now());
    const duration real = rt_->now() - base_real_;
    return base_local_ + real + real.scaled(drift_);
  }

  /// Logical (synchronized) clock reading: hardware + accumulated adjustment.
  [[nodiscard]] duration read() const { return read_hardware() + adjustment_; }

  /// Apply a discrete correction to the logical clock (clock-sync service).
  void adjust(duration delta) { adjustment_ += delta; }

  [[nodiscard]] duration adjustment() const { return adjustment_; }
  [[nodiscard]] double drift_rate() const { return drift_; }

  /// Change the drift rate going forward; the raw reading stays continuous.
  void set_drift_rate(double rho) {
    rebase();
    drift_ = rho;
  }

  /// Install a Byzantine fault: the hardware reading becomes arbitrary.
  /// Passing nullptr clears the fault; the clock resumes (continuously) from
  /// its last faulty reading, so the sync service must re-correct it.
  void set_fault(std::function<duration(time_point)> fault) {
    if (!fault) rebase();
    fault_ = std::move(fault);
  }
  [[nodiscard]] bool is_faulty() const { return static_cast<bool>(fault_); }

 private:
  void rebase() {
    base_local_ = read_hardware();
    base_real_ = rt_->now();
  }

  const runtime* rt_;
  double drift_;
  time_point base_real_ = time_point::zero();
  duration base_local_;
  duration adjustment_ = duration::zero();
  std::function<duration(time_point)> fault_;
};

}  // namespace hades::sim
