// Discrete-event simulation engine.
//
// This is the substrate that replaces the paper's Pentium/ATM testbed (see
// DESIGN.md, substitution table). It provides a deterministic, totally
// ordered event timeline: events scheduled at the same instant fire in the
// order they were scheduled, so every run of a HADES experiment is exactly
// reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/error.hpp"
#include "util/time.hpp"

namespace hades::sim {

using event_fn = std::function<void()>;

/// Opaque handle allowing cancellation of a scheduled event.
struct event_id {
  std::uint64_t value = 0;
  friend constexpr bool operator==(event_id, event_id) = default;
};

inline constexpr event_id invalid_event{0};

class engine {
 public:
  engine() = default;
  engine(const engine&) = delete;
  engine& operator=(const engine&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  [[nodiscard]] time_point now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (must be >= now()).
  event_id at(time_point t, event_fn fn);

  /// Schedule `fn` to run after `d` has elapsed. An infinite delay never fires.
  event_id after(duration d, event_fn fn) {
    if (d.is_infinite()) return invalid_event;
    return at(now_ + d, std::move(fn));
  }

  /// Cancel a previously scheduled event. Safe with invalid_event, with an
  /// already-fired id, and when called twice.
  void cancel(event_id id);

  /// Run the next pending event, if any. Returns false when idle.
  bool step();

  /// Run all events with timestamp <= t; afterwards now() == t.
  /// Returns the number of events executed.
  std::size_t run_until(time_point t);

  /// Run until the event queue drains (or `max_events` executed).
  std::size_t run(std::size_t max_events = 100'000'000);

  [[nodiscard]] bool empty() const { return pending_ids_.empty(); }
  [[nodiscard]] std::size_t pending() const { return pending_ids_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct entry {
    time_point t;
    std::uint64_t seq;
    event_fn fn;
  };
  struct later {
    bool operator()(const entry& a, const entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  bool pop_next(entry& out);

  std::priority_queue<entry, std::vector<entry>, later> queue_;
  std::unordered_set<std::uint64_t> pending_ids_;    // scheduled, not cancelled
  std::unordered_set<std::uint64_t> cancelled_;      // cancelled, still queued
  time_point now_ = time_point::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace hades::sim
