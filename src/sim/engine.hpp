// Discrete-event simulation engine: the pooled backend of hades::runtime.
//
// This is the substrate that replaces the paper's Pentium/ATM testbed (see
// DESIGN.md, substitution table). It provides a deterministic, totally
// ordered event timeline: events scheduled at the same instant fire in the
// order they were scheduled, so every run of a HADES experiment is exactly
// reproducible.
//
// Storage design (DESIGN.md, "Event pool"):
//   * events live in slab-allocated pool slots reached through a free list
//     — after warm-up, scheduling allocates nothing;
//   * the ready structure is a 4-ary min-heap of 24-byte
//     {time, seq, slot, gen} records — no closures move during sift;
//   * cancellation bumps the slot's generation and frees it immediately
//     (O(1), no tombstone sets); the heap record becomes stale and is
//     dropped lazily on pop, with a compaction pass once stale records
//     outnumber live ones so long cancel-heavy runs stay bounded.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/runtime.hpp"
#include "util/error.hpp"
#include "util/time.hpp"

namespace hades::sim {

class engine final : public runtime {
 public:
  engine() = default;

  // --- runtime interface ---------------------------------------------------
  [[nodiscard]] time_point now() const override { return now_; }
  event_id at(time_point t, event_fn fn) override;
  /// Single engine: the placement hint is moot, so skip the base class's
  /// second virtual dispatch through `at` (the wire schedules one delivery
  /// per message through here).
  event_id at_node(node_id, time_point t, event_fn fn) override {
    return at(t, std::move(fn));
  }
  event_id schedule_periodic(time_point first, duration period,
                             event_fn fn) override;
  void cancel(event_id id) override;

  event_batch open_batch(time_point t) override;
  event_id batch_add(event_batch& b, event_fn fn) override;
  void commit(event_batch& b) override;

  bool step() override;
  std::size_t run_until(time_point t) override;
  std::size_t run(std::size_t max_events = 100'000'000) override;

  [[nodiscard]] bool empty() const override { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const override { return live_; }
  [[nodiscard]] std::uint64_t executed() const override { return executed_; }
  /// True while an event callback is on the stack. The single engine must
  /// report this honestly: core::system routes in-event cross-node effects
  /// (condition tokens, activation placement) by this flag, and the dates
  /// those routes produce must be identical on every backend.
  [[nodiscard]] bool in_event_context() const override { return in_event_; }

  /// Timestamp of the next pending event, or infinity when idle. Skims any
  /// stale (cancelled) records off the heap top as a side effect — used by
  /// the sharded backend to compute the conservative horizon.
  [[nodiscard]] time_point peek_time() {
    const heap_rec* top = peek_valid();
    return top != nullptr ? top->t : time_point::infinity();
  }

  // --- pool observability ---------------------------------------------------
  struct pool_stats {
    std::size_t slabs = 0;          // slabs ever allocated
    std::size_t slots = 0;          // total pooled slots
    std::size_t live_events = 0;    // scheduled, not cancelled/fired
    std::size_t heap_records = 0;   // ready-heap entries, stale included
    std::size_t stale_records = 0;  // entries awaiting lazy purge
    std::size_t compactions = 0;    // stale-purge passes performed
  };
  [[nodiscard]] pool_stats pool() const;

  /// Counting allocator hook: invoked with the byte size of every backing
  /// allocation the engine makes (new slab, ready-heap growth). Tests use it
  /// to prove the steady state allocates nothing.
  using alloc_hook = void (*)(std::size_t bytes, void* user);
  void set_alloc_hook(alloc_hook h, void* user) {
    alloc_hook_ = h;
    alloc_user_ = user;
  }

 private:
  static constexpr std::uint32_t npos = 0xFFFFFFFFu;
  static constexpr std::size_t slab_size = 256;

  enum class slot_kind : std::uint8_t {
    free_slot,
    single,
    periodic,
    member,  // batch member, chained through `next`
    anchor,  // batch head; owns the chain, carries the heap record
  };

  struct slot {
    event_fn fn;
    duration period = duration::zero();
    std::uint32_t gen = 1;
    std::uint32_t next = npos;  // free-list link / batch chain link
    slot_kind kind = slot_kind::free_slot;
    bool live = false;
    bool counted = false;  // contributes to live_ (batch members: at commit)
  };

  // Ready-heap record. Closures never move during sift — only these 24-byte
  // records do.
  struct heap_rec {
    time_point t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static bool sooner(const heap_rec& a, const heap_rec& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  [[nodiscard]] slot& slot_at(std::uint32_t i) {
    return slabs_[i / slab_size][i % slab_size];
  }
  [[nodiscard]] const slot& slot_at(std::uint32_t i) const {
    return slabs_[i / slab_size][i % slab_size];
  }

  static event_id id_of(std::uint32_t slot, std::uint32_t gen) {
    return event_id{(static_cast<std::uint64_t>(slot) + 1) << 32 | gen};
  }

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t i);

  void push_rec(time_point t, std::uint32_t slot, std::uint32_t gen);
  void pop_rec();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void compact();

  /// Drop stale records off the top; return the next live record, or null.
  const heap_rec* peek_valid();

  /// Execute the event(s) of a just-popped valid record.
  void fire(const heap_rec& rec);

  std::vector<std::unique_ptr<slot[]>> slabs_;
  std::vector<heap_rec> heap_;
  std::uint32_t free_head_ = npos;
  std::uint32_t firing_slot_ = npos;  // periodic slot mid-callback, if any
  bool in_event_ = false;             // an event callback is on the stack
  std::size_t live_ = 0;
  std::size_t stale_ = 0;
  std::size_t compactions_ = 0;
  time_point now_ = time_point::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  alloc_hook alloc_hook_ = nullptr;
  void* alloc_user_ = nullptr;
};

}  // namespace hades::sim
