// Simulated LAN with bounded delay and the paper's network fault model.
//
// The paper assumes an ATM LAN whose communication failures are omissions
// (messages lost) and performance failures (messages delivered late,
// section 2.1). The simulator implements exactly those semantics: delivery
// latency is drawn uniformly from [delta_min, delta_max] plus a per-byte
// transfer cost; faults can be injected probabilistically per link or
// scripted deterministically ("drop the next k messages from a to b").
// Per-link FIFO order is preserved, as on an ATM virtual circuit.
//
// Every stochastic draw (latency jitter, omission, lateness) comes from a
// per-source-node stream derived from the seed, never from a shared global
// stream: a node's wire behaviour depends only on its own send history, so
// the same workload produces bit-identical deliveries on the single-engine
// and sharded runtime backends (DESIGN.md, "Sharded backend"). Deliveries
// are scheduled with `runtime::at_node(dst, ...)` so the sharded backend
// can route each one to the shard owning the destination.
//
// Shard confinement (DESIGN.md): all per-link send-side state — the rng
// stream, message sequence numbers, FIFO floors, per-link omissions,
// scripted drop bursts, and the *directional* link-down timelines — lives
// in one `source_state` per node, touched only at send time, i.e. on the
// shard owning the sender (every send a node performs executes on its own
// shard — the anchoring rule of DESIGN.md). Wire counters are atomics.
// The remaining globally-read fault state (node up/down, partitions, the
// global omission/performance rates) is kept as *time-indexed* toggle
// timelines behind a reader/writer lock: a send at date t reads the state
// configured for date t, never the state as of whichever wall-clock order
// the shards happened to execute the mutation in. This is what lets the
// scenario layer replay a fault plan bit-identically across shard AND
// worker counts. Call `reserve_nodes` before a worker-threaded run (the
// owning `core::system` does): per-source slots then pre-exist and the
// hot path performs no structural mutation of shared containers.
#pragma once

#include <any>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/runtime.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace hades::sim {

/// One frame on the wire. Payloads are type-erased values (the simulation is
/// in-process; services down-cast on their own channel).
struct message {
  node_id src = invalid_node;
  node_id dst = invalid_node;
  int channel = 0;
  std::any payload;
  std::size_t size_bytes = 0;
  std::uint64_t id = 0;  // unique per source: (src + 1) << 40 | per-src seq
  time_point sent_at;
};

class network {
 public:
  struct params {
    duration delta_min = duration::microseconds(10);
    duration delta_max = duration::microseconds(50);
    duration per_byte = duration::nanoseconds(8);  // ~1 Gbit/s
  };

  using handler = std::function<void(const message&)>;

  network(runtime& rt, params p, std::uint64_t seed = 42)
      : rt_(&rt), params_(p), seed_(seed) {
    validate(p.delta_min <= p.delta_max, "network: delta_min > delta_max");
    validate(!p.delta_max.is_infinite(), "network: delta_max must be finite");
  }

  /// Pre-create per-source send state for nodes [0, n). Required before a
  /// worker-threaded run (lazy growth is single-threaded-only);
  /// `core::system` calls it with its node count.
  void reserve_nodes(std::size_t n) {
    while (sources_.size() < n) new_source();
  }

  /// Attach a node's receive handler. A node without a handler silently
  /// drops inbound traffic (models a crashed or absent node).
  void attach(node_id n, handler h) {
    ensure_source(n);
    handlers_[n] = std::move(h);
  }
  void detach(node_id n) { handlers_.erase(n); }
  [[nodiscard]] bool attached(node_id n) const { return handlers_.contains(n); }
  [[nodiscard]] std::vector<node_id> attached_nodes() const;

  /// Send one message. Returns the message id (even when the frame is
  /// dropped at submit time).
  std::uint64_t unicast(node_id src, node_id dst, int channel, std::any payload,
                        std::size_t size_bytes = 64);

  /// Send to every attached node except the sender. Returns ids.
  std::vector<std::uint64_t> broadcast(node_id src, int channel,
                                       const std::any& payload,
                                       std::size_t size_bytes = 64);

  // --- fault injection -------------------------------------------------
  // The globally-read toggles (node-down, partition, omission rate,
  // performance faults) each have a date-taking variant programming the
  // state ahead of time. The scenario injector uses those to register a
  // whole plan's wire state *before* the run: reads are date-keyed, so
  // pre-registration changes nothing semantically, but it removes every
  // insert-vs-read race a worker-threaded round could otherwise hit when a
  // relay send lands within one lookahead of a toggle.

  /// Probability that any message is lost (global omission rate). Takes
  /// effect from the current date onward (time-indexed toggle).
  void set_omission_rate(double p) { set_omission_rate_at(rt_->now(), p); }
  /// Program the omission rate to change at future date `t`.
  void set_omission_rate_at(time_point t, double p) {
    std::unique_lock lk(global_mu_);
    omission_rate_.set(t, p);
  }
  /// Per-link omission probability, overrides the global rate. Send-side
  /// state: call from the source's shard (the injector anchors on it).
  void set_link_omission(node_id src, node_id dst, double p) {
    ensure_source(src);
    sources_[src]->link_omission[dst] = p;
  }
  /// Deterministically drop the next `count` messages src -> dst.
  /// `channel >= 0` restricts the burst to that channel (so a scripted
  /// heartbeat burst cannot eat unrelated traffic on the same link).
  void drop_next(node_id src, node_id dst, int count, int channel = any_channel) {
    ensure_source(src);
    sources_[src]->scripted_drops[{dst, channel}] += count;
  }
  /// Take one *direction* of a link down / up: frames src -> dst are dropped
  /// at submit time from this date onward, the reverse direction is
  /// untouched (asymmetric partitions are sets of these). Time-indexed: a
  /// frame is judged against the state at its own send date. Send-side
  /// state: call from the source's shard.
  void set_link_down(node_id src, node_id dst, bool down);
  /// Performance failures: with probability p, add `extra` delay. Takes
  /// effect from the current date onward (time-indexed toggle).
  void set_performance_fault(double p, duration extra) {
    set_performance_fault_at(rt_->now(), p, extra);
  }
  /// Program a performance-fault window edge at future date `t`.
  void set_performance_fault_at(time_point t, double p, duration extra) {
    std::unique_lock lk(global_mu_);
    perf_fault_.set(t, {p, extra});
  }

  /// Take a whole node off the wire (both directions): outbound frames are
  /// dropped at submit time and inbound frames at delivery time, so a
  /// crashed node neither sends nor receives — `core::system::crash_node`
  /// drives this, making crashes symmetric at the wire. Time-indexed: a
  /// frame is judged against the node state at its own send/delivery date.
  void set_node_down(node_id n, bool down) {
    set_node_down_at(rt_->now(), n, down);
  }
  /// Program a node's wire silence to toggle at future date `t`. Same-date
  /// re-registration (the scheduled crash action repeating the injector's
  /// pre-registered entry) is idempotent.
  void set_node_down_at(time_point t, node_id n, bool down) {
    std::unique_lock lk(global_mu_);
    node_down_[n].set(t, down);
  }
  [[nodiscard]] bool node_down(node_id n) const {
    std::shared_lock lk(global_mu_);
    return node_down_at(n, rt_->now());
  }

  /// Partition the LAN into isolated groups: frames whose endpoints are in
  /// different groups are dropped at submit time. Nodes not listed in any
  /// group stay connected to everyone. `heal_partition` reconnects all.
  void partition(const std::vector<std::vector<node_id>>& groups) {
    partition_at(rt_->now(), groups);
  }
  void heal_partition() { heal_partition_at(rt_->now()); }
  /// Program a partition / heal at future date `t`.
  void partition_at(time_point t, const std::vector<std::vector<node_id>>& groups);
  void heal_partition_at(time_point t) {
    std::unique_lock lk(global_mu_);
    partition_.set(t, {});
  }

  // --- observability ---------------------------------------------------
  struct counters {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t late = 0;
  };
  /// Snapshot of the wire counters (atomics; totals are worker-count
  /// independent).
  [[nodiscard]] counters stats() const {
    return {sent_.load(std::memory_order_relaxed),
            delivered_.load(std::memory_order_relaxed),
            dropped_.load(std::memory_order_relaxed),
            late_.load(std::memory_order_relaxed)};
  }
  [[nodiscard]] const params& config() const { return params_; }

  /// Worst-case fault-free delivery latency for a message of `size` bytes.
  [[nodiscard]] duration worst_case_latency(std::size_t size_bytes) const {
    return params_.delta_max + params_.per_byte * static_cast<std::int64_t>(size_bytes);
  }

  /// Observer invoked on every delivery (tracing). Runs on the destination
  /// node's shard; must be shard-confined for worker-threaded runs.
  void set_delivery_observer(std::function<void(const message&)> obs) {
    observer_ = std::move(obs);
  }

  /// Sentinel for drop_next: the burst applies to any channel.
  static constexpr int any_channel = -1;

 private:
  /// Piecewise-constant value over simulated time: `set` records the value
  /// taking effect at date t, `at` reads the value in force at date t. All
  /// reads are order-independent — two shards may execute a mutation and a
  /// query in either wall order within a round and still agree, because the
  /// query compares dates, not mutation order. (Concurrency of the
  /// container itself is the caller's business: the globally-read
  /// timelines live behind `global_mu_`, the per-source ones are confined
  /// to the source's shard.)
  template <typename T>
  class timeline {
   public:
    void set(time_point t, T v) {
      auto it = entries_.end();
      while (it != entries_.begin() && std::prev(it)->first > t) --it;
      entries_.insert(it, {t, std::move(v)});
    }
    [[nodiscard]] const T* at(time_point t) const {
      const T* best = nullptr;
      for (const auto& [when, v] : entries_) {
        if (when > t) break;
        best = &v;
      }
      return best;
    }

   private:
    std::vector<std::pair<time_point, T>> entries_;  // sorted by date
  };

  struct perf_fault {
    double rate = 0.0;
    duration extra = duration::zero();
  };

  /// Send-side state of one node, owned by the shard owning the node: only
  /// events executing there (the node's sends, injector actions anchored on
  /// the node) may touch it.
  struct source_state {
    explicit source_state(rng r) : stream(std::move(r)) {}
    rng stream;
    std::uint64_t next_seq = 0;
    std::map<node_id, time_point> last_delivery;          // FIFO per link
    std::map<node_id, double> link_omission;
    std::map<std::pair<node_id, int>, int> scripted_drops;  // {dst, channel}
    std::map<node_id, timeline<bool>> link_down;          // src -> dst, dated
  };

  void new_source();
  void ensure_source(node_id n) {
    while (sources_.size() <= n) new_source();
  }
  source_state& source(node_id n) {
    ensure_source(n);
    return *sources_[n];
  }

  duration sample_latency(source_state& s, std::size_t size_bytes, bool& late);
  bool should_drop(source_state& s, node_id src, node_id dst, int channel);
  // Callers must hold global_mu_ (shared suffices).
  [[nodiscard]] bool node_down_at(node_id n, time_point t) const;
  [[nodiscard]] bool partitioned_at(node_id a, node_id b, time_point t) const;

  runtime* rt_;
  params params_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<source_state>> sources_;
  std::unordered_map<node_id, handler> handlers_;

  // Globally-read fault state: time-indexed, guarded by global_mu_ so that
  // worker threads can read while an injector action writes. Determinism
  // does not depend on the lock — reads compare dates.
  mutable std::shared_mutex global_mu_;
  std::map<node_id, timeline<bool>> node_down_;
  // node -> group in force; no_group means unrestricted. Empty vector = no
  // partition.
  static constexpr std::uint32_t no_group = 0xFFFFFFFFu;
  timeline<std::vector<std::uint32_t>> partition_;
  timeline<double> omission_rate_;
  timeline<perf_fault> perf_fault_;

  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> late_{0};
  std::function<void(const message&)> observer_;
};

}  // namespace hades::sim
