// Simulated LAN with bounded delay and the paper's network fault model.
//
// The paper assumes an ATM LAN whose communication failures are omissions
// (messages lost) and performance failures (messages delivered late,
// section 2.1). The simulator implements exactly those semantics: delivery
// latency is drawn uniformly from [delta_min, delta_max] plus a per-byte
// transfer cost; faults can be injected probabilistically per link or
// scripted deterministically ("drop the next k messages from a to b").
// Per-link FIFO order is preserved, as on an ATM virtual circuit.
//
// Every stochastic draw (latency jitter, omission, lateness) comes from a
// per-source-node stream derived from the seed, never from a shared global
// stream: a node's wire behaviour depends only on its own send history, so
// the same workload produces bit-identical deliveries on the single-engine
// and sharded runtime backends (DESIGN.md, "Sharded backend"). Deliveries
// are scheduled with `runtime::at_node(dst, ...)` so the sharded backend
// can route each one to the shard owning the destination.
//
// Wire fast path (DESIGN.md, "Wire fast path"): a steady-state fault-free
// send costs zero heap allocations and zero lock acquisitions. Payloads are
// `wire_payload`s (slab-pooled, refcount-shared across broadcast fan-out —
// never `std::any`'s per-copy heap box). Per-source destination-keyed state
// (FIFO floor, per-link omission rate, scripted drop bursts, directional
// link-down timeline) lives in one open-addressed `sparse_node_map` slot
// per destination *actually sent to* — sized by the topology's neighbour
// set, not by N, so 10k-node runs with clustered/tree topologies keep wire
// state near-linear system-wide instead of the O(N²) a dense
// [source][destination] layout costs (DESIGN.md, "Scalable topology
// layer"). One probe per send replaces four vector indexings; after the
// first send to a destination the slot exists and the path allocates
// nothing. Timeline lookups binary-search their sorted entries
// (`std::upper_bound`), so long pre-registered fault plans do not tax every
// send.
//
// Shard confinement (DESIGN.md): all per-link send-side state lives in one
// `source_state` per node, touched only at send time, i.e. on the shard
// owning the sender (every send a node performs executes on its own shard —
// the anchoring rule of DESIGN.md). Wire counters are atomics. The
// remaining globally-read fault state (node up/down, partitions, the global
// omission/performance rates) is an *immutable snapshot* published through
// one atomic pointer: every mutator copies the current snapshot, applies
// its time-indexed edit, and publishes the copy, so the hot path performs a
// single lock-free acquire-load instead of taking a reader/writer lock
// twice. Reads stay date-keyed — a send at date t reads the state
// configured for date t, never the state as of whichever wall-clock order
// the shards happened to execute the mutation in — which is what lets the
// scenario layer replay a fault plan bit-identically across shard AND
// worker counts (`scenario::apply` pre-registers a plan's whole global wire
// truth before the run; runtime re-registrations are same-date idempotent).
//
// Call `reserve_nodes` before a worker-threaded run (the owning
// `core::system` does): source slots and the handler table then pre-exist
// and the hot path performs no structural mutation of *shared* containers.
// Per-destination slots inside a source's sparse map still grow on first
// contact, but that growth is confined to the shard owning the source (the
// only shard that ever touches its send state), so it is legal under
// worker threads — unlike growing the shared handler table. Structural
// mutation of shared state — `attach`, `detach`, lazy source-slot growth —
// is serial-only and *enforced*: doing it from inside event execution
// while the backend runs worker threads throws instead of racing.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "scenario/fault_injector.hpp"
#include "sim/runtime.hpp"
#include "sim/wire_payload.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/sparse_map.hpp"
#include "util/types.hpp"

namespace hades::sim {

/// One frame on the wire. Payloads are type-erased pooled values (the
/// simulation is in-process; services down-cast on their own channel with
/// `payload.get<T>()`). Copying a message shares the payload by refcount.
struct message {
  node_id src = invalid_node;
  node_id dst = invalid_node;
  int channel = 0;
  wire_payload payload;
  std::size_t size_bytes = 0;
  std::uint64_t id = 0;  // unique per source: (src + 1) << 40 | per-src seq
  time_point sent_at;
};

/// The simulated LAN implements the scenario layer's `fault_injector`
/// surface (the date-taking setters below), so a declarative plan drives it
/// and the realtime socket shim through one interface.
class network : public scenario::fault_injector {
 public:
  struct params {
    duration delta_min = duration::microseconds(10);
    duration delta_max = duration::microseconds(50);
    duration per_byte = duration::nanoseconds(8);  // ~1 Gbit/s
  };

  using handler = std::function<void(const message&)>;

  network(runtime& rt, params p, std::uint64_t seed = 42)
      : rt_(&rt), params_(p), seed_(seed) {
    validate(p.delta_min <= p.delta_max, "network: delta_min > delta_max");
    validate(!p.delta_max.is_infinite(), "network: delta_max must be finite");
    publish_initial();
  }
  ~network();
  network(const network&) = delete;
  network& operator=(const network&) = delete;

  /// Pre-create per-source slots and the handler table for nodes [0, n).
  /// Required before a worker-threaded run (shared-structure growth is
  /// single-threaded-only and enforced as such); `core::system` calls it
  /// with its node count. Destination slots inside each source's sparse map
  /// are *not* pre-created — they grow on first contact, on the source's
  /// own shard.
  void reserve_nodes(std::size_t n) {
    if (n > fanout_) fanout_ = n;
    while (sources_.size() < n) new_source();
    if (handlers_.size() < fanout_) {
      handlers_.resize(fanout_);
      delivered_by_dst_.resize(fanout_);
    }
  }

  /// Attach a node's receive handler. A node without a handler silently
  /// drops inbound traffic (models a crashed or absent node). Structural:
  /// serial-only once worker threads run (see header).
  void attach(node_id n, handler h) {
    assert_structural("attach");
    ensure_source(n);
    if (handlers_.size() <= n) {
      handlers_.resize(static_cast<std::size_t>(n) + 1);
      delivered_by_dst_.resize(handlers_.size());
    }
    handlers_[n] = std::move(h);
  }
  void detach(node_id n) {
    assert_structural("detach");
    if (n < handlers_.size()) handlers_[n] = nullptr;
  }
  [[nodiscard]] bool attached(node_id n) const {
    return n < handlers_.size() && handlers_[n] != nullptr;
  }
  [[nodiscard]] std::vector<node_id> attached_nodes() const;

  /// Send one message. Returns the message id (even when the frame is
  /// dropped at submit time).
  std::uint64_t unicast(node_id src, node_id dst, int channel,
                        wire_payload payload, std::size_t size_bytes = 64);

  /// Send to every attached node except the sender, sharing one pooled
  /// payload across the whole fan-out (refcount, not copies). Returns the
  /// number of frames submitted; the zero-allocation broadcast path.
  std::size_t fan_out(node_id src, int channel, const wire_payload& payload,
                      std::size_t size_bytes = 64);

  /// `fan_out` variant collecting per-destination message ids (allocates
  /// the id vector; tests and diagnostics only).
  std::vector<std::uint64_t> broadcast(node_id src, int channel,
                                       const wire_payload& payload,
                                       std::size_t size_bytes = 64);

  // --- fault injection -------------------------------------------------
  // The globally-read toggles (node-down, partition, omission rate,
  // performance faults) each have a date-taking variant programming the
  // state ahead of time. The scenario injector uses those to register a
  // whole plan's wire state *before* the run: reads are date-keyed, so
  // pre-registration changes nothing semantically, but it removes every
  // write-vs-read race a worker-threaded round could otherwise hit when a
  // relay send lands within one lookahead of a toggle. Each mutation
  // publishes a fresh immutable snapshot (see header comment).

  /// Probability that any message is lost (global omission rate). Takes
  /// effect from the current date onward (time-indexed toggle).
  void set_omission_rate(double p) { set_omission_rate_at(rt_->now(), p); }
  /// Program the omission rate to change at future date `t`.
  void set_omission_rate_at(time_point t, double p) override;
  /// Per-link omission probability, overrides the global rate. Send-side
  /// state: call from the source's shard (the injector anchors on it).
  void set_link_omission(node_id src, node_id dst, double p) {
    source(src).dst[dst].link_omission = p;
  }
  /// Deterministically drop the next `count` messages src -> dst.
  /// `channel >= 0` restricts the burst to that channel (so a scripted
  /// heartbeat burst cannot eat unrelated traffic on the same link); a
  /// channel-scoped burst is consumed before any `any_channel` burst on the
  /// same link.
  void drop_next(node_id src, node_id dst, int count, int channel = any_channel);
  /// Take one *direction* of a link down / up: frames src -> dst are dropped
  /// at submit time from this date onward, the reverse direction is
  /// untouched (asymmetric partitions are sets of these). Time-indexed: a
  /// frame is judged against the state at its own send date. Send-side
  /// state: call from the source's shard.
  void set_link_down(node_id src, node_id dst, bool down);
  /// Performance failures: with probability p, add `extra` delay. Takes
  /// effect from the current date onward (time-indexed toggle).
  void set_performance_fault(double p, duration extra) {
    set_performance_fault_at(rt_->now(), p, extra);
  }
  /// Program a performance-fault window edge at future date `t`.
  void set_performance_fault_at(time_point t, double p, duration extra) override;

  /// Take a whole node off the wire (both directions): outbound frames are
  /// dropped at submit time and inbound frames at delivery time, so a
  /// crashed node neither sends nor receives — `core::system::crash_node`
  /// drives this, making crashes symmetric at the wire. Time-indexed: a
  /// frame is judged against the node state at its own send/delivery date.
  void set_node_down(node_id n, bool down) {
    set_node_down_at(rt_->now(), n, down);
  }
  /// Program a node's wire silence to toggle at future date `t`. Same-date
  /// re-registration (the scheduled crash action repeating the injector's
  /// pre-registered entry) is idempotent.
  void set_node_down_at(time_point t, node_id n, bool down) override;
  [[nodiscard]] bool node_down(node_id n) const {
    return snapshot().node_down_at(n, rt_->now());
  }

  /// Partition the LAN into isolated groups: frames whose endpoints are in
  /// different groups are dropped at submit time. Nodes not listed in any
  /// group stay connected to everyone. `heal_partition` reconnects all.
  void partition(const std::vector<std::vector<node_id>>& groups) {
    partition_at(rt_->now(), groups);
  }
  void heal_partition() { heal_partition_at(rt_->now()); }
  /// Program a partition / heal at future date `t`.
  void partition_at(time_point t,
                    const std::vector<std::vector<node_id>>& groups) override;
  void heal_partition_at(time_point t) override;

  // --- remote transport (realtime backend) ------------------------------
  /// Hook consulted first in the send path. Returning true means the frame's
  /// destination is owned by another OS process and the transport took it
  /// (fault decisions for such frames belong to the socket-layer shim, which
  /// consumes the same plan); false falls through to the local wire.
  /// Null (the default, every sim run) costs one branch.
  void set_remote_hook(std::function<bool(const message&)> hook) {
    remote_hook_ = std::move(hook);
  }
  /// Inject a frame that arrived from a remote transport: schedules the
  /// destination's handler on its owning shard at the current date, with the
  /// same delivery-date node-down check local frames get. Callable from the
  /// transport's receiver thread (the realtime backend's scheduling calls
  /// are thread-safe).
  void deliver_remote(message m);

  // --- observability ---------------------------------------------------
  struct counters {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t late = 0;
  };
  /// Snapshot of the wire counters. Send-side events (sent, submit-time
  /// drops, lateness) are counted per source — shard-confined plain
  /// increments, summed here — and only delivery-side events touch an
  /// atomic; totals are worker-count independent either way. Read between
  /// runs (the round barrier orders the per-source counts).
  [[nodiscard]] counters stats() const {
    counters c{0, 0, dropped_inflight_.load(std::memory_order_relaxed), 0};
    for (const auto& s : sources_) {
      c.sent += s->sent;
      c.dropped += s->dropped;
      c.late += s->late;
    }
    for (const dst_counter& d : delivered_by_dst_) c.delivered += d.delivered;
    return c;
  }
  [[nodiscard]] const params& config() const { return params_; }

  /// Bytes of send-side destination-keyed state across all sources — the
  /// scaling benches' check that wire state tracks the neighbour set, not
  /// N² (read between runs; walks per-source maps).
  [[nodiscard]] std::size_t send_state_bytes() const {
    std::size_t b = 0;
    for (const auto& s : sources_)
      b += sizeof(source_state) + s->dst.capacity_bytes();
    return b;
  }

  /// Worst-case fault-free delivery latency for a message of `size` bytes.
  [[nodiscard]] duration worst_case_latency(std::size_t size_bytes) const {
    return params_.delta_max + params_.per_byte * static_cast<std::int64_t>(size_bytes);
  }

  /// Observer invoked on every delivery (tracing). Runs on the destination
  /// node's shard; must be shard-confined for worker-threaded runs.
  void set_delivery_observer(std::function<void(const message&)> obs) {
    observer_ = std::move(obs);
  }

  /// Sentinel for drop_next: the burst applies to any channel.
  static constexpr int any_channel = -1;

 private:
  /// Piecewise-constant value over simulated time: `set` records the value
  /// taking effect at date t, `at` reads the value in force at date t. All
  /// reads are order-independent — two shards may execute a mutation and a
  /// query in either wall order within a round and still agree, because the
  /// query compares dates, not mutation order. Entries stay sorted by date,
  /// same-date entries in registration order, and both `set` and `at`
  /// binary-search (`std::upper_bound`) — `at` returns the *last* entry at
  /// or before t, so same-date re-registration is last-write-wins.
  /// (Concurrency of the container itself is the caller's business: the
  /// globally-read timelines live inside immutable published snapshots, the
  /// per-source ones are confined to the source's shard.)
  template <typename T>
  class timeline {
   public:
    void set(time_point t, T v) {
      entries_.insert(upper_bound(t), {t, std::move(v)});
    }
    [[nodiscard]] const T* at(time_point t) const {
      auto it = upper_bound(t);
      return it == entries_.begin() ? nullptr : &std::prev(it)->second;
    }
    [[nodiscard]] bool empty() const { return entries_.empty(); }

   private:
    using entry = std::pair<time_point, T>;
    // Const iterator serves both paths: vector::insert takes one.
    [[nodiscard]] typename std::vector<entry>::const_iterator upper_bound(
        time_point t) const {
      return std::upper_bound(
          entries_.begin(), entries_.end(), t,
          [](time_point q, const entry& e) { return q < e.first; });
    }

    std::vector<entry> entries_;  // sorted by date
  };

  struct perf_fault {
    double rate = 0.0;
    duration extra = duration::zero();
  };

  /// Immutable globally-read fault state. Mutators copy-edit-publish under
  /// `publish_mu_`; the hot path reads the current snapshot through one
  /// atomic acquire-load and never blocks. Retired snapshots are kept until
  /// network destruction, so a reader can never dangle (writes are bounded:
  /// plan pre-registration plus rare runtime re-registrations).
  struct global_state {
    std::vector<timeline<bool>> node_down;  // node-indexed
    // node -> group in force; no_group means unrestricted. Empty vector =
    // no partition.
    timeline<std::vector<std::uint32_t>> partition;
    timeline<double> omission_rate;
    timeline<perf_fault> perf_fault_tl;

    [[nodiscard]] bool node_down_at(node_id n, time_point t) const {
      if (n >= node_down.size()) return false;
      const bool* v = node_down[n].at(t);
      return v != nullptr && *v;
    }
    [[nodiscard]] bool partitioned_at(node_id a, node_id b, time_point t) const;
  };

  static constexpr std::uint32_t no_group = 0xFFFFFFFFu;

  struct drop_burst {
    int channel = 0;  // any_channel = every channel
    int remaining = 0;
  };

  /// Everything this source keeps about one destination: the FIFO floor and
  /// the per-link fault program. One sparse-map slot per destination ever
  /// sent to (or fault-programmed) — the neighbour set, not N.
  struct dst_state {
    time_point last_delivery;        // FIFO floor on this link
    double link_omission = -1.0;     // <0 = unset, fall back to global rate
    std::vector<drop_burst> scripted_drops;
    timeline<bool> link_down;        // src -> dst, dated
  };

  /// Send-side state of one node, owned by the shard owning the node: only
  /// events executing there (the node's sends, injector actions anchored on
  /// the node) may touch it. Destination-keyed state is a sparse map keyed
  /// by the destinations this source talks to; slot growth happens on the
  /// owning shard and is therefore worker-safe (see header).
  struct source_state {
    explicit source_state(rng r) : stream(std::move(r)) {}
    rng stream;
    std::uint64_t next_seq = 0;
    std::uint64_t sent = 0;     // frames submitted by this source
    std::uint64_t dropped = 0;  // frames dropped at submit time
    std::uint64_t late = 0;     // frames hit by a performance fault
    util::sparse_node_map<dst_state> dst;
  };

  void new_source();
  void ensure_source(node_id n) {
    // Source-slot creation grows the shared sources_ vector: structural.
    if (n >= sources_.size()) {
      assert_structural("source-slot growth");
      while (sources_.size() <= n) new_source();
    }
  }
  source_state& source(node_id n) {
    ensure_source(n);
    return *sources_[n];
  }

  /// Structural mutation of shared wire containers (handler table, source
  /// slots, fan-out width) is serial-only: from inside event execution of a
  /// worker-threaded backend it would race with concurrent sends on other
  /// shards, so it throws instead. `reserve_nodes` pre-sizes everything.
  void assert_structural(const char* what) const {
    if (rt_->worker_count() > 0 && rt_->in_event_context())
      throw error(std::string("network: ") + what +
                  " from inside event execution with workers > 0; structural "
                  "wire mutation is serial-only — pre-size with reserve_nodes "
                  "before the run (see network.hpp)");
  }

  [[nodiscard]] const global_state& snapshot() const {
    return *global_.load(std::memory_order_acquire);
  }
  /// Copy the current snapshot, apply `edit`, publish the copy, retire the
  /// predecessor. Serialized by `publish_mu_`; never blocks readers.
  template <typename Edit>
  void mutate_global(Edit&& edit);
  void publish_initial();

  duration sample_latency(source_state& s, std::size_t size_bytes,
                          const global_state& g, time_point now, bool& late);
  /// The delivery-time half of the wire: node-down check, counters,
  /// observer, handler. Shared by locally scheduled deliveries and frames
  /// injected by `deliver_remote`.
  void deliver_now(const message& m);
  bool should_drop(source_state& s, dst_state& ds, node_id src, node_id dst,
                   int channel, const global_state& g, time_point now);
  /// The send fast path. `fan_out`/`broadcast` hoist the snapshot load, the
  /// clock read, and the source lookup out of their per-destination loop.
  std::uint64_t submit(source_state& s, const global_state& g, time_point now,
                       node_id src, node_id dst, int channel,
                       wire_payload payload, std::size_t size_bytes);

  runtime* rt_;
  params params_;
  std::uint64_t seed_;
  std::size_t fanout_ = 0;  // width of destination-indexed vectors
  std::vector<std::unique_ptr<source_state>> sources_;
  std::vector<handler> handlers_;  // node-indexed; null = not attached
  /// Delivery counter of one destination, padded so worker threads
  /// delivering on different shards never share a cache line.
  struct alignas(64) dst_counter {
    std::uint64_t delivered = 0;
  };
  std::vector<dst_counter> delivered_by_dst_;  // node-indexed, like handlers_

  std::atomic<const global_state*> global_{nullptr};
  std::mutex publish_mu_;  // serializes mutators, never taken by readers
  std::vector<std::unique_ptr<const global_state>> retired_;

  // In-flight drops (destination crashed or detached before delivery) stay
  // atomic: the edge is rare and not worth a padded per-node counter.
  std::atomic<std::uint64_t> dropped_inflight_{0};
  std::function<void(const message&)> observer_;
  std::function<bool(const message&)> remote_hook_;  // null on sim backends
};

}  // namespace hades::sim
