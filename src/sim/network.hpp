// Simulated LAN with bounded delay and the paper's network fault model.
//
// The paper assumes an ATM LAN whose communication failures are omissions
// (messages lost) and performance failures (messages delivered late,
// section 2.1). The simulator implements exactly those semantics: delivery
// latency is drawn uniformly from [delta_min, delta_max] plus a per-byte
// transfer cost; faults can be injected probabilistically per link or
// scripted deterministically ("drop the next k messages from a to b").
// Per-link FIFO order is preserved, as on an ATM virtual circuit.
//
// Every stochastic draw (latency jitter, omission, lateness) comes from a
// per-source-node stream derived from the seed, never from a shared global
// stream: a node's wire behaviour depends only on its own send history, so
// the same workload produces bit-identical deliveries on the single-engine
// and sharded runtime backends (DESIGN.md, "Sharded backend"). Deliveries
// are scheduled with `runtime::at_node(dst, ...)` so the sharded backend
// can route each one to the shard owning the destination.
//
// Fault state consulted by every shard (node up/down, partitions, the
// global omission/performance rates) is kept as *time-indexed* toggle
// timelines rather than plain mutable fields: a send at date t reads the
// state that was configured for date t, never the state as of whichever
// wall-clock order the sharded rounds happened to execute the mutation in.
// This is what lets the scenario layer (DESIGN.md, "Scenario layer") replay
// a fault plan bit-identically across shard counts.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <iterator>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/runtime.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace hades::sim {

/// One frame on the wire. Payloads are type-erased values (the simulation is
/// in-process; services down-cast on their own channel).
struct message {
  node_id src = invalid_node;
  node_id dst = invalid_node;
  int channel = 0;
  std::any payload;
  std::size_t size_bytes = 0;
  std::uint64_t id = 0;
  time_point sent_at;
};

class network {
 public:
  struct params {
    duration delta_min = duration::microseconds(10);
    duration delta_max = duration::microseconds(50);
    duration per_byte = duration::nanoseconds(8);  // ~1 Gbit/s
  };

  using handler = std::function<void(const message&)>;

  network(runtime& rt, params p, std::uint64_t seed = 42)
      : rt_(&rt), params_(p), seed_(seed) {
    validate(p.delta_min <= p.delta_max, "network: delta_min > delta_max");
    validate(!p.delta_max.is_infinite(), "network: delta_max must be finite");
  }

  /// Attach a node's receive handler. A node without a handler silently
  /// drops inbound traffic (models a crashed or absent node).
  void attach(node_id n, handler h) { handlers_[n] = std::move(h); }
  void detach(node_id n) { handlers_.erase(n); }
  [[nodiscard]] bool attached(node_id n) const { return handlers_.contains(n); }
  [[nodiscard]] std::vector<node_id> attached_nodes() const;

  /// Send one message. Returns the message id (0 if dropped at submit time
  /// because the destination never attached).
  std::uint64_t unicast(node_id src, node_id dst, int channel, std::any payload,
                        std::size_t size_bytes = 64);

  /// Send to every attached node except the sender. Returns ids.
  std::vector<std::uint64_t> broadcast(node_id src, int channel,
                                       const std::any& payload,
                                       std::size_t size_bytes = 64);

  // --- fault injection -------------------------------------------------
  /// Probability that any message is lost (global omission rate). Takes
  /// effect from the current date onward (time-indexed toggle).
  void set_omission_rate(double p) { omission_rate_.set(rt_->now(), p); }
  /// Per-link omission probability, overrides the global rate.
  void set_link_omission(node_id src, node_id dst, double p) {
    link_omission_[{src, dst}] = p;
  }
  /// Deterministically drop the next `count` messages src -> dst.
  /// `channel >= 0` restricts the burst to that channel (so a scripted
  /// heartbeat burst cannot eat unrelated traffic on the same link).
  void drop_next(node_id src, node_id dst, int count, int channel = any_channel) {
    scripted_drops_[{{src, dst}, channel}] += count;
  }
  /// Take a whole link down / up.
  void set_link_down(node_id src, node_id dst, bool down);
  /// Performance failures: with probability p, add `extra` delay. Takes
  /// effect from the current date onward (time-indexed toggle).
  void set_performance_fault(double p, duration extra) {
    perf_fault_.set(rt_->now(), {p, extra});
  }

  /// Take a whole node off the wire (both directions): outbound frames are
  /// dropped at submit time and inbound frames at delivery time, so a
  /// crashed node neither sends nor receives — `core::system::crash_node`
  /// drives this, making crashes symmetric at the wire. Time-indexed: a
  /// frame is judged against the node state at its own send/delivery date.
  void set_node_down(node_id n, bool down) {
    node_down_[n].set(rt_->now(), down);
  }
  [[nodiscard]] bool node_down(node_id n) const {
    return node_down_at(n, rt_->now());
  }

  /// Partition the LAN into isolated groups: frames whose endpoints are in
  /// different groups are dropped at submit time. Nodes not listed in any
  /// group stay connected to everyone. `heal_partition` reconnects all.
  void partition(const std::vector<std::vector<node_id>>& groups);
  void heal_partition();

  // --- observability ---------------------------------------------------
  struct counters {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t late = 0;
  };
  [[nodiscard]] const counters& stats() const { return stats_; }
  [[nodiscard]] const params& config() const { return params_; }

  /// Worst-case fault-free delivery latency for a message of `size` bytes.
  [[nodiscard]] duration worst_case_latency(std::size_t size_bytes) const {
    return params_.delta_max + params_.per_byte * static_cast<std::int64_t>(size_bytes);
  }

  /// Observer invoked on every delivery (tracing).
  void set_delivery_observer(std::function<void(const message&)> obs) {
    observer_ = std::move(obs);
  }

  /// Sentinel for drop_next: the burst applies to any channel.
  static constexpr int any_channel = -1;

 private:
  /// Piecewise-constant value over simulated time: `set` records the value
  /// taking effect at date t, `at` reads the value in force at date t. All
  /// reads are order-independent — two shards may execute a mutation and a
  /// query in either wall order within a round and still agree, because the
  /// query compares dates, not mutation order.
  template <typename T>
  class timeline {
   public:
    void set(time_point t, T v) {
      auto it = entries_.end();
      while (it != entries_.begin() && std::prev(it)->first > t) --it;
      entries_.insert(it, {t, std::move(v)});
    }
    [[nodiscard]] const T* at(time_point t) const {
      const T* best = nullptr;
      for (const auto& [when, v] : entries_) {
        if (when > t) break;
        best = &v;
      }
      return best;
    }

   private:
    std::vector<std::pair<time_point, T>> entries_;  // sorted by date
  };

  struct perf_fault {
    double rate = 0.0;
    duration extra = duration::zero();
  };

  duration sample_latency(node_id src, std::size_t size_bytes, bool& late);
  bool should_drop(node_id src, node_id dst, int channel);
  [[nodiscard]] bool node_down_at(node_id n, time_point t) const;
  [[nodiscard]] bool partitioned_at(node_id a, node_id b, time_point t) const;
  rng& stream(node_id src);

  runtime* rt_;
  params params_;
  std::uint64_t seed_;
  std::map<node_id, rng> streams_;  // per-source-node draw streams
  std::unordered_map<node_id, handler> handlers_;
  std::map<std::pair<node_id, node_id>, double> link_omission_;
  std::map<std::pair<std::pair<node_id, node_id>, int>, int> scripted_drops_;
  std::map<std::pair<node_id, node_id>, bool> link_down_;
  std::map<std::pair<node_id, node_id>, time_point> last_delivery_;  // FIFO per link
  std::map<node_id, timeline<bool>> node_down_;
  // node -> group in force; no_group means unrestricted. Empty vector = no
  // partition.
  static constexpr std::uint32_t no_group = 0xFFFFFFFFu;
  timeline<std::vector<std::uint32_t>> partition_;
  timeline<double> omission_rate_;
  timeline<perf_fault> perf_fault_;
  std::uint64_t next_id_ = 1;
  counters stats_;
  std::function<void(const message&)> observer_;
};

}  // namespace hades::sim
