#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <limits>

namespace hades::sim {

namespace {

// Which shard (of which sharded_engine) the current thread is executing.
// Set around every event batch a shard runs; callbacks scheduling follow-up
// work are routed to the shard that is running them.
struct exec_ctx {
  const void* owner = nullptr;
  std::uint32_t shard = 0;
};
thread_local exec_ctx tls_ctx;

}  // namespace

sharded_engine::sharded_engine(sharded_params p)
    : lookahead_(p.lookahead), node_shard_(std::move(p.node_shard)) {
  validate(p.shards >= 1 && p.shards <= 64,
           "sharded_engine: shard count must be in [1, 64]");
  validate(!lookahead_.is_infinite() &&
               lookahead_ >= duration::nanoseconds(1),
           "sharded_engine: lookahead must be finite and >= 1ns");
  for (std::uint32_t s : node_shard_)
    validate(s < p.shards, "sharded_engine: node mapped to unknown shard");
  // Ring capacity trades memory (shards^2 rings) against spill frequency;
  // overflow degrades to the barrier-ordered spill vector, never breaks.
  const std::size_t ring_cap =
      p.shards <= 8 ? 512 : p.shards <= 16 ? 128 : 64;
  shards_.reserve(p.shards);
  for (std::size_t s = 0; s < p.shards; ++s) {
    shards_.push_back(std::make_unique<shard>());
    shards_.back()->outbox = std::make_unique<spsc_ring[]>(p.shards);
    for (std::size_t t = 0; t < p.shards; ++t)
      shards_.back()->outbox[t].slots.resize(ring_cap);
  }
  const std::size_t workers = std::min(p.workers, p.shards);
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    workers_.emplace_back([this] { worker_main(); });
}

sharded_engine::~sharded_engine() {
  {
    std::lock_guard lk(pool_mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

std::uint32_t sharded_engine::shard_of(node_id n) const {
  if (n < node_shard_.size()) return node_shard_[n];
  return static_cast<std::uint32_t>(n % shards_.size());
}

event_id sharded_engine::tag(std::uint32_t s, event_id inner) {
  if (inner == invalid_event) return inner;
  require(inner.value >> shard_shift == 0,
          "sharded_engine: per-shard event pool exceeds the id tag space");
  return event_id{inner.value | (static_cast<std::uint64_t>(s) << shard_shift)};
}

std::uint32_t sharded_engine::current_shard() const {
  return tls_ctx.owner == this ? tls_ctx.shard : 0;
}

bool sharded_engine::in_callback() const { return tls_ctx.owner == this; }

// --- scheduling --------------------------------------------------------------

time_point sharded_engine::now() const {
  if (in_callback()) return shards_[tls_ctx.shard]->core.now();
  // Between rounds every core sits at the same date; during a round the
  // conservative minimum is the global virtual time.
  time_point m = shards_[0]->core.now();
  for (std::size_t s = 1; s < shards_.size(); ++s)
    m = std::min(m, shards_[s]->core.now());
  return m;
}

event_id sharded_engine::at(time_point t, event_fn fn) {
  const std::uint32_t s = current_shard();
  return tag(s, shards_[s]->core.at(t, std::move(fn)));
}

event_id sharded_engine::at_node(node_id dst, time_point t, event_fn fn) {
  const std::uint32_t target = shard_of(dst);
  if (!in_callback() || target == current_shard())
    return tag(target, shards_[target]->core.at(t, std::move(fn)));
  // Cross-shard: push onto the origin's per-target SPSC ring (lock-free;
  // see drain_outboxes for the consumer side). The lookahead requirement
  // is what makes the conservative horizon sound — an event below the
  // horizon can only create work at or beyond it.
  shard& from = *shards_[current_shard()];
  require(t >= from.core.now() + lookahead_,
          "sharded_engine::at_node: cross-shard event below the lookahead");
  from.outbox[target].push(
      cross_event{t, current_shard(), from.xmit_seq++, std::move(fn)});
  return invalid_event;  // cross-shard events are fire-and-forget
}

event_id sharded_engine::schedule_periodic(time_point first, duration period,
                                           event_fn fn) {
  const std::uint32_t s = current_shard();
  return tag(s, shards_[s]->core.schedule_periodic(first, period,
                                                   std::move(fn)));
}

void sharded_engine::cancel(event_id id) {
  if (id == invalid_event) return;
  const auto s = static_cast<std::uint32_t>(id.value >> shard_shift);
  if (s >= shards_.size()) return;
  shards_[s]->core.cancel(
      event_id{id.value & ((std::uint64_t{1} << shard_shift) - 1)});
}

event_batch sharded_engine::open_batch(time_point t) {
  const std::uint32_t s = current_shard();
  event_batch b = shards_[s]->core.open_batch(t);
  b.owner = s;
  return b;
}

event_id sharded_engine::batch_add(event_batch& b, event_fn fn) {
  return tag(b.owner, shards_[b.owner]->core.batch_add(b, std::move(fn)));
}

void sharded_engine::commit(event_batch& b) {
  shards_[b.owner]->core.commit(b);
}

// --- conservative rounds -----------------------------------------------------

// Round-boundary injection. Ring contents are published by the producers'
// release-stores of `tail` and consumed here through acquire-loads — the
// hand-off no longer leans on the round barrier's mutex (spill vectors
// still do, by construction). Each target merges the per-origin batches
// destined for it, sorted by the deterministic key; a drain fed by a
// single origin skips the sort — ring+spill order is already origin-seq
// order, which is the stable order the sort would produce for same-instant
// events, and the target core's heap orders distinct instants anyway.
void sharded_engine::drain_outboxes() {
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    shard& sh = *shards_[s];
    drain_scratch_.clear();
    std::size_t sources = 0;
    for (auto& from : shards_) {
      spsc_ring& ring = from->outbox[s];
      const std::uint64_t tail = ring.tail.load(std::memory_order_acquire);
      std::uint64_t head = ring.head.load(std::memory_order_relaxed);
      if (head == tail && ring.spill.empty()) continue;
      ++sources;
      for (; head != tail; ++head)
        drain_scratch_.push_back(
            std::move(ring.slots[head % ring.slots.size()]));
      ring.head.store(head, std::memory_order_release);
      if (!ring.spill.empty()) {
        // The spill continues the ring: once a push spills, every later
        // push of the round spills too, so seq order is preserved.
        std::move(ring.spill.begin(), ring.spill.end(),
                  std::back_inserter(drain_scratch_));
        ring.spill.clear();
      }
    }
    if (drain_scratch_.empty()) continue;
    if (sources > 1) {
      // The deterministic merge: injection order (and so the core's FIFO
      // tie-break among same-instant arrivals) never depends on which
      // thread pushed first.
      std::sort(drain_scratch_.begin(), drain_scratch_.end(),
                [](const cross_event& a, const cross_event& b) {
                  if (a.t != b.t) return a.t < b.t;
                  if (a.origin_shard != b.origin_shard)
                    return a.origin_shard < b.origin_shard;
                  return a.origin_seq < b.origin_seq;
                });
    } else {
      ++single_source_drains_;
    }
    cross_events_ += drain_scratch_.size();
    for (auto& ce : drain_scratch_) sh.core.at(ce.t, std::move(ce.fn));
  }
}

time_point sharded_engine::next_time_all() {
  time_point m = time_point::infinity();
  for (auto& sp : shards_) m = std::min(m, sp->core.peek_time());
  return m;
}

std::size_t sharded_engine::run_shard(std::uint32_t s, time_point bound) {
  shard& sh = *shards_[s];
  const exec_ctx prev = tls_ctx;
  tls_ctx = {this, s};
  const std::size_t n = sh.core.run_until(bound);
  tls_ctx = prev;
  sh.ran += n;
  return n;
}

std::size_t sharded_engine::round(time_point bound) {
  ++rounds_;
  if (workers_.empty()) {
    std::size_t n = 0;
    for (std::uint32_t s = 0; s < shards_.size(); ++s)
      n += run_shard(s, bound);
    return n;
  }
  std::unique_lock lk(pool_mu_);
  round_bound_ = bound;
  next_claim_ = 0;
  unfinished_ = shards_.size();
  round_executed_ = 0;
  ++round_ticket_;
  cv_work_.notify_all();
  cv_done_.wait(lk, [this] { return unfinished_ == 0; });
  return round_executed_;
}

void sharded_engine::worker_main() {
  std::uint64_t seen_ticket = 0;
  std::unique_lock lk(pool_mu_);
  for (;;) {
    cv_work_.wait(lk, [&] { return stop_ || round_ticket_ != seen_ticket; });
    if (stop_) return;
    seen_ticket = round_ticket_;
    const time_point bound = round_bound_;
    while (next_claim_ < shards_.size()) {
      const auto s = static_cast<std::uint32_t>(next_claim_++);
      lk.unlock();
      const std::size_t n = run_shard(s, bound);
      lk.lock();
      round_executed_ += n;
      if (--unfinished_ == 0) cv_done_.notify_one();
    }
  }
}

std::size_t sharded_engine::run_rounds(time_point limit,
                                       std::size_t max_events) {
  std::size_t total = 0;
  while (total < max_events) {
    drain_outboxes();
    const time_point m = next_time_all();
    if (m.is_infinite() || m > limit) break;
    // Everything strictly below m + lookahead is safe; run_until is
    // inclusive, so the bound is one tick short of the horizon. max_events
    // is enforced at round granularity (a round is the atom of progress).
    time_point bound = (m + lookahead_) - duration::nanoseconds(1);
    if (limit < bound) bound = limit;
    total += round(bound);
  }
  return total;
}

// --- execution ---------------------------------------------------------------

bool sharded_engine::step() {
  drain_outboxes();
  std::uint32_t best = 0;
  time_point bt = time_point::infinity();
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    const time_point t = shards_[s]->core.peek_time();
    if (t < bt) {
      bt = t;
      best = s;
    }
  }
  if (bt.is_infinite()) return false;
  shard& sh = *shards_[best];
  const exec_ctx prev = tls_ctx;
  tls_ctx = {this, best};
  const std::uint64_t before = sh.core.executed();
  sh.core.step();
  tls_ctx = prev;
  sh.ran += sh.core.executed() - before;
  return true;
}

std::size_t sharded_engine::run_until(time_point t) {
  const std::size_t n =
      run_rounds(t, std::numeric_limits<std::size_t>::max());
  if (!t.is_infinite())
    for (auto& sp : shards_) sp->core.run_until(t);  // advance idle clocks
  return n;
}

std::size_t sharded_engine::run(std::size_t max_events) {
  return run_rounds(time_point::infinity(), max_events);
}

bool sharded_engine::empty() const {
  // Like the cores themselves, these queries are meaningful from outside
  // event execution (between rounds), where producers are quiescent.
  for (const auto& sp : shards_) {
    if (!sp->core.empty()) return false;
    for (std::size_t t = 0; t < shards_.size(); ++t) {
      const spsc_ring& ring = sp->outbox[t];
      if (ring.tail.load(std::memory_order_acquire) !=
              ring.head.load(std::memory_order_acquire) ||
          !ring.spill.empty())
        return false;
    }
  }
  return true;
}

std::size_t sharded_engine::pending() const {
  std::size_t n = 0;
  for (const auto& sp : shards_) {
    n += sp->core.pending();
    for (std::size_t t = 0; t < shards_.size(); ++t) {
      const spsc_ring& ring = sp->outbox[t];
      n += static_cast<std::size_t>(
          ring.tail.load(std::memory_order_acquire) -
          ring.head.load(std::memory_order_acquire));
      n += ring.spill.size();
    }
  }
  return n;
}

std::uint64_t sharded_engine::executed() const {
  std::uint64_t n = 0;
  for (const auto& sp : shards_) n += sp->core.executed();
  return n;
}

sharded_engine::shard_stats sharded_engine::stats() const {
  shard_stats st;
  st.rounds = rounds_;
  st.cross_events = cross_events_;
  st.single_source_drains = single_source_drains_;
  st.executed_per_shard.reserve(shards_.size());
  for (const auto& sp : shards_) {
    st.executed_per_shard.push_back(sp->ran);
    for (std::size_t t = 0; t < shards_.size(); ++t)
      st.spilled += sp->outbox[t].spilled;
  }
  return st;
}

std::unique_ptr<runtime> make_sharded_engine(sharded_params p) {
  return std::make_unique<sharded_engine>(std::move(p));
}

}  // namespace hades::sim
