// Sharded multi-engine backend of hades::runtime (DESIGN.md, "Sharded
// backend"): the scale-out counterpart of the single pooled `sim::engine`.
//
// Nodes are partitioned into shards, each shard owning its own pooled event
// core (`sim::engine` slabs + 4-ary heap). Time advances in conservative
// rounds: with `m` the earliest pending event anywhere and `L` the
// configured lookahead (a lower bound on every cross-shard scheduling
// delay — the network's minimum link delay), every event strictly below the
// horizon `m + L` is independent across shards and safe to run, because any
// event it creates on another shard lands at or beyond the horizon. Within
// a round, shards advance either serially on the calling thread
// (`workers == 0`, always safe) or concurrently on a worker pool
// (`workers > 0`, requires shard-confined event handlers).
//
// Cross-shard events (`at_node` targeting a foreign shard) are pushed onto
// a bounded lock-free SPSC ring, one per (origin, target) pair: the origin
// shard's thread is the sole producer, the draining thread the sole
// consumer, and the hand-off is a release-store of the producer cursor
// matched by an acquire-load in the drain — the transfer no longer relies
// on the round barrier's mutex for visibility. Ring overflow spills to an
// owner-only vector that the barrier still orders, so correctness never
// depends on capacity. Drained events are injected into the target cores
// at the round boundary sorted by the deterministic key {time, origin
// shard, origin sequence} — so the merged execution trace is independent
// of thread interleaving and, for workloads whose same-instant events are
// shard-local, identical to the single-engine run (see DESIGN.md for the
// exact determinism argument). When a single origin contributed to a
// target, the sort is skipped: within one ring, same-instant events are
// already in sequence order, which is exactly the stable order the sort
// would produce, and distinct-instant events are ordered by the target
// core's heap regardless of injection order.
//
// Contract deviations from the single engine, all confined to cross-shard
// use: `at_node` across shards requires `t >= now() + lookahead`, returns
// `invalid_event` (fire-and-forget), and `cancel` of a foreign shard's id
// is only safe between rounds (i.e. from outside event execution) when
// workers are enabled.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/runtime.hpp"

namespace hades::sim {

class sharded_engine final : public runtime {
 public:
  explicit sharded_engine(sharded_params p);
  ~sharded_engine() override;

  // --- runtime interface ---------------------------------------------------
  [[nodiscard]] time_point now() const override;
  event_id at(time_point t, event_fn fn) override;
  event_id at_node(node_id dst, time_point t, event_fn fn) override;
  event_id schedule_periodic(time_point first, duration period,
                             event_fn fn) override;
  void cancel(event_id id) override;

  event_batch open_batch(time_point t) override;
  event_id batch_add(event_batch& b, event_fn fn) override;
  void commit(event_batch& b) override;

  bool step() override;
  std::size_t run_until(time_point t) override;
  std::size_t run(std::size_t max_events = 100'000'000) override;

  [[nodiscard]] bool empty() const override;
  [[nodiscard]] std::size_t pending() const override;
  [[nodiscard]] std::uint64_t executed() const override;

  // --- shard observability ---------------------------------------------------
  [[nodiscard]] std::uint32_t shard_of(node_id n) const override;
  [[nodiscard]] std::size_t shard_count() const override {
    return shards_.size();
  }
  /// The shard whose event core the calling thread is executing (0 when
  /// called from outside event execution) — what shard-confined components
  /// index their per-shard partitions with.
  [[nodiscard]] std::uint32_t executing_shard() const override {
    return current_shard();
  }
  [[nodiscard]] std::size_t worker_count() const override {
    return workers_.size();
  }
  [[nodiscard]] bool in_event_context() const override { return in_callback(); }
  [[nodiscard]] duration lookahead() const { return lookahead_; }

  struct shard_stats {
    std::uint64_t rounds = 0;        // conservative synchronization windows
    std::uint64_t cross_events = 0;  // events routed through an outbox
    /// Cross-events that overflowed their SPSC ring into the spill vector
    /// (still correct, but the hand-off fell back to barrier ordering).
    std::uint64_t spilled = 0;
    /// Target drains where exactly one origin contributed, letting the
    /// deterministic merge skip its sort (see drain_outboxes).
    std::uint64_t single_source_drains = 0;
    /// Events executed per shard — the max/mean ratio is the load balance,
    /// and sum/max bounds the achievable parallel speedup (critical path).
    std::vector<std::uint64_t> executed_per_shard;
  };
  [[nodiscard]] shard_stats stats() const;

 private:
  // Events crossing a shard boundary carry a deterministic merge key:
  // outboxes are drained sorted by {t, origin shard, origin seq}, so the
  // injection order — and hence the target core's FIFO tie-break — never
  // depends on thread interleaving.
  struct cross_event {
    time_point t;
    std::uint32_t origin_shard;
    std::uint64_t origin_seq;
    event_fn fn;
  };

  // Bounded lock-free SPSC ring. Producer: the single thread executing the
  // origin shard (push). Consumer: the draining thread (drain_outboxes).
  // `tail` is release-published after the slot write and acquire-read by
  // the consumer; `head` release-published after consumption and
  // acquire-read by the producer's full check — classic two-cursor SPSC.
  // A full ring spills to `spill`, which only the producer touches during
  // a round and the round barrier hands off, so overflow degrades the
  // fast path, never correctness. Within one ring (and the spill continuing
  // it) events are in strictly increasing origin-seq order.
  struct spsc_ring {
    std::vector<cross_event> slots;
    std::atomic<std::uint64_t> head{0};  // consumer cursor
    std::atomic<std::uint64_t> tail{0};  // producer cursor
    std::vector<cross_event> spill;      // producer-only overflow
    std::uint64_t spilled = 0;           // producer-only counter

    void push(cross_event&& ce) {
      const std::uint64_t t = tail.load(std::memory_order_relaxed);
      if (t - head.load(std::memory_order_acquire) < slots.size()) {
        slots[t % slots.size()] = std::move(ce);
        tail.store(t + 1, std::memory_order_release);
      } else {
        spill.push_back(std::move(ce));
        ++spilled;
      }
    }
  };

  struct shard {
    engine core;
    std::uint64_t xmit_seq = 0;  // outgoing cross-event counter (owner-only)
    std::uint64_t ran = 0;       // events executed (owner-only during rounds)
    // Outgoing cross-shard events: one SPSC ring per target shard (see
    // spsc_ring). Non-movable because of the atomics, hence the flat array.
    std::unique_ptr<spsc_ring[]> outbox;
  };

  // Shard ids are the inner engine's {slot+1, gen} id tagged with the shard
  // index in the top bits. 6 tag bits cap the backend at 64 shards and each
  // shard at 2^26 pooled slots (~67M concurrently pending events).
  static constexpr int shard_shift = 58;
  static event_id tag(std::uint32_t s, event_id inner);
  [[nodiscard]] std::uint32_t current_shard() const;
  [[nodiscard]] bool in_callback() const;

  void drain_outboxes();
  [[nodiscard]] time_point next_time_all();
  std::size_t run_shard(std::uint32_t s, time_point bound);
  std::size_t round(time_point bound);  // serial or parallel per `workers_`
  std::size_t run_rounds(time_point limit, std::size_t max_events);
  void worker_main();

  duration lookahead_;
  std::vector<std::uint32_t> node_shard_;
  std::vector<std::unique_ptr<shard>> shards_;
  std::uint64_t rounds_ = 0;
  std::uint64_t cross_events_ = 0;
  std::uint64_t single_source_drains_ = 0;
  std::vector<cross_event> drain_scratch_;  // coordinator-only, reused

  // Worker pool (empty in serial mode). Rounds are dispatched by ticket:
  // workers claim shard indices until the round is exhausted, the last
  // completion wakes the coordinator.
  std::vector<std::thread> workers_;
  std::mutex pool_mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t round_ticket_ = 0;
  time_point round_bound_;
  std::size_t next_claim_ = 0;
  std::size_t unfinished_ = 0;
  std::size_t round_executed_ = 0;
  bool stop_ = false;
};

}  // namespace hades::sim
