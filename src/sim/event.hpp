// Event vocabulary types shared by the runtime interface and its backends.
//
// `event_id` is a generation-counted handle: the low 32 bits are a
// generation counter, the high 32 bits a pool-slot index (+1 so that the
// all-zero id stays invalid). A slot's generation is bumped every time the
// slot is freed, so a stale handle (already fired, already cancelled) can
// never alias a newer event occupying the same slot — this is what makes
// `runtime::cancel` O(1) and idempotent with no tombstone bookkeeping.
//
// `event_callback` is a move-only callable with inline storage sized for
// the closures HADES actually schedules (a `this` pointer plus a few ids).
// Closures that fit are stored in place — scheduling them performs no heap
// allocation — while oversized closures fall back to the heap and are
// counted, so tests can assert the steady state allocates nothing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#include "util/time.hpp"

namespace hades::sim {

/// Opaque handle allowing cancellation of a scheduled event.
struct event_id {
  std::uint64_t value = 0;
  friend constexpr bool operator==(event_id, event_id) = default;
};

inline constexpr event_id invalid_event{0};

/// Move-only `void()` callable with small-buffer storage.
class event_callback {
 public:
  static constexpr std::size_t inline_capacity = 64;

  event_callback() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, event_callback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  event_callback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  event_callback(event_callback&& o) noexcept { move_from(o); }
  event_callback& operator=(event_callback&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  event_callback(const event_callback&) = delete;
  event_callback& operator=(const event_callback&) = delete;
  ~event_callback() { reset(); }

  void operator()() { vt_->invoke(ptr()); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(ptr());
      vt_ = nullptr;
      heap_ = nullptr;
    }
  }

  /// Process-wide count of closures that were too big for the inline buffer
  /// and hit the heap. Zero in a warmed-up simulation. Atomic: worker
  /// threads of the sharded backend schedule concurrently.
  [[nodiscard]] static std::uint64_t heap_allocations() noexcept {
    return heap_allocs_.load(std::memory_order_relaxed);
  }

 private:
  struct vtable {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst) noexcept;  // null when on heap
    void (*destroy)(void*) noexcept;
    bool on_heap;
  };

  template <typename D>
  static const vtable* inline_vtable() noexcept {
    static constexpr vtable vt{
        [](void* p) { (*static_cast<D*>(p))(); },
        [](void* src, void* dst) noexcept {
          ::new (dst) D(std::move(*static_cast<D*>(src)));
          static_cast<D*>(src)->~D();
        },
        [](void* p) noexcept { static_cast<D*>(p)->~D(); },
        false};
    return &vt;
  }

  template <typename D>
  static const vtable* heap_vtable() noexcept {
    static constexpr vtable vt{[](void* p) { (*static_cast<D*>(p))(); },
                               nullptr,
                               [](void* p) noexcept { delete static_cast<D*>(p); },
                               true};
    return &vt;
  }

  [[nodiscard]] void* ptr() noexcept {
    return heap_ != nullptr ? heap_ : static_cast<void*>(buf_);
  }

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= inline_capacity &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = inline_vtable<D>();
    } else {
      heap_ = new D(std::forward<F>(f));
      heap_allocs_.fetch_add(1, std::memory_order_relaxed);
      vt_ = heap_vtable<D>();
    }
  }

  void move_from(event_callback& o) noexcept {
    vt_ = o.vt_;
    if (vt_ == nullptr) return;
    if (vt_->on_heap) {
      heap_ = o.heap_;
    } else {
      vt_->relocate(o.buf_, buf_);
    }
    o.vt_ = nullptr;
    o.heap_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[inline_capacity];
  void* heap_ = nullptr;
  const vtable* vt_ = nullptr;
  static inline std::atomic<std::uint64_t> heap_allocs_{0};
};

using event_fn = event_callback;

/// Handle for a same-instant burst of events. Obtained from
/// `runtime::open_batch`, filled with `runtime::batch_add`, armed with
/// `runtime::commit` — the whole burst costs a single scheduler-heap
/// operation. Members keep individually cancellable `event_id`s and fire
/// FIFO in add order at the batch's instant.
struct event_batch {
  time_point t;
  std::uint32_t head = 0xFFFFFFFFu;  // slot chain, backend-internal
  std::uint32_t tail = 0xFFFFFFFFu;
  std::uint32_t count = 0;
  std::uint32_t owner = 0;  // owning shard, backend-internal (sharded engine)
  bool committed = false;
};

}  // namespace hades::sim
