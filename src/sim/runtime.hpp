// The HADES runtime abstraction (see DESIGN.md, "Runtime layer").
//
// Every component that schedules work — dispatchers, processors, the
// net_mngt task, the simulated LAN, and the timer-driven services — programs
// against this interface instead of a concrete event engine. The discrete-
// event simulation backend (`sim::engine`) is one implementation; a
// real-clock backend or a sharded multi-engine backend can be slotted in
// without touching src/core or src/services. Those layers must include this
// header only, never `sim/engine.hpp` (enforced by CI and by the
// `runtime_layer_include_hygiene` ctest; the interface contract itself is
// covered by tests/sim/runtime_test.cpp).
//
// Semantics every backend must honour:
//   * time is monotonically non-decreasing and starts at zero,
//   * events at the same instant fire in scheduling (FIFO) order,
//   * `cancel` is O(1), idempotent, and safe on fired or invalid ids,
//   * `schedule_periodic` fires at first, first+p, first+2p, ... without
//     accumulating drift, until cancelled,
//   * a committed batch fires its members FIFO at one instant and costs a
//     single scheduler operation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/event.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace hades {

class runtime {
 public:
  /// Backend-neutral construction parameters (the runtime factory API).
  /// `runtime::make` resolves `backend` against the registry — "sim"
  /// (single pooled event engine), "sharded" (multi-engine conservative
  /// rounds), "realtime" (steady_clock timers, optionally one OS process
  /// per node group) — so composition layers select a backend by name and
  /// never spell a concrete engine type.
  struct options {
    std::string backend = "sim";
    std::size_t node_count = 0;  // nodes the topology queries cover

    // --- sharded backend ---------------------------------------------------
    std::size_t shards = 0;   // node groups (0 = backend default)
    std::size_t workers = 0;  // threads advancing shards (0 = serial rounds)
    /// Conservative lookahead: lower bound on every cross-shard scheduling
    /// delay (the network's delta_min for system runs).
    duration lookahead = duration::microseconds(10);
    /// node -> shard (sharded) or node -> owning process (realtime).
    /// Empty = contiguous balanced blocks over `node_count`.
    std::vector<std::uint32_t> node_shard;

    // --- realtime backend --------------------------------------------------
    /// Shared steady_clock epoch (nanoseconds since the clock's arbitrary
    /// zero) that virtual time 0 maps to; 0 = construction instant. A
    /// multi-process run passes one epoch to every process so their virtual
    /// clocks agree.
    std::int64_t epoch_ns = 0;
    /// Real seconds per virtual second (>1 = slow motion for tight plans).
    double time_scale = 1.0;
    /// This process's index among `process_count` cooperating processes.
    /// Nodes mapped elsewhere by `node_shard` are foreign: `at_node` on
    /// them is dropped (their owner runs the equivalent chain).
    std::uint32_t process_index = 0;
    std::size_t process_count = 1;
  };

  using factory_fn =
      std::function<std::unique_ptr<runtime>(const options&)>;

  /// Register a backend under `name` (last registration wins). The three
  /// built-ins are registered on first use of `make`/`registered_backends`.
  static void register_backend(const std::string& name, factory_fn f);
  /// Construct the backend `o.backend` names. Throws on unknown names.
  static std::unique_ptr<runtime> make(const options& o);
  /// Names currently registered, sorted (the conformance suite sweeps it).
  static std::vector<std::string> registered_backends();

  virtual ~runtime() = default;
  runtime(const runtime&) = delete;
  runtime& operator=(const runtime&) = delete;

  /// Current time. Monotonically non-decreasing.
  [[nodiscard]] virtual time_point now() const = 0;

  /// Schedule `fn` to run at absolute time `t` (must be >= now()).
  virtual sim::event_id at(time_point t, sim::event_fn fn) = 0;

  /// `at` with a placement hint: the event belongs to node `dst` (it will
  /// read or mutate that node's state when it fires). The single-engine
  /// backend ignores the hint; the sharded backend routes the event to the
  /// shard owning `dst`, enqueuing it at the shard boundary when the caller
  /// is executing on a different shard. Cross-shard events must respect the
  /// backend's lookahead (`t >= now() + lookahead`) and are fire-and-forget:
  /// the returned id may be `invalid_event` (not individually cancellable).
  virtual sim::event_id at_node(node_id dst, time_point t, sim::event_fn fn) {
    (void)dst;
    return at(t, std::move(fn));
  }

  /// Schedule `fn` to run after `d` has elapsed. An infinite delay never
  /// fires.
  sim::event_id after(duration d, sim::event_fn fn) {
    if (d.is_infinite()) return sim::invalid_event;
    return at(now() + d, std::move(fn));
  }

  /// Arm a drift-free periodic event: fires at `first`, then every `period`
  /// until cancelled. The returned id stays valid across firings. An
  /// infinite first date or period never fires (a disabled timer), matching
  /// `after`.
  virtual sim::event_id schedule_periodic(time_point first, duration period,
                                          sim::event_fn fn) = 0;

  /// `schedule_periodic` anchored one period from now.
  sim::event_id every(duration period, sim::event_fn fn) {
    if (period.is_infinite()) return sim::invalid_event;
    return schedule_periodic(now() + period, period, std::move(fn));
  }

  /// Drift-free per-node periodic chain: runs `fn` at `first`,
  /// `first + period`, ... while the date stays below `until`. Built on
  /// `at_node`, so on the sharded backend every firing executes on the
  /// shard owning `n` — the anchoring rule timer-driven services follow to
  /// keep a node's sends in send-date order across backends (DESIGN.md,
  /// "Scenario layer"). Unlike `schedule_periodic` the chain is not
  /// cancellable: gate inside `fn` (e.g. on `system::crashed`).
  void periodic_at_node(node_id n, time_point first, duration period,
                        std::function<void()> fn,
                        time_point until = time_point::infinity()) {
    if (first >= until || period.is_infinite()) return;
    at_node(n, first, [this, n, first, period, until,
                       fn = std::move(fn)]() mutable {
      fn();
      periodic_at_node(n, first + period, period, std::move(fn), until);
    });
  }

  /// Cancel a previously scheduled event. Safe with invalid_event, with an
  /// already-fired id, and when called twice.
  virtual void cancel(sim::event_id id) = 0;

  // --- shard topology (DESIGN.md, "Shard confinement") ----------------------
  // The small query surface components need to keep their state
  // shard-confined: which shard owns a node, how many shards exist, and
  // which shard the current thread is executing. Single-engine backends are
  // one shard; `executing_shard()` returns 0 outside event execution.
  [[nodiscard]] virtual std::uint32_t shard_of(node_id n) const {
    (void)n;
    return 0;
  }
  [[nodiscard]] virtual std::size_t shard_count() const { return 1; }
  [[nodiscard]] virtual std::uint32_t executing_shard() const { return 0; }
  /// Worker threads concurrently advancing shards (0 = all events run on
  /// the calling thread). Components with serial-only structural paths
  /// (e.g. `sim::network` handler-table growth) gate on this.
  [[nodiscard]] virtual std::size_t worker_count() const { return 0; }
  /// True while the calling thread is inside one of this runtime's event
  /// callbacks. Combined with `worker_count() > 0` it identifies the
  /// contexts where structural mutation of shared state would race.
  [[nodiscard]] virtual bool in_event_context() const { return false; }

  // --- same-instant batching ------------------------------------------------
  /// Open a burst anchored at absolute time `t` (must be >= now()).
  virtual sim::event_batch open_batch(time_point t) = 0;
  /// Append one event to the burst; the id is individually cancellable.
  /// Members are staged: they appear in pending()/empty() only once the
  /// batch is committed.
  virtual sim::event_id batch_add(sim::event_batch& b, sim::event_fn fn) = 0;
  /// Arm the burst with a single scheduler operation. FIFO order is the add
  /// order; the batch's position among same-instant events is its commit
  /// point. No-op for an empty batch.
  virtual void commit(sim::event_batch& b) = 0;

  // --- execution control ----------------------------------------------------
  // The draining guarantee, identical on every backend (and asserted by the
  // conformance suite, tests/rt/runtime_conformance_test.cpp):
  //   * `run_until(t)` returns only once every event dated <= t — including
  //     events those events scheduled — has executed, and `now() == t`
  //     afterwards. `t` must be >= now(). A real-clock backend additionally
  //     waits for the wall clock to pass t before returning.
  //   * `run(max_events)` returns only when the queue is empty or at least
  //     `max_events` events have executed. It may overshoot `max_events` by
  //     the backend's atom of progress (a committed batch, a sharded round)
  //     but never stops early with work pending.
  //   * `step()` executes the next pending event and returns true, or
  //     returns false when idle; a real-clock backend blocks until the
  //     event's date.

  /// Run the next pending event, if any. Returns false when idle.
  virtual bool step() = 0;

  /// Run all events with timestamp <= t; afterwards now() == t.
  /// Returns the number of events executed.
  virtual std::size_t run_until(time_point t) = 0;

  /// Run until the event queue drains (or >= `max_events` executed; the
  /// stop is at the backend's atom-of-progress granularity, see above).
  virtual std::size_t run(std::size_t max_events = 100'000'000) = 0;

  [[nodiscard]] virtual bool empty() const = 0;
  [[nodiscard]] virtual std::size_t pending() const = 0;
  [[nodiscard]] virtual std::uint64_t executed() const = 0;

 protected:
  runtime() = default;
};

namespace sim {
/// Factory for the discrete-event simulation backend (`sim::engine`),
/// usable without including sim/engine.hpp.
std::unique_ptr<runtime> make_engine();

/// Configuration for the sharded multi-engine backend (see DESIGN.md,
/// "Sharded backend"): nodes are partitioned into `shards` groups, each
/// group owning its own pooled event core, advanced under conservative
/// synchronization — a shard may only run ahead to the global horizon
/// `min(next pending event) + lookahead`, so `lookahead` must be a lower
/// bound on every cross-shard scheduling delay (the network's minimum link
/// delay, delta_min).
struct sharded_params {
  std::size_t shards = 2;  // node groups, each with its own event core (<= 64)
  /// Worker threads advancing shards concurrently. 0 = serial deterministic
  /// rounds on the calling thread. Worker mode requires every event handler
  /// to touch only state owned by its executing shard (DESIGN.md, "Shard
  /// confinement"); `core::system` forwards its config.workers here and
  /// validates the confinement rules it can check at registration time.
  std::size_t workers = 0;
  duration lookahead = duration::microseconds(10);  // must be >= 1ns
  /// node -> shard. Nodes past the end of the vector map to `node % shards`.
  std::vector<std::uint32_t> node_shard;
};

/// Factory for the sharded multi-engine backend (`sim::sharded_engine`),
/// usable without including sim/sharded_engine.hpp.
std::unique_ptr<runtime> make_sharded_engine(sharded_params p);
}  // namespace sim

}  // namespace hades
