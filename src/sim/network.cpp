#include "sim/network.hpp"

#include <algorithm>

namespace hades::sim {

std::vector<node_id> network::attached_nodes() const {
  std::vector<node_id> out;
  out.reserve(handlers_.size());
  for (const auto& [n, h] : handlers_) out.push_back(n);
  std::sort(out.begin(), out.end());
  return out;
}

rng& network::stream(node_id src) {
  auto it = streams_.find(src);
  if (it == streams_.end())
    it = streams_
             .emplace(src, rng(seed_ ^ (0x9E3779B97F4A7C15ull *
                                        (static_cast<std::uint64_t>(src) + 1))))
             .first;
  return it->second;
}

bool network::node_down_at(node_id n, time_point t) const {
  auto it = node_down_.find(n);
  if (it == node_down_.end()) return false;
  const bool* v = it->second.at(t);
  return v != nullptr && *v;
}

bool network::partitioned_at(node_id a, node_id b, time_point t) const {
  const std::vector<std::uint32_t>* groups = partition_.at(t);
  if (groups == nullptr || groups->empty()) return false;
  const std::uint32_t ga = a < groups->size() ? (*groups)[a] : no_group;
  const std::uint32_t gb = b < groups->size() ? (*groups)[b] : no_group;
  return ga != no_group && gb != no_group && ga != gb;
}

void network::partition(const std::vector<std::vector<node_id>>& groups) {
  std::vector<std::uint32_t> assign;
  for (std::size_t g = 0; g < groups.size(); ++g)
    for (node_id n : groups[g]) {
      if (n >= assign.size()) assign.resize(n + 1, no_group);
      assign[n] = static_cast<std::uint32_t>(g);
    }
  partition_.set(rt_->now(), std::move(assign));
}

void network::heal_partition() { partition_.set(rt_->now(), {}); }

bool network::should_drop(node_id src, node_id dst, int channel) {
  // Deterministic (draw-free) drop causes first, so a dropped frame never
  // perturbs the per-source rng stream.
  const time_point t = rt_->now();
  if (node_down_at(src, t) || node_down_at(dst, t)) return true;
  if (partitioned_at(src, dst, t)) return true;
  if (auto it = link_down_.find({src, dst}); it != link_down_.end() && it->second)
    return true;
  for (const int key : {channel, any_channel}) {
    if (auto it = scripted_drops_.find({{src, dst}, key});
        it != scripted_drops_.end() && it->second > 0) {
      --it->second;
      return true;
    }
  }
  const double* global = omission_rate_.at(t);
  double p = global != nullptr ? *global : 0.0;
  if (auto it = link_omission_.find({src, dst}); it != link_omission_.end())
    p = it->second;
  return p > 0.0 && stream(src).chance(p);
}

duration network::sample_latency(node_id src, std::size_t size_bytes,
                                 bool& late) {
  const std::int64_t jitter_span =
      (params_.delta_max - params_.delta_min).count();
  duration lat =
      params_.delta_min +
      duration::nanoseconds(
          jitter_span > 0 ? stream(src).uniform_int(0, jitter_span) : 0) +
      params_.per_byte * static_cast<std::int64_t>(size_bytes);
  const perf_fault* pf = perf_fault_.at(rt_->now());
  late = pf != nullptr && pf->rate > 0.0 && stream(src).chance(pf->rate);
  if (late) lat += pf->extra;
  return lat;
}

std::uint64_t network::unicast(node_id src, node_id dst, int channel,
                               std::any payload, std::size_t size_bytes) {
  message m;
  m.src = src;
  m.dst = dst;
  m.channel = channel;
  m.payload = std::move(payload);
  m.size_bytes = size_bytes;
  m.id = next_id_++;
  m.sent_at = rt_->now();
  ++stats_.sent;

  if (should_drop(src, dst, channel)) {
    ++stats_.dropped;
    return m.id;
  }

  bool late = false;
  const duration lat = sample_latency(src, size_bytes, late);
  if (late) ++stats_.late;

  time_point deliver_at = rt_->now() + lat;
  // ATM virtual circuits are FIFO: never deliver before an earlier frame on
  // the same link.
  auto& last = last_delivery_[{src, dst}];
  if (deliver_at < last) deliver_at = last;
  last = deliver_at;

  rt_->at_node(dst, deliver_at, [this, m = std::move(m)]() {
    auto it = handlers_.find(m.dst);
    if (it == handlers_.end() || !it->second ||
        node_down_at(m.dst, rt_->now())) {
      ++stats_.dropped;  // destination crashed in flight
      return;
    }
    ++stats_.delivered;
    if (observer_) observer_(m);
    it->second(m);
  });
  return next_id_ - 1;
}

std::vector<std::uint64_t> network::broadcast(node_id src, int channel,
                                              const std::any& payload,
                                              std::size_t size_bytes) {
  std::vector<std::uint64_t> ids;
  for (node_id n : attached_nodes()) {
    if (n == src) continue;
    ids.push_back(unicast(src, n, channel, payload, size_bytes));
  }
  return ids;
}

void network::set_link_down(node_id src, node_id dst, bool down) {
  link_down_[{src, dst}] = down;
}

}  // namespace hades::sim
