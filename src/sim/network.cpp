#include "sim/network.hpp"

namespace hades::sim {

network::~network() = default;

std::vector<node_id> network::attached_nodes() const {
  std::vector<node_id> out;
  out.reserve(handlers_.size());
  for (node_id n = 0; n < handlers_.size(); ++n)
    if (handlers_[n]) out.push_back(n);
  return out;
}

void network::new_source() {
  const auto n = static_cast<std::uint64_t>(sources_.size());
  // Seeds depend only on the source index, so growing the node set never
  // disturbs an existing source's stream (rng stability across
  // reserve_nodes growth).
  sources_.push_back(std::make_unique<source_state>(
      rng(seed_ ^ (0x9E3779B97F4A7C15ull * (n + 1)))));
}

void network::publish_initial() {
  auto first = std::make_unique<global_state>();
  global_.store(first.get(), std::memory_order_release);
  retired_.push_back(std::move(first));
}

template <typename Edit>
void network::mutate_global(Edit&& edit) {
  std::lock_guard lk(publish_mu_);
  auto next = std::make_unique<global_state>(
      *global_.load(std::memory_order_relaxed));
  edit(*next);
  const global_state* ptr = next.get();
  // Predecessors stay alive while any reader could hold one: a reader only
  // keeps the pointer within a single event callback, so outside event
  // execution (the injector pre-registering a plan from the driver thread,
  // tests programming faults between runs — the overwhelmingly common
  // case) no reader exists and the retired list collapses to nothing,
  // keeping an E-edge plan's pre-registration at O(E) live snapshots...
  // well, exactly one. Mutations from inside events (crash_node actions)
  // retain their predecessors until the next outside-execution mutation or
  // network destruction — bounded by the plan's action count.
  if (!rt_->in_event_context()) retired_.clear();
  retired_.push_back(std::move(next));
  global_.store(ptr, std::memory_order_release);
}

void network::set_omission_rate_at(time_point t, double p) {
  mutate_global([&](global_state& g) { g.omission_rate.set(t, p); });
}

void network::set_performance_fault_at(time_point t, double p, duration extra) {
  mutate_global([&](global_state& g) { g.perf_fault_tl.set(t, {p, extra}); });
}

void network::set_node_down_at(time_point t, node_id n, bool down) {
  mutate_global([&](global_state& g) {
    if (g.node_down.size() <= n)
      g.node_down.resize(static_cast<std::size_t>(n) + 1);
    g.node_down[n].set(t, down);
  });
}

void network::heal_partition_at(time_point t) {
  mutate_global([&](global_state& g) { g.partition.set(t, {}); });
}

void network::partition_at(time_point t,
                           const std::vector<std::vector<node_id>>& groups) {
  std::vector<std::uint32_t> assign;
  for (std::size_t g = 0; g < groups.size(); ++g)
    for (node_id n : groups[g]) {
      if (n >= assign.size()) assign.resize(n + 1, no_group);
      assign[n] = static_cast<std::uint32_t>(g);
    }
  mutate_global(
      [&](global_state& g) { g.partition.set(t, std::move(assign)); });
}

bool network::global_state::partitioned_at(node_id a, node_id b,
                                           time_point t) const {
  const std::vector<std::uint32_t>* groups = partition.at(t);
  if (groups == nullptr || groups->empty()) return false;
  const std::uint32_t ga = a < groups->size() ? (*groups)[a] : no_group;
  const std::uint32_t gb = b < groups->size() ? (*groups)[b] : no_group;
  return ga != no_group && gb != no_group && ga != gb;
}

void network::set_link_down(node_id src, node_id dst, bool down) {
  source(src).dst[dst].link_down.set(rt_->now(), down);
}

void network::drop_next(node_id src, node_id dst, int count, int channel) {
  auto& bursts = source(src).dst[dst].scripted_drops;
  for (auto& b : bursts)
    if (b.channel == channel) {
      b.remaining += count;
      return;
    }
  bursts.push_back({channel, count});
}

bool network::should_drop(source_state& s, dst_state& ds, node_id src,
                          node_id dst, int channel, const global_state& g,
                          time_point t) {
  // Deterministic (draw-free) drop causes first, so a dropped frame never
  // perturbs the per-source rng stream.
  if (g.node_down_at(src, t) || g.node_down_at(dst, t)) return true;
  if (g.partitioned_at(src, dst, t)) return true;
  if (!ds.link_down.empty()) {
    const bool* down = ds.link_down.at(t);
    if (down != nullptr && *down) return true;
  }
  if (auto& bursts = ds.scripted_drops; !bursts.empty()) {
    // Channel-scoped bursts are consumed before an any_channel burst on the
    // same link, regardless of registration order.
    for (const int key : {channel, any_channel})
      for (auto& b : bursts)
        if (b.channel == key && b.remaining > 0) {
          --b.remaining;
          return true;
        }
  }
  double p = ds.link_omission;
  if (p < 0.0) {
    const double* global = g.omission_rate.at(t);
    p = global != nullptr ? *global : 0.0;
  }
  return p > 0.0 && s.stream.chance(p);
}

duration network::sample_latency(source_state& s, std::size_t size_bytes,
                                 const global_state& g, time_point now,
                                 bool& late) {
  const std::int64_t jitter_span =
      (params_.delta_max - params_.delta_min).count();
  duration lat =
      params_.delta_min +
      duration::nanoseconds(
          jitter_span > 0 ? s.stream.uniform_int(0, jitter_span) : 0) +
      params_.per_byte * static_cast<std::int64_t>(size_bytes);
  perf_fault pf;
  if (const perf_fault* p = g.perf_fault_tl.at(now); p != nullptr) pf = *p;
  late = pf.rate > 0.0 && s.stream.chance(pf.rate);
  if (late) lat += pf.extra;
  return lat;
}

std::uint64_t network::submit(source_state& s, const global_state& g,
                              time_point now, node_id src, node_id dst,
                              int channel, wire_payload payload,
                              std::size_t size_bytes) {
  message m;
  m.src = src;
  m.dst = dst;
  m.channel = channel;
  m.payload = std::move(payload);
  m.size_bytes = size_bytes;
  // Per-source ids keep the counter shard-confined while staying unique
  // system-wide (40 bits of per-source sequence).
  m.id = ((static_cast<std::uint64_t>(src) + 1) << 40) | ++s.next_seq;
  m.sent_at = now;
  ++s.sent;

  // Frames for destinations owned by another OS process leave through the
  // remote transport; the socket-layer shim owns their fault decisions (it
  // consumes the same scenario plan), so none of the local drop/latency
  // machinery below runs for them.
  if (remote_hook_ && remote_hook_(m)) return m.id;

  // One probe serves the drop checks and the FIFO floor. First contact with
  // a destination creates its slot — on this source's shard, so legal under
  // worker threads; afterwards the path allocates nothing.
  dst_state& ds = s.dst[dst];
  if (should_drop(s, ds, src, dst, channel, g, now)) {
    ++s.dropped;
    return m.id;
  }

  bool late = false;
  const duration lat = sample_latency(s, size_bytes, g, now, late);
  if (late) ++s.late;

  time_point deliver_at = now + lat;
  // ATM virtual circuits are FIFO: never deliver before an earlier frame on
  // the same link.
  if (deliver_at < ds.last_delivery) deliver_at = ds.last_delivery;
  ds.last_delivery = deliver_at;

  const std::uint64_t id = m.id;
  rt_->at_node(dst, deliver_at, [this, m = std::move(m)]() { deliver_now(m); });
  return id;
}

void network::deliver_now(const message& m) {
  const bool dst_down = snapshot().node_down_at(m.dst, rt_->now());
  if (m.dst >= handlers_.size() || !handlers_[m.dst] || dst_down) {
    dropped_inflight_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ++delivered_by_dst_[m.dst].delivered;  // destination-shard-confined
  if (observer_) observer_(m);
  handlers_[m.dst](m);
}

void network::deliver_remote(message m) {
  // The transport's receiver thread hands frames over as they surface from
  // per-link sequence recovery; schedule on the destination's shard at the
  // current date so the handler runs in event context with the same
  // delivery-date node-down check local frames get.
  rt_->at_node(m.dst, rt_->now(), [this, m = std::move(m)]() { deliver_now(m); });
}

std::uint64_t network::unicast(node_id src, node_id dst, int channel,
                               wire_payload payload, std::size_t size_bytes) {
  source_state& s = source(src);
  // One lock-free acquire of the published fault snapshot and one clock
  // read serve every globally-read check of this send.
  return submit(s, snapshot(), rt_->now(), src, dst, channel,
                std::move(payload), size_bytes);
}

std::size_t network::fan_out(node_id src, int channel,
                             const wire_payload& payload,
                             std::size_t size_bytes) {
  source_state& s = source(src);
  // Hoisted once for the whole fan-out: the fault snapshot, the clock read,
  // and the source lookup (attach() keeps fan-out width >= handler count).
  const global_state& g = snapshot();
  const time_point now = rt_->now();
  std::size_t n = 0;
  for (node_id dst = 0; dst < handlers_.size(); ++dst) {
    if (dst == src || !handlers_[dst]) continue;
    submit(s, g, now, src, dst, channel, payload, size_bytes);  // refcount
    ++n;
  }
  return n;
}

std::vector<std::uint64_t> network::broadcast(node_id src, int channel,
                                              const wire_payload& payload,
                                              std::size_t size_bytes) {
  source_state& s = source(src);
  const global_state& g = snapshot();
  const time_point now = rt_->now();
  std::vector<std::uint64_t> ids;
  for (node_id dst = 0; dst < handlers_.size(); ++dst) {
    if (dst == src || !handlers_[dst]) continue;
    ids.push_back(submit(s, g, now, src, dst, channel, payload, size_bytes));
  }
  return ids;
}

}  // namespace hades::sim
