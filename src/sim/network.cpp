#include "sim/network.hpp"

#include <algorithm>

namespace hades::sim {

std::vector<node_id> network::attached_nodes() const {
  std::vector<node_id> out;
  out.reserve(handlers_.size());
  for (const auto& [n, h] : handlers_) out.push_back(n);
  std::sort(out.begin(), out.end());
  return out;
}

void network::new_source() {
  const auto n = static_cast<std::uint64_t>(sources_.size());
  sources_.push_back(std::make_unique<source_state>(
      rng(seed_ ^ (0x9E3779B97F4A7C15ull * (n + 1)))));
}

bool network::node_down_at(node_id n, time_point t) const {
  auto it = node_down_.find(n);
  if (it == node_down_.end()) return false;
  const bool* v = it->second.at(t);
  return v != nullptr && *v;
}

bool network::partitioned_at(node_id a, node_id b, time_point t) const {
  const std::vector<std::uint32_t>* groups = partition_.at(t);
  if (groups == nullptr || groups->empty()) return false;
  const std::uint32_t ga = a < groups->size() ? (*groups)[a] : no_group;
  const std::uint32_t gb = b < groups->size() ? (*groups)[b] : no_group;
  return ga != no_group && gb != no_group && ga != gb;
}

void network::partition_at(time_point t,
                           const std::vector<std::vector<node_id>>& groups) {
  std::vector<std::uint32_t> assign;
  for (std::size_t g = 0; g < groups.size(); ++g)
    for (node_id n : groups[g]) {
      if (n >= assign.size()) assign.resize(n + 1, no_group);
      assign[n] = static_cast<std::uint32_t>(g);
    }
  std::unique_lock lk(global_mu_);
  partition_.set(t, std::move(assign));
}

void network::set_link_down(node_id src, node_id dst, bool down) {
  ensure_source(src);
  sources_[src]->link_down[dst].set(rt_->now(), down);
}

bool network::should_drop(source_state& s, node_id src, node_id dst,
                          int channel) {
  // Deterministic (draw-free) drop causes first, so a dropped frame never
  // perturbs the per-source rng stream.
  const time_point t = rt_->now();
  {
    std::shared_lock lk(global_mu_);
    if (node_down_at(src, t) || node_down_at(dst, t)) return true;
    if (partitioned_at(src, dst, t)) return true;
  }
  if (auto it = s.link_down.find(dst); it != s.link_down.end()) {
    const bool* down = it->second.at(t);
    if (down != nullptr && *down) return true;
  }
  for (const int key : {channel, any_channel}) {
    if (auto it = s.scripted_drops.find({dst, key});
        it != s.scripted_drops.end() && it->second > 0) {
      --it->second;
      return true;
    }
  }
  double p;
  {
    std::shared_lock lk(global_mu_);
    const double* global = omission_rate_.at(t);
    p = global != nullptr ? *global : 0.0;
  }
  if (auto it = s.link_omission.find(dst); it != s.link_omission.end())
    p = it->second;
  return p > 0.0 && s.stream.chance(p);
}

duration network::sample_latency(source_state& s, std::size_t size_bytes,
                                 bool& late) {
  const std::int64_t jitter_span =
      (params_.delta_max - params_.delta_min).count();
  duration lat =
      params_.delta_min +
      duration::nanoseconds(
          jitter_span > 0 ? s.stream.uniform_int(0, jitter_span) : 0) +
      params_.per_byte * static_cast<std::int64_t>(size_bytes);
  perf_fault pf;
  {
    std::shared_lock lk(global_mu_);
    const perf_fault* p = perf_fault_.at(rt_->now());
    if (p != nullptr) pf = *p;
  }
  late = pf.rate > 0.0 && s.stream.chance(pf.rate);
  if (late) lat += pf.extra;
  return lat;
}

std::uint64_t network::unicast(node_id src, node_id dst, int channel,
                               std::any payload, std::size_t size_bytes) {
  source_state& s = source(src);
  message m;
  m.src = src;
  m.dst = dst;
  m.channel = channel;
  m.payload = std::move(payload);
  m.size_bytes = size_bytes;
  // Per-source ids keep the counter shard-confined while staying unique
  // system-wide (40 bits of per-source sequence).
  m.id = ((static_cast<std::uint64_t>(src) + 1) << 40) | ++s.next_seq;
  m.sent_at = rt_->now();
  sent_.fetch_add(1, std::memory_order_relaxed);

  if (should_drop(s, src, dst, channel)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return m.id;
  }

  bool late = false;
  const duration lat = sample_latency(s, size_bytes, late);
  if (late) late_.fetch_add(1, std::memory_order_relaxed);

  time_point deliver_at = rt_->now() + lat;
  // ATM virtual circuits are FIFO: never deliver before an earlier frame on
  // the same link.
  auto& last = s.last_delivery[dst];
  if (deliver_at < last) deliver_at = last;
  last = deliver_at;

  const std::uint64_t id = m.id;
  rt_->at_node(dst, deliver_at, [this, m = std::move(m)]() {
    bool dst_down;
    {
      std::shared_lock lk(global_mu_);
      dst_down = node_down_at(m.dst, rt_->now());
    }
    auto it = handlers_.find(m.dst);
    if (it == handlers_.end() || !it->second || dst_down) {
      dropped_.fetch_add(1, std::memory_order_relaxed);  // crashed in flight
      return;
    }
    delivered_.fetch_add(1, std::memory_order_relaxed);
    if (observer_) observer_(m);
    it->second(m);
  });
  return id;
}

std::vector<std::uint64_t> network::broadcast(node_id src, int channel,
                                              const std::any& payload,
                                              std::size_t size_bytes) {
  std::vector<std::uint64_t> ids;
  for (node_id n : attached_nodes()) {
    if (n == src) continue;
    ids.push_back(unicast(src, n, channel, payload, size_bytes));
  }
  return ids;
}

}  // namespace hades::sim
