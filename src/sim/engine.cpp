#include "sim/engine.hpp"

namespace hades::sim {

event_id engine::at(time_point t, event_fn fn) {
  require(!t.is_infinite(), "engine::at: cannot schedule at infinity");
  require(t >= now_, "engine::at: cannot schedule in the past");
  require(static_cast<bool>(fn), "engine::at: empty event function");
  const std::uint64_t seq = next_seq_++;
  queue_.push(entry{t, seq, std::move(fn)});
  pending_ids_.insert(seq);
  return event_id{seq};
}

void engine::cancel(event_id id) {
  if (id.value == 0) return;
  if (pending_ids_.erase(id.value) > 0) cancelled_.insert(id.value);
}

bool engine::pop_next(entry& out) {
  while (!queue_.empty()) {
    // priority_queue::top is const; the closure must be copied out. Closures
    // in HADES are small (pointer/id captures), so the copy is cheap.
    entry e = queue_.top();
    queue_.pop();
    if (cancelled_.erase(e.seq) > 0) continue;
    pending_ids_.erase(e.seq);
    out = std::move(e);
    return true;
  }
  return false;
}

bool engine::step() {
  entry e;
  if (!pop_next(e)) return false;
  now_ = e.t;
  ++executed_;
  e.fn();
  return true;
}

std::size_t engine::run_until(time_point t) {
  std::size_t n = 0;
  for (;;) {
    if (queue_.empty()) break;
    const entry& top = queue_.top();
    if (cancelled_.contains(top.seq)) {
      cancelled_.erase(top.seq);
      queue_.pop();
      continue;
    }
    if (top.t > t) break;
    step();
    ++n;
  }
  if (!t.is_infinite() && t > now_) now_ = t;
  return n;
}

std::size_t engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace hades::sim
