#include "sim/engine.hpp"

#include <algorithm>

namespace hades::sim {

// --- pool ------------------------------------------------------------------

std::uint32_t engine::alloc_slot() {
  if (free_head_ == npos) {
    require(slabs_.size() < npos / slab_size, "engine: event pool exhausted");
    if (alloc_hook_ != nullptr)
      alloc_hook_(slab_size * sizeof(slot), alloc_user_);
    auto slab = std::make_unique<slot[]>(slab_size);
    const auto base = static_cast<std::uint32_t>(slabs_.size() * slab_size);
    for (std::size_t k = slab_size; k-- > 0;) {
      slab[k].next = free_head_;
      free_head_ = base + static_cast<std::uint32_t>(k);
    }
    slabs_.push_back(std::move(slab));
  }
  const std::uint32_t i = free_head_;
  slot& s = slot_at(i);
  free_head_ = s.next;
  s.next = npos;
  return i;
}

void engine::free_slot(std::uint32_t i) {
  slot& s = slot_at(i);
  s.fn.reset();
  ++s.gen;
  s.kind = slot_kind::free_slot;
  s.live = false;
  s.counted = false;
  s.period = duration::zero();
  s.next = free_head_;
  free_head_ = i;
}

// --- 4-ary ready heap ------------------------------------------------------

void engine::push_rec(time_point t, std::uint32_t slot, std::uint32_t gen) {
  if (heap_.size() == heap_.capacity() && alloc_hook_ != nullptr) {
    const std::size_t next_cap =
        heap_.capacity() == 0 ? 16 : heap_.capacity() * 2;
    alloc_hook_(next_cap * sizeof(heap_rec), alloc_user_);
  }
  heap_.push_back(heap_rec{t, next_seq_++, slot, gen});
  sift_up(heap_.size() - 1);
}

void engine::pop_rec() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void engine::sift_up(std::size_t i) {
  const heap_rec tmp = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!sooner(tmp, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = tmp;
}

void engine::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const heap_rec tmp = heap_[i];
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last; ++c)
      if (sooner(heap_[c], heap_[best])) best = c;
    if (!sooner(heap_[best], tmp)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = tmp;
}

void engine::compact() {
  std::size_t out = 0;
  for (const heap_rec& r : heap_)
    if (slot_at(r.slot).gen == r.gen) heap_[out++] = r;
  heap_.resize(out);
  stale_ = 0;
  ++compactions_;
  if (heap_.size() >= 2)
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) sift_down(i);
}

const engine::heap_rec* engine::peek_valid() {
  while (!heap_.empty()) {
    const heap_rec& top = heap_[0];
    if (slot_at(top.slot).gen == top.gen) return &heap_[0];
    pop_rec();
    if (stale_ > 0) --stale_;  // saturate: stale_ is a compaction heuristic
  }
  return nullptr;
}

// --- scheduling ------------------------------------------------------------

event_id engine::at(time_point t, event_fn fn) {
  require(!t.is_infinite(), "engine::at: cannot schedule at infinity");
  require(t >= now_, "engine::at: cannot schedule in the past");
  require(static_cast<bool>(fn), "engine::at: empty event function");
  const std::uint32_t s = alloc_slot();
  slot& sl = slot_at(s);
  sl.fn = std::move(fn);
  sl.kind = slot_kind::single;
  sl.live = true;
  sl.counted = true;
  push_rec(t, s, sl.gen);
  ++live_;
  return id_of(s, sl.gen);
}

event_id engine::schedule_periodic(time_point first, duration period,
                                   event_fn fn) {
  // Same convention as after(): an infinite date never fires. Services use
  // an infinite period to mean "this timer is disabled".
  if (first.is_infinite() || period.is_infinite()) return invalid_event;
  require(first >= now_, "engine::schedule_periodic: start in the past");
  require(period > duration::zero(),
          "engine::schedule_periodic: period must be positive");
  require(static_cast<bool>(fn),
          "engine::schedule_periodic: empty event function");
  const std::uint32_t s = alloc_slot();
  slot& sl = slot_at(s);
  sl.fn = std::move(fn);
  sl.kind = slot_kind::periodic;
  sl.period = period;
  sl.live = true;
  sl.counted = true;
  push_rec(first, s, sl.gen);
  ++live_;
  return id_of(s, sl.gen);
}

void engine::cancel(event_id id) {
  if (id.value == 0) return;
  const auto slot_idx = static_cast<std::uint32_t>((id.value >> 32) - 1);
  const auto gen = static_cast<std::uint32_t>(id.value & 0xFFFFFFFFu);
  if (slot_idx >= slabs_.size() * slab_size) return;
  slot& s = slot_at(slot_idx);
  if (!s.live || s.gen != gen) return;
  switch (s.kind) {
    case slot_kind::single:
    case slot_kind::periodic: {
      // A periodic event cancelling itself from inside its own callback has
      // no outstanding heap record (it was popped to fire), so it must not
      // count as stale.
      const bool has_record = slot_idx != firing_slot_;
      free_slot(slot_idx);
      --live_;
      if (has_record) {
        ++stale_;
        if (stale_ > 64 && stale_ * 2 > heap_.size()) compact();
      }
      break;
    }
    case slot_kind::member:
      // The batch chain still routes through this slot's `next`, so it is
      // only reclaimed when its anchor fires.
      s.fn.reset();
      s.live = false;
      ++s.gen;
      if (s.counted) --live_;  // staged members only count from commit
      s.counted = false;
      break;
    default:
      break;
  }
}

// --- batching --------------------------------------------------------------

event_batch engine::open_batch(time_point t) {
  require(!t.is_infinite(), "engine::open_batch: cannot schedule at infinity");
  require(t >= now_, "engine::open_batch: cannot schedule in the past");
  event_batch b;
  b.t = t;
  return b;
}

event_id engine::batch_add(event_batch& b, event_fn fn) {
  require(!b.committed, "engine::batch_add: batch already committed");
  require(static_cast<bool>(fn), "engine::batch_add: empty event function");
  const std::uint32_t s = alloc_slot();
  slot& sl = slot_at(s);
  sl.fn = std::move(fn);
  sl.kind = slot_kind::member;
  sl.live = true;
  sl.counted = false;  // staged: enters pending()/empty() at commit
  if (b.head == npos) {
    b.head = s;
  } else {
    slot_at(b.tail).next = s;
  }
  b.tail = s;
  ++b.count;
  return id_of(s, sl.gen);
}

void engine::commit(event_batch& b) {
  if (b.committed) return;
  b.committed = true;
  if (b.count == 0) return;
  require(b.t >= now_, "engine::commit: batch instant is in the past");
  // Members only count as pending from here: an opened-but-never-committed
  // batch parks its slots (reclaimed at engine destruction) without wedging
  // empty()/pending(), so drain loops cannot spin on unreachable events.
  for (std::uint32_t cur = b.head; cur != npos; cur = slot_at(cur).next) {
    slot& m = slot_at(cur);
    if (m.live) {
      m.counted = true;
      ++live_;
    }
  }
  const std::uint32_t a = alloc_slot();
  slot& sl = slot_at(a);
  sl.kind = slot_kind::anchor;
  sl.next = b.head;
  push_rec(b.t, a, sl.gen);
}

// --- execution -------------------------------------------------------------

void engine::fire(const heap_rec& rec) {
  const bool was_in_event = in_event_;
  in_event_ = true;
  struct reset {
    bool* flag;
    bool prev;
    ~reset() { *flag = prev; }
  } guard{&in_event_, was_in_event};
  slot& sl = slot_at(rec.slot);
  switch (sl.kind) {
    case slot_kind::single: {
      event_fn fn = std::move(sl.fn);
      free_slot(rec.slot);
      --live_;
      ++executed_;
      fn();
      break;
    }
    case slot_kind::periodic: {
      // The closure is moved out for the call so that a self-cancel inside
      // it (which frees and possibly recycles the slot) stays safe; it is
      // moved back and re-armed only if the registration survived.
      event_fn fn = std::move(sl.fn);
      const std::uint32_t gen = sl.gen;
      const duration period = sl.period;
      ++executed_;
      const std::uint32_t prev_firing = firing_slot_;
      firing_slot_ = rec.slot;
      fn();
      firing_slot_ = prev_firing;
      slot& again = slot_at(rec.slot);
      if (again.live && again.gen == gen) {
        again.fn = std::move(fn);
        push_rec(rec.t + period, rec.slot, gen);
      }
      break;
    }
    case slot_kind::anchor: {
      std::uint32_t cur = sl.next;
      free_slot(rec.slot);
      while (cur != npos) {
        slot& m = slot_at(cur);
        const std::uint32_t nxt = m.next;
        if (m.live) {
          event_fn fn = std::move(m.fn);
          free_slot(cur);
          --live_;
          ++executed_;
          fn();
        } else {
          free_slot(cur);  // cancelled member: reclaim now
        }
        cur = nxt;
      }
      break;
    }
    default:
      break;  // unreachable: stale records never reach fire()
  }
}

bool engine::step() {
  const heap_rec* top = peek_valid();
  if (top == nullptr) return false;
  const heap_rec rec = *top;
  pop_rec();
  now_ = rec.t;
  fire(rec);
  return true;
}

std::size_t engine::run_until(time_point t) {
  std::size_t n = 0;
  for (;;) {
    const heap_rec* top = peek_valid();
    if (top == nullptr || top->t > t) break;
    const heap_rec rec = *top;
    pop_rec();
    now_ = rec.t;
    const std::uint64_t before = executed_;
    fire(rec);
    n += executed_ - before;
  }
  if (!t.is_infinite() && t > now_) now_ = t;
  return n;
}

std::size_t engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events) {
    const std::uint64_t before = executed_;
    if (!step()) break;
    n += executed_ - before;
  }
  return n;
}

engine::pool_stats engine::pool() const {
  pool_stats st;
  st.slabs = slabs_.size();
  st.slots = slabs_.size() * slab_size;
  st.live_events = live_;
  st.heap_records = heap_.size();
  st.stale_records = stale_;
  st.compactions = compactions_;
  return st;
}

std::unique_ptr<runtime> make_engine() { return std::make_unique<engine>(); }

}  // namespace hades::sim
