// Execution trace recorder.
//
// Records the observable events of a HADES run — thread state transitions,
// dispatcher/scheduler notifications, priority changes, monitor verdicts —
// so that tests can assert on exact cooperation sequences (the Figure 2
// reproduction checks the Atv / priority-change / Trm trace verbatim) and
// examples can render ASCII Gantt timelines.
//
// Shard confinement (DESIGN.md): once bound to a runtime, the recorder keeps
// one event partition per shard (`sim::shard_log`) and `record` appends
// only to the partition of the shard executing the call — worker threads
// advancing different shards never touch the same vector. Readers see a
// single merged sequence ordered by the deterministic key
// {time, shard, per-shard sequence}: the same merge key the sharded
// backend uses for cross-shard inboxes, so the merged trace is identical
// for any worker count (and, absent cross-shard same-instant ties, for any
// shard count). Reading is not thread-safe; query between runs, not from
// inside event handlers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/shard_log.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace hades::sim {

enum class trace_kind {
  thread_created,
  thread_runnable,
  thread_running,
  thread_preempted,
  thread_blocked,
  thread_done,
  thread_killed,
  notification,       // dispatcher -> scheduler FIFO insert
  priority_change,    // scheduler primitive
  earliest_change,    // scheduler primitive
  instance_activated,
  instance_completed,
  instance_aborted,
  monitor_event,
  message_sent,
  message_delivered,
  service_event,
  custom,
};

[[nodiscard]] std::string_view to_string(trace_kind k);

struct trace_event {
  time_point t;
  node_id node = invalid_node;
  trace_kind kind = trace_kind::custom;
  std::string subject;  // thread / task / service name
  std::string detail;
};

class trace_recorder {
 public:
  /// Attach to a runtime: grows one partition per shard and routes `record`
  /// by `runtime::executing_shard()`. Call before the run starts (the
  /// owning `core::system` does, in its constructor).
  void bind(const hades::runtime& rt) { log_.bind(rt); }

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(time_point t, node_id node, trace_kind kind, std::string subject,
              std::string detail = {}) {
    if (!enabled_) return;
    log_.append({t, node, kind, std::move(subject), std::move(detail)});
  }

  /// Merged view over all shard partitions, ordered by
  /// {time, shard, per-shard sequence}. Rebuilt lazily; do not call while
  /// worker threads are recording.
  [[nodiscard]] const std::vector<trace_event>& events() const {
    return log_.merged();
  }
  void clear() { log_.clear(); }

  /// All events of one kind, in order.
  [[nodiscard]] std::vector<trace_event> of_kind(trace_kind k) const;

  /// All events whose subject matches exactly.
  [[nodiscard]] std::vector<trace_event> for_subject(std::string_view subject) const;

  /// Human-readable dump of the full trace.
  [[nodiscard]] std::string render_log() const;

  /// ASCII Gantt chart of thread execution between t0 and t1 with the given
  /// column resolution. One row per subject that ran in the window.
  [[nodiscard]] std::string render_gantt(time_point t0, time_point t1,
                                         duration column) const;

 private:
  struct time_of {
    time_point operator()(const trace_event& e) const { return e.t; }
  };

  bool enabled_ = true;
  shard_log<trace_event, time_of> log_;
};

}  // namespace hades::sim
