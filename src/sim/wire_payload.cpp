#include "sim/wire_payload.hpp"

#include <mutex>

#include "util/error.hpp"

namespace hades::sim::detail {

namespace {

// Free-list striping: stripes only spread CAS contention between threads
// (each thread pushes and pops its own stripe first), every list is safe
// for any number of concurrent producers and consumers, so stripe
// assignment needs no lifetime management — a recycled stripe id is merely
// a shared stripe, never a correctness problem.
constexpr std::size_t kStripes = 8;
constexpr std::size_t kBlocksPerChunk = 256;
constexpr std::size_t kMaxChunks = 4096;  // ~1M blocks per size class

// Treiber head: {aba tag : 32 | block index + 1 : 32}; low word 0 = empty.
struct alignas(64) free_list {
  std::atomic<std::uint64_t> head{0};
};

struct class_state {
  std::atomic<std::byte*> chunks[kMaxChunks] = {};
  std::atomic<std::uint32_t> chunk_count{0};
  free_list lists[kStripes];
  std::mutex grow_mu;
};

class_state g_classes[payload_pool::num_classes];
std::atomic<std::uint64_t> g_chunk_allocs{0};
std::atomic<std::uint64_t> g_oversize_allocs{0};
std::atomic<std::int64_t> g_pooled_live{0};
std::atomic<std::uint32_t> g_stripe_seq{0};

std::uint32_t my_stripe() {
  thread_local const std::uint32_t stripe =
      g_stripe_seq.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

constexpr std::size_t stride_of(std::size_t cls) {
  return sizeof(payload_block) + payload_pool::class_sizes[cls];
}

payload_block* block_at(std::size_t cls, std::uint32_t index) {
  std::byte* base =
      g_classes[cls].chunks[index / kBlocksPerChunk].load(std::memory_order_acquire);
  return reinterpret_cast<payload_block*>(
      base + static_cast<std::size_t>(index % kBlocksPerChunk) * stride_of(cls));
}

void push(free_list& fl, payload_block* b) noexcept {
  std::uint64_t h = fl.head.load(std::memory_order_relaxed);
  for (;;) {
    b->next.store(static_cast<std::uint32_t>(h),
                  std::memory_order_relaxed);  // previous head's index + 1
    const std::uint64_t nh =
        (h & 0xFFFFFFFF00000000ull) | (static_cast<std::uint64_t>(b->index) + 1);
    if (fl.head.compare_exchange_weak(h, nh, std::memory_order_release,
                                      std::memory_order_relaxed))
      return;
  }
}

payload_block* pop(std::size_t cls, free_list& fl) noexcept {
  std::uint64_t h = fl.head.load(std::memory_order_acquire);
  for (;;) {
    const auto idx1 = static_cast<std::uint32_t>(h);
    if (idx1 == 0) return nullptr;
    payload_block* b = block_at(cls, idx1 - 1);
    // `next` may be overwritten by an unrelated push if another thread pops
    // this block and frees it before our CAS; the bumped ABA tag then fails
    // the CAS, so the stale read is never acted upon.
    const std::uint32_t next = b->next.load(std::memory_order_relaxed);
    const std::uint64_t nh =
        ((h >> 32) + 1) << 32 | static_cast<std::uint64_t>(next);
    if (fl.head.compare_exchange_weak(h, nh, std::memory_order_acq_rel,
                                      std::memory_order_acquire))
      return b;
  }
}

/// Allocate one more chunk for `cls`, push all but one block onto the
/// caller's stripe, and return the held-back block. Growth is the only
/// locked path and stops once the pool matches the working set.
payload_block* grow(std::size_t cls, std::uint32_t stripe) {
  class_state& cs = g_classes[cls];
  std::lock_guard lk(cs.grow_mu);
  const std::uint32_t c = cs.chunk_count.load(std::memory_order_relaxed);
  require(c < kMaxChunks, "wire_payload: slab pool exhausted (size class)");
  auto* base = static_cast<std::byte*>(
      ::operator new(kBlocksPerChunk * stride_of(cls)));
  const auto first = static_cast<std::uint32_t>(c * kBlocksPerChunk);
  for (std::size_t i = 0; i < kBlocksPerChunk; ++i) {
    auto* b = ::new (base + i * stride_of(cls)) payload_block{};
    b->index = first + static_cast<std::uint32_t>(i);
    b->size_class = static_cast<std::uint8_t>(cls);
  }
  cs.chunks[c].store(base, std::memory_order_release);
  cs.chunk_count.store(c + 1, std::memory_order_release);
  g_chunk_allocs.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 1; i < kBlocksPerChunk; ++i)
    push(cs.lists[stripe],
         reinterpret_cast<payload_block*>(base + i * stride_of(cls)));
  return reinterpret_cast<payload_block*>(base);
}

}  // namespace

payload_block* payload_pool::acquire(std::size_t bytes) {
  std::size_t cls = 0;
  while (cls < num_classes && class_sizes[cls] < bytes) ++cls;
  if (cls == num_classes) return nullptr;
  class_state& cs = g_classes[cls];
  const std::uint32_t home = my_stripe();
  payload_block* b = pop(cls, cs.lists[home]);
  for (std::size_t probe = 1; b == nullptr && probe < kStripes; ++probe)
    b = pop(cls, cs.lists[(home + probe) % kStripes]);
  if (b == nullptr) b = grow(cls, home);
  b->refs.store(1, std::memory_order_relaxed);
  b->on_heap = 0;
  g_pooled_live.fetch_add(1, std::memory_order_relaxed);
  return b;
}

void payload_pool::release(payload_block* b) noexcept {
  g_pooled_live.fetch_sub(1, std::memory_order_relaxed);
  push(g_classes[b->size_class].lists[my_stripe()], b);
}

payload_pool::pool_stats payload_pool::stats() noexcept {
  return {g_chunk_allocs.load(std::memory_order_relaxed),
          g_oversize_allocs.load(std::memory_order_relaxed),
          static_cast<std::uint64_t>(
              g_pooled_live.load(std::memory_order_relaxed))};
}

void payload_pool::count_oversize() noexcept {
  g_oversize_allocs.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hades::sim::detail
