// Pooled, type-erased wire payload — the zero-allocation replacement for
// `std::any` on the simulated network's hot path (DESIGN.md, "Wire fast
// path").
//
// A `wire_payload` is a 16-byte handle {storage word, ops pointer}, so a
// `sim::message` stays small enough that the delivery closure fits the
// event pool's inline buffer (`event_callback::inline_capacity`) — putting
// a frame on the wire never pushes the event core onto its heap fallback.
// Two storage strategies sit behind the handle:
//
//   * inline  — trivially-copyable values of at most 8 bytes (heartbeat
//     counters, test ints) live in the storage word itself; copying the
//     handle copies the value, nothing is ever allocated;
//   * pooled  — larger values live in slab blocks drawn from striped
//     lock-free free lists (below) and are *shared by atomic refcount*:
//     copying the handle — which `network::broadcast` does once per
//     destination, and receivers do when they stash a message — bumps a
//     counter instead of deep-copying the value. Payloads are therefore
//     immutable once sent; receivers only ever observe `const T&`.
//
// The slab pool is the same preallocated-resource discipline as the event
// core (PR 1) applied to frames: fixed power-of-two size classes, blocks
// carved from chunks that are allocated once and recycled forever, free
// lists per (class, stripe) so concurrent shards rarely contend. Each free
// list is a Treiber stack over 32-bit *block indices* with a 32-bit ABA tag
// packed into one 64-bit CAS word — lock-free for any number of producers
// and consumers, which is what lets a payload allocated on the sending
// node's shard be released on the destination's shard (worker-threaded
// sharded runs) without a lock anywhere on the steady-state path. Only
// chunk growth takes a mutex, and growth stops once the pool is warm;
// `wire_payload::stats()` exposes the growth counters so benches and tests
// can assert the steady state allocates nothing.
//
// Values bigger than the largest size class (or over-aligned beyond
// max_align_t) fall back to the heap, refcounted the same way, and are
// counted in `stats().oversize_allocs` — nothing HADES sends steady-state
// is oversized.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace hades::sim {

namespace detail {

/// Header preceding every pooled or heap payload block. 16 bytes, keeping
/// the value that follows aligned to max_align_t.
struct payload_block {
  std::atomic<std::uint32_t> refs{1};
  std::uint32_t index = 0;  // global block index within its size class
  // Free-list link (index + 1; 0 = end). Atomic because a racing pop may
  // read it while a concurrent push rewrites it; the ABA tag discards the
  // stale read (see pop() in wire_payload.cpp).
  std::atomic<std::uint32_t> next{0};
  std::uint8_t size_class = 0;
  std::uint8_t on_heap = 0;  // oversize fallback: free with operator delete
  std::uint16_t padding_ = 0;

  [[nodiscard]] void* data() noexcept { return this + 1; }
};
static_assert(sizeof(payload_block) == 16);

/// Striped lock-free slab pool, one free list per (size class, stripe).
class payload_pool {
 public:
  /// Payload byte capacities of the size classes. Chosen around what HADES
  /// actually sends: clock-sync readings (16), control tokens and p2p
  /// frames (32), broadcast envelopes and replication wire records (64),
  /// then headroom for application payloads.
  static constexpr std::size_t class_sizes[] = {16, 32, 64, 128, 256, 512, 1024};
  static constexpr std::size_t num_classes =
      sizeof(class_sizes) / sizeof(class_sizes[0]);
  static constexpr std::size_t max_pooled = class_sizes[num_classes - 1];

  /// Acquire a block whose payload area holds at least `bytes`, or nullptr
  /// when `bytes` exceeds every size class (caller falls back to the heap).
  static payload_block* acquire(std::size_t bytes);
  /// Return a block to its class's free list (refcount already at zero).
  static void release(payload_block* b) noexcept;

  struct pool_stats {
    std::uint64_t chunk_allocs = 0;    // slab growth events (warm-up only)
    std::uint64_t oversize_allocs = 0; // heap-fallback payloads
    std::uint64_t pooled_live = 0;     // blocks currently handed out
  };
  [[nodiscard]] static pool_stats stats() noexcept;

  static void count_oversize() noexcept;
};

}  // namespace detail

/// Type-erased, immutable-once-sent message payload. See file comment.
class wire_payload {
 public:
  constexpr wire_payload() noexcept = default;

  template <typename T>
    requires(!std::is_same_v<std::decay_t<T>, wire_payload>)
  wire_payload(T&& value) {  // NOLINT(google-explicit-constructor)
    emplace<std::decay_t<T>>(std::forward<T>(value));
  }

  wire_payload(const wire_payload& o) noexcept : word_(o.word_), ops_(o.ops_) {
    if (ops_ != nullptr && !ops_->is_inline)
      block()->refs.fetch_add(1, std::memory_order_relaxed);
  }
  wire_payload(wire_payload&& o) noexcept : word_(o.word_), ops_(o.ops_) {
    o.ops_ = nullptr;
  }
  wire_payload& operator=(const wire_payload& o) noexcept {
    if (this != &o) {
      wire_payload tmp(o);
      swap(tmp);
    }
    return *this;
  }
  wire_payload& operator=(wire_payload&& o) noexcept {
    if (this != &o) {
      reset();
      word_ = o.word_;
      ops_ = o.ops_;
      o.ops_ = nullptr;
    }
    return *this;
  }
  ~wire_payload() { reset(); }

  void swap(wire_payload& o) noexcept {
    std::swap(word_, o.word_);
    std::swap(ops_, o.ops_);
  }

  [[nodiscard]] bool has_value() const noexcept { return ops_ != nullptr; }
  [[nodiscard]] explicit operator bool() const noexcept { return has_value(); }

  /// Typed read access: the stored value if it is exactly a T, else nullptr
  /// (the `std::any_cast<T>(&payload)` idiom services demultiplex with).
  template <typename T>
  [[nodiscard]] const T* get() const noexcept {
    if (ops_ != &ops_for<T>) return nullptr;
    if constexpr (is_inline_v<T>)
      return std::launder(reinterpret_cast<const T*>(&word_));
    else
      return static_cast<const T*>(block()->data());
  }

  void reset() noexcept {
    if (ops_ == nullptr) return;
    if (!ops_->is_inline) {
      detail::payload_block* b = block();
      // Unique-ref fast path: observing 1 while holding a reference means
      // no other owner exists, so the block can be reclaimed without an
      // atomic RMW (the common unicast case).
      if (b->refs.load(std::memory_order_acquire) == 1 ||
          b->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        ops_->destroy(b->data());
        if (b->on_heap != 0) {
          b->~payload_block();
          ::operator delete(b);
        } else {
          detail::payload_pool::release(b);
        }
      }
    }
    ops_ = nullptr;
  }

  struct stats_t {
    std::uint64_t chunk_allocs = 0;
    std::uint64_t oversize_allocs = 0;
    std::uint64_t pooled_live = 0;
  };
  /// Pool growth / fallback counters: `chunk_allocs` and `oversize_allocs`
  /// stay flat across a warmed-up steady state — the zero-allocation
  /// assertion benches and tests gate on.
  [[nodiscard]] static stats_t stats() noexcept {
    const auto s = detail::payload_pool::stats();
    return {s.chunk_allocs, s.oversize_allocs, s.pooled_live};
  }

 private:
  template <typename T>
  static constexpr bool is_inline_v =
      std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(std::uint64_t) &&
      alignof(T) <= alignof(std::uint64_t);

  struct ops_t {
    void (*destroy)(void*) noexcept;
    bool is_inline;
  };

  template <typename T>
  static constexpr ops_t ops_for{
      [](void* p) noexcept {
        if constexpr (!std::is_trivially_destructible_v<T>)
          static_cast<T*>(p)->~T();
        else
          (void)p;
      },
      is_inline_v<T>};

  [[nodiscard]] detail::payload_block* block() const noexcept {
    detail::payload_block* b;
    std::memcpy(&b, &word_, sizeof b);
    return b;
  }

  template <typename T, typename V>
  void emplace(V&& value) {
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "wire_payload: over-aligned payload types are unsupported");
    if constexpr (is_inline_v<T>) {
      word_ = 0;
      ::new (static_cast<void*>(&word_)) T(std::forward<V>(value));
    } else {
      detail::payload_block* b = nullptr;
      if constexpr (sizeof(T) <= detail::payload_pool::max_pooled &&
                    alignof(T) <= alignof(std::max_align_t)) {
        b = detail::payload_pool::acquire(sizeof(T));
      }
      if (b == nullptr) {  // oversized or over-aligned: heap fallback
        void* raw = ::operator new(sizeof(detail::payload_block) + sizeof(T));
        b = ::new (raw) detail::payload_block{};
        b->on_heap = 1;
        detail::payload_pool::count_oversize();
      }
      try {
        ::new (b->data()) T(std::forward<V>(value));
      } catch (...) {
        if (b->on_heap != 0) {
          b->~payload_block();
          ::operator delete(b);
        } else {
          detail::payload_pool::release(b);
        }
        throw;
      }
      std::memcpy(&word_, &b, sizeof b);
    }
    ops_ = &ops_for<T>;
  }

  // 16 bytes: the value itself (inline path) or the block pointer (pooled
  // and heap paths), plus the per-type ops used for downcast and teardown.
  std::uint64_t word_ = 0;
  const ops_t* ops_ = nullptr;
};

static_assert(sizeof(wire_payload) == 16);
static_assert(std::is_nothrow_move_constructible_v<wire_payload>);

}  // namespace hades::sim
