#include "scenario/observation_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <tuple>

#include "util/error.hpp"

namespace hades::scenario {

namespace {

constexpr const char* magic = "hades-observation v1";

std::int64_t ns(time_point t) { return t.nanoseconds(); }
time_point tp(std::int64_t v) {
  return time_point::at(duration::nanoseconds(v));
}

void sort_suspicions(std::vector<observation::suspicion>& v) {
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    return std::tuple(a.at, a.observer, a.subject) <
           std::tuple(b.at, b.observer, b.subject);
  });
}

}  // namespace

void write_partial_observation(const std::string& path, const observation& obs,
                               const std::vector<bool>& owned, bool has_mode,
                               const std::vector<std::string>& extra) {
  std::ofstream f(path);
  validate(f.good(), "write_partial_observation: cannot open " + path);
  f << magic << '\n';
  f << "nodes " << obs.nodes << '\n';
  f << "horizon " << ns(obs.horizon) << '\n';
  f << "detect_bound " << obs.detect_bound.count() << '\n';
  f << "recover_bound " << obs.recover_bound.count() << '\n';
  f << "delivery_bound " << obs.delivery_bound.count() << '\n';
  f << "skew_bound " << obs.skew_bound.count() << '\n';
  f << "has_mode " << (has_mode ? 1 : 0) << '\n';
  const auto is_owned = [&](node_id n) {
    return n < owned.size() && owned[n];
  };
  // Suspicions fire on the observer's node: the owner of the observer
  // recorded them.
  for (const auto& s : obs.suspicions)
    if (is_owned(s.observer))
      f << "suspicion " << s.observer << ' ' << s.subject << ' ' << ns(s.at)
        << '\n';
  for (const auto& r : obs.recoveries)
    if (is_owned(r.observer))
      f << "recovery " << r.observer << ' ' << r.subject << ' ' << ns(r.at)
        << '\n';
  // Deliveries and sends happen on the node itself.
  for (node_id n = 0; n < obs.delivery_logs.size(); ++n)
    if (is_owned(n))
      for (const auto& [origin, seq] : obs.delivery_logs[n])
        f << "delivery " << n << ' ' << origin << ' ' << seq << '\n';
  for (node_id n = 0; n < obs.sent_at.size(); ++n)
    if (is_owned(n))
      for (time_point t : obs.sent_at[n]) f << "sent " << n << ' ' << ns(t) << '\n';
  // Order faults are counted at the delivering node — each worker's total
  // covers exactly its owned nodes, so the merged sum is the global count.
  f << "order_faults " << obs.order_faults << '\n';
  f << "deadline_misses " << obs.deadline_misses << '\n';
  for (time_point t : obs.trigger_events) f << "trigger " << ns(t) << '\n';
  if (has_mode) {
    f << "final_mode " << static_cast<int>(obs.final_mode) << '\n';
    for (const auto& sw : obs.mode_switches)
      f << "mode_switch " << static_cast<int>(sw.from) << ' '
        << static_cast<int>(sw.to) << ' ' << ns(sw.at) << '\n';
    f << "skew_checked " << (obs.skew_checked ? 1 : 0) << '\n';
    if (obs.skew_checked) f << "max_skew " << obs.max_skew.count() << '\n';
  }
  for (const auto& line : extra) f << "x " << line << '\n';
  validate(f.good(), "write_partial_observation: write failed: " + path);
}

merged_observation merge_partial_observations(
    const std::vector<std::string>& paths) {
  validate(!paths.empty(), "merge_partial_observations: no files");
  merged_observation m;
  observation& obs = m.obs;
  bool first = true;
  for (const auto& path : paths) {
    std::ifstream f(path);
    validate(f.good(), "merge_partial_observations: cannot open " + path);
    std::string line;
    validate(std::getline(f, line) && line == magic,
             "merge_partial_observations: bad header in " + path);
    while (std::getline(f, line)) {
      std::istringstream is(line);
      std::string key;
      is >> key;
      if (key == "nodes") {
        std::size_t n = 0;
        is >> n;
        if (first) {
          obs.nodes = n;
          obs.delivery_logs.resize(n);
          obs.sent_at.resize(n);
        } else {
          validate(obs.nodes == n,
                   "merge_partial_observations: node count disagrees");
        }
      } else if (key == "horizon") {
        std::int64_t v = 0;
        is >> v;
        obs.horizon = tp(v);
      } else if (key == "detect_bound") {
        std::int64_t v = 0;
        is >> v;
        obs.detect_bound = duration::nanoseconds(v);
      } else if (key == "recover_bound") {
        std::int64_t v = 0;
        is >> v;
        obs.recover_bound = duration::nanoseconds(v);
      } else if (key == "delivery_bound") {
        std::int64_t v = 0;
        is >> v;
        obs.delivery_bound = duration::nanoseconds(v);
      } else if (key == "skew_bound") {
        std::int64_t v = 0;
        is >> v;
        obs.skew_bound = duration::nanoseconds(v);
      } else if (key == "has_mode") {
        int v = 0;
        is >> v;
      } else if (key == "suspicion" || key == "recovery") {
        observation::suspicion s;
        std::int64_t at = 0;
        is >> s.observer >> s.subject >> at;
        s.at = tp(at);
        (key == "suspicion" ? obs.suspicions : obs.recoveries).push_back(s);
      } else if (key == "delivery") {
        node_id n = 0, origin = 0;
        std::uint64_t seq = 0;
        is >> n >> origin >> seq;
        validate(n < obs.delivery_logs.size(),
                 "merge_partial_observations: delivery node out of range");
        obs.delivery_logs[n].emplace_back(origin, seq);
      } else if (key == "sent") {
        node_id n = 0;
        std::int64_t at = 0;
        is >> n >> at;
        validate(n < obs.sent_at.size(),
                 "merge_partial_observations: sent node out of range");
        obs.sent_at[n].push_back(tp(at));
      } else if (key == "order_faults") {
        std::uint64_t v = 0;
        is >> v;
        obs.order_faults += v;
      } else if (key == "deadline_misses") {
        std::size_t v = 0;
        is >> v;
        obs.deadline_misses += v;
      } else if (key == "trigger") {
        std::int64_t at = 0;
        is >> at;
        obs.trigger_events.push_back(tp(at));
      } else if (key == "final_mode") {
        int v = 0;
        is >> v;
        obs.final_mode = static_cast<svc::op_mode>(v);
      } else if (key == "mode_switch") {
        int from = 0, to = 0;
        std::int64_t at = 0;
        is >> from >> to >> at;
        obs.mode_switches.push_back({static_cast<svc::op_mode>(from),
                                     static_cast<svc::op_mode>(to), tp(at)});
      } else if (key == "skew_checked") {
        int v = 0;
        is >> v;
        obs.skew_checked = v != 0;
      } else if (key == "max_skew") {
        std::int64_t v = 0;
        is >> v;
        obs.max_skew = duration::nanoseconds(v);
      } else if (key == "x") {
        std::string rest;
        std::getline(is, rest);
        if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
        m.extra.push_back(rest);
      } else if (!key.empty()) {
        throw error("merge_partial_observations: unknown key \"" + key +
                    "\" in " + path);
      }
      validate(!is.fail(), "merge_partial_observations: malformed line \"" +
                               line + "\" in " + path);
    }
    first = false;
  }
  sort_suspicions(obs.suspicions);
  sort_suspicions(obs.recoveries);
  std::sort(obs.trigger_events.begin(), obs.trigger_events.end());
  std::sort(obs.mode_switches.begin(), obs.mode_switches.end(),
            [](const auto& a, const auto& b) { return a.at < b.at; });
  return m;
}

}  // namespace hades::scenario
