// Minimal JSON reader for the scenario layer's committable artifacts
// (fault-plan repros, fuzz cases). Header-only, dependency-free, and
// deliberately small: objects, arrays, strings (with \" \\ \n escapes),
// 64-bit integers, doubles, booleans and null — exactly what
// "hades-plan v1" / "hades-fuzz-case v1" documents use. Integers are kept
// as int64 (dates and ppm rates must round-trip exactly; doubles only
// carry what a double carried on the way out). Throws
// hades::invariant_violation on malformed input with a byte offset.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace hades::scenario::jmin {

struct value {
  enum class kind { null, boolean, integer, real, string, array, object };
  kind k = kind::null;
  bool b = false;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;
  std::vector<value> arr;
  std::vector<std::pair<std::string, value>> obj;

  [[nodiscard]] const value* find(std::string_view key) const {
    for (const auto& [name, v] : obj)
      if (name == key) return &v;
    return nullptr;
  }
  /// Member lookup that throws when absent — parse errors should name the
  /// missing field, not segfault three calls later.
  [[nodiscard]] const value& at(std::string_view key) const {
    const value* v = find(key);
    require(v != nullptr, "json: missing member \"" + std::string(key) + '"');
    return *v;
  }
  [[nodiscard]] std::int64_t as_int() const {
    require(k == kind::integer, "json: expected integer");
    return i;
  }
  [[nodiscard]] double as_double() const {
    if (k == kind::integer) return static_cast<double>(i);
    require(k == kind::real, "json: expected number");
    return d;
  }
  [[nodiscard]] const std::string& as_string() const {
    require(k == kind::string, "json: expected string");
    return s;
  }
  [[nodiscard]] bool as_bool() const {
    require(k == kind::boolean, "json: expected boolean");
    return b;
  }
};

class parser {
 public:
  explicit parser(std::string_view text) : text_(text) {}

  value parse() {
    value v = parse_value();
    skip_ws();
    require(pos_ == text_.size(), err("trailing garbage"));
    return v;
  }

 private:
  [[nodiscard]] std::string err(const char* what) const {
    return std::string("json: ") + what + " at byte " + std::to_string(pos_);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    skip_ws();
    require(pos_ < text_.size(), err("unexpected end"));
    return text_[pos_];
  }
  void expect(char c) {
    require(peek() == c, err("unexpected character"));
    ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void literal(std::string_view word) {
    require(text_.substr(pos_, word.size()) == word, err("bad literal"));
    pos_ += word.size();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      require(pos_ < text_.size(), err("unterminated string"));
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        require(pos_ < text_.size(), err("unterminated escape"));
        const char e = text_[pos_++];
        if (e == 'n')
          out += '\n';
        else if (e == '"' || e == '\\' || e == '/')
          out += e;
        else if (e == 't')
          out += '\t';
        else
          require(false, err("unsupported escape"));
      } else {
        out += c;
      }
    }
  }

  value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    const std::string tok(text_.substr(start, pos_ - start));
    require(!tok.empty() && tok != "-", err("bad number"));
    value v;
    if (tok.find_first_of(".eE") == std::string::npos) {
      v.k = value::kind::integer;
      try {
        v.i = std::stoll(tok);
      } catch (const std::exception&) {
        require(false, err("integer out of range"));
      }
    } else {
      v.k = value::kind::real;
      try {
        v.d = std::stod(tok);
      } catch (const std::exception&) {
        require(false, err("bad real"));
      }
    }
    return v;
  }

  value parse_value() {
    const char c = peek();
    value v;
    switch (c) {
      case '{': {
        ++pos_;
        v.k = value::kind::object;
        if (consume('}')) return v;
        do {
          std::string key = (skip_ws(), parse_string());
          expect(':');
          v.obj.emplace_back(std::move(key), parse_value());
        } while (consume(','));
        expect('}');
        return v;
      }
      case '[': {
        ++pos_;
        v.k = value::kind::array;
        if (consume(']')) return v;
        do {
          v.arr.push_back(parse_value());
        } while (consume(','));
        expect(']');
        return v;
      }
      case '"':
        v.k = value::kind::string;
        v.s = parse_string();
        return v;
      case 't':
        literal("true");
        v.k = value::kind::boolean;
        v.b = true;
        return v;
      case 'f':
        literal("false");
        v.k = value::kind::boolean;
        v.b = false;
        return v;
      case 'n':
        literal("null");
        v.k = value::kind::null;
        return v;
      default:
        return parse_number();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline value parse(std::string_view text) { return parser(text).parse(); }

inline std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace hades::scenario::jmin
