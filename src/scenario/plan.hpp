// Declarative fault plans (DESIGN.md, "Scenario layer").
//
// A `plan` is a timeline of typed fault actions — node crash/recover, link
// partition/heal, scripted omission bursts, performance faults, clock
// drift/step — that the injector (`apply`) schedules onto a running
// `core::system`. Actions are *data*: the same plan replays bit-identically
// on the single-engine and sharded backends because the injector anchors
// every action on the node it touches (`runtime::at_node`) and the network
// fault state it drives is time-indexed (sim/network.hpp).
//
// The plan doubles as the ground truth for the property checkers
// (scenario/checkers.hpp): they query it for when a node was down, when two
// nodes were separated by a partition, and which periods were "quiet"
// (free of probabilistic network faults), and grade the observed run
// against the paper's guarantees for exactly those windows.
#pragma once

#include <string>
#include <vector>

#include "util/time.hpp"
#include "util/types.hpp"

namespace hades::core {
class system;
}

namespace hades::scenario {

enum class action_kind {
  crash_node,      // node `a` halts (symmetric wire silence)
  recover_node,    // node `a` comes back
  partition,       // LAN splits into `groups`
  heal_partition,  // all groups reconnect
  omission_burst,  // drop `count` consecutive frames a -> b on `channel`
  omission_rate,   // global omission probability `rate` from this date on
  perf_fault,      // performance failures: probability `rate`, delay `extra`
  clock_drift,     // node `a`'s crystal drifts at `rate` (rho) from here
  clock_step,      // node `a`'s logical clock jumps by `extra`
  link_down,       // one direction a -> b goes silent (asymmetric partition)
  link_up,         // restore direction a -> b
  clock_fault,     // node `a`'s clock turns Byzantine: H(t) = t*rate + extra
};

[[nodiscard]] const char* to_string(action_kind k);

struct action {
  time_point at;
  action_kind kind = action_kind::crash_node;
  node_id a = invalid_node;
  node_id b = invalid_node;
  int channel = -1;  // omission_burst: restrict to this channel (-1 = any)
  int count = 0;
  double rate = 0.0;
  duration extra = duration::zero();
  std::vector<std::vector<node_id>> groups;
};

/// Closed-open interval of simulated time.
struct window {
  time_point from;
  time_point to;
  [[nodiscard]] bool contains(time_point t) const { return from <= t && t < to; }
  [[nodiscard]] bool overlaps(time_point lo, time_point hi) const {
    return from < hi && lo < to;
  }
};

struct plan {
  std::string name;
  std::vector<action> actions;

  // --- builders (chainable) ---------------------------------------------
  plan& crash(time_point at, node_id n);
  plan& recover(time_point at, node_id n);
  plan& split(time_point at, std::vector<std::vector<node_id>> groups);
  plan& heal(time_point at);
  plan& omission_burst(time_point at, node_id src, node_id dst, int count,
                       int channel = -1);
  plan& omission_rate(time_point at, double rate);
  plan& perf_fault(time_point at, double rate, duration extra);
  plan& clock_drift(time_point at, node_id n, double rho);
  plan& clock_step(time_point at, node_id n, duration step);
  /// One direction of a link goes silent / comes back: frames src -> dst are
  /// dropped at submit time, the reverse direction is untouched. Asymmetric
  /// partitions are sets of these.
  plan& link_down(time_point at, node_id src, node_id dst);
  plan& link_up(time_point at, node_id src, node_id dst);
  /// Node n's hardware clock turns Byzantine from `at` on: it reads
  /// H(t) = t * rate + offset instead of honest time (clock_sync's trimmed
  /// average must mask up to f of these).
  plan& clock_byzantine(time_point at, node_id n, double rate,
                        duration offset);

  // --- ground-truth queries for checkers --------------------------------
  /// Intervals during which node n was crashed (clipped to [0, horizon)).
  [[nodiscard]] std::vector<window> down_windows(node_id n,
                                                 time_point horizon) const;
  [[nodiscard]] bool down_at(node_id n, time_point t) const;
  [[nodiscard]] bool ever_down(node_id n) const;
  [[nodiscard]] bool correct_throughout(node_id n) const {
    return !ever_down(n);
  }

  /// Intervals during which a partition separated nodes a and b.
  [[nodiscard]] std::vector<window> separated_windows(
      node_id a, node_id b, time_point horizon) const;

  /// Intervals during which the directed link src -> dst was down.
  [[nodiscard]] std::vector<window> link_down_windows(
      node_id src, node_id dst, time_point horizon) const;

  /// Intervals during which node s was unreachable from observer o: s down,
  /// an (o, s) partition in force, or the directed link s -> o down (what
  /// silences s's heartbeats towards o under an asymmetric partition).
  /// Overlapping intervals are merged.
  [[nodiscard]] std::vector<window> unreachable_windows(
      node_id o, node_id s, time_point horizon) const;

  /// True when a clock_fault action ever targets node n (Byzantine clock:
  /// exclude from skew grading).
  [[nodiscard]] bool clock_faulty(node_id n) const;

  /// Intervals during which probabilistic network faults (global omission
  /// rate, performance faults), a partition, or any directional link-down
  /// were in force. Scripted bursts are NOT disturbances: the reliable
  /// primitives mask them deterministically.
  [[nodiscard]] std::vector<window> disturbed_windows(
      time_point horizon) const;
  /// True when no disturbance overlaps [t, t + pad).
  [[nodiscard]] bool quiet(time_point t, duration pad,
                           time_point horizon) const;

  // --- structural validation --------------------------------------------
  /// Every way the timeline is ill-formed, in date order (empty = valid):
  /// out-of-range or self-referential node ids, negative or infinite dates,
  /// actions at or past `horizon`, recover without a prior crash (or crash
  /// of an already-down node), heal without a partition in force, link_up
  /// without a matching link_down (or link_down of an already-dead
  /// direction), empty/overlapping partition groups, burst counts < 1, and
  /// probabilities outside [0, 1]. `apply` rejects invalid plans loudly —
  /// a generated plan must never silently no-op.
  [[nodiscard]] std::vector<std::string> validate(std::size_t nodes,
                                                  time_point horizon) const;
};

// --- JSON (committable repro artifacts) ---------------------------------
/// Serialize the action timeline ("hades-plan v1"). Rates are emitted as
/// exact ppm integers and dates/durations as nanosecond integers, so
/// parse(render(p)) replays bit-identically to p on every compiler.
[[nodiscard]] std::string plan_to_json(const plan& p, int indent = 0);
/// Parse a "hades-plan v1" document (or the "plan" member of an enclosing
/// object); throws hades::invariant_violation on malformed input.
[[nodiscard]] plan plan_from_json(const std::string& text);

class fault_injector;

/// Pre-register the plan's globally-read wire truth (node silence,
/// partitions, omission and performance rates) into `inj`, each entry dated
/// at its action's own date. `apply` calls this with the system's network;
/// a realtime multi-process run additionally calls it with the socket-layer
/// fault shim, so both wires judge frames against the same plan.
void preregister(fault_injector& inj, const plan& p);

/// Schedule every action of the plan onto the system's runtime (and
/// pre-register its wire truth into the system's network). Call once,
/// before (or during) the run; dates must not be in the past. The plan is
/// validated against the system's node count first (and against `horizon`
/// when finite — the deployment passes its own); an ill-formed plan throws
/// hades::invariant_violation listing every violation instead of silently
/// no-opping.
void apply(core::system& sys, const plan& p,
           time_point horizon = time_point::infinity());

}  // namespace hades::scenario
