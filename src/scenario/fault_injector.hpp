// The fault-injection surface a scenario plan pre-registers into.
//
// `scenario::apply` used to program global wire truth (node silence,
// partitions, omission/performance rates) straight onto `sim::network`'s
// `*_at()` setters. That surface is now an interface, so one declarative
// plan drives either wire implementation unchanged:
//   * `sim::network` — the simulated LAN's published-snapshot timelines,
//   * `rt::socket_transport` — the realtime backend's netem-style shim,
//     which applies the same date-keyed drop/delay decisions to UDP frames
//     between OS processes.
// All registrations are date-keyed and last-write-wins on equal dates, so
// pre-registering a whole plan before the run is semantically identical to
// flipping each toggle at its action date (DESIGN.md, "Scenario layer").
//
// This header is a dependency leaf (util/ only): `sim::network` implements
// the interface without the sim layer acquiring any scenario dependency.
#pragma once

#include <vector>

#include "util/time.hpp"
#include "util/types.hpp"

namespace hades::scenario {

class fault_injector {
 public:
  virtual ~fault_injector() = default;

  /// Program node `n`'s wire silence (both directions) to toggle at date t.
  virtual void set_node_down_at(time_point t, node_id n, bool down) = 0;
  /// Program a partition into isolated `groups` at date t; nodes not listed
  /// in any group stay connected to everyone.
  virtual void partition_at(time_point t,
                            const std::vector<std::vector<node_id>>& groups) = 0;
  /// Reconnect all groups at date t.
  virtual void heal_partition_at(time_point t) = 0;
  /// Program the global omission probability from date t onward.
  virtual void set_omission_rate_at(time_point t, double p) = 0;
  /// Program performance failures (probability p, extra delay) from date t.
  virtual void set_performance_fault_at(time_point t, double p,
                                        duration extra) = 0;
};

}  // namespace hades::scenario
