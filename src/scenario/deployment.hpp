// One scenario deployment — the standing HADES stack a campaign cell (or a
// realtime worker process) builds around a `scenario_spec`: system + fault
// detector + Δ-ordered reliable broadcast + mode manager + optional clock
// sync + the periodic broadcast workload + observation sinks.
//
// Extracted from the campaign's run_cell so the multi-process harness can
// run the *same construction, same dates, same services* against a
// different runtime backend. Lifecycle:
//
//   deployment d(spec, opt);   // build everything, arm workload timers
//   /* wiring window: attach a socket transport, preregister the plan on
//      its fault shim, install forwarders — nothing here may schedule */
//   d.start();                 // fd/sync start + scenario plan applied
//   d.run();                   // run_until(horizon)
//   observation obs = d.collect();
//   auto checks = d.grade(obs);
//
// Construction and start() preserve the exact scheduling-call order of the
// historical run_cell — same-date FIFO positions feed the campaign's
// determinism checksums.
#pragma once

#include <memory>
#include <vector>

#include "core/system.hpp"
#include "scenario/checkers.hpp"
#include "scenario/scenarios.hpp"
#include "services/clock_sync.hpp"
#include "services/fault_detector.hpp"
#include "services/mode_manager.hpp"
#include "services/reliable_comm.hpp"
#include "traffic/gateway.hpp"

namespace hades::scenario {

struct deployment_options {
  /// Backend selection. `backend.backend` empty = the legacy cell
  /// dimensions below pick sim (shards <= 1) or sharded.
  hades::runtime::options backend;
  std::size_t shards = 0;   // legacy cell dimension (used when backend empty)
  std::size_t workers = 0;  // legacy cell dimension
  std::uint64_t seed = 1;
  /// Wire timing. The historical campaign values; the realtime harness
  /// widens them to bounds the wall clock can honor.
  sim::network::params net{duration::microseconds(20),
                           duration::microseconds(60), duration::zero()};
  /// Extra slack added to each service's self-reported bound before the
  /// checkers grade against it.
  duration bound_margin = duration::milliseconds(1);
  /// Overrides spec.modes.switch_latency in `grade` when nonzero (realtime
  /// runs allow more reaction latency than the simulated 60us LAN).
  duration switch_latency = duration::zero();
};

class deployment {
 public:
  deployment(const scenario_spec& spec, deployment_options opt);
  ~deployment();
  deployment(const deployment&) = delete;
  deployment& operator=(const deployment&) = delete;

  /// Start services and apply the scenario's fault plan (to the system's
  /// network; a realtime harness additionally preregisters the plan on its
  /// socket shim during the wiring window).
  void start();
  /// Drive to the horizon (the realtime backend makes this wall-clock).
  void run();
  /// Merge the per-observer sinks and gather every checker input. Call
  /// once, after run().
  [[nodiscard]] observation collect();
  /// Grade the four property checkers against `obs`.
  [[nodiscard]] std::vector<check_result> grade(const observation& obs) const;

  [[nodiscard]] core::system& sys() { return *sys_; }
  [[nodiscard]] svc::fault_detector& fd() { return *fd_; }
  [[nodiscard]] svc::reliable_broadcast& bcast() { return *bcast_; }
  [[nodiscard]] svc::mode_manager& modes() { return *modes_; }
  [[nodiscard]] svc::clock_sync_service* sync() { return sync_.get(); }
  [[nodiscard]] const scenario_spec& spec() const { return spec_; }
  [[nodiscard]] const std::vector<std::unique_ptr<traffic::gateway>>&
  gateways() const {
    return gateways_;
  }

 private:
  scenario_spec spec_;
  deployment_options opt_;
  std::unique_ptr<core::system> sys_;
  std::unique_ptr<svc::fault_detector> fd_;
  std::unique_ptr<svc::reliable_broadcast> bcast_;
  std::unique_ptr<svc::mode_manager> modes_;
  std::unique_ptr<svc::clock_sync_service> sync_;
  std::vector<std::unique_ptr<traffic::gateway>> gateways_;

  observation obs_;  // bounds + sent_at filled at construction
  std::vector<std::vector<observation::suspicion>> susp_by_observer_;
  std::vector<std::vector<observation::suspicion>> recov_by_observer_;
  bool started_ = false;
  bool collected_ = false;
};

}  // namespace hades::scenario
