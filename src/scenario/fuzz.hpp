// Coverage-guided scenario fuzzing with failing-plan minimization
// (DESIGN.md, "Scenario fuzzing & minimization"; ROADMAP item 4).
//
// The fuzzer closes the loop around the scenario layer: a seed-derived
// generator emits random-but-admissible fault plans over every action kind
// (crash/recover pairing, partition group sampling, channel-scoped omission
// bursts, probabilistic storms, clock faults, link asymmetry, traffic-edge
// overload), each case replays across the full shards × workers matrix,
// and a checker-signal coverage map (scenario/coverage.hpp) feeds novelty
// back into the mutator: cases that light up new (fault combination ×
// timing window × checker branch) bits join the corpus the mutator perturbs
// next. A failing case — any red checker or a cross-matrix checksum
// mismatch — is handed to a delta-debugging shrinker that reduces it to a
// minimal repro (action removal, timeline compression, node-count
// reduction), re-running every candidate across the whole matrix and
// accepting it only when the *same* checker still fails.
//
// Admissibility is by construction, not by filtering: the generator never
// crashes node 0 (the mode manager's home) or a gateway node, keeps
// heartbeat-channel bursts at or under the detector's omission degree,
// keeps probabilistic storm windows disjoint from unreachability windows
// (a recovery graded inside a storm is flaky by design), sizes Byzantine
// clock counts against 3f+1, and derives the expected final mode from the
// crash count — so a red checker in a fuzz campaign is a real finding, not
// a mis-specified expectation.
//
// Everything here is deterministic: `--fuzz N --fuzz-seed S` writes
// byte-identical artifacts on every run, every compiler, every --jobs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/campaign.hpp"
#include "scenario/coverage.hpp"
#include "scenario/scenarios.hpp"

namespace hades::scenario {

/// One generated test: a full scenario spec (plan + workload knobs +
/// checker expectations) plus the deployment seed it replays under.
struct fuzz_case {
  std::uint64_t case_seed = 1;
  scenario_spec spec;
};

/// Deterministically generate the `index`-th fresh case of the fuzz
/// campaign seeded by `campaign_seed`. Pure: the same (seed, index) yields
/// the same case on every compiler — the generator draws integers only and
/// converts rates through single correctly-rounded ppm divisions.
[[nodiscard]] fuzz_case generate_case(std::uint64_t campaign_seed,
                                      std::uint64_t index);

/// Recompute the checker expectations a generated plan implies: the
/// expected final mode from the crash count against the spec's thresholds,
/// and expect_order_faults from any active performance-fault window. The
/// mutator calls this after structural edits so expectations stay truthful.
void recompute_expectations(scenario_spec& spec);

/// JSON round-trip for a fuzz case ("hades-fuzz-case v1"): the generation
/// knobs plus the embedded "hades-plan v1" timeline — everything a replay
/// or a `--shrink` invocation needs, with exact-integer encodings so
/// parse(render(c)) replays bit-identically.
[[nodiscard]] std::string fuzz_case_to_json(const fuzz_case& c);
[[nodiscard]] fuzz_case fuzz_case_from_json(const std::string& text);

/// Verdict of one case replayed across the determinism matrix —
/// shards {1, 2, 4} × workers {0, 4} (shards 1 has no worker dimension).
struct matrix_verdict {
  bool passed = false;           // every checker green on every cell + match
  bool checksums_match = false;  // bit-identical across the matrix
  std::uint64_t reference_checksum = 0;
  /// The failure signature the shrinker must preserve: the first failing
  /// checker's name in matrix order, or "campaign.checksum_match" when the
  /// checkers are green but the matrix diverged. Empty when passed.
  std::string failure_signature;
  std::vector<check_result> reference_checks;  // shards=1 cell
  coverage_map coverage;
};

matrix_verdict run_matrix(const fuzz_case& c, std::size_t jobs = 1);

/// ddmin a failing case to a minimal repro: chunked action removal, then
/// timeline compression, then node-count reduction, looped to fixpoint.
/// Every candidate must validate() clean and re-fail the full matrix with
/// `signature` before acceptance, so the shrunken case is a true repro of
/// the same defect. Idempotent: shrinking a shrunken case returns it.
[[nodiscard]] fuzz_case shrink_case(const fuzz_case& failing,
                                    const std::string& signature,
                                    std::size_t jobs = 1,
                                    bool verbose = false);

struct fuzz_options {
  std::uint64_t campaign_seed = 1;
  std::size_t cases = 50;
  /// Thread-pool width for the matrix cells of each case (parallel_for
  /// semantics: 0 = auto, 1 = serial). Cases themselves run in sequence —
  /// the corpus evolves case-by-case and must not race.
  std::size_t jobs = 0;
  std::string out_dir;   // coverage.json, summary.json, failing/shrunken repros
  bool verbose = false;  // one line per case
};

struct fuzz_result {
  std::uint64_t campaign_seed = 1;
  std::size_t cases_run = 0;
  std::size_t corpus_size = 0;  // cases that contributed new coverage bits
  coverage_map coverage;
  std::vector<fuzz_case> failing;             // original failing cases
  std::vector<fuzz_case> shrunken;            // 1:1 with `failing`
  std::vector<std::string> failure_signatures;  // 1:1 with `failing`
  [[nodiscard]] std::string summary_json() const;
};

/// Run the campaign: case 0 replays the curated mutation anchor
/// (replication_failover_rolling_crashes), later cases alternate between
/// fresh generation and corpus mutation, every case runs the full matrix,
/// and every failure is shrunk before returning.
fuzz_result run_fuzz(const fuzz_options& opt);

}  // namespace hades::scenario
