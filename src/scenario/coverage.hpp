// Checker-signal coverage map for scenario fuzzing (DESIGN.md, "Scenario
// fuzzing & minimization").
//
// One fuzz run folds into a fixed 4096-bit map. Each bit is a *signal*: a
// named family plus up to two integer coordinates, hashed (FNV-1a) into the
// bitmap — the classic coverage-map compromise (collisions possible,
// bookkeeping O(1), new signal families cost nothing). Families:
//
//   kind/<k>            an action of kind k was injected
//   kind-pair/<i>,<j>   kinds i and j (i < j) appeared in the same plan
//   kind-window/<k>,<w> kind k fired in horizon-octile w (timing coverage)
//   concurrent-down/<n> peak number of simultaneously-crashed nodes
//   nodes/<n>, actions/<b>   deployment size and log2 action-count bucket
//   check/<name>,<p>    checker `name` evaluated with verdict p (pass/fail)
//   event/<kind>        a monitor event of this kind was recorded
//   obs/<axis>,<b>      log2 buckets of observed counts (suspicions,
//                       recoveries, mode switches, deadline misses, order
//                       faults, traffic admitted/rejected/shed/missed,
//                       renegotiations, skew band) plus the final mode
//
// The mutator feeds back on novelty: a case that sets a bit no earlier case
// set joins the corpus. The map is order-independent and integer-only, so
// a fuzz campaign's coverage artifact is byte-identical across runs,
// compilers and worker counts.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/checkers.hpp"
#include "scenario/scenarios.hpp"

namespace hades::scenario {

class coverage_map {
 public:
  static constexpr std::size_t bit_count = 4096;
  static constexpr std::size_t word_count = bit_count / 64;

  void set(std::size_t bit) {
    words_[(bit % bit_count) / 64] |= 1ull << (bit % 64);
  }
  [[nodiscard]] bool test(std::size_t bit) const {
    return (words_[(bit % bit_count) / 64] >> (bit % 64)) & 1ull;
  }
  [[nodiscard]] std::size_t popcount() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  /// OR `o` into this map; returns how many of o's bits were new here —
  /// the novelty score the fuzzer's corpus admission keys on.
  std::size_t merge(const coverage_map& o) {
    std::size_t fresh = 0;
    for (std::size_t i = 0; i < word_count; ++i) {
      fresh += static_cast<std::size_t>(std::popcount(o.words_[i] & ~words_[i]));
      words_[i] |= o.words_[i];
    }
    return fresh;
  }

  /// Hash a (family, a, b) signal to its bit. FNV-1a over the family name
  /// and the two coordinates.
  static std::size_t signal(const char* family, std::uint64_t a = 0,
                            std::uint64_t b = 0) {
    std::uint64_t h = 0xCBF29CE484222325ull;
    auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 0x100000001B3ull;
      }
    };
    for (const char* c = family; *c != '\0'; ++c) {
      h ^= static_cast<std::uint8_t>(*c);
      h *= 0x100000001B3ull;
    }
    mix(a);
    mix(b);
    return static_cast<std::size_t>(h % bit_count);
  }

  void mark(const char* family, std::uint64_t a = 0, std::uint64_t b = 0) {
    set(signal(family, a, b));
  }

  /// Fold one graded run: which fault combinations x timing windows the
  /// plan injected, and which checker branches / monitor event kinds /
  /// observation bands the run actually exercised.
  void fold(const scenario_spec& spec, const std::vector<check_result>& checks,
            const observation& obs) {
    auto bucket = [](std::uint64_t v) -> std::uint64_t {
      std::uint64_t b = 0;
      while (v > 0 && b < 16) {
        v >>= 1;
        ++b;
      }
      return b;
    };

    // Plan shape: kinds, kind pairs, kind x horizon-octile, crash overlap.
    const std::int64_t horizon_ns = obs.horizon.nanoseconds();
    std::uint32_t kinds = 0;
    int down = 0, peak_down = 0;
    std::vector<action> sorted = spec.p.actions;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const action& x, const action& y) {
                       return x.at < y.at;
                     });
    for (const action& a : sorted) {
      const auto k = static_cast<unsigned>(a.kind);
      kinds |= 1u << k;
      const std::int64_t at = a.at.nanoseconds();
      const std::uint64_t octile =
          horizon_ns > 0
              ? static_cast<std::uint64_t>((at * 8) / horizon_ns) % 8
              : 0;
      mark("kind", k);
      mark("kind-window", k, octile);
      if (a.kind == action_kind::crash_node)
        peak_down = std::max(peak_down, ++down);
      else if (a.kind == action_kind::recover_node)
        --down;
    }
    for (unsigned i = 0; i < 12; ++i)
      for (unsigned j = i + 1; j < 12; ++j)
        if ((kinds >> i & 1u) && (kinds >> j & 1u)) mark("kind-pair", i, j);
    mark("concurrent-down", static_cast<std::uint64_t>(peak_down));
    mark("nodes", spec.nodes);
    mark("actions", bucket(spec.p.actions.size()));
    if (spec.traffic.gateway_nodes > 0)
      mark("traffic-mix", static_cast<std::uint64_t>(spec.traffic.mix));
    if (spec.with_clock_sync)
      mark("clock-sync-f",
           static_cast<std::uint64_t>(spec.clock_sync_max_faulty));

    // Checker branches: every (name, verdict) pair is its own signal, so a
    // checker that has never failed anywhere is visibly uncovered.
    for (const check_result& c : checks) {
      std::uint64_t name_h = 0xCBF29CE484222325ull;
      for (char ch : c.name) {
        name_h ^= static_cast<std::uint8_t>(ch);
        name_h *= 0x100000001B3ull;
      }
      mark("check", name_h, c.passed ? 1 : 0);
    }

    // Monitor event kinds + observation bands.
    for (unsigned k = 0; k < 32; ++k)
      if (obs.event_kinds >> k & 1u) mark("event", k);
    mark("obs-suspicions", bucket(obs.suspicions.size()));
    mark("obs-recoveries", bucket(obs.recoveries.size()));
    mark("obs-mode-switches", obs.mode_switches.size() % 17);
    mark("obs-final-mode", static_cast<std::uint64_t>(obs.final_mode));
    mark("obs-misses", bucket(obs.deadline_misses));
    mark("obs-order-faults", bucket(obs.order_faults));
    if (obs.skew_checked)
      mark("obs-skew-band",
           bucket(static_cast<std::uint64_t>(
               obs.max_skew.count() > 0 ? obs.max_skew.count() / 10000 : 0)));
    if (obs.traffic_checked) {
      mark("obs-admitted", bucket(obs.traffic_admitted));
      mark("obs-rejected", bucket(obs.traffic_rejected));
      mark("obs-shed", bucket(obs.traffic_shed));
      mark("obs-missed", bucket(obs.traffic_missed));
      mark("obs-renegotiations", bucket(obs.traffic_renegotiations));
    }
  }

  /// "hades-fuzz-coverage v1": popcount plus the raw words in hex —
  /// byte-identical for identical coverage, diffable across nights.
  [[nodiscard]] std::string to_json() const {
    std::ostringstream os;
    os << "{\n  \"format\": \"hades-fuzz-coverage v1\",\n  \"bits\": "
       << bit_count << ",\n  \"set\": " << popcount() << ",\n  \"map\": \"";
    os << std::hex;
    for (std::size_t i = 0; i < word_count; ++i) {
      for (int shift = 60; shift >= 0; shift -= 4)
        os << ((words_[i] >> shift) & 0xF);
    }
    os << std::dec << "\"\n}\n";
    return os.str();
  }

 private:
  std::array<std::uint64_t, word_count> words_{};
};

}  // namespace hades::scenario
