#include "scenario/checkers.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>

namespace hades::scenario {

namespace {

std::string node_pair(node_id o, node_id s) {
  std::ostringstream os;
  os << "observer " << o << " / subject " << s;
  return os.str();
}

/// Unreachability windows with sub-heartbeat gaps glued shut: when the
/// subject was reachable for less than `min_gap` (one heartbeat period plus
/// delivery, the time observers need to actually hear it again), observers
/// may legitimately hold one continuous suspicion across both windows — no
/// fresh suspect/recover events exist to grade separately.
std::vector<window> glued_unreachable(const plan& p, node_id o, node_id s,
                                      time_point horizon, duration min_gap) {
  std::vector<window> ws = p.unreachable_windows(o, s, horizon);
  std::vector<window> out;
  for (const window& w : ws) {
    if (!out.empty() && w.from - out.back().to < min_gap)
      out.back().to = std::max(out.back().to, w.to);
    else
      out.push_back(w);
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------- detector --

std::vector<check_result> check_detector(const plan& p, const observation& o) {
  std::vector<check_result> out;

  // (1) No false suspicion: every suspicion (obs, sub, t) must fall inside
  // [w.from, w.to + detect_bound) of some window during which `sub` was
  // unreachable from `obs`, or of a disturbance window (a probabilistic
  // omission/performance storm may exceed the omission degree the
  // perfection bound assumes) — outside those, the detector is perfect.
  check_result no_false{"detector.no_false_suspicion", true, ""};
  for (const auto& s : o.suspicions) {
    bool justified = false;
    for (const window& w :
         p.unreachable_windows(s.observer, s.subject, o.horizon))
      if (w.from <= s.at && s.at < w.to + o.detect_bound) {
        justified = true;
        break;
      }
    for (const window& w : p.disturbed_windows(o.horizon))
      if (w.from <= s.at && s.at < w.to + o.detect_bound) {
        justified = true;
        break;
      }
    if (!justified) {
      no_false.passed = false;
      no_false.detail = node_pair(s.observer, s.subject) + " suspected at " +
                        s.at.to_string() + " with no fault in force";
      break;
    }
  }
  out.push_back(std::move(no_false));

  // (2) Completeness: every unreachability window longer than detect_bound
  // is suspected by every observer that was itself up for the whole of
  // [w.from, w.from + detect_bound).
  check_result detects{"detector.crash_detected_within_bound", true, ""};
  for (node_id sub = 0; sub < o.nodes && detects.passed; ++sub) {
    for (node_id obs = 0; obs < o.nodes && detects.passed; ++obs) {
      if (obs == sub) continue;
      for (const window& w :
           glued_unreachable(p, obs, sub, o.horizon, o.recover_bound)) {
        const time_point deadline = w.from + o.detect_bound;
        // Detection is only guaranteed when the fault outlives the bound and
        // the bound fits before the horizon; shorter windows may or may not
        // be noticed (check (1) covers any suspicion they do cause).
        if (deadline > w.to || deadline >= o.horizon) continue;
        bool observer_up = true;
        for (const window& d : p.down_windows(obs, o.horizon))
          if (d.overlaps(w.from, deadline)) observer_up = false;
        if (!observer_up) continue;
        const bool found = std::any_of(
            o.suspicions.begin(), o.suspicions.end(), [&](const auto& s) {
              return s.observer == obs && s.subject == sub && w.from <= s.at &&
                     s.at < deadline;
            });
        if (!found) {
          detects.passed = false;
          detects.detail = node_pair(obs, sub) + " not suspected within " +
                           o.detect_bound.to_string() + " of fault at " +
                           w.from.to_string();
        }
      }
    }
  }
  out.push_back(std::move(detects));

  // (3) Recovery: when an unreachability window ends with margin before the
  // horizon, every observer that suspected during it hears the subject
  // again within recover_bound (observers down at the window end exempt).
  check_result recovers{"detector.recovery_observed_within_bound", true, ""};
  for (const auto& s : o.suspicions) {
    if (!recovers.passed) break;
    for (const window& w : glued_unreachable(p, s.observer, s.subject,
                                             o.horizon, o.recover_bound)) {
      if (!(w.from <= s.at && s.at < w.to + o.detect_bound)) continue;
      const time_point deadline = w.to + o.recover_bound;
      if (w.to >= o.horizon || deadline >= o.horizon) continue;
      if (p.down_at(s.observer, w.to) || p.down_at(s.subject, w.to)) continue;
      const bool found = std::any_of(
          o.recoveries.begin(), o.recoveries.end(), [&](const auto& r) {
            return r.observer == s.observer && r.subject == s.subject &&
                   w.to <= r.at && r.at < deadline;
          });
      if (!found) {
        recovers.passed = false;
        recovers.detail = node_pair(s.observer, s.subject) +
                          " not un-suspected within " +
                          o.recover_bound.to_string() + " of recovery at " +
                          w.to.to_string();
        break;
      }
    }
  }
  out.push_back(std::move(recovers));
  return out;
}

// ------------------------------------------------------------ broadcast --

std::vector<check_result> check_broadcast(const plan& p, const observation& o,
                                          bool expect_order_faults) {
  std::vector<check_result> out;

  std::vector<node_id> correct;
  for (node_id n = 0; n < o.nodes; ++n)
    if (p.correct_throughout(n)) correct.push_back(n);

  using msg_key = std::pair<node_id, std::uint64_t>;
  auto sent_date = [&](const msg_key& m) -> time_point {
    const auto& per_origin = o.sent_at[m.first];
    return per_origin[static_cast<std::size_t>(m.second - 1)];
  };
  // A message is gradeable when it was sent in quiet time by a then-up
  // origin, with enough margin before the horizon for worst-case delivery.
  auto gradeable = [&](const msg_key& m) {
    const time_point t = sent_date(m);
    return p.quiet(t, o.delivery_bound, o.horizon) &&
           !p.down_at(m.first, t) &&
           t + o.delivery_bound < o.horizon;
  };

  std::map<msg_key, std::set<node_id>> delivered_by;
  for (node_id n : correct)
    for (const msg_key& m : o.delivery_logs[n]) delivered_by[m].insert(n);

  // (1) Validity + agreement over gradeable messages: any gradeable message
  // delivered by one correct node is delivered by every correct node, and a
  // gradeable message from a correct-throughout origin is delivered, full
  // stop (flood diffusion masks scripted bursts deterministically).
  check_result agree{"broadcast.agreement", true, ""};
  for (const auto& [m, nodes] : delivered_by) {
    if (!gradeable(m)) continue;
    if (nodes.size() != correct.size()) {
      agree.passed = false;
      std::ostringstream os;
      os << "message (" << m.first << ", " << m.second << ") delivered by "
         << nodes.size() << "/" << correct.size() << " correct nodes";
      agree.detail = os.str();
      break;
    }
  }
  out.push_back(std::move(agree));

  check_result valid{"broadcast.validity", true, ""};
  for (node_id origin = 0; origin < o.nodes && valid.passed; ++origin) {
    if (!p.correct_throughout(origin)) continue;
    for (std::size_t i = 0; i < o.sent_at[origin].size(); ++i) {
      const msg_key m{origin, i + 1};
      if (!gradeable(m)) continue;
      if (delivered_by.find(m) == delivered_by.end() ||
          delivered_by[m].size() != correct.size()) {
        valid.passed = false;
        std::ostringstream os;
        os << "quiet message (" << origin << ", " << i + 1
           << ") not delivered everywhere";
        valid.detail = os.str();
        break;
      }
    }
  }
  out.push_back(std::move(valid));

  // (2) Total order: common messages appear in the same relative order on
  // every correct node (Delta-delivery), except when the scenario
  // deliberately breaches the hold-back with performance faults. Up to 64
  // correct nodes every pair is compared; above that the O(N²·L) sweep is
  // replaced by comparing each node against one *reference log* — the
  // longest correct log, which at that scale the plans keep complete, so
  // consistency-with-the-reference carries the pairwise property.
  if (!expect_order_faults) {
    check_result order{"broadcast.total_order", true, ""};
    // Does `a`'s log respect `b`'s order on their common messages? Returns
    // the first out-of-order message if not.
    auto against = [&](node_id a, node_id b) -> std::optional<msg_key> {
      const auto& la = o.delivery_logs[a];
      const auto& lb = o.delivery_logs[b];
      std::map<msg_key, std::size_t> pos;
      for (std::size_t k = 0; k < lb.size(); ++k) pos[lb[k]] = k;
      std::size_t last = 0;
      bool first = true;
      for (const msg_key& m : la) {
        auto it = pos.find(m);
        if (it == pos.end()) continue;
        if (!first && it->second < last) return m;
        last = it->second;
        first = false;
      }
      return std::nullopt;
    };
    auto flag = [&](node_id a, node_id b, const msg_key& m) {
      order.passed = false;
      std::ostringstream os;
      os << "nodes " << a << " and " << b << " deliver (" << m.first << ", "
         << m.second << ") in different relative order";
      order.detail = os.str();
    };
    constexpr std::size_t pairwise_limit = 64;
    if (correct.size() <= pairwise_limit) {
      for (std::size_t i = 0; i < correct.size() && order.passed; ++i)
        for (std::size_t j = i + 1; j < correct.size(); ++j) {
          if (auto m = against(correct[i], correct[j])) {
            flag(correct[i], correct[j], *m);
            break;
          }
        }
    } else if (!correct.empty()) {
      node_id ref = correct.front();
      for (node_id n : correct)
        if (o.delivery_logs[n].size() > o.delivery_logs[ref].size()) ref = n;
      for (node_id n : correct) {
        if (n == ref) continue;
        if (auto m = against(n, ref)) {
          flag(n, ref, *m);
          break;
        }
      }
    }
    out.push_back(std::move(order));

    check_result no_breach{"broadcast.no_order_faults", o.order_faults == 0,
                           ""};
    if (!no_breach.passed)
      no_breach.detail =
          std::to_string(o.order_faults) +
          " hold-back breaches on a network without performance faults";
    out.push_back(std::move(no_breach));
  }
  return out;
}

// ---------------------------------------------------------------- modes --

std::vector<check_result> check_modes(const plan& p, const observation& o,
                                      svc::op_mode expected_final,
                                      duration switch_latency) {
  (void)p;
  std::vector<check_result> out;

  check_result final_mode{"modes.final_mode", o.final_mode == expected_final,
                          ""};
  if (!final_mode.passed)
    final_mode.detail = std::string("expected ") + to_string(expected_final) +
                        ", ended in " + to_string(o.final_mode);
  out.push_back(std::move(final_mode));

  // Every switch must be explained by a monitor trigger within the latency
  // bound — mode management reacts to the monitor stream, it does not act
  // spontaneously, and it must not lag the trigger.
  check_result latency{"modes.switch_latency", true, ""};
  for (const auto& sw : o.mode_switches) {
    const bool triggered = std::any_of(
        o.trigger_events.begin(), o.trigger_events.end(), [&](time_point t) {
          return t <= sw.at && sw.at - t <= switch_latency;
        });
    if (!triggered) {
      latency.passed = false;
      latency.detail = std::string("switch to ") + to_string(sw.to) + " at " +
                       sw.at.to_string() + " has no trigger within " +
                       switch_latency.to_string();
      break;
    }
  }
  out.push_back(std::move(latency));
  return out;
}

// --------------------------------------------------------------- clocks --

std::vector<check_result> check_clocks(const observation& o) {
  std::vector<check_result> out;
  if (!o.skew_checked) return out;
  check_result skew{"clocks.skew_within_bound", o.max_skew <= o.skew_bound,
                    ""};
  skew.detail = "max skew " + o.max_skew.to_string() + " (bound " +
                o.skew_bound.to_string() + ")";
  out.push_back(std::move(skew));
  return out;
}

// --------------------------------------------------------------- traffic --

std::vector<check_result> check_miss_budget(const observation& o) {
  std::vector<check_result> out;
  if (!o.traffic_checked) return out;

  check_result acct{"traffic.accounting", true, ""};
  const std::uint64_t in = o.traffic_admitted + o.traffic_rejected;
  const std::uint64_t done = o.traffic_completed + o.traffic_missed +
                             o.traffic_shed + o.traffic_outstanding;
  if (in != o.traffic_offered || done != o.traffic_admitted) {
    acct.passed = false;
    acct.detail = "offered " + std::to_string(o.traffic_offered) +
                  " != admitted+rejected " + std::to_string(in) +
                  " or admitted " + std::to_string(o.traffic_admitted) +
                  " != completed+missed+shed+outstanding " +
                  std::to_string(done);
  } else if (o.traffic_admitted == 0) {
    acct.passed = false;
    acct.detail = "no traffic admitted (offered " +
                  std::to_string(o.traffic_offered) + ")";
  }
  out.push_back(std::move(acct));

  check_result reval{"traffic.revalidation",
                     o.traffic_revalidations > 0 &&
                         o.traffic_revalidation_failures == 0,
                     std::to_string(o.traffic_revalidations) +
                         " revalidations, " +
                         std::to_string(o.traffic_revalidation_failures) +
                         " disagreed with the accumulator"};
  out.push_back(std::move(reval));

  // The budget is on *admitted* work: the edge may reject or shed as much
  // as overload demands, but what it accepted it must overwhelmingly serve
  // by the deadline — that is the admission controller's whole promise.
  check_result budget{"traffic.miss_budget", true, ""};
  const auto allowed = static_cast<std::uint64_t>(
      o.miss_budget * static_cast<double>(o.traffic_admitted));
  budget.passed = o.traffic_missed <= allowed;
  budget.detail = std::to_string(o.traffic_missed) + " deadline-aborted of " +
                  std::to_string(o.traffic_admitted) + " admitted (budget " +
                  std::to_string(allowed) + ")";
  out.push_back(std::move(budget));
  return out;
}

}  // namespace hades::scenario
