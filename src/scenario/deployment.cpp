#include "scenario/deployment.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "sched/edf.hpp"

namespace hades::scenario {

using namespace hades::literals;

namespace {

void sort_suspicions(std::vector<observation::suspicion>& v) {
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    return std::tuple(a.at, a.observer, a.subject) <
           std::tuple(b.at, b.observer, b.subject);
  });
}

}  // namespace

deployment::deployment(const scenario_spec& spec, deployment_options opt)
    : spec_(spec), opt_(std::move(opt)) {
  core::system::config cfg;
  cfg.costs = core::cost_model::zero();
  cfg.kernel_background = false;
  cfg.net = opt_.net;
  cfg.seed = opt_.seed;
  cfg.tracing = false;
  if (!opt_.backend.backend.empty()) {
    cfg.runtime = opt_.backend;
  } else {
    cfg.shards = opt_.shards > 1 ? opt_.shards : 0;
    // Worker threads are a sharded-backend dimension; every service and
    // sink below is shard-confined (DESIGN.md, "Shard confinement"), so any
    // worker count must reproduce the serial checksum bit-for-bit — the
    // gate run_campaign enforces.
    cfg.workers = cfg.shards > 0 ? opt_.workers : 0;
  }
  sys_ = std::make_unique<core::system>(spec_.nodes, cfg);

  fd_ = std::make_unique<svc::fault_detector>(*sys_, spec_.fd);
  bcast_ = std::make_unique<svc::reliable_broadcast>(*sys_, spec_.bcast);
  // Tree diffusion re-parents around suspected relays; harmless no-op for
  // flood cells. fd outlives bcast (declared first), so the capture is safe.
  bcast_->set_suspicion_oracle(
      [fd = fd_.get()](node_id o, node_id s) { return fd->suspects(o, s); });
  modes_ = std::make_unique<svc::mode_manager>(*sys_, spec_.thresholds);
  if (spec_.with_clock_sync) {
    svc::clock_sync_service::params sp;
    sp.resync_period = 100_ms;
    sp.collect_window = 2_ms;
    sp.max_faulty = spec_.clock_sync_max_faulty;
    sp.cluster_size = spec_.clock_sync_cluster;
    sync_ = std::make_unique<svc::clock_sync_service>(*sys_, sp);
  }

  obs_.nodes = spec_.nodes;
  obs_.horizon = time_point::at(spec_.horizon);
  // The detector knows its own worst case for whichever topology the spec
  // configured (flat or hierarchical); checker margin on top.
  obs_.detect_bound = fd_->detection_bound() + opt_.bound_margin;
  obs_.recover_bound = fd_->recovery_bound() + opt_.bound_margin;
  obs_.delivery_bound = bcast_->delivery_bound(64) + opt_.bound_margin;
  obs_.skew_bound = spec_.skew_bound;

  // Suspicion callbacks fire on the observer's shard: collect into
  // per-observer sinks (no shared vector under worker threads) and merge
  // after the run — the (at, observer, subject) sort makes the merged
  // order worker-count independent. Mode switches all occur on the
  // manager's home shard, so one vector is safe.
  susp_by_observer_.resize(spec_.nodes);
  recov_by_observer_.resize(spec_.nodes);
  fd_->on_suspect([this](node_id o, node_id s, time_point at) {
    susp_by_observer_[o].push_back({o, s, at});
  });
  fd_->on_recover([this](node_id o, node_id s, time_point at) {
    recov_by_observer_[o].push_back({o, s, at});
  });
  modes_->on_switch([this](svc::op_mode from, svc::op_mode to, time_point at) {
    obs_.mode_switches.push_back({from, to, at});
  });

  if (spec_.with_task_load) {
    core::task_builder overload("overload");
    overload.deadline(5_ms).law(
        core::arrival_law::periodic(20_ms, 600_ms + 171_us));
    overload.add_code_eu("burn", 0, 9_ms);
    sys_->register_task(overload.build());
    sys_->attach_policy(0, std::make_shared<sched::edf_policy>());
  }
  if (spec_.spanning_task_load) {
    // Shard-spanning load (worker-mode completeness gate): a graph whose
    // EUs alternate between node 0 and the far node — registration sends
    // creation tokens to the remote home, the precedences cross shards in
    // both directions, and the far EU sets a condition that a watcher on a
    // middle node waits on (cond_set -> authority -> cond_update wakeup).
    // Infinite deadlines keep these out of the overload's miss accounting.
    const auto far = static_cast<node_id>(spec_.nodes - 1);
    const auto mid = static_cast<node_id>(spec_.nodes / 2);
    core::task_builder span("span");
    span.law(core::arrival_law::periodic(15_ms, 300_ms + 137_us));
    const auto a = span.add_code_eu("a", 0, 150_us);
    core::code_eu far_eu;
    far_eu.name = "b";
    far_eu.processor = far;
    far_eu.wcet = 150_us;
    far_eu.sets = {1};
    const auto b = span.add_code_eu(std::move(far_eu));
    const auto c = span.add_code_eu("c", 0, 150_us);
    span.precede(a, b, 64).precede(b, c, 64);
    sys_->register_task(span.build());

    core::task_builder watch("watch");
    watch.law(core::arrival_law::periodic(15_ms, 300_ms + 251_us));
    core::code_eu w_eu;
    w_eu.name = "w";
    w_eu.processor = mid;
    w_eu.wcet = 100_us;
    w_eu.waits_all = {1};
    w_eu.clears = {1};
    watch.add_code_eu(std::move(w_eu));
    sys_->register_task(watch.build());
  }

  // Per-node application traffic: node-anchored periodic broadcasts (all of
  // a node's sends must execute on the shard owning the node — the
  // determinism rule of DESIGN.md, "Scenario layer"). Periods are
  // coprime-ish per node so the traffic pattern exercises interleavings.
  // Armed at construction — the same scheduling-call position run_cell had.
  obs_.sent_at.assign(spec_.nodes, {});
  const time_point stop = obs_.horizon - obs_.delivery_bound - 5_ms;
  // bcast_nodes == 0: the standing 8-node family, every node an origin (the
  // exact historical dates — checksums depend on them). Otherwise only
  // `bcast_nodes` origins, spread evenly so different clusters and tree
  // positions send.
  const std::size_t senders =
      spec_.bcast_nodes == 0 ? spec_.nodes
                             : std::min(spec_.bcast_nodes, spec_.nodes);
  for (std::size_t i = 0; i < senders; ++i) {
    const node_id n = spec_.bcast_nodes == 0
                          ? static_cast<node_id>(i)
                          : static_cast<node_id>(i * spec_.nodes / senders);
    const time_point first =
        time_point::at(20_ms + 413_us * static_cast<std::int64_t>(i) + 7_us);
    const duration period = 4700_us + 613_us * static_cast<std::int64_t>(i);
    sys_->engine().periodic_at_node(
        n, first, period,
        [this, n] {
          if (!sys_->crashed(n)) {
            obs_.sent_at[n].push_back(sys_->now());
            bcast_->broadcast(n, static_cast<int>(obs_.sent_at[n].size()));
          }
        },
        stop);
  }

  // Traffic edge: one gateway per node in [1, 1 + k), each an independent
  // open-loop arrival stream into its own admission controller, under EDF.
  // Armed after the broadcast workload so every backend sees the identical
  // scheduling-call order.
  if (spec_.traffic.gateway_nodes > 0) {
    const auto& tp = spec_.traffic;
    require(1 + tp.gateway_nodes <= spec_.nodes,
            "deployment: too many gateway nodes");
    for (std::size_t i = 0; i < tp.gateway_nodes; ++i) {
      const auto n = static_cast<node_id>(1 + i);
      sys_->attach_policy(n, std::make_shared<sched::edf_policy>());
      traffic::gateway_config gc;
      gc.arrivals.mix = tp.mix;
      gc.arrivals.rate_per_s = tp.rate_per_s;
      gc.arrivals.population = 1'000'000;
      gc.classes = {
          {200_us, 3_ms, 4, 5},    // interactive: costly to drop
          {500_us, 10_ms, 3, 3},   // standard
          {1500_us, 40_ms, 1, 2},  // batch: first to shed
      };
      gc.admission.feas.slot_width = 1_ms;  // 64 ms wheel > largest deadline
      gc.admission.feas.available = tp.available;
      gc.admission.max_outstanding = 4096;
      gc.start = time_point::at(25_ms + 311_us * static_cast<std::int64_t>(i));
      gc.stop = obs_.horizon - 60_ms;  // drain window before collection
      gc.revalidate_period = 25_ms;
      gateways_.push_back(std::make_unique<traffic::gateway>(
          *sys_, n, std::move(gc), opt_.seed));
      gateways_.back()->start();
    }
    // Mode switches renegotiate every gateway's CPU fraction. The hook runs
    // on the manager's home shard; each gateway's shed pass is routed to
    // its own shard one network lookahead ahead (the sharded backend's
    // cross-shard scheduling floor).
    modes_->on_switch([this](svc::op_mode, svc::op_mode to, time_point at) {
      const auto& t = spec_.traffic;
      const double frac = to == svc::op_mode::normal ? t.available
                          : to == svc::op_mode::degraded
                              ? t.degraded_available
                              : t.safe_available;
      for (auto& gw : gateways_)
        sys_->engine().at_node(gw->node(), at + opt_.net.delta_min,
                               [g = gw.get(), frac] { g->renegotiate(frac); });
    });
  }
}

deployment::~deployment() = default;

void deployment::start() {
  require(!started_, "deployment::start: already started");
  started_ = true;
  fd_->start();
  if (sync_) sync_->start();
  apply(*sys_, spec_.p, obs_.horizon);
}

void deployment::run() {
  require(started_, "deployment::run: start() first");
  sys_->run_until(obs_.horizon);
}

observation deployment::collect() {
  require(!collected_, "deployment::collect: already collected");
  collected_ = true;
  for (auto& per_obs : susp_by_observer_)
    obs_.suspicions.insert(obs_.suspicions.end(), per_obs.begin(),
                           per_obs.end());
  for (auto& per_obs : recov_by_observer_)
    obs_.recoveries.insert(obs_.recoveries.end(), per_obs.begin(),
                           per_obs.end());
  sort_suspicions(obs_.suspicions);
  sort_suspicions(obs_.recoveries);
  for (node_id n = 0; n < spec_.nodes; ++n)
    obs_.delivery_logs.push_back(bcast_->delivery_log(n));
  obs_.order_faults = bcast_->order_faults();
  obs_.final_mode = modes_->mode();
  obs_.deadline_misses =
      sys_->mon().count(core::monitor_event_kind::deadline_miss);
  for (const auto& e : sys_->mon().events()) {
    obs_.event_kinds |= 1u << static_cast<unsigned>(e.kind);
    if (e.kind == core::monitor_event_kind::deadline_miss ||
        e.kind == core::monitor_event_kind::node_crash ||
        e.kind == core::monitor_event_kind::node_recover ||
        e.kind == core::monitor_event_kind::node_suspected ||
        e.kind == core::monitor_event_kind::node_unsuspected)
      obs_.trigger_events.push_back(e.at);
  }
  std::sort(obs_.trigger_events.begin(), obs_.trigger_events.end());
  if (!gateways_.empty()) {
    obs_.traffic_checked = true;
    obs_.miss_budget = spec_.traffic.miss_budget;
    hdr_histogram merged;
    for (auto& gw : gateways_) {  // node order — the merge convention
      const auto t = gw->snapshot();
      obs_.traffic_offered += t.offered;
      obs_.traffic_admitted += t.admitted;
      obs_.traffic_rejected += t.rejected;
      obs_.traffic_shed += t.shed;
      obs_.traffic_completed += t.completed;
      obs_.traffic_missed += t.missed;
      obs_.traffic_outstanding += gw->controller().outstanding();
      obs_.traffic_revalidations += t.revalidations;
      obs_.traffic_revalidation_failures += t.revalidation_failures;
      obs_.traffic_renegotiations += t.renegotiations;
      obs_.gateway_digests.push_back(gw->digest());
      merged.merge(gw->latency());
    }
    obs_.latency_p50 = merged.value_at_quantile(0.50);
    obs_.latency_p99 = merged.value_at_quantile(0.99);
    obs_.latency_p999 = merged.value_at_quantile(0.999);
  }
  if (sync_) {
    obs_.skew_checked = true;
    std::vector<node_id> correct;
    for (node_id n = 0; n < spec_.nodes; ++n)
      if (spec_.p.correct_throughout(n) && !spec_.p.clock_faulty(n))
        correct.push_back(n);
    obs_.max_skew = sync_->max_skew(correct);
  }
  return obs_;
}

std::vector<check_result> deployment::grade(const observation& obs) const {
  const duration switch_latency = opt_.switch_latency > duration::zero()
                                      ? opt_.switch_latency
                                      : spec_.modes.switch_latency;
  std::vector<check_result> checks;
  for (auto& c : check_detector(spec_.p, obs)) checks.push_back(c);
  for (auto& c : check_broadcast(spec_.p, obs, spec_.expect_order_faults))
    checks.push_back(c);
  for (auto& c :
       check_modes(spec_.p, obs, spec_.modes.final_mode, switch_latency))
    checks.push_back(c);
  for (auto& c : check_clocks(obs)) checks.push_back(c);
  for (auto& c : check_miss_budget(obs)) checks.push_back(c);
  return checks;
}

}  // namespace hades::scenario
