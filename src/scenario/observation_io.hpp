// Partial-observation files for the multi-process realtime harness.
//
// Each worker process owns a slice of the node set; after its run it
// writes only the owned slice of its observation (suspicions recorded by
// owned observers, delivery logs / send dates of owned nodes, mode data
// from the process owning the mode manager's home). The parent merges the
// partials into one complete observation and grades the same checkers the
// in-process sim reference used — verdict parity is the harness gate.
//
// Line-based text format ("hades-observation v1"), one fact per line:
// trivially diffable when a run disagrees, no dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/checkers.hpp"
#include "util/types.hpp"

namespace hades::scenario {

/// Write the slice of `obs` a worker owns: per-node data for nodes whose
/// owner bit is set in `owned`, counters and mode data only when
/// `has_mode` (exactly one process — the mode manager home's owner — sets
/// it, so merged counters are not double-counted). `extra` lines (e.g.
/// transport stats) are carried through verbatim under "x " prefixes.
void write_partial_observation(const std::string& path, const observation& obs,
                               const std::vector<bool>& owned, bool has_mode,
                               const std::vector<std::string>& extra = {});

struct merged_observation {
  observation obs;
  std::vector<std::string> extra;  // concatenated "x" lines from all partials
};

/// Merge worker partials into one checker-ready observation. Bounds,
/// horizon, and node count come from the first file (identical in all);
/// suspicion/recovery/trigger lists are concatenated and re-sorted;
/// per-node vectors come from whichever partial owns the node; counters
/// sum; mode data comes from the has_mode partial. Throws on malformed or
/// disagreeing headers.
[[nodiscard]] merged_observation merge_partial_observations(
    const std::vector<std::string>& paths);

}  // namespace hades::scenario
