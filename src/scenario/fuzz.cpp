#include "scenario/fuzz.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "scenario/json_min.hpp"
#include "services/channels.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hades::scenario {

using namespace hades::literals;

namespace {

// ------------------------------------------------------------- helpers --

/// FNV-1a fold of two words: the per-case seed derivation. Pure integer,
/// so (campaign_seed, index) -> case stream is compiler-invariant.
std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::uint64_t v : {a, b})
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ull;
    }
  return h;
}

/// A date at `ms` milliseconds plus an odd sub-millisecond offset in
/// [97us, 499us] — never on a service tick (multiples of the 10ms
/// heartbeat / 100ms resync periods) and never within a sharded-round
/// lookahead of one, the same discipline the curated scenarios follow.
time_point odd_date(rng& r, std::int64_t lo_ms, std::int64_t hi_ms) {
  const std::int64_t ms = r.uniform_int(lo_ms, hi_ms);
  const std::int64_t us = 97 + 2 * r.uniform_int(0, 201);
  return time_point::at(duration::milliseconds(ms) +
                        duration::microseconds(us));
}

/// A node id in [lo, hi] not yet in `used`; records the pick.
node_id pick_node(rng& r, std::vector<node_id>& used, node_id lo,
                  node_id hi) {
  for (;;) {
    const auto n = static_cast<node_id>(r.uniform_int(lo, hi));
    if (std::find(used.begin(), used.end(), n) == used.end()) {
      used.push_back(n);
      return n;
    }
  }
}

double ppm(std::int64_t v) { return static_cast<double>(v) / 1e6; }

/// First node the plan may crash: node 0 hosts the mode manager and the
/// gateways' admitted work cannot outlive its gateway, so both are off
/// limits (scenarios.hpp, traffic_params).
node_id first_crashable(const scenario_spec& s) {
  return s.traffic.gateway_nodes > 0
             ? static_cast<node_id>(1 + s.traffic.gateway_nodes)
             : 1;
}

// -------------------------------------------------------------- themes --
//
// Each theme emits one admissible fault family; a case is one theme plus
// optional data-plane burst garnish. Probabilistic storms, clock faults
// and topology faults never mix within a case: the checkers grade
// recoveries and skew only in windows a storm would make flaky (see the
// header comment), and keeping families separate is what lets a red
// checker indict the runtime rather than the generator.

void gen_crashes(scenario_spec& s, rng& r) {
  const auto n_crashes = r.uniform_int(1, 3);
  std::vector<node_id> victims;
  std::int64_t t = 250 + r.uniform_int(0, 150);
  for (std::int64_t k = 0; k < n_crashes; ++k) {
    const node_id v = pick_node(r, victims, first_crashable(s),
                                static_cast<node_id>(s.nodes - 1));
    const time_point at = odd_date(r, t, t + 60);
    s.p.crash(at, v);
    // Down windows stay >= 200ms (far above the ~47ms detection bound)
    // and recoveries land >= 150ms before the horizon so the un-suspect
    // bound can be graded.
    if (r.chance(0.6)) {
      const std::int64_t crash_ms = at.nanoseconds() / 1'000'000;
      const std::int64_t rec_ms =
          std::min<std::int64_t>(crash_ms + 200 + r.uniform_int(0, 300), 1300);
      s.p.recover(odd_date(r, rec_ms, rec_ms), v);
    }
    t += 180 + r.uniform_int(0, 80);
  }
}

void gen_partition(scenario_spec& s, rng& r) {
  std::vector<node_id> order(s.nodes);
  for (std::size_t i = 0; i < s.nodes; ++i) order[i] = i;
  for (std::size_t i = s.nodes - 1; i > 0; --i)
    std::swap(order[i],
              order[static_cast<std::size_t>(
                  r.uniform_int(0, static_cast<std::int64_t>(i)))]);
  const auto cut = static_cast<std::size_t>(
      r.uniform_int(1, static_cast<std::int64_t>(s.nodes) - 1));
  std::vector<node_id> low(order.begin(), order.begin() + cut);
  std::vector<node_id> high(order.begin() + cut, order.end());
  std::sort(low.begin(), low.end());
  std::sort(high.begin(), high.end());
  s.p.split(odd_date(r, 350, 500), {std::move(low), std::move(high)})
      .heal(odd_date(r, 850, 1000));
  // A partition is not a crash: the suspicion-driven mode policy stays
  // disarmed (suspicions_for_degraded = 0), so the system stays NORMAL.
}

void gen_links(scenario_spec& s, rng& r) {
  const auto pairs = r.uniform_int(1, 3);
  std::vector<std::pair<node_id, node_id>> taken;
  for (std::int64_t k = 0; k < pairs; ++k) {
    for (;;) {
      const auto src = static_cast<node_id>(
          r.uniform_int(0, static_cast<std::int64_t>(s.nodes) - 1));
      const auto dst = static_cast<node_id>(
          r.uniform_int(0, static_cast<std::int64_t>(s.nodes) - 1));
      if (src == dst ||
          std::find(taken.begin(), taken.end(), std::make_pair(src, dst)) !=
              taken.end())
        continue;
      taken.emplace_back(src, dst);
      s.p.link_down(odd_date(r, 350, 500), src, dst)
          .link_up(odd_date(r, 850, 1000), src, dst);
      break;
    }
  }
}

void gen_bursts(scenario_spec& s, rng& r) {
  // Heartbeat-channel bursts stay at or under the detector's omission
  // degree (k = 2 at period 10ms / timeout 35ms: a third consecutive loss
  // would legitimately suspect) and each directed link carries at most one
  // burst so bursts can never chain past the degree.
  const auto hb = r.uniform_int(2, 5);
  std::vector<std::pair<node_id, node_id>> taken;
  for (std::int64_t k = 0; k < hb; ++k) {
    for (;;) {
      const auto src = static_cast<node_id>(
          r.uniform_int(0, static_cast<std::int64_t>(s.nodes) - 1));
      const auto dst = static_cast<node_id>(
          r.uniform_int(0, static_cast<std::int64_t>(s.nodes) - 1));
      if (src == dst ||
          std::find(taken.begin(), taken.end(), std::make_pair(src, dst)) !=
              taken.end())
        continue;
      taken.emplace_back(src, dst);
      s.p.omission_burst(odd_date(r, 250, 1100), src, dst,
                         static_cast<int>(r.uniform_int(1, 2)),
                         svc::ch_heartbeat);
      break;
    }
  }
}

void add_data_bursts(scenario_spec& s, rng& r, std::int64_t n) {
  for (std::int64_t k = 0; k < n; ++k) {
    const auto src = static_cast<node_id>(
        r.uniform_int(0, static_cast<std::int64_t>(s.nodes) - 1));
    auto dst = static_cast<node_id>(
        r.uniform_int(0, static_cast<std::int64_t>(s.nodes) - 2));
    if (dst >= src) ++dst;
    s.p.omission_burst(odd_date(r, 250, 1150), src, dst,
                       static_cast<int>(r.uniform_int(1, 4)),
                       svc::ch_reliable_bcast);
  }
}

void gen_storm(scenario_spec& s, rng& r) {
  const time_point on = odd_date(r, 300, 500);
  const time_point off = odd_date(r, 800, 1000);
  if (r.chance(0.5)) {
    // Global omission storm. At the default 35ms timeout three random
    // consecutive heartbeat losses suspect, and p^3 over every link of a
    // 500ms window is not rare enough for a thousand-cell night — so storm
    // cases widen the timeout to 95ms (nine consecutive losses, p^9).
    s.fd.timeout = 95_ms;
    s.p.omission_rate(on, ppm(r.uniform_int(20'000, 150'000)))
        .omission_rate(off, 0.0);
  } else {
    // Performance-fault window: the added delay stays under the detector's
    // margin (timeout 35ms - 30.06ms bound) so heartbeats arrive late but
    // in time, while the 2ms Delta hold-back is breached and counted.
    s.p.perf_fault(on, ppm(r.uniform_int(100'000, 400'000)),
                   duration::microseconds(r.uniform_int(500, 2500)))
        .perf_fault(off, 0.0, duration::zero());
  }
}

void gen_clocks(scenario_spec& s, rng& r) {
  s.with_clock_sync = true;
  std::vector<node_id> used;
  const auto last = static_cast<node_id>(s.nodes - 1);
  const auto drifts = r.uniform_int(1, 2);
  for (std::int64_t k = 0; k < drifts; ++k) {
    const std::int64_t rho_ppm =
        r.uniform_int(50, 350) * (r.chance(0.5) ? 1 : -1);
    s.p.clock_drift(odd_date(r, 150, 400), pick_node(r, used, 0, last),
                    ppm(rho_ppm));
  }
  if (r.chance(0.5)) {
    const std::int64_t step_us =
        r.uniform_int(200, 1500) * (r.chance(0.5) ? 1 : -1);
    s.p.clock_step(odd_date(r, 500, 900), pick_node(r, used, 0, last),
                   duration::microseconds(step_us));
  }
  // Byzantine crystals: at most f with n >= 3f+1, rates far outside any
  // honest reading so the trimmed average has real liars to mask.
  const auto max_f =
      std::min<std::int64_t>(2, (static_cast<std::int64_t>(s.nodes) - 1) / 3);
  if (max_f >= 1 && r.chance(0.4)) {
    const auto f = r.uniform_int(1, max_f);
    s.clock_sync_max_faulty = static_cast<int>(f);
    for (std::int64_t k = 0; k < f; ++k) {
      static constexpr double wild[] = {0.4, 1.7, 2.2};
      s.p.clock_byzantine(
          odd_date(r, 200, 300), pick_node(r, used, 0, last),
          wild[r.uniform_int(0, 2)],
          duration::microseconds(r.uniform_int(-900, 900)));
    }
  }
}

void gen_traffic(scenario_spec& s, rng& r) {
  s.traffic.gateway_nodes = 2;
  switch (r.uniform_int(0, 2)) {
    case 0:
      s.traffic.mix = traffic::arrival_mix::poisson;
      s.traffic.rate_per_s = static_cast<double>(r.uniform_int(2000, 2800));
      break;
    case 1:
      s.traffic.mix = traffic::arrival_mix::bursty;
      s.traffic.rate_per_s = static_cast<double>(r.uniform_int(700, 950));
      break;
    default:
      s.traffic.mix = traffic::arrival_mix::diurnal;
      s.traffic.rate_per_s = static_cast<double>(r.uniform_int(1500, 2100));
      break;
  }
  if (r.chance(0.4) && s.nodes > 3)
    s.p.crash(odd_date(r, 600, 800),
              static_cast<node_id>(r.uniform_int(
                  3, static_cast<std::int64_t>(s.nodes) - 1)));
}

}  // namespace

// --------------------------------------------------------- expectations --

void recompute_expectations(scenario_spec& spec) {
  std::size_t crashes = 0;
  bool perf_active = false;
  for (const action& a : spec.p.actions) {
    if (a.kind == action_kind::crash_node) ++crashes;
    if (a.kind == action_kind::perf_fault && a.rate > 0.0) perf_active = true;
  }
  // The mode manager counts monitor node_crash events against the crash
  // thresholds and degradation is sticky, so the crash count alone decides
  // the final mode of a generated spec (no deadline workload, suspicion
  // policy disarmed).
  if (crashes == 0)
    spec.modes.final_mode = svc::op_mode::normal;
  else if (crashes < static_cast<std::size_t>(spec.thresholds.crashes_for_safe))
    spec.modes.final_mode = svc::op_mode::degraded;
  else
    spec.modes.final_mode = svc::op_mode::safe;
  spec.expect_order_faults = perf_active;
}

// ----------------------------------------------------------- generator --

fuzz_case generate_case(std::uint64_t campaign_seed, std::uint64_t index) {
  rng r(mix64(campaign_seed, index));
  fuzz_case c;
  c.case_seed = mix64(campaign_seed ^ 0xA076'1D64'78BD'642Full, index);
  // "clean" is exactly the curated base configuration (scenarios.cpp):
  // starting from it keeps the generator in lockstep with the registry's
  // thresholds and service parameters.
  c.spec = find_scenario("clean");
  scenario_spec& s = c.spec;
  s.name = "fuzz_" + std::to_string(campaign_seed) + "_" +
           std::to_string(index);
  s.description = "generated by scenario::fuzz";
  s.p.name = s.name;
  s.nodes = static_cast<std::size_t>(6 + r.uniform_int(0, 4));

  switch (r.uniform_int(0, 9)) {
    case 0:
    case 1:
    case 2:
      gen_crashes(s, r);
      if (r.chance(0.4)) add_data_bursts(s, r, r.uniform_int(1, 2));
      break;
    case 3:
      gen_partition(s, r);
      if (r.chance(0.3)) add_data_bursts(s, r, 1);
      break;
    case 4:
      gen_links(s, r);
      break;
    case 5:
      gen_bursts(s, r);
      if (r.chance(0.5)) add_data_bursts(s, r, r.uniform_int(1, 2));
      break;
    case 6:
      gen_storm(s, r);
      break;
    case 7:
      gen_clocks(s, r);
      break;
    default:
      gen_traffic(s, r);
      break;
  }
  recompute_expectations(s);

  const std::vector<std::string> bad =
      s.p.validate(s.nodes, time_point::at(s.horizon));
  require(bad.empty(), "generate_case: inadmissible plan " + s.name +
                           (bad.empty() ? "" : ": " + bad.front()));
  return c;
}

// ----------------------------------------------------------------- JSON --

namespace {

const char* mix_to_string(traffic::arrival_mix m) {
  switch (m) {
    case traffic::arrival_mix::poisson: return "poisson";
    case traffic::arrival_mix::bursty: return "bursty";
    case traffic::arrival_mix::diurnal: return "diurnal";
  }
  return "poisson";
}

traffic::arrival_mix mix_from_string(const std::string& s) {
  if (s == "poisson") return traffic::arrival_mix::poisson;
  if (s == "bursty") return traffic::arrival_mix::bursty;
  if (s == "diurnal") return traffic::arrival_mix::diurnal;
  throw invariant_violation("fuzz json: unknown arrival mix \"" + s + '"');
}

svc::op_mode mode_from_string(const std::string& s) {
  for (svc::op_mode m :
       {svc::op_mode::normal, svc::op_mode::degraded, svc::op_mode::safe})
    if (s == to_string(m)) return m;
  throw invariant_violation("fuzz json: unknown mode \"" + s + '"');
}

}  // namespace

std::string fuzz_case_to_json(const fuzz_case& c) {
  const scenario_spec& s = c.spec;
  std::ostringstream os;
  os << "{\n  \"format\": \"hades-fuzz-case v1\",\n"
     << "  \"case_seed\": " << static_cast<std::int64_t>(c.case_seed)
     << ",\n"
     << "  \"name\": \"" << jmin::escape(s.name) << "\",\n"
     << "  \"nodes\": " << s.nodes << ",\n"
     << "  \"horizon_ns\": " << s.horizon.count() << ",\n"
     << "  \"fd_period_ns\": " << s.fd.heartbeat_period.count() << ",\n"
     << "  \"fd_timeout_ns\": " << s.fd.timeout.count() << ",\n"
     << "  \"with_clock_sync\": " << (s.with_clock_sync ? "true" : "false")
     << ",\n"
     << "  \"clock_sync_max_faulty\": " << s.clock_sync_max_faulty << ",\n"
     << "  \"expect_order_faults\": "
     << (s.expect_order_faults ? "true" : "false") << ",\n"
     << "  \"final_mode\": \"" << to_string(s.modes.final_mode) << "\",\n"
     << "  \"traffic_gateways\": " << s.traffic.gateway_nodes << ",\n"
     << "  \"traffic_mix\": \"" << mix_to_string(s.traffic.mix) << "\",\n"
     << "  \"traffic_rate_milli_per_s\": "
     << static_cast<std::int64_t>(std::llround(s.traffic.rate_per_s * 1e3))
     << ",\n"
     << "  \"plan\": " << plan_to_json(s.p, 2).substr(2) << "\n}\n";
  return os.str();
}

fuzz_case fuzz_case_from_json(const std::string& text) {
  const jmin::value root = jmin::parse(text);
  require(root.k == jmin::value::kind::object,
          "fuzz json: expected an object");
  fuzz_case c;
  const jmin::value* fmt = root.find("format");
  if (fmt != nullptr && fmt->as_string() == "hades-plan v1") {
    // Convenience: a bare plan document wraps into the curated base spec
    // with truthful expectations, so `--shrink` works straight off a
    // campaign's diverged-plan dump.
    c.spec = find_scenario("clean");
    c.spec.p = plan_from_json(text);
    c.spec.name = c.spec.p.name;
    recompute_expectations(c.spec);
    return c;
  }
  require(fmt != nullptr && fmt->as_string() == "hades-fuzz-case v1",
          "fuzz json: unsupported format");
  c.case_seed = static_cast<std::uint64_t>(root.at("case_seed").as_int());
  c.spec = find_scenario("clean");
  scenario_spec& s = c.spec;
  s.name = root.at("name").as_string();
  s.description = "parsed hades-fuzz-case v1";
  s.nodes = static_cast<std::size_t>(root.at("nodes").as_int());
  s.horizon = duration::nanoseconds(root.at("horizon_ns").as_int());
  s.fd.heartbeat_period =
      duration::nanoseconds(root.at("fd_period_ns").as_int());
  s.fd.timeout = duration::nanoseconds(root.at("fd_timeout_ns").as_int());
  s.with_clock_sync = root.at("with_clock_sync").as_bool();
  s.clock_sync_max_faulty =
      static_cast<int>(root.at("clock_sync_max_faulty").as_int());
  s.expect_order_faults = root.at("expect_order_faults").as_bool();
  s.modes.final_mode = mode_from_string(root.at("final_mode").as_string());
  s.traffic.gateway_nodes =
      static_cast<std::size_t>(root.at("traffic_gateways").as_int());
  s.traffic.mix = mix_from_string(root.at("traffic_mix").as_string());
  s.traffic.rate_per_s =
      static_cast<double>(root.at("traffic_rate_milli_per_s").as_int()) / 1e3;
  s.p = plan_from_json(text);
  s.p.name = s.name;
  return c;
}

// --------------------------------------------------------------- matrix --

matrix_verdict run_matrix(const fuzz_case& c, std::size_t jobs) {
  struct mcell {
    std::size_t shards, workers;
  };
  static constexpr mcell cells[] = {{1, 0}, {2, 0}, {2, 4}, {4, 0}, {4, 4}};
  constexpr std::size_t n = std::size(cells);
  std::vector<cell_result> rs(n);
  parallel_for(n, jobs, [&](std::size_t i) {
    rs[i] = run_cell(c.spec, c.case_seed, cells[i].shards, cells[i].workers);
  });

  matrix_verdict v;
  v.reference_checksum = rs[0].checksum;
  v.checksums_match =
      std::all_of(rs.begin(), rs.end(), [&](const cell_result& cr) {
        return cr.checksum == rs[0].checksum;
      });
  v.reference_checks = rs[0].checks;
  bool checks_ok = true;
  for (const cell_result& cr : rs)
    for (const check_result& ck : cr.checks)
      if (!ck.passed) {
        checks_ok = false;
        if (v.failure_signature.empty()) v.failure_signature = ck.name;
      }
  if (checks_ok && !v.checksums_match)
    v.failure_signature = "campaign.checksum_match";
  v.passed = checks_ok && v.checksums_match;
  v.coverage.fold(c.spec, rs[0].checks, rs[0].obs);
  if (!v.checksums_match) v.coverage.mark("checksum-divergence");
  return v;
}

// -------------------------------------------------------------- shrinker --

namespace {

bool fails_same(const fuzz_case& c, const std::string& signature,
                std::size_t jobs) {
  if (!c.spec.p
           .validate(c.spec.nodes, time_point::at(c.spec.horizon))
           .empty())
    return false;
  return run_matrix(c, jobs).failure_signature == signature;
}

/// Sorted copy of the timeline (stable on date), the order every shrink
/// transformation reasons in.
std::vector<action> sorted_actions(const plan& p) {
  std::vector<action> out = p.actions;
  std::stable_sort(out.begin(), out.end(),
                   [](const action& x, const action& y) {
                     return x.at < y.at;
                   });
  return out;
}

}  // namespace

fuzz_case shrink_case(const fuzz_case& failing, const std::string& signature,
                      std::size_t jobs, bool verbose) {
  require(!signature.empty(), "shrink_case: empty failure signature");
  fuzz_case best = failing;

  for (int round = 0; round < 8; ++round) {
    bool changed = false;

    // Phase 1 — ddmin action removal: drop complement chunks, halving
    // granularity. Candidates that no longer validate (a recover whose
    // crash was dropped, a heal whose split went) simply don't count as
    // failing; ddmin routes around them.
    std::vector<action> acts = sorted_actions(best.spec.p);
    std::size_t granularity = 2;
    while (acts.size() >= 2) {
      const std::size_t chunk =
          std::max<std::size_t>(1, acts.size() / granularity);
      bool reduced = false;
      for (std::size_t start = 0; start < acts.size(); start += chunk) {
        std::vector<action> candidate;
        for (std::size_t i = 0; i < acts.size(); ++i)
          if (i < start || i >= start + chunk) candidate.push_back(acts[i]);
        if (candidate.empty()) continue;
        fuzz_case trial = best;
        trial.spec.p.actions = candidate;
        if (fails_same(trial, signature, jobs)) {
          acts = std::move(candidate);
          best.spec.p.actions = acts;
          granularity = std::max<std::size_t>(2, granularity - 1);
          reduced = true;
          changed = true;
          if (verbose)
            std::printf("shrink: %zu actions remain\n", acts.size());
          break;
        }
      }
      if (!reduced) {
        if (granularity >= acts.size()) break;
        granularity = std::min(acts.size(), granularity * 2);
      }
    }

    // Phase 2 — timeline compression (window tightening): re-date the
    // surviving actions onto a canonical early grid, preserving their
    // order. One candidate; idempotent by construction.
    {
      std::vector<action> acts2 = sorted_actions(best.spec.p);
      const std::int64_t spacing_ms = std::clamp<std::int64_t>(
          acts2.empty() ? 120 : 900 / static_cast<std::int64_t>(acts2.size()),
          30, 120);
      for (std::size_t i = 0; i < acts2.size(); ++i)
        acts2[i].at = time_point::at(
            duration::milliseconds(300 +
                                   static_cast<std::int64_t>(i) * spacing_ms) +
            duration::microseconds(137 + 2 * static_cast<std::int64_t>(i)));
      const std::vector<action> before = sorted_actions(best.spec.p);
      bool moved = false;
      for (std::size_t i = 0; i < acts2.size(); ++i)
        moved = moved || acts2[i].at != before[i].at;
      fuzz_case trial = best;
      trial.spec.p.actions = acts2;
      if (moved && fails_same(trial, signature, jobs)) {
        best = std::move(trial);
        changed = true;
        if (verbose) std::printf("shrink: timeline compressed\n");
      }
    }

    // Phase 3 — node-count reduction: drop to the highest node the plan
    // still references (floor 4: the services assume a real ensemble, and
    // clock sync needs 3f+1). Partition plans whose groups enumerate every
    // node fail validate() at the smaller count and are skipped.
    {
      node_id highest = 0;
      for (const action& a : best.spec.p.actions) {
        if (a.a != invalid_node) highest = std::max(highest, a.a);
        if (a.b != invalid_node) highest = std::max(highest, a.b);
        for (const auto& g : a.groups)
          for (node_id m : g) highest = std::max(highest, m);
      }
      std::size_t floor_nodes = std::max<std::size_t>(4, highest + 1);
      if (best.spec.clock_sync_max_faulty > 0)
        floor_nodes = std::max<std::size_t>(
            floor_nodes,
            3 * static_cast<std::size_t>(best.spec.clock_sync_max_faulty) + 1);
      if (best.spec.traffic.gateway_nodes > 0)
        floor_nodes = std::max<std::size_t>(
            floor_nodes, 2 + best.spec.traffic.gateway_nodes);
      if (floor_nodes < best.spec.nodes) {
        fuzz_case trial = best;
        trial.spec.nodes = floor_nodes;
        if (fails_same(trial, signature, jobs)) {
          best = std::move(trial);
          changed = true;
          if (verbose)
            std::printf("shrink: %zu nodes remain\n", best.spec.nodes);
        }
      }
    }

    if (!changed) break;
  }
  return best;
}

// ------------------------------------------------------------- mutation --

namespace {

/// Structural mutation of a corpus case. Returns false when the edit came
/// out inadmissible (the caller falls back to fresh generation). Every
/// operator keeps the admissibility rules intact and recomputes the
/// checker expectations afterwards.
bool mutate(fuzz_case& c, rng& r) {
  scenario_spec& s = c.spec;
  switch (r.uniform_int(0, 4)) {
    case 0: {  // shift the whole timeline
      const duration delta = duration::milliseconds(r.uniform_int(-80, 80));
      for (action& a : s.p.actions) {
        const time_point moved = a.at + delta;
        const std::int64_t ns = moved.nanoseconds();
        if (ns < 120'000'000 || ns > s.horizon.count() - 120'000'000)
          return false;
        a.at = moved;
      }
      break;
    }
    case 1: {  // retarget one crash victim (and its recoveries)
      std::vector<node_id> victims;
      for (const action& a : s.p.actions)
        if (a.kind == action_kind::crash_node &&
            std::find(victims.begin(), victims.end(), a.a) == victims.end())
          victims.push_back(a.a);
      if (victims.empty()) return false;
      const node_id old_v = victims[static_cast<std::size_t>(
          r.uniform_int(0, static_cast<std::int64_t>(victims.size()) - 1))];
      const node_id lo = first_crashable(s);
      const auto hi = static_cast<node_id>(s.nodes - 1);
      if (hi < lo) return false;
      const auto new_v = static_cast<node_id>(r.uniform_int(lo, hi));
      if (new_v == old_v ||
          std::find(victims.begin(), victims.end(), new_v) != victims.end())
        return false;
      for (action& a : s.p.actions)
        if ((a.kind == action_kind::crash_node ||
             a.kind == action_kind::recover_node) &&
            a.a == old_v)
          a.a = new_v;
      break;
    }
    case 2:  // garnish with a data-plane burst
      add_data_bursts(s, r, 1);
      break;
    case 3: {  // drop one scripted burst
      std::vector<std::size_t> bursts;
      for (std::size_t i = 0; i < s.p.actions.size(); ++i)
        if (s.p.actions[i].kind == action_kind::omission_burst)
          bursts.push_back(i);
      if (bursts.empty()) return false;
      s.p.actions.erase(
          s.p.actions.begin() +
          static_cast<std::ptrdiff_t>(bursts[static_cast<std::size_t>(
              r.uniform_int(0, static_cast<std::int64_t>(bursts.size()) - 1))]));
      break;
    }
    default:  // replay the same plan under a different deployment seed
      c.case_seed = r.next_u64();
      break;
  }
  recompute_expectations(s);
  return s.p.validate(s.nodes, time_point::at(s.horizon)).empty();
}

}  // namespace

// ------------------------------------------------------------ campaign --

std::string fuzz_result::summary_json() const {
  std::ostringstream os;
  os << "{\n  \"format\": \"hades-fuzz v1\",\n"
     << "  \"campaign_seed\": " << campaign_seed << ",\n"
     << "  \"cases\": " << cases_run << ",\n"
     << "  \"corpus\": " << corpus_size << ",\n"
     << "  \"coverage_bits\": " << coverage.popcount() << ",\n"
     << "  \"failures\": " << failing.size() << ",\n"
     << "  \"signatures\": [";
  for (std::size_t i = 0; i < failure_signatures.size(); ++i)
    os << (i == 0 ? "\n    \"" : ",\n    \"")
       << jmin::escape(failure_signatures[i]) << "\"";
  os << (failure_signatures.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

fuzz_result run_fuzz(const fuzz_options& opt) {
  fuzz_result res;
  res.campaign_seed = opt.campaign_seed;
  std::vector<fuzz_case> corpus;

  for (std::uint64_t i = 0; i < opt.cases; ++i) {
    rng decide(mix64(opt.campaign_seed ^ 0x9E37'79B9'7F4A'7C15ull, i));
    fuzz_case c;
    if (i == 0) {
      // The curated anchor heads the corpus: a known-rich timeline
      // (overlapping crash windows, recoveries, a sticky SAFE verdict)
      // that gives the mutator structure to perturb from case one.
      c.case_seed = decide.next_u64();
      c.spec = find_scenario("replication_failover_rolling_crashes");
    } else if (!corpus.empty() && decide.chance(0.5)) {
      c = corpus[static_cast<std::size_t>(decide.uniform_int(
          0, static_cast<std::int64_t>(corpus.size()) - 1))];
      c.spec.name = "fuzz_" + std::to_string(opt.campaign_seed) + "_" +
                    std::to_string(i);
      c.spec.p.name = c.spec.name;
      const std::int64_t muts = decide.uniform_int(1, 2);
      bool ok = true;
      for (std::int64_t m = 0; ok && m < muts; ++m) ok = mutate(c, decide);
      if (!ok) c = generate_case(opt.campaign_seed, i);
    } else {
      c = generate_case(opt.campaign_seed, i);
    }

    const matrix_verdict v = run_matrix(c, opt.jobs);
    const std::size_t fresh = res.coverage.merge(v.coverage);
    if (fresh > 0) corpus.push_back(c);
    if (!v.passed) {
      if (opt.verbose)
        std::printf("fuzz[%03llu] %-28s FAIL %s — shrinking\n",
                    static_cast<unsigned long long>(i), c.spec.name.c_str(),
                    v.failure_signature.c_str());
      res.failing.push_back(c);
      res.failure_signatures.push_back(v.failure_signature);
      res.shrunken.push_back(
          shrink_case(c, v.failure_signature, opt.jobs, opt.verbose));
    } else if (opt.verbose) {
      std::printf("fuzz[%03llu] %-28s pass  actions=%zu  coverage +%zu = %zu\n",
                  static_cast<unsigned long long>(i), c.spec.name.c_str(),
                  c.spec.p.actions.size(), fresh, res.coverage.popcount());
    }
  }
  res.cases_run = opt.cases;
  res.corpus_size = corpus.size();

  if (!opt.out_dir.empty()) {
    const std::filesystem::path dir(opt.out_dir);
    std::filesystem::create_directories(dir);
    { std::ofstream f(dir / "coverage.json"); f << res.coverage.to_json(); }
    { std::ofstream f(dir / "summary.json"); f << res.summary_json(); }
    for (std::size_t i = 0; i < res.failing.size(); ++i) {
      std::ostringstream base;
      base << "failing_" << i;
      { std::ofstream f(dir / (base.str() + ".json"));
        f << fuzz_case_to_json(res.failing[i]); }
      { std::ofstream f(dir / (base.str() + "_shrunk.json"));
        f << fuzz_case_to_json(res.shrunken[i]); }
    }
  }
  return res;
}

}  // namespace hades::scenario
