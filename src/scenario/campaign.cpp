#include "scenario/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/system.hpp"
#include "sched/edf.hpp"
#include "services/clock_sync.hpp"

namespace hades::scenario {

using namespace hades::literals;

namespace {

// ------------------------------------------------------------ checksum --

/// FNV-1a, fed field-by-field. Every input is either per-node state (whose
/// internal order is deterministic) or a list sorted on a deterministic key
/// before hashing, so the digest is identical across runtime backends.
class digest {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFF;
      h_ *= 0x100000001B3ull;
    }
  }
  void mix(time_point t) { mix(static_cast<std::uint64_t>(t.nanoseconds())); }
  void mix(duration d) { mix(static_cast<std::uint64_t>(d.count())); }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ull;
};

// ------------------------------------------------------------- workload --

/// Per-node application traffic: a node-anchored periodic broadcast (all
/// of a node's sends must execute on the shard owning the node — the
/// determinism rule of DESIGN.md, "Scenario layer"). Periods are
/// coprime-ish per node so the traffic pattern exercises interleavings.
struct bcast_driver {
  core::system* sys = nullptr;
  svc::reliable_broadcast* bcast = nullptr;
  std::vector<std::vector<time_point>>* sent_at = nullptr;
  time_point stop;

  void arm(node_id n, time_point first, duration period) {
    sys->engine().periodic_at_node(
        n, first, period,
        [this, n] {
          if (!sys->crashed(n)) {
            (*sent_at)[n].push_back(sys->now());
            bcast->broadcast(n, static_cast<int>((*sent_at)[n].size()));
          }
        },
        stop);
  }
};

void sort_suspicions(std::vector<observation::suspicion>& v) {
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    return std::tuple(a.at, a.observer, a.subject) <
           std::tuple(b.at, b.observer, b.subject);
  });
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------ run_cell --

cell_result run_cell(const scenario_spec& spec, std::uint64_t seed,
                     std::size_t shards, std::size_t workers) {
  core::system::config cfg;
  cfg.costs = core::cost_model::zero();
  cfg.kernel_background = false;
  cfg.net.delta_min = 20_us;
  cfg.net.delta_max = 60_us;
  cfg.net.per_byte = 0_ns;
  cfg.seed = seed;
  cfg.tracing = false;
  cfg.shards = shards > 1 ? shards : 0;
  // Worker threads are a sharded-backend dimension; every service and sink
  // below is shard-confined (DESIGN.md, "Shard confinement"), so any worker
  // count must reproduce the serial checksum bit-for-bit — the gate
  // run_campaign enforces.
  cfg.workers = cfg.shards > 0 ? workers : 0;
  core::system sys(spec.nodes, cfg);

  svc::fault_detector fd(sys, spec.fd);
  svc::reliable_broadcast bcast(sys, spec.bcast);
  // Tree diffusion re-parents around suspected relays; harmless no-op for
  // flood cells. fd outlives bcast (declared first), so the capture is safe.
  bcast.set_suspicion_oracle(
      [&fd](node_id o, node_id s) { return fd.suspects(o, s); });
  svc::mode_manager modes(sys, spec.thresholds);
  std::unique_ptr<svc::clock_sync_service> sync;
  if (spec.with_clock_sync) {
    svc::clock_sync_service::params sp;
    sp.resync_period = 100_ms;
    sp.collect_window = 2_ms;
    sp.max_faulty = spec.clock_sync_max_faulty;
    sp.cluster_size = spec.clock_sync_cluster;
    sync = std::make_unique<svc::clock_sync_service>(sys, sp);
  }

  cell_result cell;
  cell.scenario = spec.name;
  cell.seed = seed;
  cell.shards = shards;
  cell.workers = cfg.workers;
  observation& obs = cell.obs;
  obs.nodes = spec.nodes;
  obs.horizon = time_point::at(spec.horizon);
  // The detector knows its own worst case for whichever topology the spec
  // configured (flat or hierarchical); 1ms of checker margin on top.
  obs.detect_bound = fd.detection_bound() + 1_ms;
  obs.recover_bound = fd.recovery_bound() + 1_ms;
  obs.delivery_bound = bcast.delivery_bound(64) + 1_ms;
  obs.skew_bound = spec.skew_bound;

  // Suspicion callbacks fire on the observer's shard: collect into
  // per-observer sinks (no shared vector under worker threads) and merge
  // after the run — the (at, observer, subject) sort makes the merged
  // order worker-count independent. Mode switches all occur on the
  // manager's home shard, so one vector is safe.
  std::vector<std::vector<observation::suspicion>> susp_by_observer(
      spec.nodes);
  std::vector<std::vector<observation::suspicion>> recov_by_observer(
      spec.nodes);
  fd.on_suspect([&susp_by_observer](node_id o, node_id s, time_point at) {
    susp_by_observer[o].push_back({o, s, at});
  });
  fd.on_recover([&recov_by_observer](node_id o, node_id s, time_point at) {
    recov_by_observer[o].push_back({o, s, at});
  });
  modes.on_switch([&obs](svc::op_mode from, svc::op_mode to, time_point at) {
    obs.mode_switches.push_back({from, to, at});
  });

  if (spec.with_task_load) {
    core::task_builder overload("overload");
    overload.deadline(5_ms).law(
        core::arrival_law::periodic(20_ms, 600_ms + 171_us));
    overload.add_code_eu("burn", 0, 9_ms);
    sys.register_task(overload.build());
    sys.attach_policy(0, std::make_shared<sched::edf_policy>());
  }
  if (spec.spanning_task_load) {
    // Shard-spanning load (worker-mode completeness gate): a graph whose
    // EUs alternate between node 0 and the far node — registration sends
    // creation tokens to the remote home, the precedences cross shards in
    // both directions, and the far EU sets a condition that a watcher on a
    // middle node waits on (cond_set -> authority -> cond_update wakeup).
    // Infinite deadlines keep these out of the overload's miss accounting.
    const auto far = static_cast<node_id>(spec.nodes - 1);
    const auto mid = static_cast<node_id>(spec.nodes / 2);
    core::task_builder span("span");
    span.law(core::arrival_law::periodic(15_ms, 300_ms + 137_us));
    const auto a = span.add_code_eu("a", 0, 150_us);
    core::code_eu far_eu;
    far_eu.name = "b";
    far_eu.processor = far;
    far_eu.wcet = 150_us;
    far_eu.sets = {1};
    const auto b = span.add_code_eu(std::move(far_eu));
    const auto c = span.add_code_eu("c", 0, 150_us);
    span.precede(a, b, 64).precede(b, c, 64);
    sys.register_task(span.build());

    core::task_builder watch("watch");
    watch.law(core::arrival_law::periodic(15_ms, 300_ms + 251_us));
    core::code_eu w_eu;
    w_eu.name = "w";
    w_eu.processor = mid;
    w_eu.wcet = 100_us;
    w_eu.waits_all = {1};
    w_eu.clears = {1};
    watch.add_code_eu(std::move(w_eu));
    sys.register_task(watch.build());
  }

  obs.sent_at.assign(spec.nodes, {});
  bcast_driver driver{&sys, &bcast, &obs.sent_at,
                      obs.horizon - obs.delivery_bound - 5_ms};
  // bcast_nodes == 0: the standing 8-node family, every node an origin (the
  // exact historical dates — checksums depend on them). Otherwise only
  // `bcast_nodes` origins, spread evenly so different clusters and tree
  // positions send.
  const std::size_t senders =
      spec.bcast_nodes == 0 ? spec.nodes
                            : std::min(spec.bcast_nodes, spec.nodes);
  for (std::size_t i = 0; i < senders; ++i) {
    const node_id n = spec.bcast_nodes == 0
                          ? static_cast<node_id>(i)
                          : static_cast<node_id>(i * spec.nodes / senders);
    driver.arm(n,
               time_point::at(20_ms + 413_us * static_cast<std::int64_t>(i) +
                              7_us),
               4700_us + 613_us * static_cast<std::int64_t>(i));
  }

  fd.start();
  if (sync) sync->start();
  apply(sys, spec.p);
  sys.run_until(obs.horizon);

  // ------------------------------------------------- collect observation --
  for (auto& per_obs : susp_by_observer)
    obs.suspicions.insert(obs.suspicions.end(), per_obs.begin(),
                          per_obs.end());
  for (auto& per_obs : recov_by_observer)
    obs.recoveries.insert(obs.recoveries.end(), per_obs.begin(),
                          per_obs.end());
  sort_suspicions(obs.suspicions);
  sort_suspicions(obs.recoveries);
  for (node_id n = 0; n < spec.nodes; ++n)
    obs.delivery_logs.push_back(bcast.delivery_log(n));
  obs.order_faults = bcast.order_faults();
  obs.final_mode = modes.mode();
  obs.deadline_misses =
      sys.mon().count(core::monitor_event_kind::deadline_miss);
  for (const auto& e : sys.mon().events())
    if (e.kind == core::monitor_event_kind::deadline_miss ||
        e.kind == core::monitor_event_kind::node_crash ||
        e.kind == core::monitor_event_kind::node_recover ||
        e.kind == core::monitor_event_kind::node_suspected ||
        e.kind == core::monitor_event_kind::node_unsuspected)
      obs.trigger_events.push_back(e.at);
  std::sort(obs.trigger_events.begin(), obs.trigger_events.end());
  if (sync) {
    obs.skew_checked = true;
    std::vector<node_id> correct;
    for (node_id n = 0; n < spec.nodes; ++n)
      if (spec.p.correct_throughout(n) && !spec.p.clock_faulty(n))
        correct.push_back(n);
    obs.max_skew = sync->max_skew(correct);
  }

  // ----------------------------------------------------------- checkers --
  for (auto& c : check_detector(spec.p, obs)) cell.checks.push_back(c);
  for (auto& c : check_broadcast(spec.p, obs, spec.expect_order_faults))
    cell.checks.push_back(c);
  for (auto& c :
       check_modes(spec.p, obs, spec.modes.final_mode, spec.modes.switch_latency))
    cell.checks.push_back(c);
  for (auto& c : check_clocks(obs)) cell.checks.push_back(c);
  cell.passed = std::all_of(cell.checks.begin(), cell.checks.end(),
                            [](const check_result& c) { return c.passed; });

  // ----------------------------------------------------------- checksum --
  digest d;
  for (node_id n = 0; n < spec.nodes; ++n) {
    d.mix(obs.delivery_logs[n].size());
    for (const auto& [origin, s] : obs.delivery_logs[n]) {
      d.mix(origin);
      d.mix(s);
    }
    d.mix(obs.sent_at[n].size());
    for (time_point t : obs.sent_at[n]) d.mix(t);
    for (node_id m = 0; m < spec.nodes; ++m)
      d.mix(static_cast<std::uint64_t>(fd.suspects(n, m)));
    d.mix(sys.clock(n).read());
  }
  for (const auto& s : obs.suspicions) {
    d.mix(s.observer);
    d.mix(s.subject);
    d.mix(s.at);
  }
  for (const auto& r : obs.recoveries) {
    d.mix(r.observer);
    d.mix(r.subject);
    d.mix(r.at);
  }
  for (const auto& sw : obs.mode_switches) {
    d.mix(static_cast<std::uint64_t>(sw.to));
    d.mix(sw.at);
  }
  d.mix(static_cast<std::uint64_t>(obs.final_mode));
  d.mix(obs.deadline_misses);
  d.mix(obs.order_faults);
  d.mix(bcast.delivered());
  d.mix(bcast.relays());
  d.mix(fd.heartbeats_sent());
  d.mix(fd.recoveries_observed());
  // Per-task stats and the mode manager's capture digest fold the whole
  // task pipeline (creation/activation tokens, condition wakeups, capture
  // request/reply) into the determinism gate.
  for (const task_id t : sys.tasks()) {
    const auto& st = sys.stats_for(t);
    d.mix(t);
    d.mix(st.activations);
    d.mix(st.completions);
    d.mix(st.rejections);
    d.mix(st.response_times.count());
  }
  d.mix(modes.capture_digest());
  const auto& ns = sys.network().stats();
  d.mix(ns.sent);
  d.mix(ns.delivered);
  d.mix(ns.dropped);
  d.mix(ns.late);
  if (obs.skew_checked) d.mix(obs.max_skew);
  cell.checksum = d.value();
  cell.events = sys.engine().executed();
  return cell;
}

// ----------------------------------------------------------------- JSON --

std::string render_verdict_json(const cell_result& c) {
  std::ostringstream os;
  os << "{\n"
     << "  \"scenario\": \"" << json_escape(c.scenario) << "\",\n"
     << "  \"seed\": " << c.seed << ",\n"
     << "  \"shards\": " << c.shards << ",\n"
     << "  \"workers\": " << c.workers << ",\n"
     << "  \"horizon_ns\": " << c.obs.horizon.nanoseconds() << ",\n"
     << "  \"events\": " << c.events << ",\n"
     << "  \"checksum\": \"0x" << std::hex << c.checksum << std::dec
     << "\",\n"
     << "  \"passed\": " << (c.passed ? "true" : "false") << ",\n"
     << "  \"stats\": {\n"
     << "    \"suspicions\": " << c.obs.suspicions.size() << ",\n"
     << "    \"recoveries\": " << c.obs.recoveries.size() << ",\n"
     << "    \"mode_switches\": " << c.obs.mode_switches.size() << ",\n"
     << "    \"deadline_misses\": " << c.obs.deadline_misses << ",\n"
     << "    \"order_faults\": " << c.obs.order_faults << ",\n"
     << "    \"final_mode\": \"" << to_string(c.obs.final_mode) << "\"";
  if (c.obs.skew_checked)
    os << ",\n    \"max_skew_ns\": " << c.obs.max_skew.count();
  os << "\n  },\n  \"checks\": [\n";
  for (std::size_t i = 0; i < c.checks.size(); ++i) {
    const check_result& ck = c.checks[i];
    os << "    {\"name\": \"" << json_escape(ck.name) << "\", \"passed\": "
       << (ck.passed ? "true" : "false");
    if (!ck.detail.empty())
      os << ", \"detail\": \"" << json_escape(ck.detail) << "\"";
    os << "}" << (i + 1 < c.checks.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string campaign_result::summary_json() const {
  std::ostringstream os;
  os << "{\n  \"passed\": " << (passed ? "true" : "false") << ",\n"
     << "  \"cells\": " << cells.size() << ",\n  \"failures\": [\n";
  for (std::size_t i = 0; i < failures.size(); ++i)
    os << "    \"" << json_escape(failures[i]) << "\""
       << (i + 1 < failures.size() ? "," : "") << "\n";
  os << "  ]\n}\n";
  return os.str();
}

// ------------------------------------------------------------- campaign --

campaign_result run_campaign(const campaign_options& opt) {
  campaign_result result;
  std::vector<scenario_spec> specs;
  if (opt.scenarios.empty()) {
    specs = all_scenarios();
    if (opt.include_scale)
      for (scenario_spec& s : scale_scenarios()) specs.push_back(std::move(s));
  } else {
    for (const std::string& name : opt.scenarios)
      specs.push_back(find_scenario(name));
  }
  if (opt.nodes > 0)
    for (scenario_spec& s : specs) s.nodes = opt.nodes;

  if (!opt.out_dir.empty())
    std::filesystem::create_directories(opt.out_dir);

  for (const scenario_spec& spec : specs) {
    for (std::uint64_t seed : opt.seeds) {
      std::uint64_t reference_checksum = 0;
      bool have_reference = false;
      for (std::size_t shards : opt.shard_counts) {
        // The single-engine backend has no worker dimension: shards 1
        // contributes exactly one workers=0 cell per seed — even when the
        // caller's worker_counts omits 0, so the cross-backend half of the
        // determinism gate can never be silently skipped.
        const std::vector<std::size_t> workers_list =
            shards <= 1 ? std::vector<std::size_t>{0} : opt.worker_counts;
        for (std::size_t workers : workers_list) {
          cell_result cell = run_cell(spec, seed, shards, workers);
          // The determinism gate is a checker like any other, so a
          // mismatching cell's own verdict JSON reports the failure instead
          // of only the summary.
          check_result sum{"campaign.checksum_match", true, ""};
          if (!have_reference) {
            reference_checksum = cell.checksum;
            have_reference = true;
            sum.detail = "reference cell";
          } else if (cell.checksum != reference_checksum) {
            sum.passed = false;
            std::ostringstream os;
            os << "checksum 0x" << std::hex << cell.checksum << " at "
               << std::dec << shards << " shards / " << workers
               << " workers != reference 0x" << std::hex
               << reference_checksum;
            sum.detail = os.str();
          }
          cell.checks.push_back(std::move(sum));
          cell.passed = cell.passed && cell.checks.back().passed;
          for (const check_result& c : cell.checks)
            if (!c.passed)
              result.failures.push_back(
                  spec.name + "/seed" + std::to_string(seed) + "/shards" +
                  std::to_string(shards) + "/workers" +
                  std::to_string(workers) + ": " + c.name + " — " + c.detail);
          if (opt.verbose)
            std::printf(
                "%-22s seed=%llu shards=%zu workers=%zu  %s  "
                "checksum=0x%016llx  events=%llu\n",
                spec.name.c_str(), static_cast<unsigned long long>(seed),
                shards, workers, cell.passed ? "PASS" : "FAIL",
                static_cast<unsigned long long>(cell.checksum),
                static_cast<unsigned long long>(cell.events));
          if (!opt.out_dir.empty()) {
            std::ostringstream name;
            name << spec.name << "_seed" << seed << "_shards" << shards
                 << "_workers" << workers << ".json";
            std::ofstream f(std::filesystem::path(opt.out_dir) / name.str());
            f << render_verdict_json(cell);
          }
          result.cells.push_back(std::move(cell));
        }
      }
    }
  }
  // An empty sweep must not read as a green gate.
  if (result.cells.empty())
    result.failures.push_back("campaign ran zero cells (empty scenario/seed/"
                              "shard selection)");
  result.passed = result.failures.empty();
  if (!opt.out_dir.empty()) {
    std::ofstream f(std::filesystem::path(opt.out_dir) / "summary.json");
    f << result.summary_json();
  }
  return result;
}

}  // namespace hades::scenario
