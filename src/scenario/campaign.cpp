#include "scenario/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/system.hpp"
#include "scenario/deployment.hpp"

namespace hades::scenario {

using namespace hades::literals;

namespace {

// ------------------------------------------------------------ checksum --

/// FNV-1a, fed field-by-field. Every input is either per-node state (whose
/// internal order is deterministic) or a list sorted on a deterministic key
/// before hashing, so the digest is identical across runtime backends.
class digest {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFF;
      h_ *= 0x100000001B3ull;
    }
  }
  void mix(time_point t) { mix(static_cast<std::uint64_t>(t.nanoseconds())); }
  void mix(duration d) { mix(static_cast<std::uint64_t>(d.count())); }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ull;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

// --------------------------------------------------------- parallel_for --

void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) {
    const std::size_t hw = std::thread::hardware_concurrency();
    jobs = std::clamp<std::size_t>(hw / 2, 1, 4);
  }
  jobs = std::min(jobs, std::max<std::size_t>(n, 1));
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // The factory registry's lazy init is the one shared mutable touch
  // point; force it before the pool spawns.
  (void)hades::runtime::registered_backends();
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j)
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  for (std::thread& t : pool) t.join();
}

// ------------------------------------------------------------ run_cell --

cell_result run_cell(const scenario_spec& spec, std::uint64_t seed,
                     std::size_t shards, std::size_t workers) {
  // The standing stack (system + services + workload + sinks) lives in
  // scenario::deployment, shared with the realtime multi-process harness;
  // the cell adds the sweep bookkeeping and the determinism checksum.
  deployment_options dopt;
  dopt.seed = seed;
  dopt.shards = shards;
  dopt.workers = workers;
  deployment d(spec, dopt);
  d.start();
  d.run();

  cell_result cell;
  cell.scenario = spec.name;
  cell.seed = seed;
  cell.shards = shards;
  cell.workers = shards > 1 ? workers : 0;
  cell.obs = d.collect();
  const observation& obs = cell.obs;
  cell.checks = d.grade(obs);
  cell.passed = std::all_of(cell.checks.begin(), cell.checks.end(),
                            [](const check_result& c) { return c.passed; });

  core::system& sys = d.sys();
  svc::fault_detector& fd = d.fd();
  svc::reliable_broadcast& bcast = d.bcast();
  svc::mode_manager& modes = d.modes();

  // ----------------------------------------------------------- checksum --
  digest dg;
  for (node_id n = 0; n < spec.nodes; ++n) {
    dg.mix(obs.delivery_logs[n].size());
    for (const auto& [origin, s] : obs.delivery_logs[n]) {
      dg.mix(origin);
      dg.mix(s);
    }
    dg.mix(obs.sent_at[n].size());
    for (time_point t : obs.sent_at[n]) dg.mix(t);
    for (node_id m = 0; m < spec.nodes; ++m)
      dg.mix(static_cast<std::uint64_t>(fd.suspects(n, m)));
    dg.mix(sys.clock(n).read());
  }
  for (const auto& s : obs.suspicions) {
    dg.mix(s.observer);
    dg.mix(s.subject);
    dg.mix(s.at);
  }
  for (const auto& r : obs.recoveries) {
    dg.mix(r.observer);
    dg.mix(r.subject);
    dg.mix(r.at);
  }
  for (const auto& sw : obs.mode_switches) {
    dg.mix(static_cast<std::uint64_t>(sw.to));
    dg.mix(sw.at);
  }
  dg.mix(static_cast<std::uint64_t>(obs.final_mode));
  dg.mix(obs.deadline_misses);
  dg.mix(obs.order_faults);
  dg.mix(bcast.delivered());
  dg.mix(bcast.relays());
  dg.mix(fd.heartbeats_sent());
  dg.mix(fd.recoveries_observed());
  // Per-task stats and the mode manager's capture digest fold the whole
  // task pipeline (creation/activation tokens, condition wakeups, capture
  // request/reply) into the determinism gate.
  for (const task_id t : sys.tasks()) {
    const auto& st = sys.stats_for(t);
    dg.mix(t);
    dg.mix(st.activations);
    dg.mix(st.completions);
    dg.mix(st.rejections);
    dg.mix(st.response_times.count());
  }
  dg.mix(modes.capture_digest());
  const auto& ns = sys.network().stats();
  dg.mix(ns.sent);
  dg.mix(ns.delivered);
  dg.mix(ns.dropped);
  dg.mix(ns.late);
  if (obs.skew_checked) dg.mix(obs.max_skew);
  if (obs.traffic_checked) {
    // The traffic fold covers the whole edge: per-gateway decision-stream
    // digests (every admit/reject/shed verdict with its victim count),
    // merged latency quantiles, and the counter totals.
    dg.mix(obs.traffic_offered);
    dg.mix(obs.traffic_admitted);
    dg.mix(obs.traffic_rejected);
    dg.mix(obs.traffic_shed);
    dg.mix(obs.traffic_completed);
    dg.mix(obs.traffic_missed);
    dg.mix(obs.traffic_outstanding);
    dg.mix(obs.traffic_renegotiations);
    dg.mix(obs.traffic_revalidation_failures);
    for (std::uint64_t g : obs.gateway_digests) dg.mix(g);
    dg.mix(static_cast<std::uint64_t>(obs.latency_p50));
    dg.mix(static_cast<std::uint64_t>(obs.latency_p99));
    dg.mix(static_cast<std::uint64_t>(obs.latency_p999));
  }
  cell.checksum = dg.value();
  cell.events = sys.engine().executed();
  return cell;
}

// ----------------------------------------------------------------- JSON --

std::string render_verdict_json(const cell_result& c) {
  std::ostringstream os;
  os << "{\n"
     << "  \"scenario\": \"" << json_escape(c.scenario) << "\",\n"
     << "  \"seed\": " << c.seed << ",\n"
     << "  \"shards\": " << c.shards << ",\n"
     << "  \"workers\": " << c.workers << ",\n"
     << "  \"horizon_ns\": " << c.obs.horizon.nanoseconds() << ",\n"
     << "  \"events\": " << c.events << ",\n"
     << "  \"checksum\": \"0x" << std::hex << c.checksum << std::dec
     << "\",\n"
     << "  \"passed\": " << (c.passed ? "true" : "false") << ",\n"
     << "  \"stats\": {\n"
     << "    \"suspicions\": " << c.obs.suspicions.size() << ",\n"
     << "    \"recoveries\": " << c.obs.recoveries.size() << ",\n"
     << "    \"mode_switches\": " << c.obs.mode_switches.size() << ",\n"
     << "    \"deadline_misses\": " << c.obs.deadline_misses << ",\n"
     << "    \"order_faults\": " << c.obs.order_faults << ",\n"
     << "    \"final_mode\": \"" << to_string(c.obs.final_mode) << "\"";
  if (c.obs.skew_checked)
    os << ",\n    \"max_skew_ns\": " << c.obs.max_skew.count();
  if (c.obs.traffic_checked)
    os << ",\n    \"traffic\": {"
       << "\"offered\": " << c.obs.traffic_offered
       << ", \"admitted\": " << c.obs.traffic_admitted
       << ", \"rejected\": " << c.obs.traffic_rejected
       << ", \"shed\": " << c.obs.traffic_shed
       << ", \"completed\": " << c.obs.traffic_completed
       << ", \"missed\": " << c.obs.traffic_missed
       << ", \"outstanding\": " << c.obs.traffic_outstanding
       << ", \"renegotiations\": " << c.obs.traffic_renegotiations
       << ", \"latency_p50_ns\": " << c.obs.latency_p50
       << ", \"latency_p99_ns\": " << c.obs.latency_p99
       << ", \"latency_p999_ns\": " << c.obs.latency_p999 << "}";
  os << "\n  },\n  \"checks\": [\n";
  for (std::size_t i = 0; i < c.checks.size(); ++i) {
    const check_result& ck = c.checks[i];
    os << "    {\"name\": \"" << json_escape(ck.name) << "\", \"passed\": "
       << (ck.passed ? "true" : "false");
    if (!ck.detail.empty())
      os << ", \"detail\": \"" << json_escape(ck.detail) << "\"";
    os << "}" << (i + 1 < c.checks.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string campaign_result::summary_json() const {
  std::ostringstream os;
  os << "{\n  \"passed\": " << (passed ? "true" : "false") << ",\n"
     << "  \"cells\": " << cells.size() << ",\n  \"failures\": [\n";
  for (std::size_t i = 0; i < failures.size(); ++i)
    os << "    \"" << json_escape(failures[i]) << "\""
       << (i + 1 < failures.size() ? "," : "") << "\n";
  os << "  ]\n}\n";
  return os.str();
}

// ------------------------------------------------------------- campaign --

campaign_result run_campaign(const campaign_options& opt) {
  campaign_result result;
  std::vector<scenario_spec> specs;
  if (opt.scenarios.empty()) {
    specs = all_scenarios();
    if (opt.include_scale)
      for (scenario_spec& s : scale_scenarios()) specs.push_back(std::move(s));
  } else {
    for (const std::string& name : opt.scenarios)
      specs.push_back(find_scenario(name));
  }
  if (opt.nodes > 0)
    for (scenario_spec& s : specs) s.nodes = opt.nodes;

  if (!opt.out_dir.empty())
    std::filesystem::create_directories(opt.out_dir);

  // Enumerate the sweep up front: cells are independent deployments, so
  // they run on a bounded thread pool while every ordered effect (checksum
  // reference selection, failure list, progress lines, JSON files) happens
  // in a serial post-pass over the enumeration order — byte-identical
  // output to the historical serial sweep.
  struct cell_spec {
    const scenario_spec* spec;
    std::uint64_t seed;
    std::size_t shards;
    std::size_t workers;
    bool group_head;  // first cell of its (scenario, seed) checksum group
  };
  std::vector<cell_spec> plan;
  for (const scenario_spec& spec : specs) {
    for (std::uint64_t seed : opt.seeds) {
      bool head = true;
      for (std::size_t shards : opt.shard_counts) {
        // The single-engine backend has no worker dimension: shards 1
        // contributes exactly one workers=0 cell per seed — even when the
        // caller's worker_counts omits 0, so the cross-backend half of the
        // determinism gate can never be silently skipped.
        const std::vector<std::size_t> workers_list =
            shards <= 1 ? std::vector<std::size_t>{0} : opt.worker_counts;
        for (std::size_t workers : workers_list) {
          plan.push_back({&spec, seed, shards, workers, head});
          head = false;
        }
      }
    }
  }

  std::vector<cell_result> cells(plan.size());
  parallel_for(plan.size(), opt.jobs, [&](std::size_t i) {
    cells[i] = run_cell(*plan[i].spec, plan[i].seed, plan[i].shards,
                        plan[i].workers);
  });

  std::uint64_t reference_checksum = 0;
  const scenario_spec* diverged_spec = nullptr;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const cell_spec& cs = plan[i];
    cell_result cell = std::move(cells[i]);
    // The determinism gate is a checker like any other, so a mismatching
    // cell's own verdict JSON reports the failure instead of only the
    // summary.
    check_result sum{"campaign.checksum_match", true, ""};
    if (cs.group_head) {
      reference_checksum = cell.checksum;
      sum.detail = "reference cell";
    } else if (cell.checksum != reference_checksum) {
      sum.passed = false;
      std::ostringstream os;
      os << "checksum 0x" << std::hex << cell.checksum << " at " << std::dec
         << cs.shards << " shards / " << cs.workers
         << " workers != reference 0x" << std::hex << reference_checksum;
      sum.detail = os.str();
      // Surface the offending plan once per diverged scenario so the
      // caller can print/replay it without the registry.
      if (diverged_spec != cs.spec) {
        diverged_spec = cs.spec;
        result.diverged_plans.push_back(plan_to_json(cs.spec->p));
      }
    }
    cell.checks.push_back(std::move(sum));
    cell.passed = cell.passed && cell.checks.back().passed;
    for (const check_result& c : cell.checks)
      if (!c.passed)
        result.failures.push_back(
            cs.spec->name + "/seed" + std::to_string(cs.seed) + "/shards" +
            std::to_string(cs.shards) + "/workers" +
            std::to_string(cs.workers) + ": " + c.name + " — " + c.detail);
    if (opt.verbose)
      std::printf(
          "%-22s seed=%llu shards=%zu workers=%zu  %s  "
          "checksum=0x%016llx  events=%llu\n",
          cs.spec->name.c_str(), static_cast<unsigned long long>(cs.seed),
          cs.shards, cs.workers, cell.passed ? "PASS" : "FAIL",
          static_cast<unsigned long long>(cell.checksum),
          static_cast<unsigned long long>(cell.events));
    if (!opt.out_dir.empty()) {
      std::ostringstream name;
      name << cs.spec->name << "_seed" << cs.seed << "_shards" << cs.shards
           << "_workers" << cs.workers << ".json";
      std::ofstream f(std::filesystem::path(opt.out_dir) / name.str());
      f << render_verdict_json(cell);
    }
    result.cells.push_back(std::move(cell));
  }
  // An empty sweep must not read as a green gate.
  if (result.cells.empty())
    result.failures.push_back("campaign ran zero cells (empty scenario/seed/"
                              "shard selection)");
  result.passed = result.failures.empty();
  if (!opt.out_dir.empty()) {
    std::ofstream f(std::filesystem::path(opt.out_dir) / "summary.json");
    f << result.summary_json();
  }
  return result;
}

}  // namespace hades::scenario
