#include "scenario/scenarios.hpp"

#include "services/channels.hpp"
#include "util/error.hpp"

namespace hades::scenario {

using namespace hades::literals;

namespace {

// Action dates deliberately sit at odd sub-millisecond offsets: never on a
// service tick (multiples of the 10ms heartbeat / 100ms resync periods) and
// never within a sharded-round lookahead (the 20us minimum link delay) of
// one, so an action and an unrelated same-date event can never race for
// their relative order across shard counts.

scenario_spec base(std::string name, std::string description) {
  scenario_spec s;
  s.name = std::move(name);
  s.description = std::move(description);
  s.p.name = s.name;
  s.bcast.total_order = true;
  s.bcast.stability_delay = 2_ms;
  // No deadline workload in most scenarios: park the miss thresholds high
  // and let crashes drive the mode logic.
  s.thresholds.misses_for_degraded = 1000;
  s.thresholds.misses_for_safe = 1000;
  s.thresholds.crashes_for_degraded = 1;
  s.thresholds.crashes_for_safe = 3;
  return s;
}

}  // namespace

std::vector<scenario_spec> all_scenarios() {
  std::vector<scenario_spec> out;

  {
    scenario_spec s = base("clean", "fault-free baseline: every checker must "
                                    "hold with nothing injected");
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = base("single_crash",
                           "node 5 crashes mid-run; every survivor must "
                           "suspect it within the bound and the system "
                           "degrades");
    s.p.crash(time_point::at(500_ms + 137_us), 5);
    s.modes.final_mode = svc::op_mode::degraded;
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = base("crash_recover",
                           "node 2 crashes and later recovers; suspicion "
                           "must appear within the detection bound and clear "
                           "within one heartbeat of recovery");
    s.p.crash(time_point::at(400_ms + 137_us), 2)
        .recover(time_point::at(900_ms + 251_us), 2);
    s.modes.final_mode = svc::op_mode::degraded;  // degraded is sticky
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = base("rolling_crashes",
                           "three staggered crashes; each is detected "
                           "individually and the third sends the system to "
                           "SAFE");
    s.p.crash(time_point::at(300_ms + 137_us), 1)
        .crash(time_point::at(650_ms + 173_us), 4)
        .crash(time_point::at(1000_ms + 211_us), 6);
    s.modes.final_mode = svc::op_mode::safe;
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = base("partition_heal",
                           "the LAN splits 4|4 and heals; each side suspects "
                           "the other within the bound and un-suspects after "
                           "the heal; agreement holds for quiet-time traffic");
    s.p.split(time_point::at(400_ms + 137_us), {{0, 1, 2, 3}, {4, 5, 6, 7}})
        .heal(time_point::at(900_ms + 157_us));
    // A partition is not a crash: with the suspicion-driven policy disabled
    // (suspicions_for_degraded = 0) the mode manager counts nothing and the
    // system stays NORMAL — partition_degrades_mode enables the policy.
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = base("partition_degrades_mode",
                           "the same 4|4 split, but the suspicion-driven "
                           "mode policy is armed: once two distinct peers "
                           "are suspected the system must degrade, even "
                           "though nothing crashed");
    s.p.split(time_point::at(450_ms + 139_us), {{0, 1, 2, 3}, {4, 5, 6, 7}})
        .heal(time_point::at(950_ms + 163_us));
    s.thresholds.suspicions_for_degraded = 2;
    s.modes.final_mode = svc::op_mode::degraded;  // degraded is sticky
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = base("asymmetric_partition",
                           "every link from the high group {4..7} towards "
                           "the low group {0..3} dies one-directionally: the "
                           "low group must suspect the high group within the "
                           "bound while the high group, which still hears "
                           "everyone, stays silent");
    const time_point down_at = time_point::at(400_ms + 141_us);
    const time_point up_at = time_point::at(900_ms + 167_us);
    for (node_id src = 4; src < 8; ++src)
      for (node_id dst = 0; dst < 4; ++dst)
        s.p.link_down(down_at, src, dst).link_up(up_at, src, dst);
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = base("omission_storm",
                           "scripted bursts drop exactly omission-degree "
                           "consecutive heartbeats per link at a timeout one "
                           "sliver above the perfect bound; the detector "
                           "must stay silent and diffusion must mask data "
                           "bursts");
    // Boundary: period*(k+1) + delta_max = 30.06ms for k=2; 31ms is just
    // above it, so exactly-2-heartbeat bursts must never suspect.
    s.fd.timeout = 31_ms;
    s.p.omission_burst(time_point::at(350_ms + 137_us), 1, 0, 2,
                       svc::ch_heartbeat)
        .omission_burst(time_point::at(350_ms + 139_us), 3, 2, 2,
                        svc::ch_heartbeat)
        .omission_burst(time_point::at(700_ms + 149_us), 6, 7, 2,
                        svc::ch_heartbeat)
        .omission_burst(time_point::at(700_ms + 151_us), 0, 4, 2,
                        svc::ch_heartbeat)
        .omission_burst(time_point::at(1050_ms + 167_us), 5, 3, 2,
                        svc::ch_heartbeat)
        // Data-plane bursts: drop broadcast copies on two links; the flood
        // relays must still deliver everywhere (validity stays strict).
        .omission_burst(time_point::at(500_ms + 171_us), 2, 5, 3,
                        svc::ch_reliable_bcast)
        .omission_burst(time_point::at(800_ms + 181_us), 7, 1, 3,
                        svc::ch_reliable_bcast);
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = base("perf_fault_burst",
                           "a window of performance failures adds 2.5ms to "
                           "30% of frames: the detector's margin absorbs the "
                           "lateness (30.06ms bound + 2.5ms < 35ms timeout), "
                           "but the 2ms Delta hold-back is breached — "
                           "stragglers are delivered immediately and counted");
    s.p.perf_fault(time_point::at(400_ms + 97_us), 0.3, 2500_us)
        .perf_fault(time_point::at(800_ms + 113_us), 0.0, duration::zero());
    s.expect_order_faults = true;
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = base("drifting_clocks",
                           "two crystals drift apart and one logical clock "
                           "steps 1.5ms; clock_sync must hold the correct "
                           "nodes' skew under the bound at the horizon");
    s.with_clock_sync = true;
    s.p.clock_drift(time_point::at(200_ms + 101_us), 1, 350e-6)
        .clock_drift(time_point::at(200_ms + 103_us), 6, -250e-6)
        .clock_step(time_point::at(700_ms + 131_us), 3, 1500_us);
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = base("byzantine_clocks",
                           "two crystals turn Byzantine (one racing fast, "
                           "one frozen slow) while two honest crystals "
                           "drift; clock_sync's f=2 trimmed average must "
                           "mask the liars and hold the six correct clocks "
                           "under the skew bound (n=8 >= 3f+1 readings "
                           "trimmed per round)");
    s.with_clock_sync = true;
    s.clock_sync_max_faulty = 2;
    // Byzantine crystals: node 2 races at 2.2x real time, node 5 crawls at
    // 0.4x with a stale offset — both far outside any honest reading.
    s.p.clock_byzantine(time_point::at(250_ms + 107_us), 2, 2.2,
                        duration::microseconds(900))
        .clock_byzantine(time_point::at(250_ms + 109_us), 5, 0.4,
                         duration::microseconds(-700))
        // Honest drift to give the trimmed average real work.
        .clock_drift(time_point::at(200_ms + 113_us), 1, 120e-6)
        .clock_drift(time_point::at(200_ms + 127_us), 6, -90e-6);
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = base("degraded_overload",
                           "an overloaded EDF task starts missing deadlines "
                           "mid-run; the mode manager must degrade on the "
                           "first miss and reach SAFE on the fourth");
    s.with_task_load = true;
    s.thresholds.misses_for_degraded = 1;
    s.thresholds.misses_for_safe = 4;
    s.thresholds.crashes_for_degraded = 1;
    s.thresholds.crashes_for_safe = 3;
    s.modes.final_mode = svc::op_mode::safe;
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = base("degraded_overload_spanning",
                           "the same EDF overload, plus a shard-spanning "
                           "task graph (EUs alternating node 0 and the last "
                           "node) and a condition-coupled watcher on a "
                           "middle node: creation/activation tokens, "
                           "cross-shard condition wakeups and mode-switch "
                           "state capture must all reproduce the serial "
                           "checksum while the mode manager degrades and "
                           "reaches SAFE");
    s.with_task_load = true;
    s.spanning_task_load = true;
    s.thresholds.misses_for_degraded = 1;
    s.thresholds.misses_for_safe = 4;
    s.thresholds.crashes_for_degraded = 1;
    s.thresholds.crashes_for_safe = 3;
    s.modes.final_mode = svc::op_mode::safe;
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = base(
        "replication_failover_rolling_crashes",
        "a primary/backup failover chain: the primary (node 1) crashes, its "
        "successor (node 2) takes over and crashes, then the next successor "
        "(node 3) — three rolling crashes drive the system to SAFE while "
        "nodes 1 and 2 restart late in the run; every survivor must track "
        "each epoch of the chain through the detector and the Delta-ordered "
        "broadcast keeps the failover announcements totally ordered. Also "
        "the scenario fuzzer's mutation anchor: a known-rich timeline "
        "(overlapping down windows, recoveries, a sticky SAFE verdict) the "
        "mutator perturbs first");
    s.p.crash(time_point::at(380_ms + 137_us), 1)
        .crash(time_point::at(560_ms + 149_us), 2)
        .crash(time_point::at(740_ms + 211_us), 3)
        .recover(time_point::at(980_ms + 173_us), 1)
        .recover(time_point::at(1160_ms + 251_us), 2)
        .recover(time_point::at(1320_ms + 191_us), 3);
    s.modes.final_mode = svc::op_mode::safe;
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = base("edge_overload",
                           "open-loop Poisson traffic at ~2.1x the bookable "
                           "CPU fraction on two gateway nodes: the admission "
                           "controller must reject/shed the excess while "
                           "everything it admits meets its deadline within "
                           "the miss budget");
    s.traffic.gateway_nodes = 2;
    s.traffic.mix = traffic::arrival_mix::poisson;
    s.traffic.rate_per_s = 2500.0;  // ~1.17s of work/s vs 0.6 bookable
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = base("edge_burst_storm",
                           "bursty on/off arrivals (8x rate bursts) while a "
                           "non-gateway node crashes mid-run: the mode "
                           "switch renegotiates every gateway down to the "
                           "degraded CPU fraction, shedding by value "
                           "density, and admitted work still meets the miss "
                           "budget");
    s.traffic.gateway_nodes = 2;
    s.traffic.mix = traffic::arrival_mix::bursty;
    s.traffic.rate_per_s = 900.0;  // x8 bursts peak well past feasibility
    s.p.crash(time_point::at(700_ms + 151_us), 6);
    s.modes.final_mode = svc::op_mode::degraded;
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = base("edge_diurnal_rollover",
                           "a compressed diurnal day (8-segment rate "
                           "profile) cycling twice over the run: admission "
                           "must ride the rate rollovers — including the "
                           "evening peak at 1.5x — with the decision stream "
                           "bit-identical across backends");
    s.traffic.gateway_nodes = 2;
    s.traffic.mix = traffic::arrival_mix::diurnal;
    s.traffic.rate_per_s = 2000.0;  // peak segments overdrive the edge
    out.push_back(std::move(s));
  }

  return out;
}

std::vector<scenario_spec> scale_scenarios() {
  std::vector<scenario_spec> out;

  // Common 1k-node configuration: hierarchical detection and clustered
  // clock sync over 20 clusters of 50, tree diffusion with 4 spread
  // origins. Fault windows are long enough to outlive the hierarchical
  // detection bound (~110ms at these parameters) and disjoint in time, so
  // every (observer, subject) suspicion/recovery pair grades cleanly.
  auto scale_base = [](std::string name, std::string description) {
    scenario_spec s = base(std::move(name), std::move(description));
    s.nodes = 1000;
    s.horizon = 1300_ms;
    s.fd.cluster_size = 50;
    s.bcast.diffusion = svc::reliable_broadcast::diffusion_kind::tree;
    s.bcast_nodes = 4;
    s.with_clock_sync = true;
    s.clock_sync_cluster = 50;
    return s;
  };

  {
    scenario_spec s = scale_base(
        "cluster_crash_1k",
        "1k nodes, 20 clusters of 50: a plain member and later a cluster "
        "aggregator crash and recover; every correct observer must suspect "
        "each within the two-hop hierarchical bound (digest adoption for "
        "foreign observers, implicit succession for the aggregator) and "
        "clear within the recovery bound after the restart");
    s.p.crash(time_point::at(250_ms + 131_us), 137)
        .recover(time_point::at(500_ms + 151_us), 137)
        .crash(time_point::at(600_ms + 137_us), 300)  // aggregator of c6
        .recover(time_point::at(850_ms + 173_us), 300);
    s.modes.final_mode = svc::op_mode::degraded;  // degraded is sticky
    out.push_back(std::move(s));
  }

  {
    scenario_spec s = scale_base(
        "cluster_partition_1k",
        "1k nodes: clusters 18-19 (nodes 900..999) partition away and heal; "
        "both sides must presume the other unreachable via cluster-silence "
        "within the bound, and the first post-heal digest exchange must "
        "clear every cross-side suspicion within the recovery bound");
    std::vector<node_id> low, high;
    for (node_id n = 0; n < 900; ++n) low.push_back(n);
    for (node_id n = 900; n < 1000; ++n) high.push_back(n);
    s.p.split(time_point::at(300_ms + 137_us), {std::move(low), std::move(high)})
        .heal(time_point::at(700_ms + 157_us));
    // A partition is not a crash (suspicion policy disabled): stays NORMAL.
    out.push_back(std::move(s));
  }

  return out;
}

scenario_spec find_scenario(const std::string& name) {
  for (scenario_spec& s : all_scenarios())
    if (s.name == name) return std::move(s);
  for (scenario_spec& s : scale_scenarios())
    if (s.name == name) return std::move(s);
  throw invariant_violation("unknown scenario: " + name);
}

}  // namespace hades::scenario
