// Property checkers for scenario runs (DESIGN.md, "Scenario layer").
//
// Each checker grades one of the paper's guarantees against the observed
// run, using the plan as ground truth for when faults were in force:
//
//  * perfect detector — no correct node is ever suspected outside an
//    unreachability window, every sufficiently long unreachability window
//    is detected within timeout + period + delta_max, and reachability
//    restored is noticed within period + delta_max;
//  * reliable broadcast — validity (a message broadcast by a correct node
//    in quiet time reaches every correct node), agreement (all-or-nothing
//    among correct nodes for quiet messages), and Delta-delivery total
//    order (pairwise-consistent delivery order over common messages);
//  * mode management — the manager lands in the expected final mode and
//    every switch is explained by a monitor trigger (deadline miss, crash,
//    recovery) within a bounded latency;
//  * clock synchronization — the maximum pairwise logical-clock skew over
//    correct nodes stays under the configured bound despite drift/step
//    faults.
//
// Checkers are pure functions over (plan, observation) so the campaign can
// evaluate identical semantics on every backend and compare the verdicts.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "scenario/plan.hpp"
#include "services/mode_manager.hpp"

namespace hades::scenario {

struct check_result {
  std::string name;
  bool passed = true;
  std::string detail;  // human-readable; empty when passed with nothing to say
};

/// Everything the checkers need from one finished run, collected by the
/// campaign driver. All containers are in deterministic order.
struct observation {
  std::size_t nodes = 0;
  time_point horizon;

  // Fault detector.
  struct suspicion {
    node_id observer = invalid_node;
    node_id subject = invalid_node;
    time_point at;
  };
  std::vector<suspicion> suspicions;   // sorted by (at, observer, subject)
  std::vector<suspicion> recoveries;   // sorted by (at, observer, subject)
  duration detect_bound = duration::zero();   // timeout + period + delta_max (+slack)
  duration recover_bound = duration::zero();  // period + delta_max (+slack)

  // Reliable broadcast. sent_at[origin][i] is the send date of the
  // (i+1)-th broadcast from `origin` (service seq numbers start at 1).
  std::vector<std::vector<std::pair<node_id, std::uint64_t>>> delivery_logs;
  std::vector<std::vector<time_point>> sent_at;
  duration delivery_bound = duration::zero();  // worst-case Delta-delivery
  std::uint64_t order_faults = 0;

  // Mode manager + monitor.
  svc::op_mode final_mode = svc::op_mode::normal;
  struct mode_switch {
    svc::op_mode from = svc::op_mode::normal;
    svc::op_mode to = svc::op_mode::normal;
    time_point at;
  };
  std::vector<mode_switch> mode_switches;
  std::vector<time_point> trigger_events;  // misses, crashes, recoveries
  std::size_t deadline_misses = 0;
  /// Bitmask over core::monitor_event_kind of every event kind the run
  /// recorded — one axis of the fuzzer's coverage map (scenario/coverage.hpp)
  /// and free to collect. Order-independent, so worker-count invariant.
  std::uint32_t event_kinds = 0;

  // Clocks (only when the scenario runs clock_sync).
  bool skew_checked = false;
  duration max_skew = duration::zero();
  duration skew_bound = duration::zero();

  // Traffic edge (only when the scenario runs gateways). Counters are the
  // node-order sum over gateways; digests stay per-gateway in node order.
  bool traffic_checked = false;
  std::uint64_t traffic_offered = 0;
  std::uint64_t traffic_admitted = 0;
  std::uint64_t traffic_rejected = 0;
  std::uint64_t traffic_shed = 0;
  std::uint64_t traffic_completed = 0;
  std::uint64_t traffic_missed = 0;       // admitted but deadline-aborted
  std::uint64_t traffic_outstanding = 0;  // still in flight at the horizon
  std::uint64_t traffic_revalidations = 0;
  std::uint64_t traffic_revalidation_failures = 0;
  std::uint64_t traffic_renegotiations = 0;
  double miss_budget = 0.0;
  std::vector<std::uint64_t> gateway_digests;
  // Merged end-to-end latency quantiles (ns).
  std::int64_t latency_p50 = 0;
  std::int64_t latency_p99 = 0;
  std::int64_t latency_p999 = 0;
};

std::vector<check_result> check_detector(const plan& p, const observation& o);
std::vector<check_result> check_broadcast(const plan& p, const observation& o,
                                          bool expect_order_faults);
std::vector<check_result> check_modes(const plan& p, const observation& o,
                                      svc::op_mode expected_final,
                                      duration switch_latency);
std::vector<check_result> check_clocks(const observation& o);
/// Deadline-miss budget for the traffic edge: the admission accounting
/// identities hold (offered = admitted + rejected; admitted = completed +
/// missed + shed + outstanding), traffic actually flowed, every off-path
/// exact re-validation agreed with the incremental accumulator, and the
/// deadline-aborted fraction of admitted work stays within the budget.
std::vector<check_result> check_miss_budget(const observation& o);

}  // namespace hades::scenario
