// The named scenario registry (DESIGN.md, "Scenario layer").
//
// A `scenario_spec` bundles a fault plan with the workload and service
// parameters it runs against and the expectations the checkers grade. The
// registry ships the campaign's standing family: clean, single-crash,
// crash-recover, rolling crashes, partition-heal, a suspicion-degraded
// partition, an asymmetric (one-directional) partition, an omission storm
// at the detector's omission-degree boundary, a performance-fault burst,
// drifting clocks, Byzantine clocks against clock_sync's trimming, and a
// degraded-mode overload. `hades_campaign` sweeps every registered
// scenario across seeds, shard counts {1, 2, 4} and worker counts
// {0, 2, 4}.
#pragma once

#include <string>
#include <vector>

#include "scenario/plan.hpp"
#include "services/fault_detector.hpp"
#include "services/mode_manager.hpp"
#include "services/reliable_comm.hpp"
#include "traffic/arrival.hpp"

namespace hades::scenario {

struct mode_expectation {
  svc::op_mode final_mode = svc::op_mode::normal;
  /// Every observed switch must have a monitor trigger within this bound.
  duration switch_latency = duration::milliseconds(1);
};

struct scenario_spec {
  std::string name;
  std::string description;
  std::size_t nodes = 8;
  duration horizon = duration::milliseconds(1500);

  svc::fault_detector::params fd{duration::milliseconds(10),
                                 duration::milliseconds(35)};
  svc::reliable_broadcast::params bcast;  // total_order set per scenario
  svc::mode_manager::thresholds thresholds;
  mode_expectation modes;

  bool with_clock_sync = false;
  /// f for clock_sync's trimmed average (n >= 3f+1): the byzantine_clocks
  /// scenario injects up to f Byzantine crystals and the skew checker
  /// grades only the correct-clock nodes.
  int clock_sync_max_faulty = 0;
  /// 0 = flat clock-sync rounds; C > 0 = clustered two-phase rounds.
  std::size_t clock_sync_cluster = 0;
  /// 0 = every node runs the broadcast workload; k > 0 = only k origins,
  /// spread evenly over [0, nodes) — at 1k nodes an all-origins workload
  /// would swamp the run without grading anything extra.
  std::size_t bcast_nodes = 0;
  bool with_task_load = false;     // overloaded EDF task on node 0
  /// Adds a shard-spanning task pair on top of the overload: a periodic
  /// graph whose EUs alternate between node 0 and the last node (remote
  /// precedences both directions) and a condition-coupled watcher on a
  /// middle node — exercising creation/activation tokens, cross-shard
  /// condition wakeups and mode-switch capture under worker threads.
  bool spanning_task_load = false;
  bool expect_order_faults = false;  // performance faults may breach Delta
  duration skew_bound = duration::microseconds(300);

  /// Traffic edge (the open-loop gateway family). gateway_nodes == 0 means
  /// no gateways; k > 0 places gateways on nodes [1, 1 + k) — node 0 keeps
  /// the mode manager and the overload task, and edge plans must never
  /// crash a gateway node (a crashed gateway's admitted instances can no
  /// longer retire their charges).
  struct traffic_params {
    std::size_t gateway_nodes = 0;
    traffic::arrival_mix mix = traffic::arrival_mix::poisson;
    double rate_per_s = 2500.0;
    /// CPU fraction the admission accumulator may book per mode; the
    /// deployment's mode hook renegotiates every gateway on a switch.
    double available = 0.6;
    double degraded_available = 0.35;
    double safe_available = 0.15;
    /// check_miss_budget: deadline-aborted admissions / admitted.
    double miss_budget = 0.02;
  };
  traffic_params traffic;

  plan p;
};

/// All registered scenarios, in campaign order.
std::vector<scenario_spec> all_scenarios();

/// The 1k-node scale family (hierarchical detector, tree diffusion,
/// clustered clock sync). Registered separately so the default campaign,
/// the smoke gate and the tier-1 scenario tests keep their 8-node runtime;
/// `hades_campaign --scale` (or naming them with --scenario) sweeps them.
std::vector<scenario_spec> scale_scenarios();

/// Look up one scenario by name (standing or scale family); throws
/// hades::invariant_violation if absent.
scenario_spec find_scenario(const std::string& name);

}  // namespace hades::scenario
