#include "scenario/plan.hpp"

#include <algorithm>

#include "core/system.hpp"

namespace hades::scenario {

const char* to_string(action_kind k) {
  switch (k) {
    case action_kind::crash_node: return "crash-node";
    case action_kind::recover_node: return "recover-node";
    case action_kind::partition: return "partition";
    case action_kind::heal_partition: return "heal-partition";
    case action_kind::omission_burst: return "omission-burst";
    case action_kind::omission_rate: return "omission-rate";
    case action_kind::perf_fault: return "perf-fault";
    case action_kind::clock_drift: return "clock-drift";
    case action_kind::clock_step: return "clock-step";
  }
  return "?";
}

// ------------------------------------------------------------- builders --

plan& plan::crash(time_point at, node_id n) {
  action a;
  a.at = at;
  a.kind = action_kind::crash_node;
  a.a = n;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::recover(time_point at, node_id n) {
  action a;
  a.at = at;
  a.kind = action_kind::recover_node;
  a.a = n;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::split(time_point at, std::vector<std::vector<node_id>> groups) {
  action a;
  a.at = at;
  a.kind = action_kind::partition;
  a.groups = std::move(groups);
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::heal(time_point at) {
  action a;
  a.at = at;
  a.kind = action_kind::heal_partition;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::omission_burst(time_point at, node_id src, node_id dst, int count,
                           int channel) {
  action a;
  a.at = at;
  a.kind = action_kind::omission_burst;
  a.a = src;
  a.b = dst;
  a.count = count;
  a.channel = channel;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::omission_rate(time_point at, double rate) {
  action a;
  a.at = at;
  a.kind = action_kind::omission_rate;
  a.rate = rate;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::perf_fault(time_point at, double rate, duration extra) {
  action a;
  a.at = at;
  a.kind = action_kind::perf_fault;
  a.rate = rate;
  a.extra = extra;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::clock_drift(time_point at, node_id n, double rho) {
  action a;
  a.at = at;
  a.kind = action_kind::clock_drift;
  a.a = n;
  a.rate = rho;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::clock_step(time_point at, node_id n, duration step) {
  action a;
  a.at = at;
  a.kind = action_kind::clock_step;
  a.a = n;
  a.extra = step;
  actions.push_back(std::move(a));
  return *this;
}

// ------------------------------------------------------ ground truth -----

namespace {

std::vector<action> sorted_by_date(const std::vector<action>& in) {
  std::vector<action> out = in;
  std::stable_sort(out.begin(), out.end(),
                   [](const action& x, const action& y) { return x.at < y.at; });
  return out;
}

std::vector<window> merge(std::vector<window> ws) {
  std::sort(ws.begin(), ws.end(),
            [](const window& x, const window& y) { return x.from < y.from; });
  std::vector<window> out;
  for (const window& w : ws) {
    if (!out.empty() && w.from <= out.back().to)
      out.back().to = std::max(out.back().to, w.to);
    else
      out.push_back(w);
  }
  return out;
}

}  // namespace

std::vector<window> plan::down_windows(node_id n, time_point horizon) const {
  std::vector<window> out;
  bool down = false;
  time_point since;
  for (const action& a : sorted_by_date(actions)) {
    if (a.a != n) continue;
    if (a.kind == action_kind::crash_node && !down) {
      down = true;
      since = a.at;
    } else if (a.kind == action_kind::recover_node && down) {
      down = false;
      out.push_back({since, a.at});
    }
  }
  if (down) out.push_back({since, horizon});
  return out;
}

bool plan::down_at(node_id n, time_point t) const {
  for (const window& w : down_windows(n, time_point::infinity()))
    if (w.contains(t)) return true;
  return false;
}

bool plan::ever_down(node_id n) const {
  for (const action& a : actions)
    if (a.kind == action_kind::crash_node && a.a == n) return true;
  return false;
}

std::vector<window> plan::separated_windows(node_id a, node_id b,
                                            time_point horizon) const {
  auto group_of = [](const std::vector<std::vector<node_id>>& groups,
                     node_id n) -> int {
    for (std::size_t g = 0; g < groups.size(); ++g)
      for (node_id m : groups[g])
        if (m == n) return static_cast<int>(g);
    return -1;  // unlisted: connected to everyone
  };
  std::vector<window> out;
  bool apart = false;
  time_point since;
  for (const action& act : sorted_by_date(actions)) {
    bool now_apart = apart;
    if (act.kind == action_kind::partition) {
      const int ga = group_of(act.groups, a);
      const int gb = group_of(act.groups, b);
      now_apart = ga >= 0 && gb >= 0 && ga != gb;
    } else if (act.kind == action_kind::heal_partition) {
      now_apart = false;
    } else {
      continue;
    }
    if (now_apart && !apart) since = act.at;
    if (!now_apart && apart) out.push_back({since, act.at});
    apart = now_apart;
  }
  if (apart) out.push_back({since, horizon});
  return out;
}

std::vector<window> plan::unreachable_windows(node_id o, node_id s,
                                              time_point horizon) const {
  std::vector<window> ws = down_windows(s, horizon);
  const std::vector<window> sep = separated_windows(o, s, horizon);
  ws.insert(ws.end(), sep.begin(), sep.end());
  return merge(std::move(ws));
}

std::vector<window> plan::disturbed_windows(time_point horizon) const {
  std::vector<window> out;
  bool rate_on = false, perf_on = false, part_on = false;
  time_point rate_since, perf_since, part_since;
  for (const action& a : sorted_by_date(actions)) {
    switch (a.kind) {
      case action_kind::omission_rate:
        if (a.rate > 0.0 && !rate_on) {
          rate_on = true;
          rate_since = a.at;
        } else if (a.rate <= 0.0 && rate_on) {
          rate_on = false;
          out.push_back({rate_since, a.at});
        }
        break;
      case action_kind::perf_fault:
        if (a.rate > 0.0 && !perf_on) {
          perf_on = true;
          perf_since = a.at;
        } else if (a.rate <= 0.0 && perf_on) {
          perf_on = false;
          out.push_back({perf_since, a.at});
        }
        break;
      case action_kind::partition:
        if (!part_on) {
          part_on = true;
          part_since = a.at;
        }
        break;
      case action_kind::heal_partition:
        if (part_on) {
          part_on = false;
          out.push_back({part_since, a.at});
        }
        break;
      default:
        break;
    }
  }
  if (rate_on) out.push_back({rate_since, horizon});
  if (perf_on) out.push_back({perf_since, horizon});
  if (part_on) out.push_back({part_since, horizon});
  return merge(std::move(out));
}

bool plan::quiet(time_point t, duration pad, time_point horizon) const {
  for (const window& w : disturbed_windows(horizon))
    if (w.overlaps(t, t + pad)) return false;
  return true;
}

// ---------------------------------------------------------- injector -----

void apply(core::system& sys, const plan& p) {
  for (const action& a : p.actions) {
    // Node- and link-scoped actions are anchored on the node whose state
    // (or whose send stream, for bursts) they touch, so the sharded backend
    // executes them on the owning shard in date order with that node's
    // other events. Globally-read actions (partition, rates) mutate
    // time-indexed network state, so their anchor is irrelevant — node 0 by
    // convention.
    const node_id anchor = a.a != invalid_node ? a.a : 0;
    sys.engine().at_node(anchor, a.at, [&sys, a] {
      switch (a.kind) {
        case action_kind::crash_node:
          sys.crash_node(a.a);
          break;
        case action_kind::recover_node:
          sys.recover_node(a.a);
          break;
        case action_kind::partition:
          sys.network().partition(a.groups);
          break;
        case action_kind::heal_partition:
          sys.network().heal_partition();
          break;
        case action_kind::omission_burst:
          sys.network().drop_next(a.a, a.b, a.count, a.channel);
          break;
        case action_kind::omission_rate:
          sys.network().set_omission_rate(a.rate);
          break;
        case action_kind::perf_fault:
          sys.network().set_performance_fault(a.rate, a.extra);
          break;
        case action_kind::clock_drift:
          sys.clock(a.a).set_drift_rate(a.rate);
          break;
        case action_kind::clock_step:
          sys.clock(a.a).adjust(a.extra);
          break;
      }
    });
  }
}

}  // namespace hades::scenario
