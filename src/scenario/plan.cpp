#include "scenario/plan.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <utility>

#include "core/system.hpp"
#include "scenario/fault_injector.hpp"
#include "scenario/json_min.hpp"

namespace hades::scenario {

const char* to_string(action_kind k) {
  switch (k) {
    case action_kind::crash_node: return "crash-node";
    case action_kind::recover_node: return "recover-node";
    case action_kind::partition: return "partition";
    case action_kind::heal_partition: return "heal-partition";
    case action_kind::omission_burst: return "omission-burst";
    case action_kind::omission_rate: return "omission-rate";
    case action_kind::perf_fault: return "perf-fault";
    case action_kind::clock_drift: return "clock-drift";
    case action_kind::clock_step: return "clock-step";
    case action_kind::link_down: return "link-down";
    case action_kind::link_up: return "link-up";
    case action_kind::clock_fault: return "clock-fault";
  }
  return "?";
}

// ------------------------------------------------------------- builders --

plan& plan::crash(time_point at, node_id n) {
  action a;
  a.at = at;
  a.kind = action_kind::crash_node;
  a.a = n;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::recover(time_point at, node_id n) {
  action a;
  a.at = at;
  a.kind = action_kind::recover_node;
  a.a = n;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::split(time_point at, std::vector<std::vector<node_id>> groups) {
  action a;
  a.at = at;
  a.kind = action_kind::partition;
  a.groups = std::move(groups);
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::heal(time_point at) {
  action a;
  a.at = at;
  a.kind = action_kind::heal_partition;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::omission_burst(time_point at, node_id src, node_id dst, int count,
                           int channel) {
  action a;
  a.at = at;
  a.kind = action_kind::omission_burst;
  a.a = src;
  a.b = dst;
  a.count = count;
  a.channel = channel;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::omission_rate(time_point at, double rate) {
  action a;
  a.at = at;
  a.kind = action_kind::omission_rate;
  a.rate = rate;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::perf_fault(time_point at, double rate, duration extra) {
  action a;
  a.at = at;
  a.kind = action_kind::perf_fault;
  a.rate = rate;
  a.extra = extra;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::clock_drift(time_point at, node_id n, double rho) {
  action a;
  a.at = at;
  a.kind = action_kind::clock_drift;
  a.a = n;
  a.rate = rho;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::clock_step(time_point at, node_id n, duration step) {
  action a;
  a.at = at;
  a.kind = action_kind::clock_step;
  a.a = n;
  a.extra = step;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::link_down(time_point at, node_id src, node_id dst) {
  action a;
  a.at = at;
  a.kind = action_kind::link_down;
  a.a = src;
  a.b = dst;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::link_up(time_point at, node_id src, node_id dst) {
  action a;
  a.at = at;
  a.kind = action_kind::link_up;
  a.a = src;
  a.b = dst;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::clock_byzantine(time_point at, node_id n, double rate,
                            duration offset) {
  action a;
  a.at = at;
  a.kind = action_kind::clock_fault;
  a.a = n;
  a.rate = rate;
  a.extra = offset;
  actions.push_back(std::move(a));
  return *this;
}

// ------------------------------------------------------ ground truth -----

namespace {

std::vector<action> sorted_by_date(const std::vector<action>& in) {
  std::vector<action> out = in;
  std::stable_sort(out.begin(), out.end(),
                   [](const action& x, const action& y) { return x.at < y.at; });
  return out;
}

std::vector<window> merge(std::vector<window> ws) {
  std::sort(ws.begin(), ws.end(),
            [](const window& x, const window& y) { return x.from < y.from; });
  std::vector<window> out;
  for (const window& w : ws) {
    if (!out.empty() && w.from <= out.back().to)
      out.back().to = std::max(out.back().to, w.to);
    else
      out.push_back(w);
  }
  return out;
}

}  // namespace

std::vector<window> plan::down_windows(node_id n, time_point horizon) const {
  std::vector<window> out;
  bool down = false;
  time_point since;
  for (const action& a : sorted_by_date(actions)) {
    if (a.a != n) continue;
    if (a.kind == action_kind::crash_node && !down) {
      down = true;
      since = a.at;
    } else if (a.kind == action_kind::recover_node && down) {
      down = false;
      out.push_back({since, a.at});
    }
  }
  if (down) out.push_back({since, horizon});
  return out;
}

bool plan::down_at(node_id n, time_point t) const {
  for (const window& w : down_windows(n, time_point::infinity()))
    if (w.contains(t)) return true;
  return false;
}

bool plan::ever_down(node_id n) const {
  for (const action& a : actions)
    if (a.kind == action_kind::crash_node && a.a == n) return true;
  return false;
}

std::vector<window> plan::separated_windows(node_id a, node_id b,
                                            time_point horizon) const {
  auto group_of = [](const std::vector<std::vector<node_id>>& groups,
                     node_id n) -> int {
    for (std::size_t g = 0; g < groups.size(); ++g)
      for (node_id m : groups[g])
        if (m == n) return static_cast<int>(g);
    return -1;  // unlisted: connected to everyone
  };
  std::vector<window> out;
  bool apart = false;
  time_point since;
  for (const action& act : sorted_by_date(actions)) {
    bool now_apart = apart;
    if (act.kind == action_kind::partition) {
      const int ga = group_of(act.groups, a);
      const int gb = group_of(act.groups, b);
      now_apart = ga >= 0 && gb >= 0 && ga != gb;
    } else if (act.kind == action_kind::heal_partition) {
      now_apart = false;
    } else {
      continue;
    }
    if (now_apart && !apart) since = act.at;
    if (!now_apart && apart) out.push_back({since, act.at});
    apart = now_apart;
  }
  if (apart) out.push_back({since, horizon});
  return out;
}

std::vector<window> plan::link_down_windows(node_id src, node_id dst,
                                            time_point horizon) const {
  std::vector<window> out;
  bool down = false;
  time_point since;
  for (const action& a : sorted_by_date(actions)) {
    if (a.a != src || a.b != dst) continue;
    if (a.kind == action_kind::link_down && !down) {
      down = true;
      since = a.at;
    } else if (a.kind == action_kind::link_up && down) {
      down = false;
      out.push_back({since, a.at});
    }
  }
  if (down) out.push_back({since, horizon});
  return out;
}

std::vector<window> plan::unreachable_windows(node_id o, node_id s,
                                              time_point horizon) const {
  std::vector<window> ws = down_windows(s, horizon);
  const std::vector<window> sep = separated_windows(o, s, horizon);
  ws.insert(ws.end(), sep.begin(), sep.end());
  // s's heartbeats reach o over the directed link s -> o; its down windows
  // silence s for o even though the reverse direction still works.
  const std::vector<window> link = link_down_windows(s, o, horizon);
  ws.insert(ws.end(), link.begin(), link.end());
  return merge(std::move(ws));
}

bool plan::clock_faulty(node_id n) const {
  for (const action& a : actions)
    if (a.kind == action_kind::clock_fault && a.a == n) return true;
  return false;
}

std::vector<window> plan::disturbed_windows(time_point horizon) const {
  std::vector<window> out;
  bool rate_on = false, perf_on = false, part_on = false;
  time_point rate_since, perf_since, part_since;
  // Directed link-downs disturb like partitions do: traffic whose diffusion
  // would cross a dead direction cannot be graded for validity/agreement.
  std::set<std::pair<node_id, node_id>> links_down;
  time_point links_since;
  for (const action& a : sorted_by_date(actions)) {
    switch (a.kind) {
      case action_kind::link_down:
        if (links_down.empty()) links_since = a.at;
        links_down.insert({a.a, a.b});
        break;
      case action_kind::link_up:
        if (links_down.erase({a.a, a.b}) > 0 && links_down.empty())
          out.push_back({links_since, a.at});
        break;
      default:
        break;
    }
    switch (a.kind) {
      case action_kind::omission_rate:
        if (a.rate > 0.0 && !rate_on) {
          rate_on = true;
          rate_since = a.at;
        } else if (a.rate <= 0.0 && rate_on) {
          rate_on = false;
          out.push_back({rate_since, a.at});
        }
        break;
      case action_kind::perf_fault:
        if (a.rate > 0.0 && !perf_on) {
          perf_on = true;
          perf_since = a.at;
        } else if (a.rate <= 0.0 && perf_on) {
          perf_on = false;
          out.push_back({perf_since, a.at});
        }
        break;
      case action_kind::partition:
        if (!part_on) {
          part_on = true;
          part_since = a.at;
        }
        break;
      case action_kind::heal_partition:
        if (part_on) {
          part_on = false;
          out.push_back({part_since, a.at});
        }
        break;
      default:
        break;
    }
  }
  if (rate_on) out.push_back({rate_since, horizon});
  if (perf_on) out.push_back({perf_since, horizon});
  if (part_on) out.push_back({part_since, horizon});
  if (!links_down.empty()) out.push_back({links_since, horizon});
  return merge(std::move(out));
}

bool plan::quiet(time_point t, duration pad, time_point horizon) const {
  for (const window& w : disturbed_windows(horizon))
    if (w.overlaps(t, t + pad)) return false;
  return true;
}

// -------------------------------------------------------- validation -----

std::vector<std::string> plan::validate(std::size_t nodes,
                                        time_point horizon) const {
  std::vector<std::string> out;
  auto flag = [&](const action& a, const std::string& why) {
    out.push_back(std::string(to_string(a.kind)) + " at " + a.at.to_string() +
                  ": " + why);
  };
  auto node_ok = [&](node_id n) {
    return n != invalid_node && static_cast<std::size_t>(n) < nodes;
  };

  // Replayed state machine over the date-sorted timeline: each pairing rule
  // (crash/recover, partition/heal, link_down/link_up) is checked against
  // the state the earlier actions left behind, so "recover without a prior
  // crash" and friends are caught wherever they hide in the sequence.
  std::set<node_id> down;
  std::set<std::pair<node_id, node_id>> links_down;
  bool partitioned = false;
  for (const action& a : sorted_by_date(actions)) {
    if (a.at.is_infinite() || a.at < time_point::zero())
      flag(a, "date must be finite and non-negative");
    else if (a.at >= horizon)
      flag(a, "at or past the horizon " + horizon.to_string());
    switch (a.kind) {
      case action_kind::crash_node:
        if (!node_ok(a.a))
          flag(a, "node " + std::to_string(a.a) + " out of range");
        else if (!down.insert(a.a).second)
          flag(a, "node " + std::to_string(a.a) + " is already down");
        break;
      case action_kind::recover_node:
        if (!node_ok(a.a))
          flag(a, "node " + std::to_string(a.a) + " out of range");
        else if (down.erase(a.a) == 0)
          flag(a, "node " + std::to_string(a.a) + " was never crashed");
        break;
      case action_kind::partition: {
        std::set<node_id> listed;
        if (a.groups.empty()) flag(a, "no groups");
        for (const auto& g : a.groups) {
          if (g.empty()) flag(a, "empty group");
          for (node_id m : g) {
            if (!node_ok(m))
              flag(a, "group node " + std::to_string(m) + " out of range");
            else if (!listed.insert(m).second)
              flag(a, "node " + std::to_string(m) + " listed twice");
          }
        }
        partitioned = true;
        break;
      }
      case action_kind::heal_partition:
        if (!partitioned) flag(a, "no partition in force");
        partitioned = false;
        break;
      case action_kind::link_down:
      case action_kind::link_up: {
        if (!node_ok(a.a) || !node_ok(a.b)) {
          flag(a, "link endpoints out of range");
          break;
        }
        if (a.a == a.b) {
          flag(a, "link endpoints must differ");
          break;
        }
        if (a.kind == action_kind::link_down) {
          if (!links_down.insert({a.a, a.b}).second)
            flag(a, "direction already down");
        } else if (links_down.erase({a.a, a.b}) == 0) {
          flag(a, "direction was never taken down");
        }
        break;
      }
      case action_kind::omission_burst:
        if (!node_ok(a.a) || !node_ok(a.b) || a.a == a.b)
          flag(a, "burst endpoints invalid");
        if (a.count < 1) flag(a, "burst count must be >= 1");
        if (a.channel < -1) flag(a, "channel must be >= -1");
        break;
      case action_kind::omission_rate:
        if (!(a.rate >= 0.0 && a.rate <= 1.0))
          flag(a, "rate outside [0, 1]");
        break;
      case action_kind::perf_fault:
        if (!(a.rate >= 0.0 && a.rate <= 1.0))
          flag(a, "rate outside [0, 1]");
        if (a.extra < duration::zero()) flag(a, "negative extra delay");
        break;
      case action_kind::clock_drift:
      case action_kind::clock_step:
      case action_kind::clock_fault:
        if (!node_ok(a.a))
          flag(a, "node " + std::to_string(a.a) + " out of range");
        if (!std::isfinite(a.rate)) flag(a, "rate must be finite");
        break;
    }
  }
  return out;
}

// --------------------------------------------------------------- JSON ----

namespace {

/// Rates ride as exact ppm integers: every curated and generated rate is
/// ppm-representable, one correctly-rounded division reconstructs the
/// identical double on any compiler, and the repro replays bit-identically.
std::int64_t to_ppm(double rate) {
  return static_cast<std::int64_t>(std::llround(rate * 1e6));
}
double from_ppm(std::int64_t ppm) { return static_cast<double>(ppm) / 1e6; }

action_kind kind_from_string(const std::string& s) {
  for (int k = 0; k <= static_cast<int>(action_kind::clock_fault); ++k)
    if (s == to_string(static_cast<action_kind>(k)))
      return static_cast<action_kind>(k);
  throw invariant_violation("plan json: unknown action kind \"" + s + '"');
}

}  // namespace

std::string plan_to_json(const plan& p, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream os;
  os << pad << "{\n"
     << pad << "  \"format\": \"hades-plan v1\",\n"
     << pad << "  \"name\": \"" << jmin::escape(p.name) << "\",\n"
     << pad << "  \"actions\": [";
  for (std::size_t i = 0; i < p.actions.size(); ++i) {
    const action& a = p.actions[i];
    os << (i == 0 ? "\n" : ",\n") << pad << "    {\"kind\": \""
       << to_string(a.kind) << "\", \"at_ns\": " << a.at.nanoseconds();
    switch (a.kind) {
      case action_kind::crash_node:
      case action_kind::recover_node:
        os << ", \"a\": " << a.a;
        break;
      case action_kind::partition:
        os << ", \"groups\": [";
        for (std::size_t g = 0; g < a.groups.size(); ++g) {
          os << (g == 0 ? "[" : ", [");
          for (std::size_t m = 0; m < a.groups[g].size(); ++m)
            os << (m == 0 ? "" : ", ") << a.groups[g][m];
          os << "]";
        }
        os << "]";
        break;
      case action_kind::heal_partition:
        break;
      case action_kind::omission_burst:
        os << ", \"a\": " << a.a << ", \"b\": " << a.b
           << ", \"count\": " << a.count << ", \"channel\": " << a.channel;
        break;
      case action_kind::omission_rate:
        os << ", \"rate_ppm\": " << to_ppm(a.rate);
        break;
      case action_kind::perf_fault:
        os << ", \"rate_ppm\": " << to_ppm(a.rate)
           << ", \"extra_ns\": " << a.extra.count();
        break;
      case action_kind::clock_drift:
        os << ", \"a\": " << a.a << ", \"rate_ppm\": " << to_ppm(a.rate);
        break;
      case action_kind::clock_step:
        os << ", \"a\": " << a.a << ", \"extra_ns\": " << a.extra.count();
        break;
      case action_kind::link_down:
      case action_kind::link_up:
        os << ", \"a\": " << a.a << ", \"b\": " << a.b;
        break;
      case action_kind::clock_fault:
        os << ", \"a\": " << a.a << ", \"rate_ppm\": " << to_ppm(a.rate)
           << ", \"extra_ns\": " << a.extra.count();
        break;
    }
    os << "}";
  }
  os << (p.actions.empty() ? "]" : "\n" + pad + "  ]") << "\n" << pad << "}";
  return os.str();
}

namespace {

plan plan_from_value(const jmin::value& v) {
  require(v.k == jmin::value::kind::object, "plan json: expected object");
  require(v.at("format").as_string() == "hades-plan v1",
          "plan json: unsupported format");
  plan p;
  p.name = v.at("name").as_string();
  const jmin::value& actions = v.at("actions");
  require(actions.k == jmin::value::kind::array,
          "plan json: \"actions\" must be an array");
  for (const jmin::value& av : actions.arr) {
    action a;
    a.kind = kind_from_string(av.at("kind").as_string());
    a.at = time_point::at(duration::nanoseconds(av.at("at_ns").as_int()));
    if (const auto* f = av.find("a"))
      a.a = static_cast<node_id>(f->as_int());
    if (const auto* f = av.find("b"))
      a.b = static_cast<node_id>(f->as_int());
    if (const auto* f = av.find("count"))
      a.count = static_cast<int>(f->as_int());
    if (const auto* f = av.find("channel"))
      a.channel = static_cast<int>(f->as_int());
    if (const auto* f = av.find("rate_ppm")) a.rate = from_ppm(f->as_int());
    if (const auto* f = av.find("extra_ns"))
      a.extra = duration::nanoseconds(f->as_int());
    if (const auto* f = av.find("groups")) {
      require(f->k == jmin::value::kind::array,
              "plan json: \"groups\" must be an array");
      for (const jmin::value& gv : f->arr) {
        require(gv.k == jmin::value::kind::array,
                "plan json: each group must be an array");
        std::vector<node_id> g;
        for (const jmin::value& mv : gv.arr)
          g.push_back(static_cast<node_id>(mv.as_int()));
        a.groups.push_back(std::move(g));
      }
    }
    p.actions.push_back(std::move(a));
  }
  return p;
}

}  // namespace

plan plan_from_json(const std::string& text) {
  const jmin::value root = jmin::parse(text);
  // Accept enclosing documents (e.g. "hades-fuzz-case v1") that embed the
  // timeline as a "plan" member: anything that isn't itself a plan document
  // but carries one delegates to it.
  if (root.k == jmin::value::kind::object) {
    const jmin::value* fmt = root.find("format");
    if (fmt == nullptr || fmt->as_string() != "hades-plan v1")
      if (const jmin::value* inner = root.find("plan"))
        return plan_from_value(*inner);
  }
  return plan_from_value(root);
}

// ---------------------------------------------------------- injector -----

namespace {

/// Globally-read wire toggles handled entirely by pre-registration: they
/// mutate a time-indexed network timeline and schedule nothing at run time.
bool globally_preregistered(action_kind k) {
  switch (k) {
    case action_kind::partition:
    case action_kind::heal_partition:
    case action_kind::omission_rate:
    case action_kind::perf_fault:
      return true;
    default:
      return false;
  }
}

}  // namespace

void preregister(fault_injector& inj, const plan& p) {
  // Globally-read wire state (node silence, partitions, omission and
  // performance rates) is *pre-registered* into the injector's time-indexed
  // state right now, dated at each action's own date. Reads are date-keyed,
  // so this is semantically identical to flipping each toggle at the action
  // date — but by the time the run starts the whole plan's wire truth is in
  // force, and (for the simulated LAN's published snapshots) a worker
  // thread racing a runtime re-registration reads the old or the new
  // snapshot with identical date-keyed answers. (The scheduled
  // crash/recover actions in `apply` re-register the same same-date
  // entries; the last-write-wins rule makes that idempotent.)
  for (const action& a : p.actions) {
    switch (a.kind) {
      case action_kind::crash_node:
        inj.set_node_down_at(a.at, a.a, true);
        break;
      case action_kind::recover_node:
        inj.set_node_down_at(a.at, a.a, false);
        break;
      case action_kind::partition:
        inj.partition_at(a.at, a.groups);
        break;
      case action_kind::heal_partition:
        inj.heal_partition_at(a.at);
        break;
      case action_kind::omission_rate:
        inj.set_omission_rate_at(a.at, a.rate);
        break;
      case action_kind::perf_fault:
        inj.set_performance_fault_at(a.at, a.rate, a.extra);
        break;
      default:
        break;
    }
  }
}

void apply(core::system& sys, const plan& p, time_point horizon) {
  // Fail loudly on ill-formed timelines: a recover that never pairs with a
  // crash (or an action dated past the horizon) would otherwise silently
  // no-op and the checkers would grade a run the plan never described.
  const std::vector<std::string> violations =
      p.validate(sys.node_count(), horizon);
  if (!violations.empty()) {
    std::string msg = "scenario::apply: ill-formed plan \"" + p.name + "\"";
    for (const std::string& v : violations) msg += "\n  " + v;
    throw invariant_violation(msg);
  }

  preregister(sys.network(), p);

  for (const action& a : p.actions) {
    // Node- and link-scoped actions are anchored on the node whose state
    // (or whose send stream, for bursts) they touch, so the sharded backend
    // executes them on the owning shard in date order with that node's
    // other events. Purely-global actions were fully handled by the
    // pre-registration above and schedule nothing.
    if (globally_preregistered(a.kind)) continue;
    const node_id anchor = a.a != invalid_node ? a.a : 0;
    sys.engine().at_node(anchor, a.at, [&sys, a] {
      switch (a.kind) {
        case action_kind::crash_node:
          sys.crash_node(a.a);
          break;
        case action_kind::recover_node:
          sys.recover_node(a.a);
          break;
        case action_kind::omission_burst:
          sys.network().drop_next(a.a, a.b, a.count, a.channel);
          break;
        case action_kind::clock_drift:
          sys.clock(a.a).set_drift_rate(a.rate);
          break;
        case action_kind::clock_step:
          sys.clock(a.a).adjust(a.extra);
          break;
        case action_kind::link_down:
          sys.network().set_link_down(a.a, a.b, true);
          break;
        case action_kind::link_up:
          sys.network().set_link_down(a.a, a.b, false);
          break;
        case action_kind::clock_fault:
          sys.clock(a.a).set_fault([rate = a.rate,
                                    offset = a.extra](time_point t) {
            return duration::nanoseconds(static_cast<std::int64_t>(
                       static_cast<double>(t.nanoseconds()) * rate)) +
                   offset;
          });
          break;
        default:
          break;  // globally_preregistered kinds never get here
      }
    });
  }
}

}  // namespace hades::scenario
