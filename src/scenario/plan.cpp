#include "scenario/plan.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "core/system.hpp"
#include "scenario/fault_injector.hpp"

namespace hades::scenario {

const char* to_string(action_kind k) {
  switch (k) {
    case action_kind::crash_node: return "crash-node";
    case action_kind::recover_node: return "recover-node";
    case action_kind::partition: return "partition";
    case action_kind::heal_partition: return "heal-partition";
    case action_kind::omission_burst: return "omission-burst";
    case action_kind::omission_rate: return "omission-rate";
    case action_kind::perf_fault: return "perf-fault";
    case action_kind::clock_drift: return "clock-drift";
    case action_kind::clock_step: return "clock-step";
    case action_kind::link_down: return "link-down";
    case action_kind::link_up: return "link-up";
    case action_kind::clock_fault: return "clock-fault";
  }
  return "?";
}

// ------------------------------------------------------------- builders --

plan& plan::crash(time_point at, node_id n) {
  action a;
  a.at = at;
  a.kind = action_kind::crash_node;
  a.a = n;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::recover(time_point at, node_id n) {
  action a;
  a.at = at;
  a.kind = action_kind::recover_node;
  a.a = n;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::split(time_point at, std::vector<std::vector<node_id>> groups) {
  action a;
  a.at = at;
  a.kind = action_kind::partition;
  a.groups = std::move(groups);
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::heal(time_point at) {
  action a;
  a.at = at;
  a.kind = action_kind::heal_partition;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::omission_burst(time_point at, node_id src, node_id dst, int count,
                           int channel) {
  action a;
  a.at = at;
  a.kind = action_kind::omission_burst;
  a.a = src;
  a.b = dst;
  a.count = count;
  a.channel = channel;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::omission_rate(time_point at, double rate) {
  action a;
  a.at = at;
  a.kind = action_kind::omission_rate;
  a.rate = rate;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::perf_fault(time_point at, double rate, duration extra) {
  action a;
  a.at = at;
  a.kind = action_kind::perf_fault;
  a.rate = rate;
  a.extra = extra;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::clock_drift(time_point at, node_id n, double rho) {
  action a;
  a.at = at;
  a.kind = action_kind::clock_drift;
  a.a = n;
  a.rate = rho;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::clock_step(time_point at, node_id n, duration step) {
  action a;
  a.at = at;
  a.kind = action_kind::clock_step;
  a.a = n;
  a.extra = step;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::link_down(time_point at, node_id src, node_id dst) {
  action a;
  a.at = at;
  a.kind = action_kind::link_down;
  a.a = src;
  a.b = dst;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::link_up(time_point at, node_id src, node_id dst) {
  action a;
  a.at = at;
  a.kind = action_kind::link_up;
  a.a = src;
  a.b = dst;
  actions.push_back(std::move(a));
  return *this;
}

plan& plan::clock_byzantine(time_point at, node_id n, double rate,
                            duration offset) {
  action a;
  a.at = at;
  a.kind = action_kind::clock_fault;
  a.a = n;
  a.rate = rate;
  a.extra = offset;
  actions.push_back(std::move(a));
  return *this;
}

// ------------------------------------------------------ ground truth -----

namespace {

std::vector<action> sorted_by_date(const std::vector<action>& in) {
  std::vector<action> out = in;
  std::stable_sort(out.begin(), out.end(),
                   [](const action& x, const action& y) { return x.at < y.at; });
  return out;
}

std::vector<window> merge(std::vector<window> ws) {
  std::sort(ws.begin(), ws.end(),
            [](const window& x, const window& y) { return x.from < y.from; });
  std::vector<window> out;
  for (const window& w : ws) {
    if (!out.empty() && w.from <= out.back().to)
      out.back().to = std::max(out.back().to, w.to);
    else
      out.push_back(w);
  }
  return out;
}

}  // namespace

std::vector<window> plan::down_windows(node_id n, time_point horizon) const {
  std::vector<window> out;
  bool down = false;
  time_point since;
  for (const action& a : sorted_by_date(actions)) {
    if (a.a != n) continue;
    if (a.kind == action_kind::crash_node && !down) {
      down = true;
      since = a.at;
    } else if (a.kind == action_kind::recover_node && down) {
      down = false;
      out.push_back({since, a.at});
    }
  }
  if (down) out.push_back({since, horizon});
  return out;
}

bool plan::down_at(node_id n, time_point t) const {
  for (const window& w : down_windows(n, time_point::infinity()))
    if (w.contains(t)) return true;
  return false;
}

bool plan::ever_down(node_id n) const {
  for (const action& a : actions)
    if (a.kind == action_kind::crash_node && a.a == n) return true;
  return false;
}

std::vector<window> plan::separated_windows(node_id a, node_id b,
                                            time_point horizon) const {
  auto group_of = [](const std::vector<std::vector<node_id>>& groups,
                     node_id n) -> int {
    for (std::size_t g = 0; g < groups.size(); ++g)
      for (node_id m : groups[g])
        if (m == n) return static_cast<int>(g);
    return -1;  // unlisted: connected to everyone
  };
  std::vector<window> out;
  bool apart = false;
  time_point since;
  for (const action& act : sorted_by_date(actions)) {
    bool now_apart = apart;
    if (act.kind == action_kind::partition) {
      const int ga = group_of(act.groups, a);
      const int gb = group_of(act.groups, b);
      now_apart = ga >= 0 && gb >= 0 && ga != gb;
    } else if (act.kind == action_kind::heal_partition) {
      now_apart = false;
    } else {
      continue;
    }
    if (now_apart && !apart) since = act.at;
    if (!now_apart && apart) out.push_back({since, act.at});
    apart = now_apart;
  }
  if (apart) out.push_back({since, horizon});
  return out;
}

std::vector<window> plan::link_down_windows(node_id src, node_id dst,
                                            time_point horizon) const {
  std::vector<window> out;
  bool down = false;
  time_point since;
  for (const action& a : sorted_by_date(actions)) {
    if (a.a != src || a.b != dst) continue;
    if (a.kind == action_kind::link_down && !down) {
      down = true;
      since = a.at;
    } else if (a.kind == action_kind::link_up && down) {
      down = false;
      out.push_back({since, a.at});
    }
  }
  if (down) out.push_back({since, horizon});
  return out;
}

std::vector<window> plan::unreachable_windows(node_id o, node_id s,
                                              time_point horizon) const {
  std::vector<window> ws = down_windows(s, horizon);
  const std::vector<window> sep = separated_windows(o, s, horizon);
  ws.insert(ws.end(), sep.begin(), sep.end());
  // s's heartbeats reach o over the directed link s -> o; its down windows
  // silence s for o even though the reverse direction still works.
  const std::vector<window> link = link_down_windows(s, o, horizon);
  ws.insert(ws.end(), link.begin(), link.end());
  return merge(std::move(ws));
}

bool plan::clock_faulty(node_id n) const {
  for (const action& a : actions)
    if (a.kind == action_kind::clock_fault && a.a == n) return true;
  return false;
}

std::vector<window> plan::disturbed_windows(time_point horizon) const {
  std::vector<window> out;
  bool rate_on = false, perf_on = false, part_on = false;
  time_point rate_since, perf_since, part_since;
  // Directed link-downs disturb like partitions do: traffic whose diffusion
  // would cross a dead direction cannot be graded for validity/agreement.
  std::set<std::pair<node_id, node_id>> links_down;
  time_point links_since;
  for (const action& a : sorted_by_date(actions)) {
    switch (a.kind) {
      case action_kind::link_down:
        if (links_down.empty()) links_since = a.at;
        links_down.insert({a.a, a.b});
        break;
      case action_kind::link_up:
        if (links_down.erase({a.a, a.b}) > 0 && links_down.empty())
          out.push_back({links_since, a.at});
        break;
      default:
        break;
    }
    switch (a.kind) {
      case action_kind::omission_rate:
        if (a.rate > 0.0 && !rate_on) {
          rate_on = true;
          rate_since = a.at;
        } else if (a.rate <= 0.0 && rate_on) {
          rate_on = false;
          out.push_back({rate_since, a.at});
        }
        break;
      case action_kind::perf_fault:
        if (a.rate > 0.0 && !perf_on) {
          perf_on = true;
          perf_since = a.at;
        } else if (a.rate <= 0.0 && perf_on) {
          perf_on = false;
          out.push_back({perf_since, a.at});
        }
        break;
      case action_kind::partition:
        if (!part_on) {
          part_on = true;
          part_since = a.at;
        }
        break;
      case action_kind::heal_partition:
        if (part_on) {
          part_on = false;
          out.push_back({part_since, a.at});
        }
        break;
      default:
        break;
    }
  }
  if (rate_on) out.push_back({rate_since, horizon});
  if (perf_on) out.push_back({perf_since, horizon});
  if (part_on) out.push_back({part_since, horizon});
  if (!links_down.empty()) out.push_back({links_since, horizon});
  return merge(std::move(out));
}

bool plan::quiet(time_point t, duration pad, time_point horizon) const {
  for (const window& w : disturbed_windows(horizon))
    if (w.overlaps(t, t + pad)) return false;
  return true;
}

// ---------------------------------------------------------- injector -----

namespace {

/// Globally-read wire toggles handled entirely by pre-registration: they
/// mutate a time-indexed network timeline and schedule nothing at run time.
bool globally_preregistered(action_kind k) {
  switch (k) {
    case action_kind::partition:
    case action_kind::heal_partition:
    case action_kind::omission_rate:
    case action_kind::perf_fault:
      return true;
    default:
      return false;
  }
}

}  // namespace

void preregister(fault_injector& inj, const plan& p) {
  // Globally-read wire state (node silence, partitions, omission and
  // performance rates) is *pre-registered* into the injector's time-indexed
  // state right now, dated at each action's own date. Reads are date-keyed,
  // so this is semantically identical to flipping each toggle at the action
  // date — but by the time the run starts the whole plan's wire truth is in
  // force, and (for the simulated LAN's published snapshots) a worker
  // thread racing a runtime re-registration reads the old or the new
  // snapshot with identical date-keyed answers. (The scheduled
  // crash/recover actions in `apply` re-register the same same-date
  // entries; the last-write-wins rule makes that idempotent.)
  for (const action& a : p.actions) {
    switch (a.kind) {
      case action_kind::crash_node:
        inj.set_node_down_at(a.at, a.a, true);
        break;
      case action_kind::recover_node:
        inj.set_node_down_at(a.at, a.a, false);
        break;
      case action_kind::partition:
        inj.partition_at(a.at, a.groups);
        break;
      case action_kind::heal_partition:
        inj.heal_partition_at(a.at);
        break;
      case action_kind::omission_rate:
        inj.set_omission_rate_at(a.at, a.rate);
        break;
      case action_kind::perf_fault:
        inj.set_performance_fault_at(a.at, a.rate, a.extra);
        break;
      default:
        break;
    }
  }
}

void apply(core::system& sys, const plan& p) {
  preregister(sys.network(), p);

  for (const action& a : p.actions) {
    // Node- and link-scoped actions are anchored on the node whose state
    // (or whose send stream, for bursts) they touch, so the sharded backend
    // executes them on the owning shard in date order with that node's
    // other events. Purely-global actions were fully handled by the
    // pre-registration above and schedule nothing.
    if (globally_preregistered(a.kind)) continue;
    const node_id anchor = a.a != invalid_node ? a.a : 0;
    sys.engine().at_node(anchor, a.at, [&sys, a] {
      switch (a.kind) {
        case action_kind::crash_node:
          sys.crash_node(a.a);
          break;
        case action_kind::recover_node:
          sys.recover_node(a.a);
          break;
        case action_kind::omission_burst:
          sys.network().drop_next(a.a, a.b, a.count, a.channel);
          break;
        case action_kind::clock_drift:
          sys.clock(a.a).set_drift_rate(a.rate);
          break;
        case action_kind::clock_step:
          sys.clock(a.a).adjust(a.extra);
          break;
        case action_kind::link_down:
          sys.network().set_link_down(a.a, a.b, true);
          break;
        case action_kind::link_up:
          sys.network().set_link_down(a.a, a.b, false);
          break;
        case action_kind::clock_fault:
          sys.clock(a.a).set_fault([rate = a.rate,
                                    offset = a.extra](time_point t) {
            return duration::nanoseconds(static_cast<std::int64_t>(
                       static_cast<double>(t.nanoseconds()) * rate)) +
                   offset;
          });
          break;
        default:
          break;  // globally_preregistered kinds never get here
      }
    });
  }
}

}  // namespace hades::scenario
