// Campaign runner (DESIGN.md, "Scenario layer").
//
// A campaign sweeps scenario × seed × shards × workers cells. Every cell
// builds a fresh 8-node HADES deployment (fault detector, Delta-ordered
// reliable broadcast, mode manager, optionally clock sync and an EDF task
// load), applies the scenario's fault plan, runs to the horizon, grades
// the property checkers, and folds every observable into an
// order-independent FNV checksum. The campaign then asserts that each
// (scenario, seed) produced *bit-identical* checksums across every
// (shards, workers) combination — shard counts {1, 2, 4} crossed with
// worker counts {0, 2, 4} on the sharded cells — the cross-backend AND
// cross-thread-count determinism gate of DESIGN.md, "Shard confinement".
// One machine-readable JSON verdict per cell plus a summary.
// `hades_campaign` is the CLI; CI runs `hades_campaign --smoke` as a
// required step.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "scenario/checkers.hpp"
#include "scenario/scenarios.hpp"

namespace hades::scenario {

/// Run fn(i) for every i in [0, n) on a bounded thread pool. jobs = 0 picks
/// half the hardware threads capped at 4, jobs = 1 runs serially on the
/// calling thread, jobs = n uses exactly n pool threads. Work items must be
/// independent; completion order is unspecified, so callers keep ordered
/// effects in a serial post-pass over their own index space (the pattern
/// run_campaign and the fuzzer's matrix replays share).
void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);

struct cell_result {
  std::string scenario;
  std::uint64_t seed = 0;
  std::size_t shards = 1;
  std::size_t workers = 0;   // sharded-backend worker threads (0 = serial)
  std::uint64_t checksum = 0;
  std::uint64_t events = 0;  // informational; excluded from the checksum
  bool passed = false;       // every checker green
  std::vector<check_result> checks;
  observation obs;
};

/// One verdict JSON document (schema in DESIGN.md, "Scenario layer").
[[nodiscard]] std::string render_verdict_json(const cell_result& c);

struct campaign_options {
  std::vector<std::string> scenarios;  // empty = every registered scenario
  /// Add the 1k-node scale family (scale_scenarios) to an empty selection.
  bool include_scale = false;
  /// When > 0, override every selected scenario's node count. Raising the
  /// count is always safe; shrinking below a plan's highest referenced node
  /// id is the caller's responsibility.
  std::size_t nodes = 0;
  std::vector<std::uint64_t> seeds{1, 2};
  std::vector<std::size_t> shard_counts{1, 2, 4};
  /// Worker counts swept on sharded cells (shards > 1); single-engine cells
  /// always run workers = 0, so shards 1 contributes one cell per seed.
  std::vector<std::size_t> worker_counts{0, 2, 4};
  std::string out_dir;   // when set, write per-cell verdicts + summary.json
  bool verbose = false;  // one progress line per cell on stdout
  /// Cells are independent deployments, so the sweep runs them on a bounded
  /// thread pool: 0 = auto (half the hardware threads, capped at 4), 1 =
  /// the historical serial sweep, n = exactly n pool threads. Verdicts,
  /// progress lines, JSON files and the checksum gate are all emitted in
  /// cell-enumeration order regardless of completion order.
  std::size_t jobs = 0;
};

struct campaign_result {
  std::vector<cell_result> cells;
  /// Gate violations: failed checkers and cross-shard checksum mismatches.
  std::vector<std::string> failures;
  /// One entry per (scenario, seed) group whose checksum diverged across
  /// the shards × workers matrix: the full plan JSON, so the offending
  /// timeline is reproducible straight from the campaign output without
  /// digging the scenario registry out of the binary.
  std::vector<std::string> diverged_plans;
  bool passed = false;
  [[nodiscard]] std::string summary_json() const;
};

cell_result run_cell(const scenario_spec& spec, std::uint64_t seed,
                     std::size_t shards, std::size_t workers = 0);
campaign_result run_campaign(const campaign_options& opt);

}  // namespace hades::scenario
