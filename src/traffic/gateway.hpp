// The per-node traffic gateway (DESIGN.md, "Traffic edge & admission
// control"): the glue between an open-loop arrival process and the HADES
// dispatcher.
//
// At start() the gateway registers one aperiodic task per request class
// (single Code_EU on its node, wcet = class cost, deadline = class
// deadline, abort-on-miss so a missed request releases its admission
// charge), installs the node's admission and retire hooks, and arms the
// arrival pump: each arrival fires exactly at its generated date on the
// node's shard, stashes the materialized request, and calls straight into
// `system::activate_internal`. The admission hook prices the stashed
// request against the controller — rejected arrivals cost one monitor
// event and nothing else; admitted ones map (task, instance) to the
// controller handle so completion, deadline-miss abort, and value-density
// shedding all release the exact charge they admitted.
//
// End-to-end latency (activation to completion) lands in a zero-alloc HDR
// histogram; per-node instances merge deterministically in node order at
// collection. Mode-change renegotiation arrives via renegotiate(),
// routed to this node's shard by the deployment's mode hook; periodic
// exact re-validation runs off the hot path on the same shard.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/system.hpp"
#include "traffic/admission.hpp"
#include "traffic/arrival.hpp"
#include "util/hdr_histogram.hpp"

namespace hades::traffic {

struct gateway_config {
  arrival_params arrivals;  // classes/class_count filled from `classes`
  std::vector<request_class> classes;
  admission_controller::config admission;
  /// Arrival pump window (absolute dates).
  time_point start = time_point::zero() + duration::milliseconds(5);
  time_point stop = time_point::infinity();
  /// Off-hot-path exact feasibility re-validation cadence.
  duration revalidate_period = duration::milliseconds(25);
};

class gateway {
 public:
  gateway(core::system& sys, node_id node, gateway_config cfg,
          std::uint64_t seed);

  /// Register class tasks, install the node's admission/retire hooks, arm
  /// the arrival pump and the re-validation chain. Call once, before run.
  void start();

  /// Mode-change renegotiation: move the admitted-work CPU fraction and
  /// shed until feasible. Must execute on this node's shard.
  void renegotiate(double available);

  // --- observability --------------------------------------------------------
  struct totals {
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    std::uint64_t missed = 0;        // admitted but deadline-aborted
    std::uint64_t revalidations = 0;
    std::uint64_t revalidation_failures = 0;
    std::uint64_t renegotiations = 0;
  };
  [[nodiscard]] totals snapshot() const;
  [[nodiscard]] const hdr_histogram& latency() const { return latency_; }
  [[nodiscard]] node_id node() const { return node_; }
  [[nodiscard]] admission_controller& controller() { return ctrl_; }
  /// Deterministic fold of the full decision + latency history.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  void fire();
  void arm_next();
  [[nodiscard]] std::int32_t class_of(task_id t) const;

  core::system& sys_;
  hades::runtime& rt_;
  node_id node_;
  gateway_config cfg_;
  arrival_process arr_;
  admission_controller ctrl_;
  hdr_histogram latency_;
  std::vector<task_id> tasks_;                   // per class
  std::map<task_id, std::map<instance_number, admission_controller::handle>>
      live_;
  std::vector<std::pair<task_id, instance_number>> owner_;  // by handle
  request pending_;
  bool pending_valid_ = false;
  admission_controller::decision last_;
  std::uint64_t missed_ = 0;
  std::uint64_t renegotiations_ = 0;
  bool started_ = false;
};

}  // namespace hades::traffic
