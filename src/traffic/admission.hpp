// Admission controller: the zero-allocation decision path of the traffic
// edge (DESIGN.md, "Traffic edge & admission control").
//
// One controller guards one node's service capacity. Every offered request
// is judged against the incremental feasibility accumulator
// (sched/incremental.hpp); infeasible requests either bounce, or — under
// overload — displace already-admitted work of lower *value density*
// (value / cost, the SPRING planning tradition: when not everything fits,
// keep the work that buys the most value per CPU nanosecond).
//
// Hot-path engineering:
//  * request slots live in a preallocated pool with generation counters —
//    admit/complete never allocate;
//  * the shed heap is a lazy-deletion binary min-heap over (value density,
//    admission sequence): admits *stage* their entry in O(1), and the
//    O(log k) heap pushes are paid only when the shed path runs (staged
//    entries are folded in before the first pop); completes are O(1) — the
//    generation bump invalidates the heap entry, which is discarded when it
//    surfaces. Stale entries are bounded: when the heap plus staging exceed
//    twice the pool, the shed path rebuilds the heap from the live slots;
//  * every container is reserved at construction — the steady-state
//    offer/complete/shed cycle performs zero heap allocations (asserted by
//    bench_gateway's operator-new counter).
//
// Determinism: decisions depend only on the offer/complete order, and the
// heap order is a total order (density, then admission sequence), so the
// admission/shed stream is bit-identical across backends and worker counts;
// the running FNV digest over (client, verdict) is folded into the campaign
// checksum.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sched/incremental.hpp"
#include "util/time.hpp"

namespace hades::traffic {

/// One offered unit of client work.
struct request {
  std::uint64_t client = 0;       // lazily-materialized client id
  std::uint32_t klass = 0;        // request-class index (caller taxonomy)
  duration cost = duration::zero();      // worst-case service time
  duration deadline = duration::zero();  // relative deadline
  std::uint32_t value = 1;        // importance (shed ordering numerator)
};

class admission_controller {
 public:
  using handle = std::uint32_t;
  static constexpr handle no_handle = 0xFFFFFFFFu;

  struct config {
    sched::incremental_feasibility::config feas;
    /// Pooled request slots == max concurrently admitted requests.
    std::uint32_t max_outstanding = 4096;
    /// Overload policy: displace lower-value-density work (true) or only
    /// reject newcomers (false).
    bool shed_by_value_density = true;
  };

  /// Called once per displaced victim, after its charge is released and its
  /// slot freed (the handle is no longer valid inside the callback — it
  /// identifies which admitted request died).
  using shed_fn = std::function<void(handle, std::uint64_t client)>;

  explicit admission_controller(config c);
  void on_shed(shed_fn f) { shed_cb_ = std::move(f); }

  struct decision {
    bool admitted = false;
    handle h = no_handle;
    std::uint32_t shed_victims = 0;  // displaced to make room (may be > 0
                                     // even when the newcomer still bounced)
  };

  /// The hot path: judge one request at `now`. Zero allocations.
  decision offer(const request& r, time_point now);
  /// An admitted request finished. Zero allocations, O(1).
  void complete(handle h);

  /// Mode-change renegotiation: move the CPU fraction and shed the lowest
  /// value-density work until the remaining set is feasible again.
  /// Returns the number of victims.
  std::uint32_t renegotiate(double available, time_point now);

  /// Exact off-hot-path re-validation: runs the full EDF demand test over
  /// the live request set (sorted scratch, no allocation after warm-up) and
  /// cross-checks the accumulator's integer bookkeeping against the pool.
  /// False means the conservative wheel admitted an infeasible set or the
  /// bookkeeping drifted — both are defects, and the campaign digest folds
  /// the flag.
  bool revalidate(time_point now);

  // --- observability --------------------------------------------------------
  struct counters {
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    std::uint64_t revalidations = 0;
    std::uint64_t revalidation_failures = 0;
  };
  [[nodiscard]] const counters& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t outstanding() const { return live_; }
  [[nodiscard]] std::uint64_t client_of(handle h) const {
    return pool_[h].client;
  }
  /// Running FNV-1a over the decision stream (client, verdict) — the
  /// cross-backend determinism fold.
  [[nodiscard]] std::uint64_t stream_digest() const { return digest_; }
  [[nodiscard]] sched::incremental_feasibility& feasibility() { return feas_; }

 private:
  struct slot {
    std::uint64_t client = 0;
    std::uint64_t density = 0;   // (value << 32) / cost_ns
    std::uint64_t seq = 0;       // admission sequence (heap tie-break)
    sched::incremental_feasibility::ticket ticket;
    std::int64_t deadline_ns = 0;
    std::uint32_t gen = 0;
    bool live = false;
  };
  struct heap_entry {
    std::uint64_t density = 0;
    std::uint64_t seq = 0;
    std::uint32_t idx = 0;
    std::uint32_t gen = 0;
    // Min-heap via std::push_heap's max-heap: "greater" means "sheds later".
    [[nodiscard]] bool operator<(const heap_entry& o) const {
      if (density != o.density) return density > o.density;
      return seq > o.seq;
    }
  };

  [[nodiscard]] static std::uint64_t density_of(const request& r);
  void mix(std::uint64_t v);
  void drain_staging();
  void compact_heap();
  /// Pop until the top is a live entry; false when nothing live remains.
  bool top_live();
  void shed_top();
  void release(std::uint32_t idx);

  config cfg_;
  sched::incremental_feasibility feas_;
  std::vector<slot> pool_;
  std::vector<std::uint32_t> free_;
  std::vector<heap_entry> heap_;
  std::vector<heap_entry> staging_;
  std::vector<std::pair<std::int64_t, std::int64_t>> scratch_;  // revalidate
  shed_fn shed_cb_;
  counters stats_;
  std::uint32_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t digest_ = 0xCBF29CE484222325ull;
};

}  // namespace hades::traffic
