#include "traffic/admission.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hades::traffic {

admission_controller::admission_controller(config c)
    : cfg_(c), feas_(c.feas) {
  require(cfg_.max_outstanding > 0,
          "admission_controller: max_outstanding must be positive");
  pool_.resize(cfg_.max_outstanding);
  free_.reserve(cfg_.max_outstanding);
  for (std::uint32_t i = cfg_.max_outstanding; i-- > 0;) free_.push_back(i);
  // Worst case before compaction: every pool slot has one stale heap entry
  // plus one live one, split between heap and staging.
  heap_.reserve(2 * static_cast<std::size_t>(cfg_.max_outstanding) + 1);
  staging_.reserve(2 * static_cast<std::size_t>(cfg_.max_outstanding) + 1);
  scratch_.reserve(cfg_.max_outstanding);
}

std::uint64_t admission_controller::density_of(const request& r) {
  const std::int64_t c = r.cost.count();
  if (c <= 0) return ~0ull;  // free work never sheds
  return (static_cast<std::uint64_t>(r.value) << 32) /
         static_cast<std::uint64_t>(c);
}

void admission_controller::mix(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    digest_ ^= (v >> (8 * i)) & 0xFF;
    digest_ *= 0x100000001B3ull;
  }
}

void admission_controller::drain_staging() {
  for (const auto& e : staging_) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end());
  }
  staging_.clear();
}

void admission_controller::compact_heap() {
  heap_.clear();
  for (std::uint32_t i = 0; i < cfg_.max_outstanding; ++i) {
    const slot& s = pool_[i];
    if (s.live) heap_.push_back({s.density, s.seq, i, s.gen});
  }
  std::make_heap(heap_.begin(), heap_.end());
}

bool admission_controller::top_live() {
  while (!heap_.empty()) {
    const heap_entry& e = heap_.front();
    const slot& s = pool_[e.idx];
    if (s.live && s.gen == e.gen) return true;
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
  return false;
}

void admission_controller::release(std::uint32_t idx) {
  slot& s = pool_[idx];
  feas_.complete(s.ticket);
  s.live = false;
  ++s.gen;  // invalidates any heap entry still pointing here
  --live_;
  free_.push_back(idx);
}

void admission_controller::shed_top() {
  const heap_entry e = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end());
  heap_.pop_back();
  const std::uint64_t client = pool_[e.idx].client;
  release(e.idx);
  ++stats_.shed;
  if (shed_cb_) shed_cb_(e.idx, client);
}

admission_controller::decision admission_controller::offer(const request& r,
                                                           time_point now) {
  ++stats_.offered;
  feas_.advance(now);
  const time_point deadline = now + r.deadline;
  decision d;
  const std::uint64_t density = density_of(r);

  bool fits = !free_.empty() && feas_.admissible(r.cost, deadline);
  if (!fits && cfg_.shed_by_value_density) {
    // Overload: displace strictly lower value-density work while that still
    // can make the newcomer fit. Lazy heap — fold the staged admits in
    // first, and rebuild from the pool once stale entries dominate.
    if (heap_.size() + staging_.size() >
        2 * static_cast<std::size_t>(cfg_.max_outstanding))
      compact_heap();
    else
      drain_staging();
    while (top_live() && heap_.front().density < density) {
      shed_top();
      ++d.shed_victims;
      if (!free_.empty() && feas_.admissible(r.cost, deadline)) {
        fits = true;
        break;
      }
    }
  }

  if (!fits) {
    ++stats_.rejected;
    mix(r.client);
    mix(2);  // rejected
    mix(d.shed_victims);
    return d;
  }

  const std::uint32_t idx = free_.back();
  free_.pop_back();
  slot& s = pool_[idx];
  s.client = r.client;
  s.density = density;
  s.seq = next_seq_++;
  s.ticket = feas_.admit(r.cost, deadline);
  s.deadline_ns = deadline.nanoseconds();
  s.live = true;
  ++live_;
  staging_.push_back({s.density, s.seq, idx, s.gen});
  ++stats_.admitted;
  d.admitted = true;
  d.h = idx;
  mix(r.client);
  mix(1);  // admitted
  mix(d.shed_victims);
  return d;
}

void admission_controller::complete(handle h) {
  require(h < pool_.size() && pool_[h].live,
          "admission_controller: complete of a dead handle");
  release(h);
  ++stats_.completed;
}

std::uint32_t admission_controller::renegotiate(double available,
                                                time_point now) {
  feas_.advance(now);
  feas_.set_available(available);
  std::uint32_t victims = 0;
  if (cfg_.shed_by_value_density) {
    drain_staging();
    while (!feas_.currently_feasible() && top_live()) {
      shed_top();
      ++victims;
    }
  }
  mix(3);  // renegotiate marker
  mix(static_cast<std::uint64_t>(available * 4294967296.0));
  mix(victims);
  return victims;
}

bool admission_controller::revalidate(time_point now) {
  ++stats_.revalidations;
  feas_.advance(now);
  const bool wheel_ok = feas_.currently_feasible();
  // Exact EDF processor-demand test over the live set: for each future
  // deadline d, the cost of all work due at or before d must fit in
  // (d - now) x available. Already-late work (deadline passed, miss not yet
  // retired) contributes its cost to the cumulative demand but is not itself
  // a check point — the same treatment the wheel gives its carried term.
  scratch_.clear();
  std::int64_t total = 0;
  const std::int64_t t0 = now.nanoseconds();
  std::int64_t late = 0;
  for (std::uint32_t i = 0; i < cfg_.max_outstanding; ++i) {
    const slot& s = pool_[i];
    if (!s.live) continue;
    total += s.ticket.cost;
    if (s.deadline_ns <= t0)
      late += s.ticket.cost;
    else
      scratch_.emplace_back(s.deadline_ns, s.ticket.cost);
  }
  std::sort(scratch_.begin(), scratch_.end());
  // Same 32.32 budget arithmetic as the wheel so the comparison below is
  // rounding-identical.
  const auto q32 =
      static_cast<std::uint64_t>(feas_.available() * 4294967296.0);
  bool exact_ok = true;
  std::int64_t cum = late;
  for (const auto& [d, c] : scratch_) {
    cum += c;
    const auto budget = static_cast<std::int64_t>(
        (static_cast<unsigned __int128>(d - t0) * q32) >> 32);
    if (cum > budget) exact_ok = false;
  }
  // Two invariants, both timing-noise free: the integer bookkeeping matches
  // the pool exactly, and the wheel's verdict implies the exact verdict
  // (the wheel quantizes every deadline *down* to its bucket start, so it
  // can only be stricter — a wheel-pass/exact-fail disagreement means the
  // accumulator dropped demand it should still hold). The exact test alone
  // failing is expected mid-flight: a nearly-finished instance still
  // charges its full cost against an almost-expired deadline.
  const bool ok = total == feas_.outstanding() && (!wheel_ok || exact_ok);
  if (!ok) ++stats_.revalidation_failures;
  return ok;
}

}  // namespace hades::traffic
