#include "traffic/arrival.hpp"

#include "util/error.hpp"

namespace hades::traffic {
namespace {

// splitmix64 finalizer — the lazy client-id materializer. Stateless: the
// n-th arrival of (seed, node) always names the same client.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// The 8-segment diurnal day profile, rate multipliers x1000: a quiet
// night, a morning ramp, a midday plateau, an evening peak, wind-down.
constexpr std::uint32_t diurnal_profile[8] = {250,  400,  900, 1200,
                                              1000, 1500, 800, 350};

}  // namespace

arrival_process::arrival_process(const arrival_params& p, std::uint64_t seed,
                                 std::uint32_t node)
    : p_(p), seed_(seed), node_(node),
      rng_(mix64(mix64(seed) ^ (0x74726166666963ull + node))) {
  require(p_.rate_per_s > 0.0, "arrival_process: rate must be positive");
  require(p_.class_count > 0 && p_.classes != nullptr,
          "arrival_process: need at least one request class");
  require(p_.population > 0, "arrival_process: population must be positive");
  for (std::uint32_t i = 0; i < p_.class_count; ++i) {
    require(p_.classes[i].weight > 0, "arrival_process: zero class weight");
    total_weight_ += p_.classes[i].weight;
  }
  if (p_.mix == arrival_mix::bursty)
    require(p_.burst_period > duration::zero(),
            "arrival_process: burst_period must be positive");
  if (p_.mix == arrival_mix::diurnal)
    require(p_.diurnal_period >= duration::nanoseconds(8),
            "arrival_process: diurnal_period too short");
  schedule_next(time_point::zero());
}

std::uint32_t arrival_process::rate_permille(time_point t) const {
  switch (p_.mix) {
    case arrival_mix::poisson:
      return 1000;
    case arrival_mix::bursty: {
      const std::int64_t phase =
          (t.nanoseconds() / p_.burst_period.count()) % 2;
      return phase == 0
                 ? static_cast<std::uint32_t>(p_.burst_factor * 1000.0)
                 : 1000;
    }
    case arrival_mix::diurnal: {
      const std::int64_t seg_width = p_.diurnal_period.count() / 8;
      const std::int64_t seg =
          (t.nanoseconds() / seg_width) % 8;
      return diurnal_profile[seg];
    }
  }
  return 1000;
}

void arrival_process::schedule_next(time_point from) {
  // Piecewise-constant thinning-free sampling: draw an exponential gap at
  // the rate in effect at `from`; if it crosses a rate-segment boundary,
  // restart the draw from the boundary at the new rate. Memorylessness
  // makes the restart distribution-preserving, and segment boundaries are
  // deterministic dates, so the draw count — hence the whole stream — is
  // identical everywhere.
  time_point t = from;
  for (;;) {
    const std::uint32_t pm = rate_permille(t);
    const double rate = p_.rate_per_s * (static_cast<double>(pm) / 1000.0);
    const double mean_gap_ns = 1e9 / rate;
    const auto gap = static_cast<std::int64_t>(rng_.exponential(mean_gap_ns));
    const time_point cand = t + duration::nanoseconds(gap < 1 ? 1 : gap);
    // Next boundary of the current rate segment, if any.
    std::int64_t boundary = -1;
    if (p_.mix == arrival_mix::bursty) {
      const std::int64_t w = p_.burst_period.count();
      boundary = (t.nanoseconds() / w + 1) * w;
    } else if (p_.mix == arrival_mix::diurnal) {
      const std::int64_t w = p_.diurnal_period.count() / 8;
      boundary = (t.nanoseconds() / w + 1) * w;
    }
    if (boundary < 0 || cand.nanoseconds() <= boundary) {
      next_ = cand;
      return;
    }
    t = time_point::zero() + duration::nanoseconds(boundary);
  }
}

std::uint64_t arrival_process::client_at(std::uint64_t n) const {
  const std::uint64_t h =
      mix64(mix64(seed_ ^ (static_cast<std::uint64_t>(node_) << 48)) ^ n);
  return h % p_.population;
}

request arrival_process::take() {
  request r;
  r.client = client_at(count_);
  // Weighted class draw.
  auto pick = static_cast<std::uint32_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(total_weight_) - 1));
  std::uint32_t k = 0;
  while (pick >= p_.classes[k].weight) {
    pick -= p_.classes[k].weight;
    ++k;
  }
  r.klass = k;
  r.cost = p_.classes[k].cost;
  r.deadline = p_.classes[k].deadline;
  r.value = p_.classes[k].value;
  ++count_;
  schedule_next(next_);
  return r;
}

}  // namespace hades::traffic
