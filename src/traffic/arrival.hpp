// Open-loop arrival process for the traffic edge (DESIGN.md, "Traffic edge
// & admission control").
//
// Models millions of clients without a single byte of per-client state:
// arrivals are a rate process (requests/second into this node), and the
// client id behind each request is materialized lazily by hashing
// (seed, node, arrival counter) into a configured population. Open loop
// means the process never waits on service — a shed or rejected request
// does not slow the stream down, which is exactly the regime where
// admission control earns its keep.
//
// Three rate shapes, all piecewise-constant so inter-arrival gaps stay
// exponential within a segment (memoryless — restarting the draw at a
// segment boundary is distribution-preserving and keeps the stream
// deterministic in the draw count):
//   * poisson  — constant rate;
//   * bursty   — on/off square wave (rate x burst_factor during bursts);
//   * diurnal  — an 8-segment piecewise "day" profile cycling over
//                diurnal_period (integer table, no libm in the path).
//
// Each arrival carries a request class drawn from a weighted mix
// (cost/deadline/value taxonomy the admission controller prices).
// Determinism: the stream is a pure function of (seed, node) — identical
// across backends and worker counts by construction.
#pragma once

#include <cstdint>

#include "traffic/admission.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace hades::traffic {

enum class arrival_mix : std::uint8_t { poisson, bursty, diurnal };

/// One entry of the request-class taxonomy: what the work costs, how soon
/// it is due, what completing it is worth, and how often it shows up.
struct request_class {
  duration cost = duration::microseconds(200);
  duration deadline = duration::milliseconds(5);
  std::uint32_t value = 1;
  std::uint32_t weight = 1;
};

struct arrival_params {
  arrival_mix mix = arrival_mix::poisson;
  /// Baseline mean arrival rate, requests per second.
  double rate_per_s = 1000.0;
  /// Lazily-materialized client population (ids in [0, population)).
  std::uint64_t population = 1'000'000;
  /// bursty: on/off half-period and the on-phase rate multiplier.
  duration burst_period = duration::milliseconds(50);
  double burst_factor = 8.0;
  /// diurnal: one full "day" for the 8-segment profile.
  duration diurnal_period = duration::milliseconds(800);
  const request_class* classes = nullptr;
  std::uint32_t class_count = 0;
};

class arrival_process {
 public:
  /// The stream is a pure function of (seed, node, params).
  arrival_process(const arrival_params& p, std::uint64_t seed,
                  std::uint32_t node);

  /// Date of the next arrival (>= the previous one; never moves backwards).
  [[nodiscard]] time_point peek() const { return next_; }
  /// Consume the pending arrival and advance the stream.
  request take();
  [[nodiscard]] std::uint64_t generated() const { return count_; }

  /// Rate multiplier (x1000, integer) in effect at `t` — exposed for tests.
  [[nodiscard]] std::uint32_t rate_permille(time_point t) const;

 private:
  void schedule_next(time_point from);
  [[nodiscard]] std::uint64_t client_at(std::uint64_t n) const;

  arrival_params p_;
  std::uint64_t seed_;
  std::uint32_t node_;
  rng rng_;
  std::uint32_t total_weight_ = 0;
  time_point next_ = time_point::zero();
  std::uint64_t count_ = 0;
};

}  // namespace hades::traffic
