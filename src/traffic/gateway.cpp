#include "traffic/gateway.hpp"

#include "util/error.hpp"

namespace hades::traffic {

gateway::gateway(core::system& sys, node_id node, gateway_config cfg,
                 std::uint64_t seed)
    : sys_(sys), rt_(sys.engine()), node_(node), cfg_(std::move(cfg)),
      arr_([&] {
        arrival_params p = cfg_.arrivals;
        p.classes = cfg_.classes.data();
        p.class_count = static_cast<std::uint32_t>(cfg_.classes.size());
        return p;
      }(), seed, node),
      ctrl_(cfg_.admission) {
  require(!cfg_.classes.empty(), "gateway: need at least one request class");
  require(node < sys.node_count(), "gateway: node out of range");
  owner_.assign(cfg_.admission.max_outstanding,
                {invalid_task, instance_number{0}});
}

std::int32_t gateway::class_of(task_id t) const {
  for (std::size_t i = 0; i < tasks_.size(); ++i)
    if (tasks_[i] == t) return static_cast<std::int32_t>(i);
  return -1;
}

void gateway::start() {
  require(!started_, "gateway: started twice");
  started_ = true;

  for (std::size_t c = 0; c < cfg_.classes.size(); ++c) {
    const request_class& rc = cfg_.classes[c];
    core::task_builder b("gw" + std::to_string(node_) + "_c" +
                         std::to_string(c));
    b.deadline(rc.deadline)
        .law(core::arrival_law::aperiodic())
        .abort_on_deadline_miss(true);
    b.add_code_eu("serve", node_, rc.cost);
    tasks_.push_back(sys_.register_task(b.build()));
  }

  // Shed victims abort their instance; un-mapping first makes the retire
  // hook below a no-op for them (their charge was already released).
  ctrl_.on_shed([this](admission_controller::handle h, std::uint64_t) {
    const auto [t, k] = owner_[h];
    owner_[h] = {invalid_task, instance_number{0}};
    live_[t].erase(k);
    sys_.abort_instance(t, k, "shed: value density", /*as_rejection=*/true);
  });

  auto& d = sys_.disp(node_);
  d.set_admission_hook([this](task_id t, time_point now) {
    if (class_of(t) < 0 || !pending_valid_) return true;
    pending_valid_ = false;
    last_ = ctrl_.offer(pending_, now);
    return last_.admitted;
  });
  d.set_retire_hook([this](task_id t, instance_number k, time_point act,
                           time_point now, bool completed) {
    auto tit = live_.find(t);
    if (tit == live_.end()) return;
    auto it = tit->second.find(k);
    if (it == tit->second.end()) return;
    const admission_controller::handle h = it->second;
    tit->second.erase(it);
    owner_[h] = {invalid_task, instance_number{0}};
    ctrl_.complete(h);
    if (completed)
      latency_.record((now - act).count());
    else
      ++missed_;
  });

  arm_next();
  const time_point first = cfg_.start + cfg_.revalidate_period;
  rt_.periodic_at_node(node_, first, cfg_.revalidate_period,
                       [this] {
                         if (!sys_.crashed(node_))
                           ctrl_.revalidate(rt_.now());
                       },
                       cfg_.stop);
}

void gateway::arm_next() {
  const time_point at = cfg_.start + (arr_.peek() - time_point::zero());
  if (at >= cfg_.stop) return;
  rt_.at_node(node_, at, [this] { fire(); });
}

void gateway::fire() {
  if (!sys_.crashed(node_)) {
    pending_ = arr_.take();
    pending_valid_ = true;
    last_ = {};
    core::system::activation_origin origin;
    origin.k = core::system::activation_origin::kind::external;
    const task_id t = tasks_[pending_.klass];
    const auto k = sys_.activate_internal(t, origin);
    pending_valid_ = false;
    if (k.has_value() && last_.admitted) {
      live_[t][*k] = last_.h;
      owner_[last_.h] = {t, *k};
    }
  } else {
    (void)arr_.take();  // the stream keeps its draw count while down
  }
  arm_next();
}

void gateway::renegotiate(double available) {
  ++renegotiations_;
  ctrl_.renegotiate(available, rt_.now());
}

gateway::totals gateway::snapshot() const {
  const auto& s = ctrl_.stats();
  totals t;
  t.offered = s.offered;
  t.admitted = s.admitted;
  t.rejected = s.rejected;
  t.shed = s.shed;
  // controller `completed` counts every complete() call — timely finishes
  // and deadline-miss retires both release their charge that way.
  t.completed = s.completed - missed_;
  t.missed = missed_;
  t.revalidations = s.revalidations;
  t.revalidation_failures = s.revalidation_failures;
  t.renegotiations = renegotiations_;
  return t;
}

std::uint64_t gateway::digest() const {
  std::uint64_t h = ctrl_.stream_digest();
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ull;
    }
  };
  mix(latency_.digest());
  mix(missed_);
  mix(renegotiations_);
  return h;
}

}  // namespace hades::traffic
