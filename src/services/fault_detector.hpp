// Heartbeat-based fault detection (paper section 2.2: "fault detection" is
// one of the generic robustness services), in two topologies.
//
// Flat (params.cluster_size == 0, the default): every node broadcasts a
// heartbeat each period and supervises every peer, suspecting a node whose
// heartbeat has not been heard for `timeout`. Under the synchronous
// assumptions of the platform (bounded network delay, bounded omission
// degree) the detector is *perfect* when timeout > period *
// (omission_degree + 1) + delta_max: no correct node is ever suspected and
// a crashed node is suspected within one timeout — bench_monitor / tests
// check both bounds, and the boundary itself is probed one tick either side
// by FaultDetectorTest.
//
// Hierarchical (params.cluster_size = C > 0, DESIGN.md "Scalable topology
// layer"): nodes are grouped into contiguous clusters of C
// (`topo::cluster_map`). Each cluster elects an *aggregator* — the lowest
// member the observer does not suspect, a pure function of the observer's
// suspicion state, so no election protocol runs. Members heartbeat to their
// aggregator only; the aggregator directly supervises its members and each
// period sends a *liveness digest* (its current suspicion list) to its
// members and to every other cluster's aggregator. The digest doubles as
// the aggregator's heartbeat. Message cost per period drops from O(N²) to
// O(N + C·numC); per-observer state drops from O(N) dense rows to a sparse
// map over the supervision set (own cluster + one entry per foreign
// cluster).
//
// Suspicion spreads by digest adoption with authority rules: a member
// adopts its own aggregator's digest wholesale (add and remove) except for
// the aggregator itself, which it supervises directly; an aggregator adopts
// a foreign digest only for the sender's own members, over whom the sender
// is authoritative. Aggregator succession is implicit: suspecting the
// current aggregator advances the observer's derived view to the next
// unsuspected member, with a fresh grace horizon so the successor is not
// instantly suspected off a stale date. If a whole cluster falls silent —
// no digest from *any* member for `cluster_silence()` — the observer
// presumes every remaining member of that cluster unreachable (the
// completeness backstop for partitions); a heal's first digest both clears
// the aggregator and, by adoption, un-suspects the presumed members.
//
// The two-hop supervision path (member -> aggregator -> digest) re-derives
// the perfection bound as timeout > period * (omission_degree + 1) +
// 2*delta_max; FaultDetectorTest probes it one tick either side at 256
// nodes. `detection_bound()` / `recovery_bound()` expose the end-to-end
// worst-case latencies for whichever topology is configured — the scenario
// checkers grade against those instead of re-deriving formulas inline.
//
// A suspected node whose heartbeat (or digest) is heard again — recovery
// after system::recover_node, or a false suspicion under a sub-bound
// timeout — is un-suspected and `on_recover` callbacks fire; mode managers
// can use this to leave degraded operation.
//
// Each node's heartbeat/check tick is a self-re-arming chain anchored with
// `runtime::at_node(n, ...)`, so on the sharded backend every send a node
// performs executes on the shard that owns the node. That keeps the
// per-source network rng streams in send-date order regardless of shard
// count — the property the scenario campaign's cross-backend checksum gate
// relies on (DESIGN.md, "Scenario layer").
//
// Shard confinement: all detector state is [observer]-indexed and touched
// only from the observer's tick/receive events, i.e. on the observer's
// shard. Counters are per-observer and summed at read time. Suspicion
// transitions are additionally recorded into the system monitor
// (node_suspected / node_unsuspected), which is how suspicion-driven mode
// policies receive them deterministically on their own shard
// (mode_manager::thresholds::suspicions_for_degraded). `on_suspect` /
// `on_recover` callbacks run on the observer's shard and must be
// shard-confined for worker-threaded runs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/system.hpp"
#include "services/channels.hpp"
#include "services/topology.hpp"
#include "util/sparse_map.hpp"
#include "util/stats.hpp"

namespace hades::svc {

class fault_detector {
 public:
  struct params {
    duration heartbeat_period = duration::milliseconds(10);
    duration timeout = duration::milliseconds(25);
    /// 0 = flat all-to-all supervision; C > 0 = hierarchical cluster
    /// supervision with contiguous clusters of C nodes.
    std::size_t cluster_size = 0;
  };

  using suspect_fn =
      std::function<void(node_id observer, node_id suspect, time_point at)>;

  fault_detector(core::system& sys, params p);

  void start();
  void on_suspect(suspect_fn fn) { callbacks_.push_back(std::move(fn)); }
  /// Fires when a suspected node's heartbeat is heard again.
  void on_recover(suspect_fn fn) { recover_callbacks_.push_back(std::move(fn)); }

  [[nodiscard]] bool suspects(node_id observer, node_id subject) const {
    return obs_[observer].suspicion.contains(subject);
  }
  [[nodiscard]] std::optional<time_point> suspected_at(node_id observer,
                                                       node_id subject) const {
    const time_point* at = obs_[observer].suspicion.find(subject);
    return at != nullptr ? std::optional<time_point>(*at) : std::nullopt;
  }
  [[nodiscard]] std::uint64_t heartbeats_sent() const {
    return sum_counters(sent_);
  }
  [[nodiscard]] std::uint64_t recoveries_observed() const {
    return sum_counters(recoveries_);
  }
  [[nodiscard]] const params& config() const { return params_; }
  [[nodiscard]] bool hierarchical() const { return params_.cluster_size > 0; }

  /// Silence threshold after which an observer presumes a whole cluster
  /// unreachable (hierarchical only): long enough to cover aggregator
  /// succession, so it only fires when no member can get a digest through.
  [[nodiscard]] duration cluster_silence() const {
    return (params_.timeout + params_.heartbeat_period) * 2 +
           net_delta_max_ * 2;
  }

  /// Worst-case latency from a node becoming permanently unreachable to
  /// *every* correct observer suspecting it, for the configured topology.
  /// Flat: timeout + one period + one delivery. Hierarchical worst case is
  /// the presumption path (whole cluster silent), then one more digest
  /// period + delivery for members to adopt their aggregator's view.
  [[nodiscard]] duration detection_bound() const {
    if (!hierarchical())
      return params_.timeout + params_.heartbeat_period + net_delta_max_;
    return cluster_silence() + params_.heartbeat_period * 2 +
           net_delta_max_ * 3;
  }
  /// Worst-case latency from a suspected node speaking again to every
  /// correct observer clearing the suspicion. Flat: one period + one
  /// delivery. Hierarchical: heartbeat to the aggregator, then the
  /// aggregator's next digest to everyone, then one more digest period for
  /// members of other clusters.
  [[nodiscard]] duration recovery_bound() const {
    if (!hierarchical())
      return params_.heartbeat_period + net_delta_max_;
    return (params_.heartbeat_period + net_delta_max_) * 3;
  }

 private:
  /// Per-observer detector state: sparse, keyed by the supervision set.
  struct observer_state {
    /// subject -> last heartbeat/digest date. Absent = never heard;
    /// effective date is max(entry-or-start, horizon).
    util::sparse_node_map<time_point> last_heard;
    /// subject -> suspicion date. Presence = currently suspected.
    util::sparse_node_map<time_point> suspicion;
    /// cluster id -> last digest date from ANY member of that cluster
    /// (hierarchical, aggregator role). Grace resets after suspecting an
    /// aggregator live in `last_heard` of the successor, not here.
    util::sparse_node_map<time_point> last_digest;
    /// Observation floor: raised to now() while the observer is down so a
    /// recovered node does not instantly suspect the world off stale dates.
    time_point horizon;
    /// Whether the last tick ran in the aggregator role. A fresh promotion
    /// (succession, restart) grants digest grace for every foreign cluster:
    /// the new aggregator was never a digest recipient, so without the
    /// grace its cluster-silence presumption would fire instantly.
    bool agg_role = false;
  };

  void tick(node_id n);
  void flat_tick(node_id n);
  void hier_tick(node_id n);
  void on_heartbeat(node_id me, const sim::message& m);
  void on_digest(node_id me, const sim::message& m);

  [[nodiscard]] time_point heard(const observer_state& o, node_id subject) const {
    const time_point* t = o.last_heard.find(subject);
    return t != nullptr && *t > o.horizon ? *t : o.horizon;
  }
  [[nodiscard]] time_point digest_heard(const observer_state& o,
                                        std::size_t c) const {
    const time_point* t = o.last_digest.find(static_cast<node_id>(c));
    return t != nullptr && *t > o.horizon ? *t : o.horizon;
  }
  /// The observer's view of cluster c's aggregator: the lowest member it
  /// does not suspect, or invalid_node when it suspects them all.
  [[nodiscard]] node_id aggregator_view(const observer_state& o,
                                        std::size_t c) const;
  void suspect(node_id observer, node_id subject);
  void unsuspect(node_id observer, node_id subject);
  void send_digest(node_id n);

  core::system* sys_;
  params params_;
  topo::cluster_map clusters_;
  duration net_delta_max_;
  time_point start_;
  std::vector<observer_state> obs_;  // [observer]
  std::vector<suspect_fn> callbacks_;
  std::vector<suspect_fn> recover_callbacks_;
  std::vector<std::uint64_t> sent_;        // per observer
  std::vector<std::uint64_t> recoveries_;  // per observer
};

}  // namespace hades::svc
