// Heartbeat-based fault detection (paper section 2.2: "fault detection" is
// one of the generic robustness services).
//
// Every node broadcasts a heartbeat each period; every node supervises its
// peers and suspects a node whose heartbeat has not been heard for
// `timeout`. Under the synchronous assumptions of the platform (bounded
// network delay, bounded omission degree) the detector is *perfect* when
// timeout > period * (omission_degree + 1) + delta_max: no correct node is
// ever suspected and a crashed node is suspected within one timeout —
// bench_monitor / tests check both bounds, and the boundary itself is
// probed one tick either side by FaultDetectorTest.
//
// A suspected node whose heartbeat is heard again (recovery after
// system::recover_node, or a false suspicion under a sub-bound timeout) is
// un-suspected and `on_recover` callbacks fire — mode managers can use this
// to leave degraded operation.
//
// Each node's heartbeat/check tick is a self-re-arming chain anchored with
// `runtime::at_node(n, ...)`, so on the sharded backend every send a node
// performs executes on the shard that owns the node. That keeps the
// per-source network rng streams in send-date order regardless of shard
// count — the property the scenario campaign's cross-backend checksum gate
// relies on (DESIGN.md, "Scenario layer").
//
// Shard confinement: all detector state is [observer]-indexed and touched
// only from the observer's tick/receive events, i.e. on the observer's
// shard (byte matrices, not std::vector<bool> — observers on one cache
// line must not share bit-packed words). Counters are per-observer and
// summed at read time. Suspicion transitions are additionally recorded
// into the system monitor (node_suspected / node_unsuspected), which is
// how suspicion-driven mode policies receive them deterministically on
// their own shard (mode_manager::thresholds::suspicions_for_degraded).
// `on_suspect` / `on_recover` callbacks run on the observer's shard and
// must be shard-confined for worker-threaded runs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/system.hpp"
#include "services/channels.hpp"
#include "util/stats.hpp"

namespace hades::svc {

class fault_detector {
 public:
  struct params {
    duration heartbeat_period = duration::milliseconds(10);
    duration timeout = duration::milliseconds(25);
  };

  using suspect_fn =
      std::function<void(node_id observer, node_id suspect, time_point at)>;

  fault_detector(core::system& sys, params p);

  void start();
  void on_suspect(suspect_fn fn) { callbacks_.push_back(std::move(fn)); }
  /// Fires when a suspected node's heartbeat is heard again.
  void on_recover(suspect_fn fn) { recover_callbacks_.push_back(std::move(fn)); }

  [[nodiscard]] bool suspects(node_id observer, node_id subject) const {
    return suspected_[observer][subject] != 0;
  }
  [[nodiscard]] std::optional<time_point> suspected_at(node_id observer,
                                                       node_id subject) const {
    return suspected_[observer][subject] != 0
               ? std::optional<time_point>(when_[observer][subject])
               : std::nullopt;
  }
  [[nodiscard]] std::uint64_t heartbeats_sent() const {
    return sum_counters(sent_);
  }
  [[nodiscard]] std::uint64_t recoveries_observed() const {
    return sum_counters(recoveries_);
  }
  [[nodiscard]] const params& config() const { return params_; }

 private:
  void tick(node_id n);
  void check(node_id n);

  core::system* sys_;
  params params_;
  std::vector<std::vector<time_point>> last_heard_;  // [observer][subject]
  std::vector<std::vector<std::uint8_t>> suspected_;
  std::vector<std::vector<time_point>> when_;
  std::vector<suspect_fn> callbacks_;
  std::vector<suspect_fn> recover_callbacks_;
  std::vector<std::uint64_t> sent_;        // per observer
  std::vector<std::uint64_t> recoveries_;  // per observer
};

}  // namespace hades::svc
