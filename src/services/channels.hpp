// Channel registry for HADES services. Channel 0 is the dispatcher's
// control channel (core/dispatcher.hpp); services multiplex the LAN through
// the per-node net_mngt task on the ids below.
#pragma once

namespace hades::svc {

inline constexpr int ch_clock_sync = 10;
inline constexpr int ch_heartbeat = 11;
inline constexpr int ch_reliable_p2p = 12;
inline constexpr int ch_reliable_bcast = 13;
inline constexpr int ch_consensus = 14;
inline constexpr int ch_replication = 15;
inline constexpr int ch_replication_client = 16;
inline constexpr int ch_fd_digest = 17;  // aggregator liveness digests
inline constexpr int ch_mode_capture = 18;  // mode-switch state capture

}  // namespace hades::svc
