#include "services/replication.hpp"

#include <algorithm>

namespace hades::svc {

replicated_service::replicated_service(core::system& sys, fault_detector& fd,
                                       params p, apply_fn apply)
    : sys_(&sys), params_(std::move(p)), apply_(std::move(apply)) {
  validate(!params_.replicas.empty(), "replication: need at least 1 replica");
  if (!apply_) apply_ = [](std::int64_t acc, std::int64_t v) { return acc + v; };
  primary_ = params_.replicas.front();
  for (node_id n : params_.replicas) state_[n] = {};
  for (node_id n = 0; n < sys_->node_count(); ++n) {
    sys_->net(n).on_channel(ch_replication, [this, n](const sim::message& m) {
      on_message(n, m);
    });
  }
  // Failover on suspicion of the primary (any observer suffices: the
  // detector is perfect under the platform assumptions).
  fd.on_suspect([this](node_id, node_id suspect, time_point) {
    if (suspect == primary_) promote(suspect);
  });
}

bool replicated_service::is_replica(node_id n) const {
  return std::find(params_.replicas.begin(), params_.replicas.end(), n) !=
         params_.replicas.end();
}

void replicated_service::submit(node_id client, std::int64_t value) {
  request r{next_req_++, value};
  switch (params_.style) {
    case replication_style::active: {
      // Every replica executes and replies; the client keeps the first.
      for (node_id rep : params_.replicas) {
        wire w{wire::kind::execute, r, {}, client};
        sys_->net(client).send(rep, ch_replication, w, 64);
      }
      return;
    }
    case replication_style::passive:
    case replication_style::semi_active: {
      wire w{wire::kind::execute, r, {}, client};
      if (sys_->crashed(primary_)) {
        pending_.emplace_back(client, r);  // re-routed after promotion
        return;
      }
      sys_->net(client).send(primary_, ch_replication, w, 64);
      return;
    }
  }
}

void replicated_service::execute(node_id n, const request& r, node_id client,
                                 bool reply) {
  if (!executed_[n].insert(r.id).second) return;  // at-most-once per replica
  state_t& st = state_[n];
  st.accumulator = apply_(st.accumulator, r.value);
  st.applied_seq = std::max(st.applied_seq, r.id);
  ++executions_;
  if (reply && client != invalid_node) {
    wire w{wire::kind::reply, r, st, client};
    sys_->net(n).send(client, ch_replication, w, 48);
  }
}

void replicated_service::on_message(node_id n, const sim::message& m) {
  const auto* w = m.payload.get<wire>();
  if (w == nullptr) return;

  switch (w->k) {
    case wire::kind::execute: {
      if (!is_replica(n)) return;
      switch (params_.style) {
        case replication_style::active:
          execute(n, w->req, w->client, /*reply=*/true);
          return;
        case replication_style::passive: {
          if (n != primary_) return;  // backups only consume checkpoints
          execute(n, w->req, w->client, /*reply=*/true);
          // Checkpoint state to the backups after each request.
          for (node_id rep : params_.replicas) {
            if (rep == n) continue;
            wire cp{wire::kind::checkpoint, w->req, state_[n], w->client};
            sys_->net(n).send(rep, ch_replication, cp, 96);
            ++checkpoints_;
          }
          return;
        }
        case replication_style::semi_active: {
          if (n != primary_) return;
          // The leader decides the order (here: arrival order) and tells
          // the followers, which execute but do not reply.
          execute(n, w->req, w->client, /*reply=*/true);
          for (node_id rep : params_.replicas) {
            if (rep == n) continue;
            wire ord{wire::kind::order, w->req, {}, w->client};
            sys_->net(n).send(rep, ch_replication, ord, 64);
          }
          return;
        }
      }
      return;
    }
    case wire::kind::order:
      if (is_replica(n)) execute(n, w->req, w->client, /*reply=*/false);
      return;
    case wire::kind::checkpoint: {
      if (!is_replica(n)) return;
      state_t& st = state_[n];
      if (w->snapshot.applied_seq >= st.applied_seq) {
        st = w->snapshot;
        executed_[n].insert(w->req.id);
      }
      return;
    }
    case wire::kind::reply: {
      if (!replied_.insert(w->req.id).second) return;  // first reply wins
      ++replies_;
      if (reply_) reply_(w->req.id, w->snapshot.accumulator);
      return;
    }
  }
}

void replicated_service::promote(node_id failed) {
  if (failed != primary_) return;
  // Next live replica in ring order becomes primary.
  for (node_id rep : params_.replicas) {
    if (rep == failed || sys_->crashed(rep)) continue;
    primary_ = rep;
    sys_->trace().record(sys_->now(), rep, sim::trace_kind::service_event,
                         "replication", "promoted to primary");
    // Re-route requests stranded during the failover window.
    auto pending = std::move(pending_);
    pending_.clear();
    for (auto& [client, r] : pending) {
      wire w{wire::kind::execute, r, {}, client};
      sys_->net(client).send(primary_, ch_replication, w, 64);
    }
    return;
  }
}

}  // namespace hades::svc
