// Replication service (paper section 2.2.1, service (ii)): passive, active
// and semi-active replication in the taxonomy of [Pol96].
//
// The replicated object is a deterministic state machine (user-supplied
// apply function over an int64 register vector). Clients submit requests
// through `submit()`; the style determines the coordination:
//
//  * active      — every replica executes every request (delivered through
//                  the reliable broadcast layer) and replies; the client
//                  side deduplicates on the first reply. A crash of any
//                  minority of replicas is masked with zero failover time.
//  * passive     — only the primary executes; it checkpoints (state, seq)
//                  to the backups after each request. On primary crash the
//                  fault detector promotes the next live replica, which
//                  resumes from the last checkpoint. Requests issued during
//                  the failover window are re-routed after promotion.
//  * semi-active — the leader chooses the processing order (the
//                  nondeterministic decision) and followers execute in that
//                  order too; every replica holds current state, so
//                  failover needs no state transfer, only leader handover.
//
// bench_replication (E8) measures per-request overhead and failover time
// for the three styles.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/system.hpp"
#include "services/channels.hpp"
#include "services/fault_detector.hpp"

namespace hades::svc {

enum class replication_style { active, passive, semi_active };

[[nodiscard]] constexpr const char* to_string(replication_style s) {
  switch (s) {
    case replication_style::active: return "active";
    case replication_style::passive: return "passive";
    case replication_style::semi_active: return "semi-active";
  }
  return "?";
}

class replicated_service {
 public:
  struct request {
    std::uint64_t id = 0;
    std::int64_t value = 0;
  };
  struct state_t {
    std::int64_t accumulator = 0;
    std::uint64_t applied_seq = 0;
  };
  /// Deterministic application logic: new accumulator value.
  using apply_fn = std::function<std::int64_t(std::int64_t acc, std::int64_t)>;
  using reply_fn = std::function<void(std::uint64_t req_id, std::int64_t)>;

  struct params {
    replication_style style = replication_style::active;
    std::vector<node_id> replicas;
  };

  replicated_service(core::system& sys, fault_detector& fd, params p,
                     apply_fn apply = nullptr);

  /// Submit a request from a client node; the reply callback fires once per
  /// request (first stable reply).
  void submit(node_id client, std::int64_t value);
  void on_reply(reply_fn fn) { reply_ = std::move(fn); }

  [[nodiscard]] node_id current_primary() const { return primary_; }
  [[nodiscard]] const state_t& replica_state(node_id n) const {
    return state_.at(n);
  }
  [[nodiscard]] std::uint64_t replies() const { return replies_; }
  [[nodiscard]] std::uint64_t checkpoints() const { return checkpoints_; }
  [[nodiscard]] std::uint64_t executions() const { return executions_; }

 private:
  struct wire {
    enum class kind : std::uint8_t { execute, reply, checkpoint, order };
    kind k = kind::execute;
    request req;
    state_t snapshot;   // checkpoint payload
    node_id client = invalid_node;
  };

  void on_message(node_id n, const sim::message& m);
  void execute(node_id n, const request& r, node_id client, bool reply);
  void promote(node_id failed);
  [[nodiscard]] bool is_replica(node_id n) const;

  core::system* sys_;
  params params_;
  apply_fn apply_;
  reply_fn reply_;
  node_id primary_;
  std::map<node_id, state_t> state_;
  std::map<node_id, std::set<std::uint64_t>> executed_;  // dedup per replica
  std::set<std::uint64_t> replied_;                      // client-side dedup
  std::vector<std::pair<node_id, request>> pending_;     // awaiting failover
  std::uint64_t next_req_ = 1;
  std::uint64_t replies_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t executions_ = 0;
};

}  // namespace hades::svc
