#include "services/consensus.hpp"

#include <algorithm>

namespace hades::svc {

namespace {
struct round_msg {
  std::vector<std::int64_t> values;
};
}  // namespace

consensus_service::consensus_service(core::system& sys, params p)
    : sys_(&sys), params_(p) {
  for (node_id n = 0; n < sys_->node_count(); ++n) {
    decided_[n] = false;
    decision_[n] = 0;
    sys_->net(n).on_channel(ch_consensus, [this, n](const sim::message& m) {
      on_message(n, m);
    });
  }
}

void consensus_service::run(const std::map<node_id, std::int64_t>& proposals) {
  require(!running_, "consensus: instance already running");
  running_ = true;
  learned_.clear();
  for (const auto& [n, v] : proposals)
    if (!sys_->crashed(n)) learned_[n].insert(v);
  round(1);
}

void consensus_service::round(int k) {
  // Broadcast everything learned so far; omissions/crashes only remove
  // information, and f+1 rounds guarantee one round is failure-free enough
  // to equalize the learned sets of all correct nodes.
  for (auto& [n, values] : learned_) {
    if (sys_->crashed(n)) continue;
    round_msg m{{values.begin(), values.end()}};
    sys_->net(n).send_all(ch_consensus, m, 32 + 8 * m.values.size());
  }
  sys_->engine().after(params_.round_length, [this, k] {
    if (k <= params_.max_faulty)
      round(k + 1);
    else
      finish();
  });
}

void consensus_service::on_message(node_id n, const sim::message& m) {
  if (!running_) return;
  const auto* rm = m.payload.get<round_msg>();
  if (rm == nullptr) return;
  learned_[n].insert(rm->values.begin(), rm->values.end());
}

void consensus_service::finish() {
  running_ = false;
  for (auto& [n, values] : learned_) {
    if (sys_->crashed(n) || values.empty()) continue;
    decided_[n] = true;
    decision_[n] = *std::min_element(values.begin(), values.end());
    sys_->trace().record(sys_->now(), n, sim::trace_kind::service_event,
                         "consensus",
                         "decide " + std::to_string(decision_[n]));
    for (const auto& cb : callbacks_) cb(n, decision_[n]);
  }
}

}  // namespace hades::svc
