#include "services/fault_detector.hpp"

namespace hades::svc {

namespace {

hades::core::monitor_event suspicion_event(core::monitor_event_kind kind,
                                           time_point at, node_id observer,
                                           node_id subject) {
  core::monitor_event ev;
  ev.kind = kind;
  ev.at = at;
  ev.node = observer;
  ev.subject = "node" + std::to_string(subject);
  ev.detail = "observer node" + std::to_string(observer);
  return ev;
}

}  // namespace

fault_detector::fault_detector(core::system& sys, params p)
    : sys_(&sys), params_(p) {
  const std::size_t n = sys_->node_count();
  last_heard_.assign(n, std::vector<time_point>(n, sys_->now()));
  suspected_.assign(n, std::vector<std::uint8_t>(n, 0));
  when_.assign(n, std::vector<time_point>(n));
  sent_.assign(n, 0);
  recoveries_.assign(n, 0);
  for (node_id me = 0; me < n; ++me) {
    sys_->net(me).on_channel(ch_heartbeat, [this, me](const sim::message& m) {
      last_heard_[me][m.src] = sys_->now();
      if (suspected_[me][m.src] != 0) {
        // The suspect speaks again: recovery (or a false suspicion under a
        // sub-bound timeout).
        suspected_[me][m.src] = 0;
        ++recoveries_[me];
        sys_->trace().record(sys_->now(), me, sim::trace_kind::service_event,
                             "fault_detector",
                             "unsuspect node" + std::to_string(m.src));
        sys_->mon().record(suspicion_event(
            core::monitor_event_kind::node_unsuspected, sys_->now(), me,
            m.src));
        for (const auto& cb : recover_callbacks_) cb(me, m.src, sys_->now());
      }
    });
  }
}

void fault_detector::start() {
  // One periodic chain per node, anchored at the node so that on the
  // sharded backend the node's sends run on its own shard (see header).
  for (node_id n = 0; n < sys_->node_count(); ++n)
    sys_->engine().periodic_at_node(
        n, sys_->now() + params_.heartbeat_period, params_.heartbeat_period,
        [this, n] { tick(n); });
}

void fault_detector::tick(node_id n) {
  if (sys_->crashed(n)) {
    // A down node observes nothing: keep its horizon fresh so that after
    // recovery it does not instantly suspect every peer off stale dates.
    for (node_id peer = 0; peer < sys_->node_count(); ++peer)
      last_heard_[n][peer] = sys_->now();
    return;
  }
  sys_->net(n).send_all(ch_heartbeat, std::uint64_t{0}, 32);
  ++sent_[n];
  check(n);
}

void fault_detector::check(node_id n) {
  for (node_id peer = 0; peer < sys_->node_count(); ++peer) {
    if (peer == n || suspected_[n][peer] != 0) continue;
    if (sys_->now() - last_heard_[n][peer] > params_.timeout) {
      suspected_[n][peer] = 1;
      when_[n][peer] = sys_->now();
      sys_->trace().record(sys_->now(), n, sim::trace_kind::service_event,
                           "fault_detector",
                           "suspect node" + std::to_string(peer));
      sys_->mon().record(suspicion_event(
          core::monitor_event_kind::node_suspected, sys_->now(), n, peer));
      for (const auto& cb : callbacks_) cb(n, peer, sys_->now());
    }
  }
}

}  // namespace hades::svc
