#include "services/fault_detector.hpp"

#include <algorithm>

namespace hades::svc {

namespace {

hades::core::monitor_event suspicion_event(core::monitor_event_kind kind,
                                           time_point at, node_id observer,
                                           node_id subject) {
  core::monitor_event ev;
  ev.kind = kind;
  ev.at = at;
  ev.node = observer;
  ev.subject = "node" + std::to_string(subject);
  ev.detail = "observer node" + std::to_string(observer);
  return ev;
}

}  // namespace

fault_detector::fault_detector(core::system& sys, params p)
    : sys_(&sys),
      params_(p),
      clusters_{sys.node_count(),
                p.cluster_size > 0 ? p.cluster_size : sys.node_count()},
      net_delta_max_(sys.network().config().delta_max),
      start_(sys.now()) {
  const std::size_t n = sys_->node_count();
  obs_.resize(n);
  for (auto& o : obs_) o.horizon = start_;
  sent_.assign(n, 0);
  recoveries_.assign(n, 0);
  for (node_id me = 0; me < n; ++me) {
    sys_->net(me).on_channel(ch_heartbeat, [this, me](const sim::message& m) {
      on_heartbeat(me, m);
    });
    if (hierarchical())
      sys_->net(me).on_channel(ch_fd_digest, [this, me](const sim::message& m) {
        on_digest(me, m);
      });
  }
}

void fault_detector::start() {
  // One periodic chain per node, anchored at the node so that on the
  // sharded backend the node's sends run on its own shard (see header).
  for (node_id n = 0; n < sys_->node_count(); ++n)
    sys_->engine().periodic_at_node(
        n, sys_->now() + params_.heartbeat_period, params_.heartbeat_period,
        [this, n] { tick(n); });
}

void fault_detector::tick(node_id n) {
  if (hierarchical())
    hier_tick(n);
  else
    flat_tick(n);
}

void fault_detector::suspect(node_id observer, node_id subject) {
  observer_state& o = obs_[observer];
  if (o.suspicion.contains(subject)) return;
  const time_point now = sys_->now();
  o.suspicion[subject] = now;
  sys_->trace().record(now, observer, sim::trace_kind::service_event,
                       "fault_detector",
                       "suspect node" + std::to_string(subject));
  sys_->mon().record(suspicion_event(core::monitor_event_kind::node_suspected,
                                     now, observer, subject));
  for (const auto& cb : callbacks_) cb(observer, subject, now);
}

void fault_detector::unsuspect(node_id observer, node_id subject) {
  obs_[observer].suspicion.erase(subject);
  ++recoveries_[observer];
  const time_point now = sys_->now();
  sys_->trace().record(now, observer, sim::trace_kind::service_event,
                       "fault_detector",
                       "unsuspect node" + std::to_string(subject));
  sys_->mon().record(suspicion_event(
      core::monitor_event_kind::node_unsuspected, now, observer, subject));
  for (const auto& cb : recover_callbacks_) cb(observer, subject, now);
}

void fault_detector::on_heartbeat(node_id me, const sim::message& m) {
  observer_state& o = obs_[me];
  o.last_heard[m.src] = sys_->now();
  // The suspect speaks again: recovery (or a false suspicion under a
  // sub-bound timeout).
  if (o.suspicion.contains(m.src)) unsuspect(me, m.src);
}

// ------------------------------------------------------------------ flat --

void fault_detector::flat_tick(node_id n) {
  observer_state& o = obs_[n];
  if (sys_->crashed(n)) {
    // A down node observes nothing: keep its horizon fresh so that after
    // recovery it does not instantly suspect every peer off stale dates.
    o.horizon = sys_->now();
    return;
  }
  sys_->net(n).send_all(ch_heartbeat, std::uint64_t{0}, 32);
  ++sent_[n];
  const time_point now = sys_->now();
  for (node_id peer = 0; peer < sys_->node_count(); ++peer) {
    if (peer == n || o.suspicion.contains(peer)) continue;
    if (now - heard(o, peer) > params_.timeout) suspect(n, peer);
  }
}

// ---------------------------------------------------------- hierarchical --

node_id fault_detector::aggregator_view(const observer_state& o,
                                        std::size_t c) const {
  for (node_id v = clusters_.first(c); v < clusters_.end(c); ++v)
    if (!o.suspicion.contains(v)) return v;
  return invalid_node;
}

void fault_detector::send_digest(node_id n) {
  observer_state& o = obs_[n];
  std::vector<node_id> suspects;
  suspects.reserve(o.suspicion.size());
  o.suspicion.for_each(
      [&](node_id v, const time_point&) { suspects.push_back(v); });
  std::sort(suspects.begin(), suspects.end());
  // Wire cost: envelope plus one id per listed suspect (normally none).
  const std::size_t bytes = 32 + 4 * suspects.size();
  const std::size_t c = clusters_.cluster_of(n);
  sim::wire_payload payload(std::move(suspects));
  auto& net = sys_->net(n);
  // To every own-cluster member (the digest doubles as the aggregator's
  // heartbeat; suspected members get one too so a healed member recovers
  // off the very next digest) ...
  for (node_id v = clusters_.first(c); v < clusters_.end(c); ++v)
    if (v != n) net.send(v, ch_fd_digest, payload, bytes);
  // ... and to this observer's view of every other cluster's aggregator.
  // A fully-suspected cluster still gets a digest at its first node: were
  // both sides of a healed partition to stay silent towards each other,
  // total mutual suspicion would be an absorbing state — this probe is what
  // lets the first post-heal exchange unwind it.
  const std::size_t num_c = clusters_.cluster_count();
  for (std::size_t x = 0; x < num_c; ++x) {
    if (x == c) continue;
    const node_id ax = aggregator_view(o, x);
    net.send(ax != invalid_node ? ax : clusters_.first(x), ch_fd_digest,
             payload, bytes);
  }
}

void fault_detector::on_digest(node_id me, const sim::message& m) {
  observer_state& o = obs_[me];
  const time_point now = sys_->now();
  const node_id src = m.src;
  // A digest is heartbeat evidence for its sender and for its cluster.
  o.last_heard[src] = now;
  if (o.suspicion.contains(src)) unsuspect(me, src);
  const std::size_t c_src = clusters_.cluster_of(src);
  o.last_digest[static_cast<node_id>(c_src)] = now;

  const auto* suspects = m.payload.get<std::vector<node_id>>();
  if (suspects == nullptr) return;
  const std::size_t c_me = clusters_.cluster_of(me);
  const bool own = c_src == c_me;
  // Authority rules: my own aggregator's view is adopted wholesale (it is
  // my only window on the world) except for the aggregator itself, which I
  // supervise directly; a foreign digest is authoritative only for the
  // sender's own members. A same-cluster digest from a node that is not my
  // aggregator (diverged views during succession) is ignored — views
  // reconverge through the heartbeat evidence recorded above.
  if (own && src != aggregator_view(o, c_me)) return;
  auto in_scope = [&](node_id v) {
    if (v == me || v == src) return false;
    return own || clusters_.cluster_of(v) == c_src;
  };
  for (node_id v : *suspects)
    if (in_scope(v) && !o.suspicion.contains(v)) suspect(me, v);
  std::vector<node_id> cleared;
  o.suspicion.for_each([&](node_id v, const time_point&) {
    if (in_scope(v) &&
        !std::binary_search(suspects->begin(), suspects->end(), v))
      cleared.push_back(v);
  });
  std::sort(cleared.begin(), cleared.end());
  for (node_id v : cleared) unsuspect(me, v);
}

void fault_detector::hier_tick(node_id n) {
  observer_state& o = obs_[n];
  const time_point now = sys_->now();
  if (sys_->crashed(n)) {
    // A restart loses detector state: keep the horizon fresh AND drop the
    // suspicion view, so a recovered aggregator never digests stale
    // suspicions for its members to adopt (see header).
    o.horizon = now;
    o.suspicion.clear();
    o.agg_role = false;
    return;
  }
  const std::size_t c = clusters_.cluster_of(n);
  const node_id agg = aggregator_view(o, c);
  if (agg == n) {
    if (!o.agg_role) {
      // Freshly promoted (succession or restart): grace for every foreign
      // cluster's digests AND for the own-cluster members — neither ever
      // sent to this node while it was a plain member. Members redirect
      // their heartbeats here well within one timeout of the promotion.
      o.agg_role = true;
      for (std::size_t x = 0; x < clusters_.cluster_count(); ++x)
        if (x != c) o.last_digest[static_cast<node_id>(x)] = now;
      for (node_id v = clusters_.first(c); v < clusters_.end(c); ++v)
        if (v != n && !o.suspicion.contains(v)) o.last_heard[v] = now;
    }
    send_digest(n);
    ++sent_[n];
    // Direct supervision of own-cluster members (one-hop heartbeats).
    for (node_id v = clusters_.first(c); v < clusters_.end(c); ++v) {
      if (v == n || o.suspicion.contains(v)) continue;
      if (now - heard(o, v) > params_.timeout) suspect(n, v);
    }
    // Cross-cluster supervision through digest traffic.
    const std::size_t num_c = clusters_.cluster_count();
    for (std::size_t x = 0; x < num_c; ++x) {
      if (x == c) continue;
      const time_point dh = digest_heard(o, x);
      if (now - dh > cluster_silence()) {
        // No member of x got a digest through for the whole succession
        // allowance: presume the cluster unreachable (partition backstop).
        for (node_id v = clusters_.first(x); v < clusters_.end(x); ++v)
          if (!o.suspicion.contains(v)) suspect(n, v);
        continue;
      }
      const node_id ax = aggregator_view(o, x);
      if (ax == invalid_node) continue;
      if (now - std::max(heard(o, ax), dh) > params_.timeout) {
        suspect(n, ax);
        // Grace for the successor: a fresh horizon so it has a full
        // timeout to start digesting before it is suspected in turn.
        const node_id nx = aggregator_view(o, x);
        if (nx != invalid_node) o.last_heard[nx] = now;
      }
    }
  } else {
    o.agg_role = false;
    // Member: heartbeat to the aggregator, supervise only it.
    sys_->net(n).send(agg, ch_heartbeat, std::uint64_t{0}, 32);
    ++sent_[n];
    if (now - heard(o, agg) > params_.timeout) {
      suspect(n, agg);
      const node_id na = aggregator_view(o, c);
      if (na != invalid_node && na != n) o.last_heard[na] = now;
    }
  }
}

}  // namespace hades::svc
