// Fault-tolerant clock synchronization (paper section 2.2.1, service (vi);
// the paper names the Lundelius–Lynch algorithm [LL88]).
//
// Interactive-convergence style rounds: every resync period each node
// broadcasts its logical clock reading; receivers estimate the peer-local
// clock difference (compensating the nominal network delay); at the end of
// the collection window each node discards the f largest and f smallest
// differences — masking up to f Byzantine clocks, n >= 3f+1 — and steps its
// logical clock by the fault-tolerant average of the rest. The achieved
// skew bound is checked by tests and measured by bench_clock_sync (E6).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/system.hpp"
#include "services/channels.hpp"
#include "util/stats.hpp"

namespace hades::svc {

class clock_sync_service {
 public:
  struct params {
    duration resync_period = duration::milliseconds(100);
    duration collect_window = duration::milliseconds(2);  // > delta_max
    int max_faulty = 0;  // f: readings trimmed from each end
  };

  clock_sync_service(core::system& sys, params p);

  /// Arm the periodic rounds on every node.
  void start();

  /// Maximum pairwise logical-clock skew over the given nodes (all attached
  /// nodes when empty). Faulty/crashed nodes are the caller's business to
  /// exclude.
  [[nodiscard]] duration max_skew(const std::vector<node_id>& nodes = {}) const;

  [[nodiscard]] std::uint64_t rounds_completed() const {
    return sum_counters(rounds_);
  }
  /// Merged per-node correction statistics (all state is node-confined;
  /// merging in node order keeps the summary worker-count independent).
  [[nodiscard]] running_stats correction_magnitude() const;

 private:
  struct reading {
    node_id from;
    duration clock_value;
    time_point received_at;
  };

  void begin_round(node_id n);
  void conclude_round(node_id n, std::uint64_t round);
  void on_message(node_id n, const sim::message& m);

  core::system* sys_;
  params params_;
  duration nominal_delay_;
  std::vector<std::vector<reading>> inbox_;  // per node
  std::vector<std::uint64_t> round_of_;      // per node
  std::vector<std::uint64_t> rounds_;        // per node
  std::vector<running_stats> corrections_;   // per node
};

}  // namespace hades::svc
