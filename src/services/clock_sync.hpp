// Fault-tolerant clock synchronization (paper section 2.2.1, service (vi);
// the paper names the Lundelius–Lynch algorithm [LL88]), in two topologies.
//
// Flat (params.cluster_size == 0, the default): interactive-convergence
// style rounds — every resync period each node broadcasts its logical clock
// reading; receivers estimate the peer-local clock difference (compensating
// the nominal network delay); at the end of the collection window each node
// discards the f largest and f smallest differences — masking up to f
// Byzantine clocks, n >= 3f+1 — and steps its logical clock by the
// fault-tolerant average of the rest. O(N²) messages per round.
//
// Clustered (params.cluster_size = C > 0, DESIGN.md "Scalable topology
// layer"): readings stay within a cluster (topo::cluster_map, aggregator =
// the cluster's first node). Each round runs in two collection windows:
//   phase 1 — members unicast their reading to the aggregator, which
//     f-trims the cluster's differences into a *cluster summary* clock;
//   phase 2 — aggregators exchange summaries, f-trim those into a global
//     correction, step their own clock and beacon the corrected reading to
//     their members, who step to it (delay-compensated).
// Per-round traffic drops from O(N²) to O(N + numC²); only aggregators hold
// a round inbox, sized by the cluster, not the system. A crashed aggregator
// idles its cluster for the round (members skip the step and resume on the
// next round after recovery or — for longer outages — keep free-running on
// their hardware clocks; the achieved bound degrades by the extra drift,
// which the scenario skew checker's grading windows account for).
//
// The achieved skew bound is checked by tests and measured by
// bench_clock_sync (E6). All state is node-confined ([node]-indexed,
// touched only from that node's events, i.e. its shard) and every send is
// anchored on the sending node's chain, preserving the campaign's
// cross-backend checksum determinism.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/system.hpp"
#include "services/channels.hpp"
#include "services/topology.hpp"
#include "util/stats.hpp"

namespace hades::svc {

class clock_sync_service {
 public:
  struct params {
    duration resync_period = duration::milliseconds(100);
    duration collect_window = duration::milliseconds(2);  // > delta_max
    int max_faulty = 0;  // f: readings trimmed from each end
    /// 0 = flat all-to-all rounds; C > 0 = clustered two-phase rounds with
    /// per-cluster aggregators (readings trimmed to cluster scope).
    std::size_t cluster_size = 0;
  };

  clock_sync_service(core::system& sys, params p);

  /// Arm the periodic rounds on every node.
  void start();

  /// Maximum pairwise logical-clock skew over the given nodes (all attached
  /// nodes when empty). Faulty/crashed nodes are the caller's business to
  /// exclude.
  [[nodiscard]] duration max_skew(const std::vector<node_id>& nodes = {}) const;

  [[nodiscard]] std::uint64_t rounds_completed() const {
    return sum_counters(rounds_);
  }
  /// Merged per-node correction statistics (all state is node-confined;
  /// merging in node order keeps the summary worker-count independent).
  [[nodiscard]] running_stats correction_magnitude() const;
  [[nodiscard]] bool clustered() const { return params_.cluster_size > 0; }

 private:
  struct reading {
    node_id from;
    duration clock_value;
    time_point received_at;
  };

  void begin_round(node_id n);
  void conclude_round(node_id n, std::uint64_t round);
  void summarize_cluster(node_id n, std::uint64_t round);
  void conclude_cluster(node_id n, std::uint64_t round);
  void on_message(node_id n, const sim::message& m);
  void apply_correction(node_id n, duration correction);
  /// f-trimmed average difference between the boxed readings (aged to
  /// "now", delay-compensated for remote ones) and node n's clock; nullopt
  /// when fewer than 2f+1 readings arrived.
  [[nodiscard]] std::optional<duration> trimmed_offset(
      node_id n, const std::vector<reading>& box) const;

  core::system* sys_;
  params params_;
  topo::cluster_map clusters_;
  time_point start_;  // rounds are (now - start_) / resync_period
  duration nominal_delay_;
  std::vector<std::vector<reading>> inbox_;      // per node (phase 1)
  std::vector<std::vector<reading>> summaries_;  // per aggregator (phase 2)
  std::vector<std::uint64_t> round_of_;          // per node
  std::vector<std::uint64_t> rounds_;            // per node
  std::vector<running_stats> corrections_;       // per node
};

}  // namespace hades::svc
