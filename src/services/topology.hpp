// Deterministic communication topologies for the scalable generic services
// (DESIGN.md, "Scalable topology layer").
//
// The flat reproductions of the paper's services talk all-to-all: O(N²)
// messages and per-pair state. At 1k-10k nodes the services instead derive
// bounded neighbour sets from two pure functions of (node count, a small
// parameter) — no membership protocol, no shared state, so every node on
// every shard computes the identical topology and the scenario campaign's
// cross-backend checksum gate is untouched:
//
//   * cluster_map — contiguous clusters of `cluster_size` nodes. The fault
//     detector supervises within a cluster through an elected aggregator
//     and across clusters through aggregator digest exchange; clock sync
//     aggregates readings per cluster the same way.
//   * origin-rotated k-ary spanning tree — for reliable broadcast. Node v's
//     tree position for a broadcast from `origin` is label
//     (v - origin) mod N in a complete k-ary tree: children of label l are
//     k*l + 1 .. k*l + k. Rotating by the origin spreads relay load evenly
//     across origins while keeping the tree a pure function both sender and
//     receiver can evaluate locally.
#pragma once

#include <cstddef>

#include "util/types.hpp"

namespace hades::svc::topo {

/// Contiguous clustering of nodes [0, N) into groups of `cluster_size`
/// (the last cluster may be smaller). Everything is index arithmetic; a
/// cluster id is itself a small integer usable as a sparse-map key.
struct cluster_map {
  std::size_t nodes = 0;
  std::size_t cluster_size = 0;

  [[nodiscard]] std::size_t cluster_count() const {
    return (nodes + cluster_size - 1) / cluster_size;
  }
  [[nodiscard]] std::size_t cluster_of(node_id v) const {
    return v / cluster_size;
  }
  /// First node of cluster `c`.
  [[nodiscard]] node_id first(std::size_t c) const {
    return static_cast<node_id>(c * cluster_size);
  }
  /// One past the last node of cluster `c`.
  [[nodiscard]] node_id end(std::size_t c) const {
    const std::size_t e = (c + 1) * cluster_size;
    return static_cast<node_id>(e < nodes ? e : nodes);
  }
  [[nodiscard]] std::size_t size_of(std::size_t c) const {
    return end(c) - first(c);
  }
};

/// Origin-rotated complete k-ary broadcast tree over nodes [0, N).
struct kary_tree {
  std::size_t nodes = 0;
  std::size_t fanout = 4;

  /// Tree label of node v for a broadcast rooted at `origin` (root = 0).
  [[nodiscard]] std::size_t label_of(node_id origin, node_id v) const {
    return (static_cast<std::size_t>(v) + nodes -
            static_cast<std::size_t>(origin)) % nodes;
  }
  /// Node holding tree label `l` for a broadcast rooted at `origin`.
  [[nodiscard]] node_id node_at(node_id origin, std::size_t l) const {
    return static_cast<node_id>((static_cast<std::size_t>(origin) + l) %
                                nodes);
  }
  [[nodiscard]] std::size_t parent_label(std::size_t l) const {
    return (l - 1) / fanout;
  }
  [[nodiscard]] std::size_t first_child(std::size_t l) const {
    return fanout * l + 1;
  }
  /// Depth of label `l` (root = 0).
  [[nodiscard]] std::size_t depth_of(std::size_t l) const {
    std::size_t d = 0;
    while (l != 0) {
      l = parent_label(l);
      ++d;
    }
    return d;
  }
  /// Height of the tree: the depth of the deepest label, i.e. the number of
  /// relay hops a leaf-bound message traverses below the root.
  [[nodiscard]] std::size_t height() const {
    std::size_t h = 0;
    std::size_t level_end = 1;  // labels [0, level_end) fit in height h
    while (level_end < nodes) {
      level_end = fanout * level_end + 1;  // 1 + k + k^2 + ...
      ++h;
    }
    return h;
  }
};

}  // namespace hades::svc::topo
