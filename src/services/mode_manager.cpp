#include "services/mode_manager.hpp"

namespace hades::svc {

mode_manager::mode_manager(core::system& sys, thresholds t, node_id home)
    : sys_(&sys), thresholds_(t), home_(home) {
  // Redelivered on the home shard one minimum network hop after the
  // recording — a backend-independent date that equals the sharded
  // backend's cross-shard lookahead (see header).
  sys_->mon().subscribe_at_node(
      home_, sys_->network().config().delta_min,
      [this](const core::monitor_event& e) { consider(e); });
}

void mode_manager::consider(const core::monitor_event& e) {
  switch (e.kind) {
    case core::monitor_event_kind::deadline_miss:
      ++misses_;
      break;
    case core::monitor_event_kind::node_crash:
      ++crashes_;
      break;
    case core::monitor_event_kind::node_suspected:
      if (thresholds_.suspicions_for_degraded == 0) return;
      ++suspected_subjects_[e.subject];
      break;
    case core::monitor_event_kind::node_unsuspected: {
      if (thresholds_.suspicions_for_degraded == 0) return;
      auto it = suspected_subjects_.find(e.subject);
      if (it != suspected_subjects_.end() && --it->second == 0)
        suspected_subjects_.erase(it);
      return;  // retractions never trigger a switch
    }
    default:
      return;
  }
  if (mode_ != op_mode::safe &&
      (misses_ >= thresholds_.misses_for_safe ||
       crashes_ >= thresholds_.crashes_for_safe)) {
    switch_to(op_mode::safe);
    return;
  }
  if (mode_ == op_mode::normal &&
      (misses_ >= thresholds_.misses_for_degraded ||
       (thresholds_.crashes_for_degraded > 0 &&
        crashes_ >= thresholds_.crashes_for_degraded) ||
       (thresholds_.suspicions_for_degraded > 0 &&
        suspected_subjects_.size() >= thresholds_.suspicions_for_degraded)))
    switch_to(op_mode::degraded);
}

void mode_manager::switch_to(op_mode m) {
  if (m == mode_) return;
  const op_mode from = mode_;
  mode_ = m;
  ++switches_;
  last_switch_ = sys_->now();
  // State capture at the switch point.
  captured_.clear();
  for (task_id t : sys_->tasks()) captured_[t] = sys_->task_state(t);
  sys_->trace().record(sys_->now(), home_, sim::trace_kind::service_event,
                       "mode_manager",
                       std::string(to_string(from)) + " -> " + to_string(m));
  for (const auto& h : hooks_) h(from, m, sys_->now());
}

void mode_manager::force_mode(op_mode m) {
  misses_ = 0;
  crashes_ = 0;
  suspected_subjects_.clear();
  switch_to(m);
}

}  // namespace hades::svc
