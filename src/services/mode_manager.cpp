#include "services/mode_manager.hpp"

#include <utility>

#include "services/channels.hpp"

namespace hades::svc {

namespace {

// Capture protocol frames (ch_mode_capture). The request asks a task's
// home node to read the state blob on its own shard; the reply carries the
// blob back tagged with the switch epoch that asked for it.
struct capture_request {
  std::uint64_t epoch = 0;
  task_id task = invalid_task;
  node_id reply_to = 0;
};

struct capture_reply {
  std::uint64_t epoch = 0;
  task_id task = invalid_task;
  std::any state;
};

}  // namespace

mode_manager::mode_manager(core::system& sys, thresholds t, node_id home)
    : sys_(&sys), thresholds_(t), home_(home) {
  // Redelivered on the home shard one minimum network hop after the
  // recording — a backend-independent date that equals the sharded
  // backend's cross-shard lookahead (see header).
  sys_->mon().subscribe_at_node(
      home_, sys_->network().config().delta_min,
      [this](const core::monitor_event& e) { consider(e); });
  // Capture protocol: every node answers requests for the tasks it homes;
  // replies only matter on `home`, where the capture map lives.
  for (std::size_t n = 0; n < sys_->node_count(); ++n) {
    const auto nid = static_cast<node_id>(n);
    sys_->net(nid).on_channel(
        ch_mode_capture, [this, nid](const sim::message& m) {
          if (const auto* rq = m.payload.get<capture_request>()) {
            capture_reply rep;
            rep.epoch = rq->epoch;
            rep.task = rq->task;
            rep.state = sys_->task_state(rq->task);  // read on the owning shard
            sys_->net(nid).send(rq->reply_to, ch_mode_capture,
                                std::move(rep), 64);
            return;
          }
          const auto* rp = m.payload.get<capture_reply>();
          if (rp == nullptr) return;
          if (rp->epoch != switches_) return;  // superseded switch: drop
          captured_[rp->task] = sim::wire_payload(std::any(rp->state));
        });
  }
}

void mode_manager::consider(const core::monitor_event& e) {
  switch (e.kind) {
    case core::monitor_event_kind::deadline_miss:
      ++misses_;
      break;
    case core::monitor_event_kind::node_crash:
      ++crashes_;
      break;
    case core::monitor_event_kind::node_suspected:
      if (thresholds_.suspicions_for_degraded == 0) return;
      ++suspected_subjects_[e.subject];
      break;
    case core::monitor_event_kind::node_unsuspected: {
      if (thresholds_.suspicions_for_degraded == 0) return;
      auto it = suspected_subjects_.find(e.subject);
      if (it != suspected_subjects_.end() && --it->second == 0)
        suspected_subjects_.erase(it);
      return;  // retractions never trigger a switch
    }
    default:
      return;
  }
  if (mode_ != op_mode::safe &&
      (misses_ >= thresholds_.misses_for_safe ||
       crashes_ >= thresholds_.crashes_for_safe)) {
    switch_to(op_mode::safe);
    return;
  }
  if (mode_ == op_mode::normal &&
      (misses_ >= thresholds_.misses_for_degraded ||
       (thresholds_.crashes_for_degraded > 0 &&
        crashes_ >= thresholds_.crashes_for_degraded) ||
       (thresholds_.suspicions_for_degraded > 0 &&
        suspected_subjects_.size() >= thresholds_.suspicions_for_degraded)))
    switch_to(op_mode::degraded);
}

void mode_manager::switch_to(op_mode m) {
  if (m == mode_) return;
  const op_mode from = mode_;
  mode_ = m;
  ++switches_;
  last_switch_ = sys_->now();
  // State capture at the switch point (paper 3.2.1): home-shard tasks are
  // snapshotted synchronously, remote tasks through the epoch-tagged
  // request/reply — no cross-shard read of another shard's blob.
  captured_.clear();
  for (task_id t : sys_->tasks()) {
    const node_id h = sys_->graph(t).home_node();
    if (h == home_) {
      captured_[t] = sim::wire_payload(std::any(sys_->task_state(t)));
    } else {
      capture_request rq;
      rq.epoch = switches_;
      rq.task = t;
      rq.reply_to = home_;
      sys_->net(home_).send(h, ch_mode_capture, std::move(rq), 48);
    }
  }
  sys_->trace().record(sys_->now(), home_, sim::trace_kind::service_event,
                       "mode_manager",
                       std::string(to_string(from)) + " -> " + to_string(m));
  for (const auto& h : hooks_) h(from, m, sys_->now());
}

std::uint64_t mode_manager::capture_digest() const {
  // FNV-1a over the switch count and captured task ids; map order makes
  // the fold deterministic.
  std::uint64_t h = 0xCBF29CE484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ull;
    }
  };
  mix(switches_);
  mix(captured_.size());
  for (const auto& [t, blob] : captured_) mix(t);
  return h;
}

void mode_manager::force_mode(op_mode m) {
  misses_ = 0;
  crashes_ = 0;
  suspected_subjects_.clear();
  switch_to(m);
}

}  // namespace hades::svc
