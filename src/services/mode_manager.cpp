#include "services/mode_manager.hpp"

namespace hades::svc {

mode_manager::mode_manager(core::system& sys, thresholds t)
    : sys_(&sys), thresholds_(t) {
  sys_->mon().subscribe([this](const core::monitor_event& e) { consider(e); });
}

void mode_manager::consider(const core::monitor_event& e) {
  switch (e.kind) {
    case core::monitor_event_kind::deadline_miss:
      ++misses_;
      break;
    case core::monitor_event_kind::node_crash:
      ++crashes_;
      break;
    default:
      return;
  }
  if (mode_ != op_mode::safe &&
      (misses_ >= thresholds_.misses_for_safe ||
       crashes_ >= thresholds_.crashes_for_safe)) {
    switch_to(op_mode::safe);
    return;
  }
  if (mode_ == op_mode::normal &&
      (misses_ >= thresholds_.misses_for_degraded ||
       (thresholds_.crashes_for_degraded > 0 &&
        crashes_ >= thresholds_.crashes_for_degraded)))
    switch_to(op_mode::degraded);
}

void mode_manager::switch_to(op_mode m) {
  if (m == mode_) return;
  const op_mode from = mode_;
  mode_ = m;
  ++switches_;
  last_switch_ = sys_->now();
  // State capture at the switch point.
  captured_.clear();
  for (task_id t : sys_->tasks()) captured_[t] = sys_->task_state(t);
  sys_->trace().record(sys_->now(), invalid_node,
                       sim::trace_kind::service_event, "mode_manager",
                       std::string(to_string(from)) + " -> " + to_string(m));
  for (const auto& h : hooks_) h(from, m, sys_->now());
}

void mode_manager::force_mode(op_mode m) {
  misses_ = 0;
  crashes_ = 0;
  switch_to(m);
}

}  // namespace hades::svc
