// Persistent storage service (paper section 2.2.1, service (iv)).
//
// Stable storage in the classic two-copy construction: every record is kept
// as two checksummed, versioned replicas on the simulated disk. A write
// updates copy A, then copy B; a crash between the two leaves exactly one
// valid newer copy, and `recover()` repairs by picking, per record, the
// newest copy with a valid checksum. Tests drive crash injection at every
// write step and assert atomicity (a read never observes a torn record)
// plus durability of the last completed put.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "util/error.hpp"

namespace hades::svc {

class stable_store {
 public:
  /// When to crash relative to the next put (fault injection).
  enum class crash_point { none, before_first_copy, between_copies, after_both };

  /// Read of one logical record.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Atomic durable write. Returns false when the injected crash stopped
  /// the write (the store is then "down" until recover()).
  bool put(const std::string& key, std::string value);

  /// Simulated reboot: validates both copies of every record and repairs
  /// the losing copy from the winner. Returns the number of repaired records.
  std::size_t repair_and_restart();

  void inject_crash(crash_point p) { crash_ = p; }
  [[nodiscard]] bool is_down() const { return down_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }

 private:
  struct copy {
    std::uint64_t version = 0;
    std::string value;
    std::uint64_t checksum = 0;
    bool valid() const;
  };
  struct record {
    copy a;
    copy b;
  };
  static std::uint64_t checksum_of(std::uint64_t version,
                                   const std::string& value);
  [[nodiscard]] const copy* best_of(const record& r) const;

  std::map<std::string, record> disk_;
  crash_point crash_ = crash_point::none;
  bool down_ = false;
  std::uint64_t writes_ = 0;
};

}  // namespace hades::svc
