// Time-bounded reliable communication (paper section 2.2.1, services (i):
// time-bounded point-to-point communication and time-bounded
// multicast/broadcast — "Rel. Bcast" / "Rel. Mcast" of Figure 1).
//
// Point-to-point: omission failures of degree k are masked by sending k+1
// copies spaced by `retry_spacing`; receivers deduplicate on (src, seq).
// Worst-case delivery latency is therefore
//     k * retry_spacing + delta_max + per-byte cost
// which `p2p_bound()` exposes for feasibility integration.
//
// Broadcast: flooding diffusion — on first receipt every node relays the
// message once, so if any correct node delivers, every correct node
// delivers even when the sender crashes mid-broadcast (agreement).
// Optional Delta-delivery imposes total order: messages are held back and
// delivered at send_time + stability_delay in (timestamp, sender) order.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "core/system.hpp"
#include "services/channels.hpp"

namespace hades::svc {

class reliable_p2p {
 public:
  struct params {
    int omission_degree = 1;  // k: copies sent = k+1
    duration retry_spacing = duration::microseconds(200);
  };

  using deliver_fn = std::function<void(node_id src, const std::any& payload)>;

  reliable_p2p(core::system& sys, params p);

  void on_deliver(node_id n, deliver_fn fn) { handlers_[n] = std::move(fn); }
  void send(node_id src, node_id dst, std::any payload,
            std::size_t size_bytes = 64);

  /// Worst-case fault-free + <=k-omission delivery bound for `size` bytes.
  [[nodiscard]] duration p2p_bound(std::size_t size_bytes) const;

  [[nodiscard]] std::uint64_t duplicates_suppressed() const { return dups_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }

 private:
  struct frame {
    std::uint64_t seq;
    std::any payload;
  };
  void on_message(node_id n, const sim::message& m);

  core::system* sys_;
  params params_;
  std::map<node_id, deliver_fn> handlers_;
  std::uint64_t next_seq_ = 1;
  std::map<node_id, std::map<node_id, std::set<std::uint64_t>>> seen_;
  std::uint64_t dups_ = 0;
  std::uint64_t delivered_ = 0;
};

class reliable_broadcast {
 public:
  struct params {
    bool total_order = false;
    duration stability_delay = duration::milliseconds(2);  // Delta
  };

  struct bcast_msg {
    node_id origin = invalid_node;
    std::uint64_t seq = 0;
    time_point sent_at;
    std::any payload;
  };

  using deliver_fn = std::function<void(const bcast_msg&)>;

  reliable_broadcast(core::system& sys, params p);

  void on_deliver(node_id n, deliver_fn fn) { handlers_[n] = std::move(fn); }
  void broadcast(node_id src, std::any payload, std::size_t size_bytes = 64);

  /// Agreement bound: one hop to every node plus one relay hop.
  [[nodiscard]] duration delivery_bound(std::size_t size_bytes) const;

  [[nodiscard]] std::uint64_t relays() const { return relays_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  /// Per-node sequence of delivered (origin, seq) pairs — for
  /// agreement/total-order assertions in tests.
  [[nodiscard]] const std::vector<std::pair<node_id, std::uint64_t>>&
  delivery_log(node_id n) const {
    return logs_.at(n);
  }

 private:
  void on_message(node_id n, const sim::message& m);
  void accept(node_id n, const bcast_msg& msg);
  void deliver(node_id n, const bcast_msg& msg);

  core::system* sys_;
  params params_;
  std::map<node_id, deliver_fn> handlers_;
  std::map<node_id, std::set<std::pair<node_id, std::uint64_t>>> seen_;
  std::map<node_id, std::vector<std::pair<node_id, std::uint64_t>>> logs_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t relays_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace hades::svc
