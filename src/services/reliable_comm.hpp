// Time-bounded reliable communication (paper section 2.2.1, services (i):
// time-bounded point-to-point communication and time-bounded
// multicast/broadcast — "Rel. Bcast" / "Rel. Mcast" of Figure 1).
//
// Point-to-point: omission failures of degree k are masked by sending k+1
// copies spaced by `retry_spacing`; receivers deduplicate on (src, seq),
// with sequence numbers counted per (src, dst) link so the dedup state can
// be kept as a contiguous-prefix watermark plus a bounded out-of-order
// window (`dedup_window`) instead of an ever-growing set. Per-link send and
// dedup state lives in open-addressed sparse maps keyed by the peers
// actually talked to (util/sparse_map.hpp) — O(active links), never O(N)
// per node. Worst-case delivery latency is
//     k * retry_spacing + delta_max + per-byte cost
// which `p2p_bound()` exposes for feasibility integration.
//
// Broadcast diffusion comes in two modes (params::diffusion):
//
//   * flood (default) — on first receipt every node relays the message once
//     (at the message's true size: relays pay the same wire cost as the
//     original copy), so if any correct node delivers, every correct node
//     delivers even when the sender crashes mid-broadcast (agreement).
//     O(N²) sends per broadcast; worst-case diffusion is one direct hop
//     plus one relay hop.
//   * tree — deterministic origin-rotated k-ary spanning-tree relay
//     (topo::kary_tree, DESIGN.md "Scalable topology layer"): every node
//     forwards its first copy to its tree children AND grandchildren, so a
//     single crashed-but-not-yet-suspected interior node is masked
//     deterministically — the orphaned subtree hears the message from its
//     grandparent with no detector latency in the delivery bound. Nodes the
//     relayer currently *suspects* (via `set_suspicion_oracle`, wired to
//     the fault detector) are additionally resolved through: their children
//     are adopted into the forward set transitively (re-parenting), while
//     the suspect itself still gets its copy in case the suspicion is
//     false. ~2N sends per broadcast; worst-case diffusion is the tree
//     height in hops.
//
// Optional Delta-delivery imposes total order with a per-node hold-back
// queue: a message becomes releasable at
//     sent_at + max(stability_delay, worst-case diffusion for its size)
// and messages are released strictly in (sent_at, origin, seq) order. The
// max() term is what keeps the order total when the relay path exceeds
// stability_delay (a relay arriving after sent_at + Delta used to be
// delivered at arrival, interleaving behind younger messages); the
// worst-case diffusion term is hop-count-aware — two hops under flooding,
// `tree height` hops under tree relay — and `delivery_bound()` reports the
// same max, so the advertised bound and the release rule agree. Only a
// performance-faulty network (delivery beyond delta_max) can breach the
// hold-back; such stragglers are delivered immediately and counted in
// `order_faults()`.
//
// Shard confinement (DESIGN.md): every container is indexed by the node the
// handler executes on — dedup windows, hold-back queues and delivery logs
// by receiver, broadcast sequence numbers by origin — and pre-sized at
// construction, so worker threads advancing different shards never share a
// map node (sparse-map slot growth happens on the owning node's shard).
// Counters are per-node and summed at read time, making totals
// worker-count independent. `on_deliver` handlers run on the delivering
// node's shard and must be shard-confined for worker-threaded runs. The
// suspicion oracle is called as (observer = relaying node, subject) from
// the relayer's shard — the fault detector's observer-confined state
// satisfies this by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "core/system.hpp"
#include "services/channels.hpp"
#include "services/topology.hpp"
#include "util/sparse_map.hpp"
#include "util/stats.hpp"

namespace hades::svc {

/// Bounded duplicate-suppression state for one (receiver, source) stream:
/// the highest sequence number below which everything was seen, plus a
/// bounded out-of-order window above it. When the window overflows (more
/// than `max_window` gaps outstanding — message loss beyond the masked
/// omission degree), the oldest gap is declared lost and the watermark
/// advances, so state stays bounded under unbounded traffic.
class dedup_window {
 public:
  explicit dedup_window(std::size_t max_window = 1024)
      : max_window_(max_window) {}

  /// Returns true iff `seq` was never seen before (and records it).
  bool insert(std::uint64_t seq) {
    if (seq <= contiguous_) return false;
    if (!pending_.insert(seq).second) return false;
    while (!pending_.empty() && *pending_.begin() == contiguous_ + 1) {
      ++contiguous_;
      pending_.erase(pending_.begin());
    }
    while (pending_.size() > max_window_) {
      contiguous_ = *pending_.begin();
      pending_.erase(pending_.begin());
    }
    return true;
  }

  [[nodiscard]] std::uint64_t watermark() const { return contiguous_; }
  [[nodiscard]] std::size_t window_size() const { return pending_.size(); }
  [[nodiscard]] std::size_t state_bytes() const {
    // The set's per-node overhead (3 pointers + colour, rounded up) plus
    // the key — an estimate, for growth assertions rather than accounting.
    return sizeof(*this) + pending_.size() * (sizeof(std::uint64_t) + 32);
  }

 private:
  std::size_t max_window_;
  std::uint64_t contiguous_ = 0;  // every seq <= contiguous_ was seen
  std::set<std::uint64_t> pending_;  // seen, above the contiguous prefix
};

class reliable_p2p {
 public:
  struct params {
    int omission_degree = 1;  // k: copies sent = k+1
    duration retry_spacing = duration::microseconds(200);
  };

  using deliver_fn =
      std::function<void(node_id src, const sim::wire_payload& payload)>;

  reliable_p2p(core::system& sys, params p);

  void on_deliver(node_id n, deliver_fn fn) { handlers_[n] = std::move(fn); }
  void send(node_id src, node_id dst, sim::wire_payload payload,
            std::size_t size_bytes = 64);

  /// Worst-case fault-free + <=k-omission delivery bound for `size` bytes.
  [[nodiscard]] duration p2p_bound(std::size_t size_bytes) const;

  [[nodiscard]] std::uint64_t duplicates_suppressed() const {
    return sum_counters(dups_);
  }
  [[nodiscard]] std::uint64_t delivered() const {
    return sum_counters(delivered_);
  }
  /// Approximate bytes of dedup state held — bounded under sustained
  /// traffic (watermark + window per active (receiver, src) pair).
  [[nodiscard]] std::size_t state_bytes() const;

 private:
  struct frame {
    std::uint64_t seq;
    sim::wire_payload payload;  // nested: the user's pooled payload, shared
  };
  void on_message(node_id n, const sim::message& m);

  core::system* sys_;
  params params_;
  std::map<node_id, deliver_fn> handlers_;
  // Sparse per-link state, keyed by the peers actually communicated with.
  std::vector<util::sparse_node_map<std::uint64_t>> next_seq_;  // [src]: dst
  std::vector<util::sparse_node_map<dedup_window>> seen_;       // [recv]: src
  std::vector<std::uint64_t> dups_;       // per receiver
  std::vector<std::uint64_t> delivered_;  // per receiver
};

class reliable_broadcast {
 public:
  enum class diffusion_kind {
    flood,  // every node relays once to everyone: O(N²) sends, 2 hops
    tree,   // origin-rotated k-ary tree relay: ~2N sends, height hops
  };

  struct params {
    bool total_order = false;
    duration stability_delay = duration::milliseconds(2);  // Delta
    /// Largest payload admitted under Delta-delivery. The hold-back release
    /// date must outwait the worst-case diffusion of ANY message that could
    /// carry an earlier key — a later small message must not be released
    /// while an earlier large one is still legitimately in flight — so the
    /// horizon is computed from this bound, and `broadcast` rejects larger
    /// total-order payloads.
    std::size_t max_message_bytes = 64;
    /// Keep per-node (origin, seq) delivery logs for test assertions.
    /// Unbounded by design (one entry per delivery) — disable for long
    /// soaks; `state_bytes()` accounts for it while enabled.
    bool record_deliveries = true;
    diffusion_kind diffusion = diffusion_kind::flood;
    /// k of the spanning tree (diffusion_kind::tree only).
    std::size_t tree_fanout = 4;
  };

  struct bcast_msg {
    node_id origin = invalid_node;
    std::uint64_t seq = 0;  // per-origin, starting at 1
    time_point sent_at;
    std::size_t size_bytes = 64;  // carried so relays pay the true wire cost
    sim::wire_payload payload;    // shared by refcount through relays
  };

  using deliver_fn = std::function<void(const bcast_msg&)>;

  reliable_broadcast(core::system& sys, params p);

  void on_deliver(node_id n, deliver_fn fn) { handlers_[n] = std::move(fn); }
  void broadcast(node_id src, sim::wire_payload payload,
                 std::size_t size_bytes = 64);

  /// Tree mode: consult `fn(observer, subject)` when computing forward
  /// sets — a suspected relay's children are adopted by its parent
  /// (re-parenting). Wire it to `fault_detector::suspects`. The oracle is
  /// called from the observer's shard only.
  void set_suspicion_oracle(std::function<bool(node_id, node_id)> fn) {
    suspicion_ = std::move(fn);
  }

  /// Worst-case delivery bound for `size` bytes: the diffusion path —
  /// direct hop + relay hop under flooding, tree-height hops under tree
  /// relay, all at `size` — and under Delta-delivery the release date
  /// max(stability_delay, diffusion of the largest admitted payload).
  [[nodiscard]] duration delivery_bound(std::size_t size_bytes) const;

  [[nodiscard]] std::uint64_t relays() const { return sum_counters(relays_); }
  [[nodiscard]] std::uint64_t delivered() const {
    return sum_counters(delivered_);
  }
  /// Messages that arrived after their release date (performance-faulty
  /// network): delivered immediately, possibly breaching total order.
  [[nodiscard]] std::uint64_t order_faults() const {
    return sum_counters(order_faults_);
  }
  /// Approximate bytes of dedup + hold-back state held — bounded under
  /// sustained traffic.
  [[nodiscard]] std::size_t state_bytes() const;
  /// Per-node sequence of delivered (origin, seq) pairs — for
  /// agreement/total-order assertions in tests. Empty when
  /// `params::record_deliveries` is off.
  [[nodiscard]] const std::vector<std::pair<node_id, std::uint64_t>>&
  delivery_log(node_id n) const {
    return logs_.at(n);
  }

 private:
  /// Total-order release key: (sent_at, origin, seq), identical on every
  /// node.
  struct order_key {
    time_point sent_at;
    node_id origin = invalid_node;
    std::uint64_t seq = 0;
    friend auto operator<=>(const order_key&, const order_key&) = default;
  };

  void on_message(node_id n, const sim::message& m);
  void accept(node_id n, const bcast_msg& msg);
  void deliver(node_id n, const bcast_msg& msg);
  void flush(node_id n);
  void relay(node_id n, const bcast_msg& msg);
  /// Tree forward set of node `n` for a broadcast rooted at `origin`:
  /// children + grandchildren, suspected entries resolved through to their
  /// children transitively, deduplicated, in label order (deterministic
  /// send order — the per-source rng stream depends on it).
  [[nodiscard]] std::vector<node_id> relay_targets(node_id n,
                                                   node_id origin) const;
  [[nodiscard]] std::size_t diffusion_hops() const;
  [[nodiscard]] time_point release_time(const bcast_msg& msg) const;

  core::system* sys_;
  params params_;
  std::map<node_id, deliver_fn> handlers_;
  std::function<bool(node_id, node_id)> suspicion_;
  std::vector<util::sparse_node_map<dedup_window>> seen_;  // [node]: origin
  std::vector<std::map<order_key, bcast_msg>> holdback_;  // per node
  std::vector<std::vector<std::pair<node_id, std::uint64_t>>> logs_;
  std::vector<std::uint64_t> next_seq_;      // per origin
  std::vector<std::uint64_t> relays_;        // per relaying node
  std::vector<std::uint64_t> delivered_;     // per delivering node
  std::vector<std::uint64_t> order_faults_;  // per delivering node
};

}  // namespace hades::svc
