// Operating-mode management (paper section 3.2.1: the dispatcher "includes
// low-level fault-tolerance mechanisms (e.g. state capture, switching of
// modes of operation in case of failure [Mos94])").
//
// The manager watches the monitor stream and switches between NORMAL,
// DEGRADED and SAFE modes when configured thresholds are crossed: deadline
// misses, node crashes, and — for faults a crash counter cannot see, like
// partitions — the number of distinct peers the fault detector suspects
// (`suspicions_for_degraded`). A mode switch captures the current task
// states (state capture) and invokes the registered entry hook within a
// bounded time.
//
// Shard confinement (DESIGN.md): mode state lives on the shard owning
// `home` (node 0 by default). The manager subscribes to the monitor with
// `subscribe_at_node`, so every monitor event — recorded on whatever shard
// the fault touched — is redelivered on the home shard at
// `event date + delta_min`. The delay is the same constant on every
// backend, which keeps switch dates bit-identical across shard and worker
// counts; it is also exactly the sharded backend's cross-shard lookahead,
// making the redelivery legal from any shard. Switch latency is therefore
// one minimum network hop — still far inside the scenario checkers'
// millisecond bound.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "sim/wire_payload.hpp"

namespace hades::svc {

enum class op_mode { normal, degraded, safe };

[[nodiscard]] constexpr const char* to_string(op_mode m) {
  switch (m) {
    case op_mode::normal: return "NORMAL";
    case op_mode::degraded: return "DEGRADED";
    case op_mode::safe: return "SAFE";
  }
  return "?";
}

class mode_manager {
 public:
  struct thresholds {
    std::size_t misses_for_degraded = 1;
    std::size_t misses_for_safe = 3;
    std::size_t crashes_for_safe = 1;
    /// 0 disables; otherwise this many node crashes degrade operation (the
    /// scenario campaign's single-crash plans use 1 here with a higher
    /// crashes_for_safe so one crash degrades and a second one safes).
    std::size_t crashes_for_degraded = 0;
    /// 0 disables; otherwise operation degrades once this many *distinct*
    /// nodes are concurrently suspected by the fault detector
    /// (suspicion-driven mode policy: a partition crashes nothing, but both
    /// sides suspect each other — see the partition_degrades_mode
    /// scenario). A retracted suspicion (node_unsuspected: the subject was
    /// heard again) stops counting, so transient false suspicions do not
    /// accumulate toward degradation forever.
    std::size_t suspicions_for_degraded = 0;
  };

  using hook_fn = std::function<void(op_mode from, op_mode to, time_point at)>;

  /// `home` is the node whose shard owns the mode state; hooks and state
  /// capture run there.
  mode_manager(core::system& sys, thresholds t, node_id home = 0);

  void on_switch(hook_fn fn) { hooks_.push_back(std::move(fn)); }

  [[nodiscard]] op_mode mode() const { return mode_; }
  [[nodiscard]] std::uint64_t switches() const { return switches_; }
  [[nodiscard]] time_point last_switch() const { return last_switch_; }
  [[nodiscard]] node_id home() const { return home_; }

  /// State capture: snapshot of every registered task's state blob at the
  /// moment of the most recent switch, keyed by task and held as pooled
  /// wire payloads (each wrapping the task's `std::any` blob). Tasks homed
  /// on `home` are captured synchronously at the switch; tasks homed
  /// elsewhere are captured by an epoch-tagged request/reply exchange on
  /// ch_mode_capture — the reply reads the blob on the *owning* shard, so
  /// worker-threaded runs never touch another shard's state, and lands
  /// within two network hops of the switch. A straggler reply from a
  /// superseded switch is dropped by its stale epoch.
  [[nodiscard]] const std::map<task_id, sim::wire_payload>& captured_state()
      const {
    return captured_;
  }

  /// Typed view of one captured blob; null when absent (not yet replied,
  /// or never captured).
  template <typename T>
  [[nodiscard]] const T* captured(task_id t) const {
    auto it = captured_.find(t);
    if (it == captured_.end()) return nullptr;
    const std::any* blob = it->second.template get<std::any>();
    return blob == nullptr ? nullptr : std::any_cast<T>(blob);
  }

  /// Order-independent digest of the capture set (switch count plus the
  /// captured task ids) — what the scenario campaign folds into its
  /// cross-backend determinism checksum.
  [[nodiscard]] std::uint64_t capture_digest() const;

  /// Manual transition (e.g. operator command or recovery complete).
  void force_mode(op_mode m);

 private:
  void consider(const core::monitor_event& e);
  void switch_to(op_mode m);

  core::system* sys_;
  thresholds thresholds_;
  node_id home_ = 0;
  op_mode mode_ = op_mode::normal;
  std::size_t misses_ = 0;
  std::size_t crashes_ = 0;
  // subject -> number of observers currently suspecting it; an entry is
  // erased when its last suspicion is retracted, so size() is the count of
  // distinct concurrently-suspected nodes.
  std::map<std::string, std::size_t> suspected_subjects_;
  std::uint64_t switches_ = 0;
  time_point last_switch_;
  std::map<task_id, sim::wire_payload> captured_;
  std::vector<hook_fn> hooks_;
};

}  // namespace hades::svc
