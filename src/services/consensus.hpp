// Consensus service (paper section 2.2.1, service (iii)).
//
// Synchronous flooding consensus: the platform's bounded message delay
// justifies a round-based synchronous model (round length > delta_max).
// Tolerating up to f crash/omission failures requires f+1 rounds; in each
// round every node broadcasts the set of values it has learned, and after
// round f+1 every correct node decides min(learned). Agreement, validity
// and termination are asserted by tests; bench_consensus (E11) measures
// decision latency as a function of f.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "core/system.hpp"
#include "services/channels.hpp"

namespace hades::svc {

class consensus_service {
 public:
  struct params {
    int max_faulty = 1;  // f: rounds run = f+1
    duration round_length = duration::milliseconds(1);  // > delta_max
  };

  using decide_fn = std::function<void(node_id, std::int64_t)>;

  consensus_service(core::system& sys, params p);

  /// Start one consensus instance with the given proposals (one per node;
  /// crashed nodes simply stay silent).
  void run(const std::map<node_id, std::int64_t>& proposals);

  void on_decide(decide_fn fn) { callbacks_.push_back(std::move(fn)); }

  [[nodiscard]] bool decided(node_id n) const { return decided_.at(n); }
  [[nodiscard]] std::int64_t decision(node_id n) const {
    return decision_.at(n);
  }
  [[nodiscard]] int rounds() const { return params_.max_faulty + 1; }
  [[nodiscard]] duration decision_latency() const {
    return params_.round_length * (params_.max_faulty + 1);
  }

 private:
  void round(int k);
  void finish();
  void on_message(node_id n, const sim::message& m);

  core::system* sys_;
  params params_;
  std::map<node_id, std::set<std::int64_t>> learned_;
  std::map<node_id, bool> decided_;
  std::map<node_id, std::int64_t> decision_;
  std::vector<decide_fn> callbacks_;
  bool running_ = false;
};

}  // namespace hades::svc
