// Dependency tracking service (paper section 2.2.1, service (v), after
// [NMT97] "Managing dependencies — a key problem in fault-tolerant
// distributed algorithms").
//
// Records which task instances consumed data produced by which others
// (messages, precedence parameters, shared state). When an instance is
// declared failed, `orphan_closure()` returns every instance whose inputs
// are transitively contaminated — the set the recovery layer must abort or
// compensate. `attach()` wires the tracker to a system's monitor so that
// aborted instances automatically contaminate their dependents.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/system.hpp"

namespace hades::svc {

class dependency_tracker {
 public:
  struct instance_key {
    task_id task = invalid_task;
    instance_number instance = 0;
    auto operator<=>(const instance_key&) const = default;
  };

  /// `consumer` used data produced by `producer`.
  void record(instance_key consumer, instance_key producer);

  /// Transitive closure of instances contaminated by `failed` (excluding
  /// `failed` itself).
  [[nodiscard]] std::set<instance_key> orphan_closure(
      instance_key failed) const;

  /// Direct consumers of one producer.
  [[nodiscard]] std::vector<instance_key> consumers_of(
      instance_key producer) const;

  [[nodiscard]] std::size_t edge_count() const { return edges_; }

  /// Subscribe to a system's monitor: whenever an instance aborts, its
  /// orphan closure is aborted too (cascading abort). Returns nothing; the
  /// tracker must outlive the system run.
  void attach(core::system& sys);

 private:
  std::map<instance_key, std::set<instance_key>> consumers_;
  std::size_t edges_ = 0;
};

}  // namespace hades::svc
