#include "services/storage.hpp"

namespace hades::svc {

std::uint64_t stable_store::checksum_of(std::uint64_t version,
                                        const std::string& value) {
  // FNV-1a over version || value.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](unsigned char c) {
    h ^= c;
    h *= 0x100000001b3ull;
  };
  for (int i = 0; i < 8; ++i) mix(static_cast<unsigned char>(version >> (8 * i)));
  for (unsigned char c : value) mix(c);
  return h;
}

bool stable_store::copy::valid() const {
  return version > 0 && checksum == checksum_of(version, value);
}

const stable_store::copy* stable_store::best_of(const record& r) const {
  const copy* best = nullptr;
  if (r.a.valid()) best = &r.a;
  if (r.b.valid() && (best == nullptr || r.b.version > best->version))
    best = &r.b;
  return best;
}

std::optional<std::string> stable_store::get(const std::string& key) const {
  require(!down_, "stable_store: down (crashed); call repair_and_restart()");
  auto it = disk_.find(key);
  if (it == disk_.end()) return std::nullopt;
  const copy* best = best_of(it->second);
  if (best == nullptr) return std::nullopt;
  return best->value;
}

bool stable_store::put(const std::string& key, std::string value) {
  require(!down_, "stable_store: down (crashed); call repair_and_restart()");
  ++writes_;
  if (crash_ == crash_point::before_first_copy) {
    down_ = true;
    crash_ = crash_point::none;
    return false;
  }
  record& r = disk_[key];
  const copy* best = best_of(r);
  const std::uint64_t version = (best != nullptr ? best->version : 0) + 1;

  copy fresh;
  fresh.version = version;
  fresh.value = std::move(value);
  fresh.checksum = checksum_of(version, fresh.value);

  r.a = fresh;  // first copy
  if (crash_ == crash_point::between_copies) {
    down_ = true;
    crash_ = crash_point::none;
    return false;
  }
  r.b = fresh;  // second copy
  if (crash_ == crash_point::after_both) {
    down_ = true;
    crash_ = crash_point::none;
    return false;
  }
  return true;
}

std::size_t stable_store::repair_and_restart() {
  std::size_t repaired = 0;
  for (auto& [key, r] : disk_) {
    const copy* best = best_of(r);
    if (best == nullptr) continue;  // both torn: record never fully existed
    if (!r.a.valid() || r.a.version != best->version) {
      r.a = *best;
      ++repaired;
    }
    if (!r.b.valid() || r.b.version != best->version) {
      r.b = *best;
      ++repaired;
    }
  }
  down_ = false;
  return repaired;
}

}  // namespace hades::svc
