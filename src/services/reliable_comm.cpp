#include "services/reliable_comm.hpp"

#include <algorithm>

namespace hades::svc {

// ------------------------------------------------------------ reliable_p2p

reliable_p2p::reliable_p2p(core::system& sys, params p)
    : sys_(&sys), params_(p) {
  const std::size_t n = sys_->node_count();
  next_seq_.resize(n);
  seen_.resize(n);
  dups_.assign(n, 0);
  delivered_.assign(n, 0);
  for (node_id me = 0; me < n; ++me)
    sys_->net(me).on_channel(ch_reliable_p2p,
                             [this, me](const sim::message& m) {
                               on_message(me, m);
                             });
}

void reliable_p2p::send(node_id src, node_id dst, sim::wire_payload payload,
                        std::size_t size_bytes) {
  // Per-link sequences keep each receiver's stream contiguous, which is
  // what lets the dedup state collapse to a watermark.
  const std::uint64_t seq = ++next_seq_[src][dst];
  const frame f{seq, std::move(payload)};
  for (int copy = 0; copy <= params_.omission_degree; ++copy) {
    const duration delay = params_.retry_spacing * copy;
    // Anchored at the source so every copy leaves from the source's shard
    // in send-date order (the rng-stream rule of DESIGN.md).
    sys_->engine().at_node(src, sys_->now() + delay,
                           [this, src, dst, f, size_bytes] {
                             if (sys_->crashed(src)) return;
                             sys_->net(src).send(dst, ch_reliable_p2p, f,
                                                 size_bytes);
                           });
  }
}

void reliable_p2p::on_message(node_id n, const sim::message& m) {
  const auto* f = m.payload.get<frame>();
  if (f == nullptr) return;
  auto [it, created] = seen_[n].try_emplace(m.src);
  if (!it->second.insert(f->seq)) {
    ++dups_[n];
    return;
  }
  ++delivered_[n];
  auto hit = handlers_.find(n);
  if (hit != handlers_.end() && hit->second) hit->second(m.src, f->payload);
}

duration reliable_p2p::p2p_bound(std::size_t size_bytes) const {
  return params_.retry_spacing * params_.omission_degree +
         sys_->network().worst_case_latency(size_bytes);
}

std::size_t reliable_p2p::state_bytes() const {
  std::size_t bytes = 0;
  for (const auto& per_recv : seen_)
    for (const auto& [src, w] : per_recv) bytes += sizeof(src) + w.state_bytes();
  for (const auto& per_src : next_seq_)
    bytes += per_src.size() * (sizeof(node_id) + sizeof(std::uint64_t));
  return bytes;
}

// ------------------------------------------------------- reliable_broadcast

reliable_broadcast::reliable_broadcast(core::system& sys, params p)
    : sys_(&sys), params_(p) {
  const std::size_t n = sys_->node_count();
  seen_.resize(n);
  holdback_.resize(n);
  logs_.resize(n);
  next_seq_.assign(n, 0);
  relays_.assign(n, 0);
  delivered_.assign(n, 0);
  order_faults_.assign(n, 0);
  for (node_id me = 0; me < n; ++me)
    sys_->net(me).on_channel(ch_reliable_bcast,
                             [this, me](const sim::message& m) {
                               on_message(me, m);
                             });
}

void reliable_broadcast::broadcast(node_id src, sim::wire_payload payload,
                                   std::size_t size_bytes) {
  require(!params_.total_order || size_bytes <= params_.max_message_bytes,
          "reliable_broadcast: total-order payload exceeds max_message_bytes");
  bcast_msg msg;
  msg.origin = src;
  msg.seq = ++next_seq_[src];
  msg.sent_at = sys_->now();
  msg.size_bytes = size_bytes;
  msg.payload = std::move(payload);
  // Local delivery first (the sender is a destination too), then diffusion.
  accept(src, msg);
  sys_->net(src).send_all(ch_reliable_bcast, msg, size_bytes);
}

void reliable_broadcast::on_message(node_id n, const sim::message& m) {
  const auto* msg = m.payload.get<bcast_msg>();
  if (msg == nullptr) return;
  accept(n, *msg);
}

time_point reliable_broadcast::release_time(const bcast_msg& msg) const {
  // A message may only be released once no earlier-keyed message can still
  // arrive: Delta, stretched to the worst-case diffusion path (direct hop
  // plus relay hop) of the LARGEST admitted payload when that is longer.
  // Using the message's own size here would release a later small message
  // while an earlier large one is still legitimately in flight.
  const duration diffusion =
      sys_->network().worst_case_latency(params_.max_message_bytes) * 2;
  return msg.sent_at + std::max(params_.stability_delay, diffusion);
}

void reliable_broadcast::accept(node_id n, const bcast_msg& msg) {
  auto [sit, created] = seen_[n].try_emplace(msg.origin);
  if (!sit->second.insert(msg.seq)) return;  // duplicate
  // Relay on first receipt, at the message's true size (a relayed 4KB frame
  // costs 4KB on the wire): this is what makes the primitive tolerate a
  // sender crash after a partial send (agreement) without undercutting the
  // per-byte latency model.
  if (n != msg.origin) {
    ++relays_[n];
    sys_->net(n).send_all(ch_reliable_bcast, msg, msg.size_bytes);
  }
  if (!params_.total_order) {
    deliver(n, msg);
    return;
  }
  // Delta-delivery: hold back until release_time, then release strictly in
  // (sent_at, origin, seq) order — identical on every node.
  const time_point due = release_time(msg);
  holdback_[n].emplace(order_key{msg.sent_at, msg.origin, msg.seq}, msg);
  if (sys_->now() >= due) {
    // Arrival at the release date is the legal worst case; strictly past it
    // only a performance-faulty network gets here. Release immediately
    // either way (agreement over order).
    if (sys_->now() > due) ++order_faults_[n];
    flush(n);
  } else {
    sys_->engine().at(due, [this, n] {
      if (!sys_->crashed(n)) flush(n);
    });
  }
}

void reliable_broadcast::flush(node_id n) {
  auto& held = holdback_[n];
  while (!held.empty()) {
    auto it = held.begin();
    if (sys_->now() < release_time(it->second)) break;
    const bcast_msg msg = std::move(it->second);
    held.erase(it);
    deliver(n, msg);
  }
}

void reliable_broadcast::deliver(node_id n, const bcast_msg& msg) {
  if (params_.record_deliveries) logs_[n].emplace_back(msg.origin, msg.seq);
  ++delivered_[n];
  auto it = handlers_.find(n);
  if (it != handlers_.end() && it->second) it->second(msg);
}

duration reliable_broadcast::delivery_bound(std::size_t size_bytes) const {
  if (!params_.total_order)
    return sys_->network().worst_case_latency(size_bytes) * 2;
  // Delta-delivery releases every message at sent_at + max(Delta, diffusion
  // of the largest admitted payload): when the relay path exceeds
  // stability_delay, the relay path is the bound — for every size.
  const duration diffusion =
      sys_->network().worst_case_latency(params_.max_message_bytes) * 2;
  return std::max(params_.stability_delay, diffusion);
}

std::size_t reliable_broadcast::state_bytes() const {
  std::size_t bytes = 0;
  for (const auto& per_node : seen_)
    for (const auto& [origin, w] : per_node)
      bytes += sizeof(origin) + w.state_bytes();
  for (const auto& held : holdback_)
    bytes += held.size() * (sizeof(order_key) + sizeof(bcast_msg) + 32);
  bytes += next_seq_.size() * sizeof(std::uint64_t);
  // The opt-in delivery logs are unbounded by design (one entry per
  // delivery) — charge them while enabled so soak assertions see them.
  for (const auto& log : logs_)
    bytes += log.size() * sizeof(std::pair<node_id, std::uint64_t>);
  return bytes;
}

}  // namespace hades::svc
