#include "services/reliable_comm.hpp"

#include <algorithm>

namespace hades::svc {

// ------------------------------------------------------------ reliable_p2p

reliable_p2p::reliable_p2p(core::system& sys, params p)
    : sys_(&sys), params_(p) {
  const std::size_t n = sys_->node_count();
  next_seq_.resize(n);
  seen_.resize(n);
  dups_.assign(n, 0);
  delivered_.assign(n, 0);
  for (node_id me = 0; me < n; ++me)
    sys_->net(me).on_channel(ch_reliable_p2p,
                             [this, me](const sim::message& m) {
                               on_message(me, m);
                             });
}

void reliable_p2p::send(node_id src, node_id dst, sim::wire_payload payload,
                        std::size_t size_bytes) {
  // Per-link sequences keep each receiver's stream contiguous, which is
  // what lets the dedup state collapse to a watermark.
  const std::uint64_t seq = ++next_seq_[src][dst];
  const frame f{seq, std::move(payload)};
  for (int copy = 0; copy <= params_.omission_degree; ++copy) {
    const duration delay = params_.retry_spacing * copy;
    // Anchored at the source so every copy leaves from the source's shard
    // in send-date order (the rng-stream rule of DESIGN.md).
    sys_->engine().at_node(src, sys_->now() + delay,
                           [this, src, dst, f, size_bytes] {
                             if (sys_->crashed(src)) return;
                             sys_->net(src).send(dst, ch_reliable_p2p, f,
                                                 size_bytes);
                           });
  }
}

void reliable_p2p::on_message(node_id n, const sim::message& m) {
  const auto* f = m.payload.get<frame>();
  if (f == nullptr) return;
  if (!seen_[n][m.src].insert(f->seq)) {
    ++dups_[n];
    return;
  }
  ++delivered_[n];
  auto hit = handlers_.find(n);
  if (hit != handlers_.end() && hit->second) hit->second(m.src, f->payload);
}

duration reliable_p2p::p2p_bound(std::size_t size_bytes) const {
  return params_.retry_spacing * params_.omission_degree +
         sys_->network().worst_case_latency(size_bytes);
}

std::size_t reliable_p2p::state_bytes() const {
  std::size_t bytes = 0;
  for (const auto& per_recv : seen_) {
    bytes += per_recv.capacity_bytes();
    per_recv.for_each([&](node_id, const dedup_window& w) {
      bytes += w.state_bytes();
    });
  }
  for (const auto& per_src : next_seq_) bytes += per_src.capacity_bytes();
  return bytes;
}

// ------------------------------------------------------- reliable_broadcast

reliable_broadcast::reliable_broadcast(core::system& sys, params p)
    : sys_(&sys), params_(p) {
  const std::size_t n = sys_->node_count();
  seen_.resize(n);
  holdback_.resize(n);
  logs_.resize(n);
  next_seq_.assign(n, 0);
  relays_.assign(n, 0);
  delivered_.assign(n, 0);
  order_faults_.assign(n, 0);
  for (node_id me = 0; me < n; ++me)
    sys_->net(me).on_channel(ch_reliable_bcast,
                             [this, me](const sim::message& m) {
                               on_message(me, m);
                             });
}

void reliable_broadcast::broadcast(node_id src, sim::wire_payload payload,
                                   std::size_t size_bytes) {
  require(!params_.total_order || size_bytes <= params_.max_message_bytes,
          "reliable_broadcast: total-order payload exceeds max_message_bytes");
  bcast_msg msg;
  msg.origin = src;
  msg.seq = ++next_seq_[src];
  msg.sent_at = sys_->now();
  msg.size_bytes = size_bytes;
  msg.payload = std::move(payload);
  // Local delivery first (the sender is a destination too), then diffusion.
  accept(src, msg);
  relay(src, msg);
}

void reliable_broadcast::on_message(node_id n, const sim::message& m) {
  const auto* msg = m.payload.get<bcast_msg>();
  if (msg == nullptr) return;
  accept(n, *msg);
}

std::size_t reliable_broadcast::diffusion_hops() const {
  if (params_.diffusion == diffusion_kind::flood) return 2;
  const topo::kary_tree tree{sys_->node_count(), params_.tree_fanout};
  const std::size_t h = tree.height();
  return h > 1 ? h : 1;
}

std::vector<node_id> reliable_broadcast::relay_targets(node_id n,
                                                       node_id origin) const {
  const topo::kary_tree tree{sys_->node_count(), params_.tree_fanout};
  const std::size_t l = tree.label_of(origin, n);
  std::vector<std::size_t> labels;
  // Forward to a label, and — if this relayer suspects the node holding
  // it — adopt its children too (transitively), so a suspected relay's
  // subtree is re-parented here without waiting on it. The suspect itself
  // still gets its copy in case the suspicion is false: skipping only ever
  // ADDS targets, it never starves a correct node.
  auto collect = [&](auto&& self, std::size_t lbl) -> void {
    labels.push_back(lbl);
    if (suspicion_ && suspicion_(n, tree.node_at(origin, lbl))) {
      const std::size_t fc = tree.first_child(lbl);
      for (std::size_t ch = fc; ch < fc + tree.fanout && ch < tree.nodes;
           ++ch)
        self(self, ch);
    }
  };
  const std::size_t fc = tree.first_child(l);
  for (std::size_t cl = fc; cl < fc + tree.fanout && cl < tree.nodes; ++cl) {
    collect(collect, cl);
    // Unconditional grandchildren: masks a child that crashed but is not
    // yet suspected — its subtree hears the message from here directly.
    const std::size_t gc = tree.first_child(cl);
    for (std::size_t gl = gc; gl < gc + tree.fanout && gl < tree.nodes; ++gl)
      collect(collect, gl);
  }
  // Suspicion recursion duplicates labels that are also plain grandchildren;
  // dedupe, and keep label order so the send order (and with it the
  // per-source rng stream) is deterministic.
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  std::vector<node_id> targets;
  targets.reserve(labels.size());
  for (std::size_t lbl : labels) targets.push_back(tree.node_at(origin, lbl));
  return targets;
}

void reliable_broadcast::relay(node_id n, const bcast_msg& msg) {
  if (params_.diffusion == diffusion_kind::flood) {
    sys_->net(n).send_all(ch_reliable_bcast, msg, msg.size_bytes);
    return;
  }
  const sim::wire_payload payload(msg);  // one pooled copy, shared by ref
  auto& net = sys_->net(n);
  for (node_id t : relay_targets(n, msg.origin))
    net.send(t, ch_reliable_bcast, payload, msg.size_bytes);
}

time_point reliable_broadcast::release_time(const bcast_msg& msg) const {
  // A message may only be released once no earlier-keyed message can still
  // arrive: Delta, stretched to the worst-case diffusion path (direct hop
  // plus relay hop under flooding, tree height hops under tree relay) of
  // the LARGEST admitted payload when that is longer. Using the message's
  // own size here would release a later small message while an earlier
  // large one is still legitimately in flight.
  const duration diffusion =
      sys_->network().worst_case_latency(params_.max_message_bytes) *
      static_cast<int>(diffusion_hops());
  return msg.sent_at + std::max(params_.stability_delay, diffusion);
}

void reliable_broadcast::accept(node_id n, const bcast_msg& msg) {
  if (!seen_[n][msg.origin].insert(msg.seq)) return;  // duplicate
  // Relay on first receipt, at the message's true size (a relayed 4KB frame
  // costs 4KB on the wire): this is what makes the primitive tolerate a
  // sender crash after a partial send (agreement) without undercutting the
  // per-byte latency model.
  if (n != msg.origin) {
    ++relays_[n];
    relay(n, msg);
  }
  if (!params_.total_order) {
    deliver(n, msg);
    return;
  }
  // Delta-delivery: hold back until release_time, then release strictly in
  // (sent_at, origin, seq) order — identical on every node.
  const time_point due = release_time(msg);
  holdback_[n].emplace(order_key{msg.sent_at, msg.origin, msg.seq}, msg);
  if (sys_->now() >= due) {
    // Arrival at the release date is the legal worst case; strictly past it
    // only a performance-faulty network gets here. Release immediately
    // either way (agreement over order).
    if (sys_->now() > due) ++order_faults_[n];
    flush(n);
  } else {
    sys_->engine().at(due, [this, n] {
      if (!sys_->crashed(n)) flush(n);
    });
  }
}

void reliable_broadcast::flush(node_id n) {
  auto& held = holdback_[n];
  while (!held.empty()) {
    auto it = held.begin();
    if (sys_->now() < release_time(it->second)) break;
    const bcast_msg msg = std::move(it->second);
    held.erase(it);
    deliver(n, msg);
  }
}

void reliable_broadcast::deliver(node_id n, const bcast_msg& msg) {
  if (params_.record_deliveries) logs_[n].emplace_back(msg.origin, msg.seq);
  ++delivered_[n];
  auto it = handlers_.find(n);
  if (it != handlers_.end() && it->second) it->second(msg);
}

duration reliable_broadcast::delivery_bound(std::size_t size_bytes) const {
  const int hops = static_cast<int>(diffusion_hops());
  if (!params_.total_order)
    return sys_->network().worst_case_latency(size_bytes) * hops;
  // Delta-delivery releases every message at sent_at + max(Delta, diffusion
  // of the largest admitted payload): when the relay path exceeds
  // stability_delay, the relay path is the bound — for every size.
  const duration diffusion =
      sys_->network().worst_case_latency(params_.max_message_bytes) * hops;
  return std::max(params_.stability_delay, diffusion);
}

std::size_t reliable_broadcast::state_bytes() const {
  std::size_t bytes = 0;
  for (const auto& per_node : seen_) {
    bytes += per_node.capacity_bytes();
    per_node.for_each([&](node_id, const dedup_window& w) {
      bytes += w.state_bytes();
    });
  }
  for (const auto& held : holdback_)
    bytes += held.size() * (sizeof(order_key) + sizeof(bcast_msg) + 32);
  bytes += next_seq_.size() * sizeof(std::uint64_t);
  // The opt-in delivery logs are unbounded by design (one entry per
  // delivery) — charge them while enabled so soak assertions see them.
  for (const auto& log : logs_)
    bytes += log.size() * sizeof(std::pair<node_id, std::uint64_t>);
  return bytes;
}

}  // namespace hades::svc
