#include "services/reliable_comm.hpp"

namespace hades::svc {

// ------------------------------------------------------------ reliable_p2p

reliable_p2p::reliable_p2p(core::system& sys, params p)
    : sys_(&sys), params_(p) {
  for (node_id n = 0; n < sys_->node_count(); ++n)
    sys_->net(n).on_channel(ch_reliable_p2p,
                            [this, n](const sim::message& m) {
                              on_message(n, m);
                            });
}

void reliable_p2p::send(node_id src, node_id dst, std::any payload,
                        std::size_t size_bytes) {
  const std::uint64_t seq = next_seq_++;
  const frame f{seq, std::move(payload)};
  for (int copy = 0; copy <= params_.omission_degree; ++copy) {
    const duration delay = params_.retry_spacing * copy;
    sys_->engine().after(delay, [this, src, dst, f, size_bytes] {
      if (sys_->crashed(src)) return;
      sys_->net(src).send(dst, ch_reliable_p2p, f, size_bytes);
    });
  }
}

void reliable_p2p::on_message(node_id n, const sim::message& m) {
  const auto* f = std::any_cast<frame>(&m.payload);
  if (f == nullptr) return;
  if (!seen_[n][m.src].insert(f->seq).second) {
    ++dups_;
    return;
  }
  ++delivered_;
  auto it = handlers_.find(n);
  if (it != handlers_.end() && it->second) it->second(m.src, f->payload);
}

duration reliable_p2p::p2p_bound(std::size_t size_bytes) const {
  return params_.retry_spacing * params_.omission_degree +
         sys_->network().worst_case_latency(size_bytes);
}

// ------------------------------------------------------- reliable_broadcast

reliable_broadcast::reliable_broadcast(core::system& sys, params p)
    : sys_(&sys), params_(p) {
  for (node_id n = 0; n < sys_->node_count(); ++n) {
    logs_[n];
    sys_->net(n).on_channel(ch_reliable_bcast,
                            [this, n](const sim::message& m) {
                              on_message(n, m);
                            });
  }
}

void reliable_broadcast::broadcast(node_id src, std::any payload,
                                   std::size_t size_bytes) {
  bcast_msg msg;
  msg.origin = src;
  msg.seq = next_seq_++;
  msg.sent_at = sys_->now();
  msg.payload = std::move(payload);
  // Local delivery first (the sender is a destination too), then diffusion.
  accept(src, msg);
  sys_->net(src).send_all(ch_reliable_bcast, msg, size_bytes);
}

void reliable_broadcast::on_message(node_id n, const sim::message& m) {
  const auto* msg = std::any_cast<bcast_msg>(&m.payload);
  if (msg == nullptr) return;
  accept(n, *msg);
}

void reliable_broadcast::accept(node_id n, const bcast_msg& msg) {
  if (!seen_[n].insert({msg.origin, msg.seq}).second) return;  // duplicate
  // Relay on first receipt: this is what makes the primitive tolerate a
  // sender crash after a partial send (agreement).
  if (n != msg.origin) {
    ++relays_;
    sys_->net(n).send_all(ch_reliable_bcast, msg, 64);
  }
  if (!params_.total_order) {
    deliver(n, msg);
    return;
  }
  // Delta-delivery: deliver at sent_at + Delta; the engine's deterministic
  // tie-break plus the (timestamp, origin, seq) key yields a total order
  // across nodes.
  const time_point due = msg.sent_at + params_.stability_delay;
  const time_point at = std::max(due, sys_->now());
  sys_->engine().at(at, [this, n, msg] {
    if (!sys_->crashed(n)) deliver(n, msg);
  });
}

void reliable_broadcast::deliver(node_id n, const bcast_msg& msg) {
  logs_[n].emplace_back(msg.origin, msg.seq);
  ++delivered_;
  auto it = handlers_.find(n);
  if (it != handlers_.end() && it->second) it->second(msg);
}

duration reliable_broadcast::delivery_bound(std::size_t size_bytes) const {
  const duration hop = sys_->network().worst_case_latency(size_bytes);
  const duration base = hop * 2;  // direct + one relay hop
  return params_.total_order ? std::max(base, params_.stability_delay) : base;
}

}  // namespace hades::svc
