#include "services/dependency.hpp"

#include <deque>

namespace hades::svc {

void dependency_tracker::record(instance_key consumer, instance_key producer) {
  if (consumers_[producer].insert(consumer).second) ++edges_;
}

std::set<dependency_tracker::instance_key> dependency_tracker::orphan_closure(
    instance_key failed) const {
  std::set<instance_key> out;
  std::deque<instance_key> frontier{failed};
  while (!frontier.empty()) {
    const instance_key cur = frontier.front();
    frontier.pop_front();
    auto it = consumers_.find(cur);
    if (it == consumers_.end()) continue;
    for (const instance_key& c : it->second)
      if (out.insert(c).second) frontier.push_back(c);
  }
  out.erase(failed);
  return out;
}

std::vector<dependency_tracker::instance_key> dependency_tracker::consumers_of(
    instance_key producer) const {
  auto it = consumers_.find(producer);
  if (it == consumers_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

void dependency_tracker::attach(core::system& sys) {
  sys.mon().subscribe([this, &sys](const core::monitor_event& e) {
    if (e.kind != core::monitor_event_kind::orphan_killed) return;
    const instance_key failed{e.task, e.instance};
    for (const instance_key& orphan : orphan_closure(failed)) {
      if (sys.instance_live(orphan.task, orphan.instance))
        sys.abort_instance(orphan.task, orphan.instance,
                           "dependency on failed instance",
                           /*as_rejection=*/false);
    }
  });
}

}  // namespace hades::svc
