#include "services/clock_sync.hpp"

#include <algorithm>

namespace hades::svc {

namespace {
struct sync_payload {
  duration clock_value;
  std::uint64_t round;
};
}  // namespace

clock_sync_service::clock_sync_service(core::system& sys, params p)
    : sys_(&sys), params_(p) {
  const auto& net = sys_->network().config();
  nominal_delay_ = (net.delta_min + net.delta_max) / 2;
  inbox_.resize(sys_->node_count());
  round_of_.assign(sys_->node_count(), 0);
  rounds_.assign(sys_->node_count(), 0);
  corrections_.resize(sys_->node_count());
  for (node_id n = 0; n < sys_->node_count(); ++n) {
    sys_->net(n).on_channel(ch_clock_sync, [this, n](const sim::message& m) {
      on_message(n, m);
    });
  }
}

void clock_sync_service::start() {
  // Per-node chains anchored at the node (not one shared periodic): on the
  // sharded backend each node's resync broadcast then executes on the shard
  // owning the node, keeping its network rng stream in send-date order
  // across shard counts (same determinism rule as fault_detector).
  for (node_id n = 0; n < sys_->node_count(); ++n)
    sys_->engine().periodic_at_node(
        n, sys_->now() + params_.resync_period, params_.resync_period,
        [this, n] {
          if (!sys_->crashed(n)) begin_round(n);
        });
}

void clock_sync_service::begin_round(node_id n) {
  const std::uint64_t round = ++round_of_[n];
  inbox_[n].clear();
  // Own reading participates like any other.
  inbox_[n].push_back({n, sys_->clock(n).read(), sys_->now()});
  sync_payload p{sys_->clock(n).read(), round};
  sys_->net(n).send_all(ch_clock_sync, p, 48);
  sys_->engine().after(params_.collect_window,
                       [this, n, round] { conclude_round(n, round); });
}

void clock_sync_service::on_message(node_id n, const sim::message& m) {
  const auto* p = m.payload.get<sync_payload>();
  if (p == nullptr) return;
  if (p->round != round_of_[n]) return;  // stale round
  inbox_[n].push_back({m.src, p->clock_value, sys_->now()});
}

void clock_sync_service::conclude_round(node_id n, std::uint64_t round) {
  if (sys_->crashed(n) || round != round_of_[n]) return;
  auto& box = inbox_[n];
  const duration own_now = sys_->clock(n).read();

  // Difference between each peer clock (extrapolated to "now") and ours.
  std::vector<std::int64_t> diffs;
  diffs.reserve(box.size());
  const time_point now = sys_->now();
  for (const reading& r : box) {
    duration peer_estimate = r.clock_value;
    if (r.from != n) {
      // The reading aged while in flight and in the collection window; the
      // flight time itself is approximated by the nominal delay.
      peer_estimate += (now - r.received_at) + nominal_delay_;
    } else {
      peer_estimate += now - r.received_at;
    }
    diffs.push_back((peer_estimate - own_now).count());
  }

  const int f = params_.max_faulty;
  if (static_cast<int>(diffs.size()) <= 2 * f) return;  // not enough readings
  std::sort(diffs.begin(), diffs.end());
  // Fault-tolerant average: trim f from each end.
  std::int64_t sum = 0;
  const std::size_t lo = static_cast<std::size_t>(f);
  const std::size_t hi = diffs.size() - static_cast<std::size_t>(f);
  for (std::size_t i = lo; i < hi; ++i) sum += diffs[i];
  const auto correction =
      duration::nanoseconds(sum / static_cast<std::int64_t>(hi - lo));

  sys_->clock(n).adjust(correction);
  corrections_[n].add(static_cast<double>(std::abs(correction.count())));
  ++rounds_[n];
  sys_->trace().record(sys_->now(), n, sim::trace_kind::service_event,
                       "clock_sync",
                       "correction " + correction.to_string());
}

running_stats clock_sync_service::correction_magnitude() const {
  running_stats merged;
  for (const running_stats& s : corrections_) merged.merge(s);
  return merged;
}

duration clock_sync_service::max_skew(const std::vector<node_id>& nodes) const {
  std::vector<node_id> ns = nodes;
  if (ns.empty())
    for (node_id n = 0; n < sys_->node_count(); ++n)
      if (!sys_->crashed(n)) ns.push_back(n);
  duration worst = duration::zero();
  for (std::size_t i = 0; i < ns.size(); ++i)
    for (std::size_t j = i + 1; j < ns.size(); ++j) {
      const duration a = sys_->clock(ns[i]).read();
      const duration b = sys_->clock(ns[j]).read();
      const duration skew = a > b ? a - b : b - a;
      worst = std::max(worst, skew);
    }
  return worst;
}

}  // namespace hades::svc
