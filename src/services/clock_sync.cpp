#include "services/clock_sync.hpp"

#include <algorithm>

namespace hades::svc {

namespace {
struct sync_payload {
  duration clock_value;
  std::uint64_t round;
};
// Clustered mode, phase 2: one aggregator's f-trimmed estimate of its
// cluster's clock, exchanged between aggregators.
struct cluster_summary {
  duration clock_value;
  std::uint64_t round;
};
// Clustered mode, step 3: the aggregator's corrected reading, beamed to its
// members after the global trim.
struct cluster_beacon {
  duration clock_value;
  std::uint64_t round;
};
}  // namespace

clock_sync_service::clock_sync_service(core::system& sys, params p)
    : sys_(&sys),
      params_(p),
      clusters_{sys.node_count(),
                p.cluster_size > 0 ? p.cluster_size : sys.node_count()},
      start_(sys.now()) {
  const auto& net = sys_->network().config();
  nominal_delay_ = (net.delta_min + net.delta_max) / 2;
  inbox_.resize(sys_->node_count());
  summaries_.resize(sys_->node_count());
  round_of_.assign(sys_->node_count(), 0);
  rounds_.assign(sys_->node_count(), 0);
  corrections_.resize(sys_->node_count());
  for (node_id n = 0; n < sys_->node_count(); ++n) {
    sys_->net(n).on_channel(ch_clock_sync, [this, n](const sim::message& m) {
      on_message(n, m);
    });
  }
}

void clock_sync_service::start() {
  // Per-node chains anchored at the node (not one shared periodic): on the
  // sharded backend each node's resync sends then execute on the shard
  // owning the node, keeping its network rng stream in send-date order
  // across shard counts (same determinism rule as fault_detector).
  for (node_id n = 0; n < sys_->node_count(); ++n)
    sys_->engine().periodic_at_node(
        n, sys_->now() + params_.resync_period, params_.resync_period,
        [this, n] {
          if (!sys_->crashed(n)) begin_round(n);
        });
}

void clock_sync_service::begin_round(node_id n) {
  // The round number is a pure function of the sim date, not a per-node
  // counter: every node's chain fires at the same dates, and a node that
  // slept through rounds while crashed rejoins the current round instead of
  // staying permanently behind (where every exchange would read as stale).
  const std::uint64_t round = static_cast<std::uint64_t>(
      (sys_->now() - start_).count() / params_.resync_period.count());
  round_of_[n] = round;
  if (!clustered()) {
    inbox_[n].clear();
    // Own reading participates like any other.
    inbox_[n].push_back({n, sys_->clock(n).read(), sys_->now()});
    sync_payload p{sys_->clock(n).read(), round};
    sys_->net(n).send_all(ch_clock_sync, p, 48);
    sys_->engine().after(params_.collect_window,
                         [this, n, round] { conclude_round(n, round); });
    return;
  }
  const std::size_t c = clusters_.cluster_of(n);
  const node_id agg = clusters_.first(c);
  if (n != agg) {
    // Member: report the reading to the aggregator; the step comes back as
    // a beacon two windows later. Rounds stay aligned across nodes because
    // every periodic chain fires at the same sim dates.
    sys_->net(n).send(agg, ch_clock_sync,
                      sync_payload{sys_->clock(n).read(), round}, 48);
    return;
  }
  // Aggregator: collect member readings for one window, summaries for one
  // more. Both phase deadlines are anchored on this node (its own shard).
  inbox_[n].clear();
  summaries_[n].clear();
  inbox_[n].push_back({n, sys_->clock(n).read(), sys_->now()});
  sys_->engine().at_node(n, sys_->now() + params_.collect_window,
                         [this, n, round] { summarize_cluster(n, round); });
  sys_->engine().at_node(n, sys_->now() + params_.collect_window * 2,
                         [this, n, round] { conclude_cluster(n, round); });
}

void clock_sync_service::on_message(node_id n, const sim::message& m) {
  if (const auto* p = m.payload.get<sync_payload>()) {
    if (p->round != round_of_[n]) return;  // stale round
    inbox_[n].push_back({m.src, p->clock_value, sys_->now()});
    return;
  }
  if (const auto* s = m.payload.get<cluster_summary>()) {
    if (s->round != round_of_[n]) return;
    summaries_[n].push_back({m.src, s->clock_value, sys_->now()});
    return;
  }
  if (const auto* b = m.payload.get<cluster_beacon>()) {
    if (b->round != round_of_[n] || sys_->crashed(n)) return;
    // Step to the aggregator's corrected clock, aged by the flight time.
    const duration estimate = b->clock_value + nominal_delay_;
    apply_correction(n, estimate - sys_->clock(n).read());
  }
}

std::optional<duration> clock_sync_service::trimmed_offset(
    node_id n, const std::vector<reading>& box) const {
  const duration own_now = sys_->clock(n).read();
  const time_point now = sys_->now();
  // Difference between each boxed clock (extrapolated to "now") and ours.
  std::vector<std::int64_t> diffs;
  diffs.reserve(box.size());
  for (const reading& r : box) {
    duration peer_estimate = r.clock_value;
    if (r.from != n) {
      // The reading aged while in flight and in the collection window; the
      // flight time itself is approximated by the nominal delay.
      peer_estimate += (now - r.received_at) + nominal_delay_;
    } else {
      peer_estimate += now - r.received_at;
    }
    diffs.push_back((peer_estimate - own_now).count());
  }
  const int f = params_.max_faulty;
  if (static_cast<int>(diffs.size()) <= 2 * f) return std::nullopt;
  std::sort(diffs.begin(), diffs.end());
  // Fault-tolerant average: trim f from each end.
  std::int64_t sum = 0;
  const std::size_t lo = static_cast<std::size_t>(f);
  const std::size_t hi = diffs.size() - static_cast<std::size_t>(f);
  for (std::size_t i = lo; i < hi; ++i) sum += diffs[i];
  return duration::nanoseconds(sum / static_cast<std::int64_t>(hi - lo));
}

void clock_sync_service::apply_correction(node_id n, duration correction) {
  sys_->clock(n).adjust(correction);
  corrections_[n].add(static_cast<double>(std::abs(correction.count())));
  ++rounds_[n];
  sys_->trace().record(sys_->now(), n, sim::trace_kind::service_event,
                       "clock_sync", "correction " + correction.to_string());
}

void clock_sync_service::conclude_round(node_id n, std::uint64_t round) {
  if (sys_->crashed(n) || round != round_of_[n]) return;
  const auto correction = trimmed_offset(n, inbox_[n]);
  if (!correction) return;  // not enough readings
  apply_correction(n, *correction);
}

void clock_sync_service::summarize_cluster(node_id n, std::uint64_t round) {
  if (sys_->crashed(n) || round != round_of_[n]) return;
  const auto offset = trimmed_offset(n, inbox_[n]);
  if (!offset) return;
  // The cluster's clock as this aggregator estimates it right now.
  const duration estimate = sys_->clock(n).read() + *offset;
  summaries_[n].push_back({n, estimate, sys_->now()});
  cluster_summary s{estimate, round};
  auto& net = sys_->net(n);
  const std::size_t num_c = clusters_.cluster_count();
  for (std::size_t x = 0; x < num_c; ++x)
    if (x != clusters_.cluster_of(n))
      net.send(clusters_.first(x), ch_clock_sync, s, 48);
}

void clock_sync_service::conclude_cluster(node_id n, std::uint64_t round) {
  if (sys_->crashed(n) || round != round_of_[n]) return;
  const auto correction = trimmed_offset(n, summaries_[n]);
  if (!correction) return;
  apply_correction(n, *correction);
  // Beacon the corrected reading to the members so they step with us.
  cluster_beacon b{sys_->clock(n).read(), round};
  const std::size_t c = clusters_.cluster_of(n);
  auto& net = sys_->net(n);
  for (node_id v = clusters_.first(c); v < clusters_.end(c); ++v)
    if (v != n) net.send(v, ch_clock_sync, b, 48);
}

running_stats clock_sync_service::correction_magnitude() const {
  running_stats merged;
  for (const running_stats& s : corrections_) merged.merge(s);
  return merged;
}

duration clock_sync_service::max_skew(const std::vector<node_id>& nodes) const {
  std::vector<node_id> ns = nodes;
  if (ns.empty())
    for (node_id n = 0; n < sys_->node_count(); ++n)
      if (!sys_->crashed(n)) ns.push_back(n);
  duration worst = duration::zero();
  for (std::size_t i = 0; i < ns.size(); ++i)
    for (std::size_t j = i + 1; j < ns.size(); ++j) {
      const duration a = sys_->clock(ns[i]).read();
      const duration b = sys_->clock(ns[j]).read();
      const duration skew = a > b ? a - b : b - a;
      worst = std::max(worst, skew);
    }
  return worst;
}

}  // namespace hades::svc
