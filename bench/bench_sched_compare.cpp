// E5 — the flexibility claim (paper section 2.1): one dispatcher, several
// schedulers. Random workloads are executed under RM, EDF and Spring and
// compared on deadline misses (RM/EDF) and guaranteed-but-shed load
// (Spring). Expected shape: EDF sustains higher utilization than RM before
// missing; Spring never misses but rejects increasingly under overload.
//
// A fourth contender rides the dispatcher admission hook from the traffic
// edge (DESIGN.md, "Traffic edge & admission control"): plain EDF gated by
// the incremental demand wheel, which turns would-be misses into up-front
// rejections the same way Spring's guarantee test does — but in O(1) per
// activation instead of a full schedulability pass.
//
// Usage: bench_sched_compare [--json PATH] [google-benchmark flags]
#include <benchmark/benchmark.h>

#include <cstring>
#include <deque>
#include <string>
#include <unordered_map>

#include "bench/json_out.hpp"
#include "bench/table.hpp"
#include "core/system.hpp"
#include "sched/edf.hpp"
#include "sched/fixed_priority.hpp"
#include "sched/incremental.hpp"
#include "sched/spring.hpp"
#include "sched/workload.hpp"

using namespace hades;
using namespace hades::literals;

namespace {

struct outcome {
  double miss_ratio = 0.0;    // misses / activations
  double reject_ratio = 0.0;  // rejections / activations (Spring)
};

enum class which { rm, edf, spring, edf_wheel };

outcome run_one(const std::vector<sched::analyzed_task>& ts, which w) {
  core::system::config cfg;
  cfg.costs = core::cost_model::chorus_like();
  cfg.tracing = false;
  cfg.reject_arrival_violations = false;
  core::system sys(1, cfg);
  std::vector<task_id> ids;
  std::vector<const core::task_graph*> graphs;
  std::unordered_map<task_id, std::size_t> idx;
  for (const auto& t : ts) {
    // Plain single-EU tasks so all the schedulers are comparable.
    core::task_builder b(t.name);
    b.deadline(t.d).law(core::arrival_law::sporadic(t.t));
    b.add_code_eu(t.name, 0, t.c);
    ids.push_back(sys.register_task(b.build()));
    idx[ids.back()] = graphs.size();
    graphs.push_back(&sys.graph(ids.back()));
  }
  switch (w) {
    case which::rm:
      sys.attach_policy(0, sched::make_rate_monotonic(graphs));
      break;
    case which::edf:
    case which::edf_wheel:
      sys.attach_policy(0, std::make_shared<sched::edf_policy>());
      break;
    case which::spring:
      sys.attach_policy(0, std::make_shared<sched::spring_policy>());
      break;
  }
  // EDF gated by the incremental wheel: every activation is charged as a
  // one-shot job (cost c, deadline now + d) and rejected when the demand
  // bound would break. Per-task retirement is FIFO under EDF (equal
  // relative deadlines), so a deque of tickets pairs completions with
  // their admit-time charges.
  sched::incremental_feasibility wheel(
      {duration::milliseconds(1), 0.85});
  std::unordered_map<task_id,
                     std::deque<sched::incremental_feasibility::ticket>>
      charges;
  if (w == which::edf_wheel) {
    auto& d = sys.disp(0);
    d.set_admission_hook([&](task_id t, time_point now) {
      wheel.advance(now);
      const auto& at = ts[idx[t]];
      const time_point dl = now + at.d;
      if (!wheel.admissible(at.c, dl)) return false;
      charges[t].push_back(wheel.admit(at.c, dl));
      return true;
    });
    d.set_retire_hook([&](task_id t, instance_number, time_point, time_point,
                          bool) {
      auto& q = charges[t];
      if (q.empty()) return;
      wheel.complete(q.front());
      q.pop_front();
    });
  }
  for (std::size_t i = 0; i < ts.size(); ++i)
    for (time_point a = time_point::zero(); a < time_point::at(300_ms);
         a += ts[i].t)
      sys.activate_at(ids[i], a);
  sys.run_for(400_ms);

  std::uint64_t act = 0, rej = 0;
  for (auto id : ids) {
    act += sys.stats_for(id).activations;
    rej += sys.stats_for(id).rejections;
  }
  outcome o;
  const auto misses = sys.mon().count(core::monitor_event_kind::deadline_miss);
  if (act > 0) {
    o.miss_ratio = static_cast<double>(misses) / static_cast<double>(act);
    o.reject_ratio = static_cast<double>(rej) / static_cast<double>(act + rej);
  }
  return o;
}

void sweep(bench::json_doc& json) {
  bench::table t({"U", "RM miss%", "EDF miss%", "Spring miss%",
                  "Spring reject%", "EDF+wheel miss%", "EDF+wheel reject%"});
  rng r(99);
  constexpr int sets = 15;
  for (double u : {0.50, 0.70, 0.85, 0.95, 1.05, 1.20}) {
    sched::workload_params p;
    p.task_count = 6;
    p.utilization = u;
    p.period_min = 4_ms;
    p.period_max = 60_ms;
    double rm = 0, edf = 0, sp_miss = 0, sp_rej = 0;
    double wh_miss = 0, wh_rej = 0;
    for (int i = 0; i < sets; ++i) {
      const auto ts = sched::generate_taskset(p, r);
      rm += run_one(ts, which::rm).miss_ratio;
      edf += run_one(ts, which::edf).miss_ratio;
      const auto sp = run_one(ts, which::spring);
      sp_miss += sp.miss_ratio;
      sp_rej += sp.reject_ratio;
      const auto wh = run_one(ts, which::edf_wheel);
      wh_miss += wh.miss_ratio;
      wh_rej += wh.reject_ratio;
    }
    t.row({bench::fmt(u), bench::pct(rm / sets), bench::pct(edf / sets),
           bench::pct(sp_miss / sets), bench::pct(sp_rej / sets),
           bench::pct(wh_miss / sets), bench::pct(wh_rej / sets)});
    const std::string key = "u" + std::to_string(static_cast<int>(u * 100));
    json.num(key + "_rm_miss", rm / sets);
    json.num(key + "_edf_miss", edf / sets);
    json.num(key + "_spring_miss", sp_miss / sets);
    json.num(key + "_spring_reject", sp_rej / sets);
    json.num(key + "_edf_wheel_miss", wh_miss / sets);
    json.num(key + "_edf_wheel_reject", wh_rej / sets);
  }
  t.print("E5/table-3: scheduler comparison on one dispatcher "
          "(6 sporadic tasks, 15 sets per point, chorus_like costs)");
  std::printf("expected shape: EDF misses later than RM as U grows; Spring "
              "and EDF+wheel trade rejections for (near-)zero misses, the "
              "wheel at O(1) per activation.\n");
}

void bm_edf_run(benchmark::State& state) {
  rng r(5);
  sched::workload_params p;
  p.task_count = 6;
  p.utilization = 0.8;
  const auto ts = sched::generate_taskset(p, r);
  for (auto _ : state) benchmark::DoNotOptimize(run_one(ts, which::edf));
}
BENCHMARK(bm_edf_run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --json PATH before google-benchmark sees (and rejects) it.
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else
      argv[kept++] = argv[i];
  }
  argc = kept;

  bench::json_doc json;
  bench::stamp(json, 1, 1, 0);
  sweep(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (!json_path.empty()) json.write(json_path);
  return 0;
}
