// E5 — the flexibility claim (paper section 2.1): one dispatcher, several
// schedulers. Random workloads are executed under RM, EDF and Spring and
// compared on deadline misses (RM/EDF) and guaranteed-but-shed load
// (Spring). Expected shape: EDF sustains higher utilization than RM before
// missing; Spring never misses but rejects increasingly under overload.
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/system.hpp"
#include "sched/edf.hpp"
#include "sched/fixed_priority.hpp"
#include "sched/spring.hpp"
#include "sched/workload.hpp"

using namespace hades;
using namespace hades::literals;

namespace {

struct outcome {
  double miss_ratio = 0.0;    // misses / activations
  double reject_ratio = 0.0;  // rejections / activations (Spring)
};

enum class which { rm, edf, spring };

outcome run_one(const std::vector<sched::analyzed_task>& ts, which w) {
  core::system::config cfg;
  cfg.costs = core::cost_model::chorus_like();
  cfg.tracing = false;
  cfg.reject_arrival_violations = false;
  core::system sys(1, cfg);
  std::vector<task_id> ids;
  std::vector<const core::task_graph*> graphs;
  for (const auto& t : ts) {
    // Plain single-EU tasks so all three schedulers are comparable.
    core::task_builder b(t.name);
    b.deadline(t.d).law(core::arrival_law::sporadic(t.t));
    b.add_code_eu(t.name, 0, t.c);
    ids.push_back(sys.register_task(b.build()));
    graphs.push_back(&sys.graph(ids.back()));
  }
  switch (w) {
    case which::rm:
      sys.attach_policy(0, sched::make_rate_monotonic(graphs));
      break;
    case which::edf:
      sys.attach_policy(0, std::make_shared<sched::edf_policy>());
      break;
    case which::spring:
      sys.attach_policy(0, std::make_shared<sched::spring_policy>());
      break;
  }
  for (std::size_t i = 0; i < ts.size(); ++i)
    for (time_point a = time_point::zero(); a < time_point::at(300_ms);
         a += ts[i].t)
      sys.activate_at(ids[i], a);
  sys.run_for(400_ms);

  std::uint64_t act = 0, rej = 0;
  for (auto id : ids) {
    act += sys.stats_for(id).activations;
    rej += sys.stats_for(id).rejections;
  }
  outcome o;
  const auto misses = sys.mon().count(core::monitor_event_kind::deadline_miss);
  if (act > 0) {
    o.miss_ratio = static_cast<double>(misses) / static_cast<double>(act);
    o.reject_ratio = static_cast<double>(rej) / static_cast<double>(act + rej);
  }
  return o;
}

void sweep() {
  bench::table t({"U", "RM miss%", "EDF miss%", "Spring miss%",
                  "Spring reject%"});
  rng r(99);
  constexpr int sets = 15;
  for (double u : {0.50, 0.70, 0.85, 0.95, 1.05, 1.20}) {
    sched::workload_params p;
    p.task_count = 6;
    p.utilization = u;
    p.period_min = 4_ms;
    p.period_max = 60_ms;
    double rm = 0, edf = 0, sp_miss = 0, sp_rej = 0;
    for (int i = 0; i < sets; ++i) {
      const auto ts = sched::generate_taskset(p, r);
      rm += run_one(ts, which::rm).miss_ratio;
      edf += run_one(ts, which::edf).miss_ratio;
      const auto sp = run_one(ts, which::spring);
      sp_miss += sp.miss_ratio;
      sp_rej += sp.reject_ratio;
    }
    t.row({bench::fmt(u), bench::pct(rm / sets), bench::pct(edf / sets),
           bench::pct(sp_miss / sets), bench::pct(sp_rej / sets)});
  }
  t.print("E5/table-3: scheduler comparison on one dispatcher "
          "(6 sporadic tasks, 15 sets per point, chorus_like costs)");
  std::printf("expected shape: EDF misses later than RM as U grows; Spring "
              "trades rejections for (near-)zero misses.\n");
}

void bm_edf_run(benchmark::State& state) {
  rng r(5);
  sched::workload_params p;
  p.task_count = 6;
  p.utilization = 0.8;
  const auto ts = sched::generate_taskset(p, r);
  for (auto _ : state) benchmark::DoNotOptimize(run_one(ts, which::edf));
}
BENCHMARK(bm_edf_run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
