// E3 — section 4 of the paper: characterize the cost of every dispatcher
// activity class and the kernel background activities.
//
// The paper measured its dispatcher prototype on ChorusOS; our analogue is
// (a) the configured cost-model constants the simulated dispatcher charges
// (the section 4 table itself) and (b) host-side microbenchmarks of this
// implementation's dispatcher operations — the "worst-case scenario
// benchmarks" the paper describes, applied to our own prototype.
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/system.hpp"
#include "sim/engine.hpp"
#include "sched/edf.hpp"

using namespace hades;
using namespace hades::literals;

namespace {

core::system::config base() {
  core::system::config cfg;
  cfg.costs = core::cost_model::zero();
  cfg.kernel_background = false;
  cfg.tracing = false;
  return cfg;
}

void print_section4_table() {
  const auto m = core::cost_model::chorus_like();
  bench::table t({"activity", "class", "constant", "WCET / period"});
  t.row({"local precedence constraint", "dispatcher", "c_local",
         m.c_local.to_string()});
  t.row({"remote precedence to protocol", "dispatcher", "c_rel",
         m.c_rel.to_string()});
  t.row({"action start", "dispatcher", "c_act_start",
         m.c_act_start.to_string()});
  t.row({"action end", "dispatcher", "c_act_end", m.c_act_end.to_string()});
  t.row({"invocation start", "dispatcher", "c_inv_start",
         m.c_inv_start.to_string()});
  t.row({"invocation end", "dispatcher", "c_inv_end",
         m.c_inv_end.to_string()});
  t.row({"context switch", "kernel", "cs", m.context_switch.to_string()});
  t.row({"clock interrupt", "kernel bg", "w_clk / p_clk",
         m.w_clk.to_string() + " / " + m.p_clk.to_string()});
  t.row({"NIC interrupt", "kernel bg", "w_net / p_net",
         m.w_net.to_string() + " / " + m.p_net.to_string()});
  t.row({"scheduler per event", "scheduler", "x",
         m.scheduler_per_event.to_string()});
  t.row({"net task per message", "protocol", "-",
         m.net_task_per_msg.to_string()});
  t.print("E3/table-1: section 4 cost model (chorus_like configuration)");
}

// -- host-side microbenchmarks of our dispatcher implementation -------------

void bm_activation_to_completion(benchmark::State& state) {
  core::system sys(1, base());
  core::task_builder b("t");
  b.deadline(1_s).law(core::arrival_law::aperiodic());
  b.add_code_eu("t", 0, 10_us);
  const auto t = sys.register_task(b.build());
  for (auto _ : state) {
    sys.activate(t);
    sys.engine().run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_activation_to_completion);

void bm_precedence_chain(benchmark::State& state) {
  core::system sys(1, base());
  core::task_builder b("chain");
  b.deadline(1_s).law(core::arrival_law::aperiodic());
  eu_index prev = b.add_code_eu("eu0", 0, 1_us);
  for (int i = 1; i < 8; ++i) {
    const auto cur = b.add_code_eu("eu" + std::to_string(i), 0, 1_us);
    b.precede(prev, cur);
    prev = cur;
  }
  const auto t = sys.register_task(b.build());
  for (auto _ : state) {
    sys.activate(t);
    sys.engine().run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 8));
}
BENCHMARK(bm_precedence_chain);

void bm_scheduler_notification(benchmark::State& state) {
  core::system sys(1, base());
  core::task_builder b("t");
  b.deadline(1_s).law(core::arrival_law::aperiodic());
  b.add_code_eu("t", 0, 10_us);
  const auto t = sys.register_task(b.build());
  sys.attach_policy(0, std::make_shared<sched::edf_policy>());
  for (auto _ : state) {
    sys.activate(t);
    sys.engine().run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 2));
}
BENCHMARK(bm_scheduler_notification);

void bm_remote_precedence(benchmark::State& state) {
  core::system sys(2, base());
  core::task_builder b("dist");
  b.deadline(1_s).law(core::arrival_law::aperiodic());
  const auto a = b.add_code_eu("a", 0, 1_us);
  const auto c = b.add_code_eu("c", 1, 1_us);
  b.precede(a, c, 64);
  const auto t = sys.register_task(b.build());
  for (auto _ : state) {
    sys.activate(t);
    sys.engine().run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_remote_precedence);

void bm_engine_event_dispatch(benchmark::State& state) {
  sim::engine eng;
  for (auto _ : state) {
    eng.after(1_us, [] {});
    eng.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_engine_event_dispatch);

}  // namespace

int main(int argc, char** argv) {
  print_section4_table();
  std::printf("\nhost-side microbenchmarks of this dispatcher (the paper's "
              "\"worst-case scenario benchmarks\"):\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
