// E11 — consensus service: decision latency versus the tolerated number of
// failures f (f+1 rounds of length > delta_max), and robustness of the
// agreement under crashes.
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/system.hpp"
#include "services/consensus.hpp"

using namespace hades;
using namespace hades::literals;

namespace {

core::system::config lan() {
  core::system::config cfg;
  cfg.costs = core::cost_model::zero();
  cfg.kernel_background = false;
  cfg.tracing = false;
  cfg.net.delta_min = 20_us;
  cfg.net.delta_max = 60_us;
  return cfg;
}

void sweep() {
  bench::table t({"nodes", "f", "rounds", "crashes injected", "agreement",
                  "decision latency"});
  for (int f : {0, 1, 2, 3}) {
    for (int crashes : {0, f}) {
      const std::size_t nodes = 5;
      core::system sys(nodes, lan());
      svc::consensus_service svc(sys, {f, 1_ms});
      std::map<node_id, std::int64_t> proposals;
      for (node_id n = 0; n < nodes; ++n)
        proposals[n] = 10 + static_cast<std::int64_t>(n);
      svc.run(proposals);
      for (int c = 0; c < crashes; ++c) {
        sys.engine().at(time_point::at(duration::microseconds(300 + 900 * c)),
                        [&sys, c] { sys.crash_node(static_cast<node_id>(c)); });
      }
      sys.run_for(50_ms);
      bool agreement = true;
      std::int64_t first = -1;
      for (node_id n = 0; n < nodes; ++n) {
        if (sys.crashed(n) || !svc.decided(n)) continue;
        if (first == -1) first = svc.decision(n);
        if (svc.decision(n) != first) agreement = false;
      }
      t.row({std::to_string(nodes), std::to_string(f),
             std::to_string(svc.rounds()), std::to_string(crashes),
             agreement ? "yes" : "NO",
             svc.decision_latency().to_string()});
    }
  }
  t.print("E11/table-10: flooding consensus — latency grows linearly in f; "
          "agreement holds with up to f crashes");
}

void bm_consensus_instance(benchmark::State& state) {
  for (auto _ : state) {
    core::system sys(5, lan());
    svc::consensus_service svc(sys, {static_cast<int>(state.range(0)), 1_ms});
    svc.run({{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
    sys.run_for(20_ms);
    benchmark::DoNotOptimize(svc.decision(0));
  }
}
BENCHMARK(bm_consensus_instance)->Arg(1)->Arg(3)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
