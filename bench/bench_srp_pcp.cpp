// E9 — resource-protocol ablation (paper section 3.3 / footnote 2): what do
// PCP and SRP buy over plain priority scheduling when tasks share
// resources? Measured: the high-urgency task's worst response time (its
// blocking), the number of preemptions, and deadline misses.
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/system.hpp"
#include "sched/edf.hpp"
#include "sched/pcp.hpp"
#include "sched/srp.hpp"

using namespace hades;
using namespace hades::literals;

namespace {

enum class protocol { none_edf, edf_srp, rm_pcp };

struct result {
  duration hi_worst = duration::zero();
  std::size_t misses = 0;
  std::uint64_t preemptions = 0;
};

core::task_graph cs_task(const std::string& name, duration before,
                         duration cs, duration after, resource_id res,
                         duration deadline, duration period) {
  core::spuri_task t;
  t.name = name;
  t.c_before = before;
  t.cs = cs;
  t.c_after = after;
  t.resource = res;
  t.deadline = deadline;
  t.pseudo_period = period;
  return core::translate_spuri(t);
}

result run(protocol proto, duration lo_section) {
  core::system::config cfg;
  cfg.costs = core::cost_model::zero();
  cfg.kernel_background = false;
  cfg.tracing = false;
  core::system sys(1, cfg);

  // hi: urgent, short section on R; mid: medium no-resource work;
  // lo: long section on R — the classic priority-inversion triple.
  const auto hi = sys.register_task(
      cs_task("hi", 200_us, 400_us, 200_us, 1, 5_ms, 10_ms));
  core::task_builder mb("mid");
  mb.deadline(20_ms).law(core::arrival_law::sporadic(20_ms));
  mb.add_code_eu("mid", 0, 4_ms);
  const auto mid = sys.register_task(mb.build());
  const auto lo = sys.register_task(
      cs_task("lo", 200_us, lo_section, 200_us, 1, 60_ms, 60_ms));

  std::vector<const core::task_graph*> graphs{&sys.graph(hi), &sys.graph(mid),
                                              &sys.graph(lo)};
  switch (proto) {
    case protocol::none_edf:
      sys.attach_policy(0, std::make_shared<sched::edf_policy>());
      break;
    case protocol::edf_srp:
      sys.attach_policy(0, std::make_shared<sched::edf_srp_policy>(graphs));
      break;
    case protocol::rm_pcp:
      sys.attach_policy(0, sched::make_rm_pcp(graphs));
      break;
  }
  // Adversarial phasing: lo grabs the section, hi arrives mid-section, mid
  // arrives right after hi (to amplify unbounded inversion without a
  // protocol).
  for (int burst = 0; burst < 20; ++burst) {
    const time_point base = time_point::at(60_ms * burst);
    sys.activate_at(lo, base);
    sys.activate_at(hi, base + 500_us);
    sys.activate_at(mid, base + 600_us);
    sys.activate_at(hi, base + 11_ms);
  }
  sys.run_for(1300_ms);

  result r;
  r.hi_worst = duration::nanoseconds(static_cast<std::int64_t>(
      sys.stats_for(hi).response_times.max()));
  r.misses = sys.mon().count(core::monitor_event_kind::deadline_miss);
  r.preemptions = sys.cpu(0).stats().preemptions;
  return r;
}

void sweep() {
  bench::table t({"protocol", "lo section", "hi worst response",
                  "deadline misses", "preemptions"});
  for (auto section : {2_ms, 4_ms}) {
    for (auto proto : {protocol::none_edf, protocol::edf_srp,
                       protocol::rm_pcp}) {
      const char* name = proto == protocol::none_edf ? "EDF (no protocol)"
                         : proto == protocol::edf_srp ? "EDF+SRP"
                                                      : "RM+PCP";
      const auto r = run(proto, section);
      t.row({name, section.to_string(), r.hi_worst.to_string(),
             std::to_string(r.misses), std::to_string(r.preemptions)});
    }
  }
  t.print("E9/table-8: resource protocols under the inversion triple "
          "(20 adversarial bursts)");
  std::printf("expected shape: without a protocol, hi's response includes "
              "mid's whole execution (unbounded inversion) and grows with "
              "load; SRP/PCP bound hi's blocking by one lo section.\n");
}

void bm_srp_burst(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(run(protocol::edf_srp, 2_ms));
}
BENCHMARK(bm_srp_burst)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
