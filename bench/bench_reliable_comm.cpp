// E7 — time-bounded reliable communication: delivery success and latency
// distribution of the p2p and broadcast primitives under increasing
// omission rates, checked against the analytic bounds used by the
// feasibility layer.
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/system.hpp"
#include "services/reliable_comm.hpp"
#include "util/stats.hpp"

using namespace hades;
using namespace hades::literals;

namespace {

core::system::config lan() {
  core::system::config cfg;
  cfg.costs = core::cost_model::zero();
  cfg.kernel_background = false;
  cfg.tracing = false;
  cfg.net.delta_min = 20_us;
  cfg.net.delta_max = 60_us;
  return cfg;
}

void p2p_sweep() {
  bench::table t({"omission rate", "k (copies-1)", "delivered", "p50", "p99",
                  "max", "bound"});
  for (double loss : {0.0, 0.1, 0.3, 0.5}) {
    for (int k : {1, 3}) {
      core::system sys(2, lan());
      sys.network().set_omission_rate(loss);
      svc::reliable_p2p svc(sys, {k, 150_us});
      sample_set lat;
      time_point sent;
      svc.on_deliver(1, [&](node_id, const std::any&) {
        lat.add(sys.now() - sent);
      });
      constexpr int n = 400;
      for (int i = 0; i < n; ++i) {
        sent = sys.now();
        svc.send(0, 1, i);
        sys.run_for(2_ms);
      }
      t.row({bench::pct(loss), std::to_string(k),
             bench::pct(static_cast<double>(lat.count()) / n),
             lat.empty() ? "-" : duration::nanoseconds(
                 static_cast<std::int64_t>(lat.percentile(50))).to_string(),
             lat.empty() ? "-" : duration::nanoseconds(
                 static_cast<std::int64_t>(lat.percentile(99))).to_string(),
             lat.empty() ? "-" : duration::nanoseconds(
                 static_cast<std::int64_t>(lat.max())).to_string(),
             svc.p2p_bound(64).to_string()});
    }
  }
  t.print("E7/table-5: time-bounded reliable point-to-point "
          "(400 messages per row)");
  std::printf("expected shape: success ~ 1 - loss^(k+1); every delivery "
              "within the analytic bound.\n");
}

void bcast_sweep() {
  bench::table t({"omission rate", "broadcasts", "agreement violations",
                  "worst latency", "bound"});
  for (double loss : {0.0, 0.1, 0.3}) {
    core::system sys(4, lan());
    sys.network().set_omission_rate(loss);
    svc::reliable_broadcast svc(sys, {});
    constexpr int n = 200;
    for (int i = 0; i < n; ++i) {
      svc.broadcast(static_cast<node_id>(i % 4), i);
      sys.run_for(2_ms);
    }
    // Agreement: every node delivered the same set.
    int violations = 0;
    for (node_id a = 1; a < 4; ++a) {
      auto la = svc.delivery_log(a);
      auto l0 = svc.delivery_log(0);
      std::sort(la.begin(), la.end());
      std::sort(l0.begin(), l0.end());
      if (la != l0) ++violations;
    }
    sample_set lat;
    t.row({bench::pct(loss), std::to_string(n), std::to_string(violations),
           "-", svc.delivery_bound(64).to_string()});
  }
  t.print("E7/table-6: reliable broadcast agreement under omissions "
          "(flooding diffusion, 4 nodes)");
  std::printf("note: with a single relay hop, agreement requires at most one "
              "of the two independent paths per receiver to survive; "
              "violations appear only at extreme loss.\n");
}

void bm_p2p_send(benchmark::State& state) {
  core::system sys(2, lan());
  svc::reliable_p2p svc(sys, {1, 150_us});
  svc.on_deliver(1, [](node_id, const std::any&) {});
  for (auto _ : state) {
    svc.send(0, 1, 1);
    sys.engine().run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_p2p_send);

}  // namespace

int main(int argc, char** argv) {
  p2p_sweep();
  bcast_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
