// Wire fast-path throughput: the pooled zero-allocation network vs the
// pre-PR wire implementation (DESIGN.md, "Wire fast path").
//
// `legacy_wire` below reproduces the old `sim::network` send/deliver path
// exactly: a `std::any` payload heap-boxed per frame and deep-copied once
// per broadcast destination, per-source state in `std::map`s (FIFO floors,
// link omission, scripted drops), a handler `unordered_map` looked up per
// delivery, globally-read fault state behind a `shared_mutex` taken twice
// per send, time-indexed toggles scanned linearly, and the seed's
// latency-jitter draw (a 64-bit modulo guarded by a `require` that built a
// heap std::string per call — both replaced repo-wide by this PR, so the
// baseline carries its own copies). The new wire
// replaces all of that with slab-pooled refcounted payloads, dense
// destination-indexed vectors, a flat handler table, one lock-free
// acquire-load of an immutable fault snapshot, and binary-searched
// timelines.
//
// Workloads:
//   * broadcast churn — 8 nodes, fault-free, every node fans one 64-byte
//     envelope out to the other 7 each round; the acceptance workload. The
//     steady-state phase runs under a global operator-new counter and must
//     perform ZERO heap allocations per message (hard assertion, any mode).
//   * long-plan unicast — same sends with 1000 pre-registered omission-rate
//     toggle edges: the timeline-lookup regression (linear scan made every
//     send O(plan size); upper_bound makes it O(log)).
//
// Usage: bench_wire [--smoke] [--require-2x] [--json PATH]
//   --smoke       ~10x fewer rounds (CI compile/perf-path check)
//   --require-2x  exit non-zero unless new/legacy broadcast-churn
//                 throughput >= 2x
//   --json PATH   write machine-readable BENCH_wire results to PATH
#include <atomic>
#include <any>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <algorithm>
#include <map>
#include <memory>
#include <new>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench/json_out.hpp"
#include "bench/table.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

// --- global allocation counter ----------------------------------------------
// Counts every operator-new in the binary; the steady-state measurement
// phase of the new wire must not move it at all.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (size + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1)))
    return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace hades;
using namespace hades::literals;

namespace {

constexpr std::size_t kNodes = 8;

// Modeled on what the services broadcast per message: a reliable-broadcast
// envelope (origin, seq, sent_at, size, payload words) is ~64 bytes.
struct churn_payload {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t body[5] = {};
};

// --- the pre-PR wire, verbatim semantics ------------------------------------
// Every structural cost of the old `sim::network` send/deliver path is
// reproduced: the two shared_mutex acquisitions per send (deterministic
// drop causes, then the omission rate) plus one more in sample_latency and
// one at delivery, the std::map-keyed per-source state, the linear
// timeline scans, the per-destination std::any deep copy, and the handler
// unordered_map lookup per delivery.

class legacy_wire {
 public:
  struct message {
    node_id src = invalid_node;
    node_id dst = invalid_node;
    int channel = 0;
    std::any payload;
    std::size_t size_bytes = 0;
    std::uint64_t id = 0;
    time_point sent_at;
  };
  using handler = std::function<void(const message&)>;
  static constexpr int any_channel = -1;

  legacy_wire(sim::engine& e, sim::network::params p, std::uint64_t seed)
      : e_(&e), params_(p), seed_(seed) {}

  void attach(node_id n, handler h) {
    ensure_source(n);
    handlers_[n] = std::move(h);
  }

  void set_omission_rate_at(time_point t, double p) {
    std::unique_lock lk(mu_);
    omission_rate_.set(t, p);
  }

  std::uint64_t unicast(node_id src, node_id dst, int channel,
                        std::any payload, std::size_t size_bytes) {
    source_state& s = source(src);
    message m;
    m.src = src;
    m.dst = dst;
    m.channel = channel;
    m.payload = std::move(payload);
    m.size_bytes = size_bytes;
    m.id = ((static_cast<std::uint64_t>(src) + 1) << 40) | ++s.next_seq;
    m.sent_at = e_->now();
    sent_.fetch_add(1, std::memory_order_relaxed);
    if (should_drop(s, src, dst, channel)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return m.id;
    }
    bool late = false;
    const duration lat = sample_latency(s, size_bytes, late);
    if (late) late_.fetch_add(1, std::memory_order_relaxed);
    time_point deliver_at = e_->now() + lat;
    auto& last = s.last_delivery[dst];
    if (deliver_at < last) deliver_at = last;
    last = deliver_at;
    const std::uint64_t id = m.id;
    e_->at(deliver_at, [this, m = std::move(m)]() {
      bool dst_down;
      {
        std::shared_lock lk(mu_);
        dst_down = node_down_at(m.dst, e_->now());
      }
      auto it = handlers_.find(m.dst);
      if (it == handlers_.end() || !it->second || dst_down) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      delivered_.fetch_add(1, std::memory_order_relaxed);
      it->second(m);
    });
    return id;
  }

  std::size_t broadcast(node_id src, int channel, const std::any& payload,
                        std::size_t size_bytes) {
    std::size_t n = 0;
    for (node_id dst : attached_nodes()) {
      if (dst == src) continue;
      unicast(src, dst, channel, payload, size_bytes);  // deep any copy
      ++n;
    }
    return n;
  }

  [[nodiscard]] std::uint64_t delivered() const { return delivered_.load(); }

 private:
  template <typename T>
  class timeline {  // the old linear-scan piecewise-constant container
   public:
    void set(time_point t, T v) {
      auto it = entries_.end();
      while (it != entries_.begin() && std::prev(it)->first > t) --it;
      entries_.insert(it, {t, std::move(v)});
    }
    [[nodiscard]] const T* at(time_point t) const {
      const T* best = nullptr;
      for (const auto& [when, v] : entries_) {
        if (when > t) break;
        best = &v;
      }
      return best;
    }

   private:
    std::vector<std::pair<time_point, T>> entries_;
  };

  struct perf_fault {
    double rate = 0.0;
    duration extra = duration::zero();
  };

  struct source_state {
    explicit source_state(rng r) : stream(std::move(r)) {}
    rng stream;
    std::uint64_t next_seq = 0;
    std::map<node_id, time_point> last_delivery;
    std::map<node_id, double> link_omission;
    std::map<std::pair<node_id, int>, int> scripted_drops;
    std::map<node_id, timeline<bool>> link_down;
  };

  bool node_down_at(node_id n, time_point t) const {
    auto it = node_down_.find(n);
    if (it == node_down_.end()) return false;
    const bool* v = it->second.at(t);
    return v != nullptr && *v;
  }

  bool partitioned_at(node_id a, node_id b, time_point t) const {
    const std::vector<std::uint32_t>* groups = partition_.at(t);
    if (groups == nullptr || groups->empty()) return false;
    constexpr std::uint32_t no_group = 0xFFFFFFFFu;
    const std::uint32_t ga = a < groups->size() ? (*groups)[a] : no_group;
    const std::uint32_t gb = b < groups->size() ? (*groups)[b] : no_group;
    return ga != no_group && gb != no_group && ga != gb;
  }

  // The seed's require() took const std::string&, so every hot-path
  // invariant check constructed (and heap-allocated) its message even when
  // the condition held; the seed's uniform_int reduced with a 64-bit
  // modulo. Both costs belong to the pre-PR baseline.
  static void legacy_require(bool condition, const std::string& message) {
    if (!condition) throw invariant_violation(message);
  }
  static std::int64_t legacy_uniform_int(rng& r, std::int64_t lo,
                                         std::int64_t hi) {
    legacy_require(lo <= hi, "rng::uniform_int: empty range");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(r.next_u64());
    return lo + static_cast<std::int64_t>(r.next_u64() % span);
  }

  bool should_drop(source_state& s, node_id src, node_id dst, int channel) {
    const time_point t = e_->now();
    {
      std::shared_lock lk(mu_);
      if (node_down_at(src, t) || node_down_at(dst, t)) return true;
      if (partitioned_at(src, dst, t)) return true;
    }
    if (auto it = s.link_down.find(dst); it != s.link_down.end()) {
      const bool* down = it->second.at(t);
      if (down != nullptr && *down) return true;
    }
    for (const int key : {channel, any_channel}) {
      if (auto it = s.scripted_drops.find({dst, key});
          it != s.scripted_drops.end() && it->second > 0) {
        --it->second;
        return true;
      }
    }
    double p;
    {
      std::shared_lock lk(mu_);
      const double* global = omission_rate_.at(t);
      p = global != nullptr ? *global : 0.0;
    }
    if (auto it = s.link_omission.find(dst); it != s.link_omission.end())
      p = it->second;
    return p > 0.0 && s.stream.chance(p);
  }

  duration sample_latency(source_state& s, std::size_t size_bytes, bool& late) {
    const std::int64_t jitter_span =
        (params_.delta_max - params_.delta_min).count();
    duration lat =
        params_.delta_min +
        duration::nanoseconds(jitter_span > 0
                                  ? legacy_uniform_int(s.stream, 0, jitter_span)
                                  : 0) +
        params_.per_byte * static_cast<std::int64_t>(size_bytes);
    perf_fault pf;
    {
      std::shared_lock lk(mu_);
      const perf_fault* p = perf_fault_.at(e_->now());
      if (p != nullptr) pf = *p;
    }
    late = pf.rate > 0.0 && s.stream.chance(pf.rate);
    if (late) lat += pf.extra;
    return lat;
  }

  std::vector<node_id> attached_nodes() const {
    std::vector<node_id> out;
    out.reserve(handlers_.size());
    for (const auto& [n, h] : handlers_) out.push_back(n);
    std::sort(out.begin(), out.end());
    return out;
  }
  void ensure_source(node_id n) {
    while (sources_.size() <= n)
      sources_.push_back(std::make_unique<source_state>(rng(
          seed_ ^ (0x9E3779B97F4A7C15ull * (sources_.size() + 1)))));
  }
  source_state& source(node_id n) {
    ensure_source(n);
    return *sources_[n];
  }

  sim::engine* e_;
  sim::network::params params_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<source_state>> sources_;
  std::unordered_map<node_id, handler> handlers_;
  mutable std::shared_mutex mu_;
  std::map<node_id, timeline<bool>> node_down_;
  timeline<std::vector<std::uint32_t>> partition_;
  timeline<double> omission_rate_;
  timeline<perf_fault> perf_fault_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> late_{0};
};

sim::network::params wire_params() {
  sim::network::params p;
  p.delta_min = 10_us;
  p.delta_max = 50_us;
  p.per_byte = 0_ns;
  return p;
}

struct run_result {
  double wall_s = 0;
  std::uint64_t messages = 0;
  std::uint64_t allocs = 0;
  std::uint64_t checksum = 0;
};

/// Broadcast churn on the new wire. One round = every node fans a pooled
/// 32-byte payload out to the other 7; the engine drains between rounds.
run_result run_new_broadcast(std::size_t rounds, std::size_t toggles) {
  sim::engine e;
  sim::network net(e, wire_params(), 42);
  net.reserve_nodes(kNodes);
  std::uint64_t checksum = 0;
  for (node_id n = 0; n < kNodes; ++n)
    net.attach(n, [&checksum, n](const sim::message& m) {
      checksum += n ^ m.payload.get<churn_payload>()->a;
    });
  for (std::size_t i = 0; i < toggles; ++i)
    net.set_omission_rate_at(
        time_point::at(1_ns * static_cast<std::int64_t>(i)), 0.0);
  auto round = [&](std::uint64_t i) {
    for (node_id src = 0; src < kNodes; ++src)
      net.fan_out(src, 1, churn_payload{i, i ^ 7, i * 3, {}}, 64);
    e.run();
  };
  for (std::uint64_t i = 0; i < 64; ++i) round(i);  // warm pools and slabs
  const std::uint64_t allocs_before = g_allocs.load();
  const auto stats_before = sim::wire_payload::stats();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < rounds; ++i) round(i);
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  run_result r;
  r.wall_s = dt.count();
  r.messages = rounds * kNodes * (kNodes - 1);
  r.allocs = g_allocs.load() - allocs_before;
  r.checksum = checksum;
  const auto stats_after = sim::wire_payload::stats();
  if (stats_after.chunk_allocs != stats_before.chunk_allocs ||
      stats_after.oversize_allocs != stats_before.oversize_allocs) {
    std::printf("FAIL: payload pool grew during steady state\n");
    std::exit(1);
  }
  return r;
}

/// The same churn on the reproduced pre-PR wire.
run_result run_legacy_broadcast(std::size_t rounds, std::size_t toggles) {
  sim::engine e;
  legacy_wire net(e, wire_params(), 42);
  std::uint64_t checksum = 0;
  for (node_id n = 0; n < kNodes; ++n)
    net.attach(n, [&checksum, n](const legacy_wire::message& m) {
      checksum += n ^ std::any_cast<churn_payload>(&m.payload)->a;
    });
  for (std::size_t i = 0; i < toggles; ++i)
    net.set_omission_rate_at(
        time_point::at(1_ns * static_cast<std::int64_t>(i)), 0.0);
  auto round = [&](std::uint64_t i) {
    for (node_id src = 0; src < kNodes; ++src)
      net.broadcast(src, 1, churn_payload{i, i ^ 7, i * 3, {}}, 64);
    e.run();
  };
  for (std::uint64_t i = 0; i < 64; ++i) round(i);
  const std::uint64_t allocs_before = g_allocs.load();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < rounds; ++i) round(i);
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  run_result r;
  r.wall_s = dt.count();
  r.messages = rounds * kNodes * (kNodes - 1);
  r.allocs = g_allocs.load() - allocs_before;
  r.checksum = checksum;
  return r;
}

constexpr int kReps = 3;

/// Keep the fastest rep's timing and the WORST rep's allocation count (the
/// zero-allocation gate must hold in every rep, not just the kept one).
void keep_best(run_result& best, const run_result& r) {
  const std::uint64_t allocs = std::max(best.allocs, r.allocs);
  if (best.messages == 0 || r.wall_s < best.wall_s) best = r;
  best.allocs = allocs;
}

double mps(const run_result& r) {
  return r.wall_s > 0 ? static_cast<double>(r.messages) / r.wall_s : 0;
}
double ns_per_msg(const run_result& r) {
  return r.messages > 0 ? r.wall_s * 1e9 / static_cast<double>(r.messages) : 0;
}
double allocs_per_msg(const run_result& r) {
  return r.messages > 0
             ? static_cast<double>(r.allocs) / static_cast<double>(r.messages)
             : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rounds = 20'000;
  bool require_2x = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) rounds = 2'000;
    if (std::strcmp(argv[i], "--require-2x") == 0) require_2x = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  std::printf("wire fast path: %zu-node fault-free 64-byte broadcast churn, "
              "%zu rounds (%zu messages), best of %d interleaved reps\n",
              kNodes, rounds, rounds * kNodes * (kNodes - 1), kReps);

  // Interleaved best-of-N: wall time on a shared machine is noisy in one
  // direction only, so each path keeps its fastest rep; the allocation
  // count is accumulated across every rep (the zero gate must hold in all
  // of them). Alternating the paths spreads transient noise fairly.
  run_result nw, lg, nw_plan, lg_plan;
  const std::size_t plan_rounds = rounds / 4;
  for (int rep = 0; rep < kReps; ++rep) {
    // Fault-free broadcast churn: the acceptance workload.
    keep_best(nw, run_new_broadcast(rounds, 0));
    keep_best(lg, run_legacy_broadcast(rounds, 0));
    // Long-plan sends: 1000 pre-registered (no-op) omission toggle edges
    // tax the old linear timeline scan on every send, the binary search
    // barely.
    keep_best(nw_plan, run_new_broadcast(plan_rounds, 1'000));
    keep_best(lg_plan, run_legacy_broadcast(plan_rounds, 1'000));
  }

  bench::table t({"workload", "wire", "msgs/s", "ns/msg", "allocs/msg"});
  t.row({"broadcast churn", "new", bench::fmt(mps(nw), 0),
         bench::fmt(ns_per_msg(nw), 1), bench::fmt(allocs_per_msg(nw), 3)});
  t.row({"broadcast churn", "legacy", bench::fmt(mps(lg), 0),
         bench::fmt(ns_per_msg(lg), 1), bench::fmt(allocs_per_msg(lg), 3)});
  t.row({"1000-edge plan", "new", bench::fmt(mps(nw_plan), 0),
         bench::fmt(ns_per_msg(nw_plan), 1),
         bench::fmt(allocs_per_msg(nw_plan), 3)});
  t.row({"1000-edge plan", "legacy", bench::fmt(mps(lg_plan), 0),
         bench::fmt(ns_per_msg(lg_plan), 1),
         bench::fmt(allocs_per_msg(lg_plan), 3)});
  t.print("wire fast path (new vs pre-PR legacy)");

  const double speedup = ns_per_msg(lg) > 0 && ns_per_msg(nw) > 0
                             ? ns_per_msg(lg) / ns_per_msg(nw)
                             : 0;
  const double plan_speedup =
      ns_per_msg(lg_plan) > 0 && ns_per_msg(nw_plan) > 0
          ? ns_per_msg(lg_plan) / ns_per_msg(nw_plan)
          : 0;
  std::printf("\n  broadcast-churn speedup %.2fx, long-plan speedup %.2fx\n",
              speedup, plan_speedup);

  if (!json_path.empty()) {
    bench::json_doc j;
    j.str("bench", "wire");
    bench::stamp(j, kNodes, 1, 0);
    j.num("messages", nw.messages);
    j.num("msgs_per_sec_new", mps(nw));
    j.num("msgs_per_sec_legacy", mps(lg));
    j.num("ns_per_msg_new", ns_per_msg(nw));
    j.num("ns_per_msg_legacy", ns_per_msg(lg));
    j.num("allocs_per_msg_new", allocs_per_msg(nw));
    j.num("allocs_per_msg_legacy", allocs_per_msg(lg));
    j.num("speedup", speedup);
    j.num("long_plan_speedup", plan_speedup);
    j.write(json_path);
  }

  // Hard gate, any mode: the steady state must allocate nothing at all.
  if (nw.allocs != 0) {
    std::printf("FAIL: new wire performed %llu heap allocations in the "
                "steady-state phase (expected 0)\n",
                static_cast<unsigned long long>(nw.allocs));
    return 1;
  }
  std::printf("  steady-state heap allocations: 0 (legacy: %.2f/msg)\n",
              allocs_per_msg(lg));
  if (require_2x && speedup < 2.0) {
    std::printf("FAIL: broadcast-churn speedup %.2fx < 2x\n", speedup);
    return 1;
  }
  return 0;
}
