// Machine-readable benchmark output: each bench binary can emit one flat
// `BENCH_<name>.json` file (ns/op, allocs/op, throughput, speedups) next to
// its human-readable table, so CI can upload comparable artifacts and gate
// on numbers instead of scraping stdout. Keys are emitted in insertion
// order; values are numbers or strings only — deliberately minimal.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace hades::bench {

class json_doc {
 public:
  void num(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    fields_.emplace_back(key, buf);
  }
  void num(const std::string& key, std::uint64_t v) {
    fields_.emplace_back(key, std::to_string(v));
  }
  void str(const std::string& key, const std::string& v) {
    fields_.emplace_back(key, '"' + v + '"');
  }

  /// Write the document to `path`. Returns false (and says so on stderr)
  /// when the file cannot be created.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "json_doc: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < fields_.size(); ++i)
      std::fprintf(f, "  \"%s\": %s%s\n", fields_[i].first.c_str(),
                   fields_[i].second.c_str(),
                   i + 1 < fields_.size() ? "," : "");
    std::fprintf(f, "}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace hades::bench
