// Machine-readable benchmark output: each bench binary can emit one flat
// `BENCH_<name>.json` file (ns/op, allocs/op, throughput, speedups) next to
// its human-readable table, so CI can upload comparable artifacts and gate
// on numbers instead of scraping stdout. Keys are emitted in insertion
// order; values are numbers or strings only — deliberately minimal.
#pragma once

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace hades::bench {

class json_doc {
 public:
  void num(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    fields_.emplace_back(key, buf);
  }
  void num(const std::string& key, std::uint64_t v) {
    fields_.emplace_back(key, std::to_string(v));
  }
  void str(const std::string& key, const std::string& v) {
    fields_.emplace_back(key, '"' + v + '"');
  }

  /// Write the document to `path`. Returns false (and says so on stderr)
  /// when the file cannot be created.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "json_doc: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < fields_.size(); ++i)
      std::fprintf(f, "  \"%s\": %s%s\n", fields_[i].first.c_str(),
                   fields_[i].second.c_str(),
                   i + 1 < fields_.size() ? "," : "");
    std::fprintf(f, "}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Provenance stamp every BENCH_*.json should lead with, so artifacts from
/// different runs/machines are comparable: the workload's node count, the
/// shard/worker configuration, the git revision (CI's GITHUB_SHA when set,
/// else the configure-time HADES_GIT_SHA, else "unknown"), and the machine
/// (hostname + hardware thread count — perf numbers from a 2-thread runner
/// and a 64-thread workstation must never be compared blind).
inline void stamp(json_doc& d, std::size_t nodes, std::size_t shards,
                  std::size_t workers) {
  d.num("nodes", static_cast<std::uint64_t>(nodes));
  d.num("shards", static_cast<std::uint64_t>(shards));
  d.num("workers", static_cast<std::uint64_t>(workers));
  const char* sha = std::getenv("GITHUB_SHA");
#ifdef HADES_GIT_SHA
  if (sha == nullptr || *sha == '\0') sha = HADES_GIT_SHA;
#endif
  d.str("git_sha", sha != nullptr && *sha != '\0' ? sha : "unknown");
  char host[256] = {};
  if (::gethostname(host, sizeof host - 1) != 0) host[0] = '\0';
  d.str("hostname", host[0] != '\0' ? host : "unknown");
  d.num("hw_concurrency",
        static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
}

}  // namespace hades::bench
