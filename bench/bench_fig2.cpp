// E1 — Figure 2 timing: the dispatcher/scheduler cooperation overhead of
// the EDF scenario, as a function of the scheduler's per-event cost sigma.
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/system.hpp"
#include "sched/edf.hpp"

using namespace hades;
using namespace hades::literals;

namespace {

struct timings {
  duration t2_response;
  duration t1_response;
  std::uint64_t scheduler_runs;
};

timings run(duration sigma) {
  core::system::config cfg;
  cfg.costs = core::cost_model::zero();
  cfg.costs.scheduler_per_event = sigma;
  cfg.kernel_background = false;
  cfg.tracing = false;
  core::system sys(1, cfg);
  core::task_builder b1("t1");
  b1.deadline(100_ms);
  b1.add_code_eu("t1", 0, 10_ms);
  const auto t1 = sys.register_task(b1.build());
  core::task_builder b2("t2");
  b2.deadline(10_ms);
  b2.add_code_eu("t2", 0, 2_ms);
  const auto t2 = sys.register_task(b2.build());
  sys.attach_policy(0, std::make_shared<sched::edf_policy>());
  sys.activate(t1);
  sys.activate_at(t2, time_point::at(3_ms));
  sys.run_for(40_ms);
  return {duration::nanoseconds(static_cast<std::int64_t>(
              sys.stats_for(t2).response_times.max())),
          duration::nanoseconds(static_cast<std::int64_t>(
              sys.stats_for(t1).response_times.max())),
          sys.disp(0).stats().scheduler_runs};
}

void sweep() {
  bench::table t({"sigma (per notification)", "t2 response", "t1 response",
                  "scheduler runs"});
  for (auto sigma : {0_us, 50_us, 200_us, 1000_us}) {
    const auto r = run(sigma);
    t.row({sigma.to_string(), r.t2_response.to_string(),
           r.t1_response.to_string(), std::to_string(r.scheduler_runs)});
  }
  t.print("E1/table-11: Figure 2 scenario — cooperation cost scaling "
          "(t2 pays one Atv slice; t1 pays three slices: Atv t1, Atv t2, "
          "Trm t2)");
}

void bm_fig2_scenario(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run(50_us));
}
BENCHMARK(bm_fig2_scenario)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
