// E4 — the section 5.3 experiment: what does integrating dispatcher,
// scheduler and kernel costs into the feasibility test buy?
//
// For each target utilization we generate random Spuri-model task sets and
// report (i) the acceptance ratio of the naive Spuri test and of the
// cost-integrated test, and (ii) the observed deadline-miss ratio when the
// sets each test accepted are executed on the simulated platform with the
// chorus_like cost model charged. The paper's claim has two sides: the
// cost-integrated test is *safe* (accepted => no miss), and the naive test
// is *unsafe* once real system costs exist (it accepts sets that miss).
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/system.hpp"
#include "sched/feasibility.hpp"
#include "sched/srp.hpp"
#include "sched/workload.hpp"

using namespace hades;
using namespace hades::literals;

namespace {

bool misses_in_simulation(const std::vector<sched::analyzed_task>& ts,
                          const core::cost_model& costs) {
  core::system::config cfg;
  cfg.costs = costs;
  cfg.tracing = false;
  core::system sys(1, cfg);
  std::vector<task_id> ids;
  std::vector<const core::task_graph*> graphs;
  for (const auto& t : ts) {
    ids.push_back(sys.register_task(sched::to_task_graph(t, 0)));
    graphs.push_back(&sys.graph(ids.back()));
  }
  sys.attach_policy(0, std::make_shared<sched::edf_srp_policy>(graphs));
  for (std::size_t i = 0; i < ts.size(); ++i)
    for (time_point a = time_point::zero(); a < time_point::at(250_ms);
         a += ts[i].t)
      sys.activate_at(ids[i], a);
  sys.run_for(350_ms);
  return sys.mon().count(core::monitor_event_kind::deadline_miss) > 0;
}

void acceptance_sweep() {
  const auto costs = core::cost_model::chorus_like();
  bench::table t({"U", "naive accept", "cost accept", "naive-accepted miss%",
                  "cost-accepted miss%"});
  rng r(424242);
  constexpr int sets_per_point = 40;
  for (double u : {0.30, 0.45, 0.60, 0.70, 0.80, 0.90, 0.95}) {
    sched::workload_params p;
    p.task_count = 5;
    p.utilization = u;
    p.period_min = 2_ms;
    p.period_max = 50_ms;
    p.resource_fraction = 0.4;
    int naive_ok = 0, cost_ok = 0, naive_miss = 0, cost_miss = 0;
    for (int i = 0; i < sets_per_point; ++i) {
      const auto ts = sched::generate_taskset(p, r);
      const bool naive = sched::edf_feasible(ts).feasible;
      const bool cost = sched::edf_feasible_with_costs(ts, costs).feasible;
      if (naive) {
        ++naive_ok;
        if (misses_in_simulation(ts, costs)) ++naive_miss;
      }
      if (cost) {
        ++cost_ok;
        if (misses_in_simulation(ts, costs)) ++cost_miss;
      }
    }
    t.row({bench::fmt(u), bench::pct(double(naive_ok) / sets_per_point),
           bench::pct(double(cost_ok) / sets_per_point),
           naive_ok ? bench::pct(double(naive_miss) / naive_ok) : "-",
           cost_ok ? bench::pct(double(cost_miss) / cost_ok) : "-"});
  }
  t.print("E4/table-2: section 5.3 — acceptance and observed misses "
          "(5 sporadic tasks, 40 sets per point, chorus_like costs)");
  std::printf("expected shape: cost-accepted miss%% identically 0 (safety); "
              "naive acceptance > cost acceptance, with naive-accepted sets "
              "missing deadlines at high U (unsafe without cost "
              "integration).\n");
}

void bm_naive_test(benchmark::State& state) {
  rng r(7);
  sched::workload_params p;
  p.task_count = static_cast<std::size_t>(state.range(0));
  p.utilization = 0.7;
  const auto ts = sched::generate_taskset(p, r);
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::edf_feasible(ts).feasible);
}
BENCHMARK(bm_naive_test)->Arg(5)->Arg(20)->Arg(50);

void bm_cost_integrated_test(benchmark::State& state) {
  rng r(7);
  sched::workload_params p;
  p.task_count = static_cast<std::size_t>(state.range(0));
  p.utilization = 0.7;
  const auto ts = sched::generate_taskset(p, r);
  const auto costs = core::cost_model::chorus_like();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sched::edf_feasible_with_costs(ts, costs).feasible);
}
BENCHMARK(bm_cost_integrated_test)->Arg(5)->Arg(20)->Arg(50);

}  // namespace

int main(int argc, char** argv) {
  acceptance_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
