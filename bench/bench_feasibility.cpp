// E4 — the section 5.3 experiment: what does integrating dispatcher,
// scheduler and kernel costs into the feasibility test buy?
//
// For each target utilization we generate random Spuri-model task sets and
// report (i) the acceptance ratio of the naive Spuri test and of the
// cost-integrated test, and (ii) the observed deadline-miss ratio when the
// sets each test accepted are executed on the simulated platform with the
// chorus_like cost model charged. The paper's claim has two sides: the
// cost-integrated test is *safe* (accepted => no miss), and the naive test
// is *unsafe* once real system costs exist (it accepts sets that miss).
//
// Since the traffic edge landed (DESIGN.md, "Traffic edge & admission
// control") there is a third contender: the incremental demand wheel that
// sits on the per-request admission path. incremental_compare() times a
// full batch re-analysis per decision against one admissible+admit+complete
// wheel cycle and reports the speedup; `--json PATH` writes the stamped
// numbers (acceptance sweep + ns/decision) for the CI artifact set.
//
// Usage: bench_feasibility [--json PATH] [google-benchmark flags]
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>

#include "bench/json_out.hpp"
#include "bench/table.hpp"
#include "core/system.hpp"
#include "sched/feasibility.hpp"
#include "sched/incremental.hpp"
#include "sched/srp.hpp"
#include "sched/workload.hpp"

using namespace hades;
using namespace hades::literals;

namespace {

bool misses_in_simulation(const std::vector<sched::analyzed_task>& ts,
                          const core::cost_model& costs) {
  core::system::config cfg;
  cfg.costs = costs;
  cfg.tracing = false;
  core::system sys(1, cfg);
  std::vector<task_id> ids;
  std::vector<const core::task_graph*> graphs;
  for (const auto& t : ts) {
    ids.push_back(sys.register_task(sched::to_task_graph(t, 0)));
    graphs.push_back(&sys.graph(ids.back()));
  }
  sys.attach_policy(0, std::make_shared<sched::edf_srp_policy>(graphs));
  for (std::size_t i = 0; i < ts.size(); ++i)
    for (time_point a = time_point::zero(); a < time_point::at(250_ms);
         a += ts[i].t)
      sys.activate_at(ids[i], a);
  sys.run_for(350_ms);
  return sys.mon().count(core::monitor_event_kind::deadline_miss) > 0;
}

void acceptance_sweep(bench::json_doc& json) {
  const auto costs = core::cost_model::chorus_like();
  bench::table t({"U", "naive accept", "cost accept", "naive-accepted miss%",
                  "cost-accepted miss%"});
  rng r(424242);
  constexpr int sets_per_point = 40;
  for (double u : {0.30, 0.45, 0.60, 0.70, 0.80, 0.90, 0.95}) {
    sched::workload_params p;
    p.task_count = 5;
    p.utilization = u;
    p.period_min = 2_ms;
    p.period_max = 50_ms;
    p.resource_fraction = 0.4;
    int naive_ok = 0, cost_ok = 0, naive_miss = 0, cost_miss = 0;
    for (int i = 0; i < sets_per_point; ++i) {
      const auto ts = sched::generate_taskset(p, r);
      const bool naive = sched::edf_feasible(ts).feasible;
      const bool cost = sched::edf_feasible_with_costs(ts, costs).feasible;
      if (naive) {
        ++naive_ok;
        if (misses_in_simulation(ts, costs)) ++naive_miss;
      }
      if (cost) {
        ++cost_ok;
        if (misses_in_simulation(ts, costs)) ++cost_miss;
      }
    }
    t.row({bench::fmt(u), bench::pct(double(naive_ok) / sets_per_point),
           bench::pct(double(cost_ok) / sets_per_point),
           naive_ok ? bench::pct(double(naive_miss) / naive_ok) : "-",
           cost_ok ? bench::pct(double(cost_miss) / cost_ok) : "-"});
    const std::string key = "u" + std::to_string(static_cast<int>(u * 100));
    json.num(key + "_naive_accept", double(naive_ok) / sets_per_point);
    json.num(key + "_cost_accept", double(cost_ok) / sets_per_point);
    json.num(key + "_naive_accepted_miss",
             naive_ok ? double(naive_miss) / naive_ok : 0.0);
    json.num(key + "_cost_accepted_miss",
             cost_ok ? double(cost_miss) / cost_ok : 0.0);
  }
  t.print("E4/table-2: section 5.3 — acceptance and observed misses "
          "(5 sporadic tasks, 40 sets per point, chorus_like costs)");
  std::printf("expected shape: cost-accepted miss%% identically 0 (safety); "
              "naive acceptance > cost acceptance, with naive-accepted sets "
              "missing deadlines at high U (unsafe without cost "
              "integration).\n");
}

void bm_naive_test(benchmark::State& state) {
  rng r(7);
  sched::workload_params p;
  p.task_count = static_cast<std::size_t>(state.range(0));
  p.utilization = 0.7;
  const auto ts = sched::generate_taskset(p, r);
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::edf_feasible(ts).feasible);
}
BENCHMARK(bm_naive_test)->Arg(5)->Arg(20)->Arg(50);

void bm_cost_integrated_test(benchmark::State& state) {
  rng r(7);
  sched::workload_params p;
  p.task_count = static_cast<std::size_t>(state.range(0));
  p.utilization = 0.7;
  const auto ts = sched::generate_taskset(p, r);
  const auto costs = core::cost_model::chorus_like();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sched::edf_feasible_with_costs(ts, costs).feasible);
}
BENCHMARK(bm_cost_integrated_test)->Arg(5)->Arg(20)->Arg(50);

// One steady-state admission cycle on the demand wheel: advance +
// admissible + admit, completing the oldest outstanding charge to keep the
// wheel at a constant ~64-deep load. This is the per-request cost the
// traffic edge actually pays, to be read against bm_naive_test/50 (what a
// batch re-analysis per request would cost instead).
void bm_incremental_cycle(benchmark::State& state) {
  sched::incremental_feasibility wheel(
      {duration::microseconds(250), 0.7});
  constexpr std::size_t depth = 64;
  sched::incremental_feasibility::ticket ring[depth];
  static constexpr std::int64_t deadline_ns[3] = {60'000, 200'000, 800'000};
  std::int64_t now = 0;
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    wheel.advance(time_point::zero() + duration::nanoseconds(now));
    ring[i] = wheel.admit(duration::microseconds(2),
                          time_point::zero() +
                              duration::nanoseconds(now + deadline_ns[i % 3]));
    now += 3'000;
  }
  for (auto _ : state) {
    const time_point t = time_point::zero() + duration::nanoseconds(now);
    wheel.advance(t);
    benchmark::DoNotOptimize(
        wheel.admissible(duration::microseconds(2),
                         t + duration::nanoseconds(deadline_ns[n % 3])));
    wheel.complete(ring[n % depth]);
    ring[n % depth] =
        wheel.admit(duration::microseconds(2),
                    t + duration::nanoseconds(deadline_ns[n % 3]));
    ++n;
    now += 3'000;
  }
}
BENCHMARK(bm_incremental_cycle);

// Manual timing of the same contrast for the JSON artifact: ns per
// admission decision when every decision re-runs the batch test on a
// 50-task set, versus one incremental wheel cycle.
void incremental_compare(bench::json_doc& json) {
  rng r(7);
  sched::workload_params p;
  p.task_count = 50;
  p.utilization = 0.7;
  const auto ts = sched::generate_taskset(p, r);

  constexpr int batch_iters = 2'000;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < batch_iters; ++i)
    benchmark::DoNotOptimize(sched::edf_feasible(ts).feasible);
  auto t1 = std::chrono::steady_clock::now();
  const double batch_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / batch_iters;

  sched::incremental_feasibility wheel(
      {duration::microseconds(250), 0.7});
  constexpr std::size_t depth = 64;
  sched::incremental_feasibility::ticket ring[depth];
  static constexpr std::int64_t deadline_ns[3] = {60'000, 200'000, 800'000};
  std::int64_t now = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    wheel.advance(time_point::zero() + duration::nanoseconds(now));
    ring[i] = wheel.admit(duration::microseconds(2),
                          time_point::zero() +
                              duration::nanoseconds(now + deadline_ns[i % 3]));
    now += 3'000;
  }
  constexpr std::uint64_t inc_iters = 2'000'000;
  t0 = std::chrono::steady_clock::now();
  for (std::uint64_t n = 0; n < inc_iters; ++n) {
    const time_point t = time_point::zero() + duration::nanoseconds(now);
    wheel.advance(t);
    benchmark::DoNotOptimize(
        wheel.admissible(duration::microseconds(2),
                         t + duration::nanoseconds(deadline_ns[n % 3])));
    wheel.complete(ring[n % depth]);
    ring[n % depth] =
        wheel.admit(duration::microseconds(2),
                    t + duration::nanoseconds(deadline_ns[n % 3]));
    now += 3'000;
  }
  t1 = std::chrono::steady_clock::now();
  const double inc_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(inc_iters);

  std::printf("\nper-decision cost: batch edf_feasible (50 tasks) %.0f ns, "
              "incremental wheel cycle %.0f ns — %.0fx\n",
              batch_ns, inc_ns, batch_ns / inc_ns);
  json.num("batch_decision_ns", batch_ns);
  json.num("incremental_decision_ns", inc_ns);
  json.num("incremental_speedup", batch_ns / inc_ns);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --json PATH before google-benchmark sees (and rejects) it.
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else
      argv[kept++] = argv[i];
  }
  argc = kept;

  bench::json_doc json;
  bench::stamp(json, 1, 1, 0);
  acceptance_sweep(json);
  incremental_compare(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (!json_path.empty()) json.write(json_path);
  return 0;
}
