// Sharded multi-engine backend throughput: 1/2/4/8 shards on a
// low-coupling multi-group workload (DESIGN.md, "Sharded backend").
//
// Workload: 64 nodes in `shards` groups. Every node runs a self-
// rescheduling handler that burns a few hundred nanoseconds of CPU (the
// stand-in for dispatcher/service work) and re-arms 2-25us out; every 32nd
// firing sends a cross-group event at lookahead-plus-jitter delay (~3%
// cross traffic). Handlers touch only their own node's padded state, so
// worker threads may advance shards concurrently — the regime the backend
// is built for.
//
// Reported per configuration: wall-clock events/sec, speedup vs the
// 1-shard serial baseline, per-shard load balance, and the critical-path
// speedup (total/max per-shard events) an ideal machine would reach. The
// workload checksum must be identical across every configuration — the
// determinism guarantee, checked here on every run.
//
// A second, *full-system* workload exercises the shard-confinement story
// end to end (DESIGN.md, "Shard confinement"): a real `core::system`
// deployment — fault detector heartbeats, Delta-ordered reliable broadcast
// with flood relays, per-delivery application burn — swept as a worker
// scaling curve: workers {0, 2, 4, 8, 16} always, {32, 64} where the
// hardware has that many threads, with shards scaled to the worker count.
// The observable checksum must be identical across the single-engine run,
// serial rounds, and every curve point; wall-clock speedup is reported
// against the 4-shard serial baseline, and each point reports the SPSC
// outbox traffic (cross events, ring spills, sort-skipped drains).
//
// A third, *scale-curve* workload measures how the full system scales in
// node count (DESIGN.md, "Scalable topology layer"): hierarchical fault
// detection (clusters of 50), clustered clock sync, and spanning-tree
// Delta-ordered broadcast from 8 spread origins, run at 256/1k/4k/10k
// nodes on 4 shards / 4 workers. Peak live heap is tracked by counting
// operator new/delete replacements, and the per-point bytes/node is the
// number the CI scaling gate holds near-linear: `--require-scaling` fails
// unless bytes/node at 10k stays within 2x of the 1k point and the 10k
// point still clears a throughput floor.
//
// Usage: bench_sharded [--smoke] [--require-2x] [--json PATH]
//                      [--scale-curve] [--nodes N] [--require-scaling]
//   --smoke           ~20x fewer events (CI compile/perf-path check)
//   --require-2x      exit non-zero unless the raw 4-shard wall speedup and
//                     the full-system highest-worker speedup are both >= 2x;
//                     each gate SKIPs (and passes) below the hardware it
//                     needs (4 / 8 threads) instead of failing small runners
//   --json PATH       write machine-readable BENCH_sharded results to PATH
//   --scale-curve     run ONLY the node-count scaling curve (256/1k/4k/10k;
//                     256/1k under --smoke)
//   --nodes N         run ONLY one ad-hoc scale point at N nodes
//   --require-scaling run the full curve and exit non-zero unless
//                     bytes/node(10k) <= 2x bytes/node(1k) and the 10k
//                     point sustains >= 50k events/s
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <malloc.h>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench/json_out.hpp"
#include "core/system.hpp"
#include "services/clock_sync.hpp"
#include "services/fault_detector.hpp"
#include "services/reliable_comm.hpp"
#include "sim/sharded_engine.hpp"

using namespace hades;
using namespace hades::literals;

// --- peak-live-heap tracking -------------------------------------------------
// The scale curve gates on memory per node, so this binary replaces the
// global allocation functions with thin counting wrappers around malloc.
// Live bytes use malloc_usable_size (what the allocator actually holds, not
// the request); the peak is maintained with a CAS loop so worker threads
// can allocate concurrently. The aligned forms matter: the per-node padded
// state structs are alignas(64) and live in vectors, and the default
// aligned operator delete does NOT fall back to the unsized plain one.

namespace heap_track {

inline std::atomic<std::uint64_t> live{0};
inline std::atomic<std::uint64_t> peak{0};

inline void count(void* p) {
  if (p == nullptr) return;
  const std::uint64_t sz = malloc_usable_size(p);
  const std::uint64_t now =
      live.fetch_add(sz, std::memory_order_relaxed) + sz;
  std::uint64_t prev = peak.load(std::memory_order_relaxed);
  while (now > prev &&
         !peak.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
}
inline void uncount(void* p) {
  if (p != nullptr)
    live.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
}
/// Forget the historical peak: it restarts from the current live size.
inline void reset_peak() {
  peak.store(live.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
}

}  // namespace heap_track

void* operator new(std::size_t size) {
  void* p = std::malloc(size > 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  heap_track::count(p);
  return p;
}
void* operator new(std::size_t size, std::align_val_t align) {
  const std::size_t al =
      std::max(static_cast<std::size_t>(align), sizeof(void*));
  void* p = nullptr;
  if (posix_memalign(&p, al, size > 0 ? size : al) != 0)
    throw std::bad_alloc();
  heap_track::count(p);
  return p;
}
void operator delete(void* p) noexcept {
  heap_track::uncount(p);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  heap_track::uncount(p);
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  heap_track::uncount(p);
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  heap_track::uncount(p);
  std::free(p);
}

namespace {

// A generous lookahead keeps the conservative rounds coarse: ~60 events
// per shard per round at 8 shards, so the per-round synchronization cost
// stays well below the handler work it fences.
constexpr std::size_t kNodes = 64;
constexpr duration kLookahead = duration::microseconds(100);

struct alignas(64) node_state {
  std::uint64_t fired = 0;
  std::uint64_t hash = 0x9E3779B97F4A7C15ull;
};

struct bench_result {
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t checksum = 0;
  double balance = 1.0;        // max/mean per-shard events
  double critical_path = 1.0;  // total/max per-shard events
  std::uint64_t cross = 0;     // events routed through an SPSC outbox ring
  std::uint64_t spilled = 0;   // ring overflows (barrier-ordered fallback)
  std::uint64_t single_source_drains = 0;  // merges that skipped the sort
};

// Roughly a microsecond of real work, the handler-cost stand-in.
inline std::uint64_t spin(std::uint64_t h) {
  for (int i = 0; i < 400; ++i) h = (h ^ (h >> 29)) * 0xBF58476D1CE4E5B9ull;
  return h;
}

struct node_driver {
  runtime* rt = nullptr;
  node_state* st = nullptr;
  std::vector<node_state>* all = nullptr;
  node_id n = 0;

  void fire() {
    ++st->fired;
    st->hash = spin(st->hash + rt->now().since_epoch().count());
    if (st->fired % 32 == 0) {
      // Cross-group hop: the destination's handler mixes into the
      // destination's own state, on the destination's shard.
      const auto dst = static_cast<node_id>((n + kNodes / 2 + 1) % kNodes);
      const duration delay =
          kLookahead + duration::nanoseconds(
                           static_cast<std::int64_t>(st->hash % 5000));
      node_state* ds = &(*all)[dst];
      rt->at_node(dst, rt->now() + delay, [rt = rt, ds] {
        ++ds->fired;
        ds->hash = spin(ds->hash ^ rt->now().since_epoch().count());
      });
    }
    const duration next = duration::nanoseconds(
        2000 + static_cast<std::int64_t>(st->hash % 23000));
    rt->at_node(n, rt->now() + next, [this] { fire(); });
  }
};

bench_result run_config(std::size_t shards, std::size_t workers,
                        duration horizon) {
  sim::sharded_params p;
  p.shards = shards;
  p.workers = workers;
  p.lookahead = kLookahead;
  p.node_shard.resize(kNodes);
  for (std::size_t n = 0; n < kNodes; ++n)
    p.node_shard[n] = static_cast<std::uint32_t>(n * shards / kNodes);
  sim::sharded_engine eng(p);

  std::vector<node_state> state(kNodes);
  std::vector<node_driver> drivers(kNodes);
  for (node_id n = 0; n < kNodes; ++n) {
    drivers[n] = node_driver{&eng, &state[n], &state, n};
    eng.at_node(n, time_point::at(duration::nanoseconds(137 * (n + 1))),
                [d = &drivers[n]] { d->fire(); });
  }

  const auto t0 = std::chrono::steady_clock::now();
  eng.run_until(time_point::at(horizon));
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;

  bench_result r;
  r.wall_s = dt.count();
  r.events = eng.executed();
  for (const node_state& s : state) r.checksum ^= s.hash + s.fired;
  const auto st = eng.stats();
  std::uint64_t mx = 0, total = 0;
  for (std::uint64_t e : st.executed_per_shard) {
    mx = std::max(mx, e);
    total += e;
  }
  if (mx > 0) {
    r.balance = static_cast<double>(mx) * static_cast<double>(shards) /
                static_cast<double>(total);
    r.critical_path = static_cast<double>(total) / static_cast<double>(mx);
  }
  r.cross = st.cross_events;
  r.spilled = st.spilled;
  r.single_source_drains = st.single_source_drains;
  return r;
}

// --- full-system workload ----------------------------------------------------

constexpr std::size_t kSysNodes = 32;

struct alignas(64) app_state {
  std::uint64_t delivered = 0;
  std::uint64_t hash = 0x9E3779B97F4A7C15ull;
};

bench_result run_full_system(std::size_t shards, std::size_t workers,
                             duration horizon) {
  using namespace hades::literals;
  core::system::config cfg;
  cfg.costs = core::cost_model::zero();
  cfg.kernel_background = false;
  cfg.tracing = false;
  cfg.seed = 7;
  cfg.net.delta_min = 50_us;  // generous lookahead keeps rounds coarse
  cfg.net.delta_max = 150_us;
  cfg.net.per_byte = 0_ns;
  cfg.shards = shards;
  cfg.workers = workers;
  core::system sys(kSysNodes, cfg);

  svc::fault_detector fd(sys, {5_ms, 18_ms});
  svc::reliable_broadcast::params bp;
  bp.total_order = true;
  bp.stability_delay = 2_ms;
  svc::reliable_broadcast bcast(sys, bp);

  // Per-delivery application burn on the delivering node's shard: the
  // handler-cost stand-in that worker threads parallelize.
  std::vector<app_state> state(kSysNodes);
  for (node_id n = 0; n < kSysNodes; ++n)
    bcast.on_deliver(n, [&sys, st = &state[n]](
                            const svc::reliable_broadcast::bcast_msg& m) {
      ++st->delivered;
      st->hash = spin(st->hash ^ (static_cast<std::uint64_t>(m.origin) << 32) ^
                      m.seq ^
                      static_cast<std::uint64_t>(sys.now().nanoseconds()));
    });

  // Node-anchored broadcast drivers at coprime-ish periods (the campaign's
  // traffic shape, scaled up).
  for (node_id n = 0; n < kSysNodes; ++n)
    sys.engine().periodic_at_node(
        n, time_point::at(3_ms + 311_us * n + 7_us),
        9500_us + 379_us * static_cast<std::int64_t>(n), [&sys, &bcast, n] {
          if (!sys.crashed(n)) bcast.broadcast(n, static_cast<int>(n));
        });
  fd.start();

  const auto t0 = std::chrono::steady_clock::now();
  sys.run_until(time_point::at(horizon));
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;

  bench_result r;
  r.wall_s = dt.count();
  r.events = sys.engine().executed();
  for (const app_state& s : state) r.checksum ^= s.hash + s.delivered;
  for (node_id n = 0; n < kSysNodes; ++n) {
    r.checksum ^= 0x9E3779B97F4A7C15ull * (bcast.delivery_log(n).size() + 1);
    r.checksum ^= std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(n) << 32) + fd.suspects(n, (n + 1) % kSysNodes));
  }
  const auto ns = sys.network().stats();
  r.checksum ^= ns.sent * 3 + ns.delivered * 5 + ns.dropped * 7 + ns.late * 11;
  if (const auto* se =
          dynamic_cast<const sim::sharded_engine*>(&sys.engine())) {
    const auto st = se->stats();
    r.cross = st.cross_events;
    r.spilled = st.spilled;
    r.single_source_drains = st.single_source_drains;
  }
  return r;
}

// --- scale-curve workload ----------------------------------------------------

struct scale_result {
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t peak_bytes = 0;  // peak live heap above the pre-run baseline
  std::uint64_t checksum = 0;
};

// One full-system point of the node-count scaling curve: hierarchical
// detector + clustered clock sync (clusters of 50) + tree-diffusion
// Delta-ordered broadcast from 8 spread origins, on 4 shards / 4 workers.
// Delivery logs are off (unbounded by design, they would dominate the
// memory number); the suspicion oracle is wired so re-parenting is on the
// path even though no faults are injected here.
scale_result run_scale_point(std::size_t nodes, duration horizon) {
  const std::uint64_t baseline =
      heap_track::live.load(std::memory_order_relaxed);
  heap_track::reset_peak();

  scale_result r;
  {
    core::system::config cfg;
    cfg.costs = core::cost_model::zero();
    cfg.kernel_background = false;
    cfg.tracing = false;
    cfg.seed = 11;
    cfg.net.delta_min = 20_us;
    cfg.net.delta_max = 60_us;
    cfg.net.per_byte = 0_ns;
    cfg.shards = 4;
    cfg.workers = 4;
    core::system sys(nodes, cfg);

    svc::fault_detector fd(sys, {10_ms, 35_ms, 50});
    svc::reliable_broadcast::params bp;
    bp.total_order = true;
    bp.stability_delay = 2_ms;
    bp.record_deliveries = false;
    bp.diffusion = svc::reliable_broadcast::diffusion_kind::tree;
    svc::reliable_broadcast bcast(sys, bp);
    bcast.set_suspicion_oracle(
        [&fd](node_id o, node_id s) { return fd.suspects(o, s); });
    svc::clock_sync_service::params sp;
    sp.cluster_size = 50;
    sp.max_faulty = 1;
    svc::clock_sync_service clocks(sys, sp);

    std::vector<app_state> state(nodes);
    for (node_id n = 0; n < nodes; ++n)
      bcast.on_deliver(n, [st = &state[n]](
                              const svc::reliable_broadcast::bcast_msg& m) {
        ++st->delivered;
        st->hash = (st->hash ^ (static_cast<std::uint64_t>(m.origin) << 32) ^
                    m.seq) *
                   0xBF58476D1CE4E5B9ull;
      });

    constexpr std::size_t kOrigins = 8;
    for (std::size_t i = 0; i < kOrigins && i < nodes; ++i) {
      const node_id n = static_cast<node_id>(i * nodes / kOrigins);
      sys.engine().periodic_at_node(
          n, time_point::at(20_ms + 413_us * i + 7_us),
          9500_us + 613_us * static_cast<std::int64_t>(i),
          [&sys, &bcast, n] {
            if (!sys.crashed(n)) bcast.broadcast(n, static_cast<int>(n));
          });
    }
    fd.start();
    clocks.start();

    const auto t0 = std::chrono::steady_clock::now();
    sys.run_until(time_point::at(horizon));
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;

    r.wall_s = dt.count();
    r.events = sys.engine().executed();
    for (const app_state& s : state) r.checksum ^= s.hash + s.delivered;
    r.checksum ^= fd.heartbeats_sent() * 3 + bcast.delivered() * 5 +
                  clocks.rounds_completed() * 7;
    const auto ns = sys.network().stats();
    r.checksum ^= ns.sent * 13 + ns.delivered * 17;
    // Read the peak while the system is still alive: it is the high-water
    // mark of system + services + in-flight events over the whole run.
    const std::uint64_t peak = heap_track::peak.load(std::memory_order_relaxed);
    r.peak_bytes = peak > baseline ? peak - baseline : 0;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  duration horizon = duration::milliseconds(400);
  bool smoke = false;
  bool require_2x = false;
  bool scale_curve = false;
  bool require_scaling = false;
  std::size_t scale_nodes = 0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      horizon = duration::milliseconds(20);
    }
    if (std::strcmp(argv[i], "--require-2x") == 0) require_2x = true;
    if (std::strcmp(argv[i], "--scale-curve") == 0) scale_curve = true;
    if (std::strcmp(argv[i], "--require-scaling") == 0) require_scaling = true;
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      scale_nodes = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (scale_nodes == 0) {
        std::fprintf(stderr, "bench_sharded: --nodes needs a count >= 1\n");
        return 2;
      }
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }
  hades::bench::json_doc json;
  json.str("bench", "sharded");

  if (scale_curve || require_scaling || scale_nodes > 0) {
    std::vector<std::size_t> points;
    if (scale_nodes > 0)
      points.push_back(scale_nodes);
    else if (smoke && !require_scaling)
      points = {256, 1000};
    else
      points = {256, 1000, 4000, 10000};
    const duration sc_horizon = smoke && !require_scaling
                                    ? duration::milliseconds(120)
                                    : duration::milliseconds(300);
    hades::bench::stamp(json, points.back(), 4, 4);
    std::printf(
        "node-count scale curve: hierarchical detector (clusters of 50) + "
        "clustered clock sync + tree broadcast, 4 shards / 4 workers, "
        "%lld ms horizon\n",
        static_cast<long long>(sc_horizon.count() / 1000000));
    double bpn_1k = 0, bpn_10k = 0, evs_10k = 0;
    for (std::size_t n : points) {
      const scale_result r = run_scale_point(n, sc_horizon);
      const double bpn =
          n > 0 ? static_cast<double>(r.peak_bytes) / static_cast<double>(n)
                : 0.0;
      const double evs =
          r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0.0;
      std::printf(
          "  %6zu nodes: %9.0f ev/s  (%9llu events, %6.3fs)  peak heap "
          "%7.1f MiB  %8.0f bytes/node\n",
          n, evs, static_cast<unsigned long long>(r.events), r.wall_s,
          static_cast<double>(r.peak_bytes) / (1024.0 * 1024.0), bpn);
      const std::string suffix = std::to_string(n);
      json.num("scale_events_per_sec_" + suffix, evs);
      json.num("scale_bytes_per_node_" + suffix, bpn);
      json.num("scale_peak_heap_bytes_" + suffix, r.peak_bytes);
      if (n == 1000) bpn_1k = bpn;
      if (n == 10000) {
        bpn_10k = bpn;
        evs_10k = evs;
      }
    }
    if (!json_path.empty()) json.write(json_path);
    if (require_scaling) {
      if (bpn_1k <= 0 || bpn_10k <= 0) {
        std::printf("FAIL: scaling gate needs both the 1k and 10k points\n");
        return 1;
      }
      if (bpn_10k > 2.0 * bpn_1k) {
        std::printf(
            "FAIL: memory per node grew superlinearly: %.0f bytes/node at "
            "10k vs %.0f at 1k (> 2x)\n",
            bpn_10k, bpn_1k);
        return 1;
      }
      if (evs_10k < 50000.0) {
        std::printf("FAIL: 10k-node throughput %.0f ev/s below the 50k "
                    "floor\n",
                    evs_10k);
        return 1;
      }
      std::printf(
          "scaling gate OK: %.2fx bytes/node 1k->10k (<= 2x), %.0f ev/s at "
          "10k (>= 50k)\n",
          bpn_10k / bpn_1k, evs_10k);
    }
    return 0;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  // Stamp with the largest configuration the curve below will include on
  // this hardware (the worker axis is hardware-capped past 16).
  const std::size_t stamp_workers = hw >= 64 ? 64 : hw >= 32 ? 32 : 16;
  hades::bench::stamp(
      json, kSysNodes,
      std::min(std::max<std::size_t>(4, stamp_workers), kSysNodes),
      stamp_workers);

  std::printf(
      "sharded-engine throughput, %zu nodes, ~3%% cross-shard traffic, "
      "%u hardware thread(s)\n",
      kNodes, hw);

  const std::size_t configs[] = {1, 2, 4, 8};
  bench_result base;
  double speedup_at_4 = 0.0;
  for (std::size_t shards : configs) {
    // 1 shard runs serial on the caller (the best single-core baseline);
    // N shards get N workers.
    const std::size_t workers = shards == 1 ? 0 : shards;
    const bench_result r = run_config(shards, workers, horizon);
    if (shards == 1) base = r;
    const double speedup =
        base.wall_s > 0 ? (static_cast<double>(r.events) / r.wall_s) /
                              (static_cast<double>(base.events) / base.wall_s)
                        : 0.0;
    if (shards == 4) speedup_at_4 = speedup;
    json.num("events_per_sec_" + std::to_string(shards) + "shard",
             static_cast<double>(r.events) / r.wall_s);
    std::printf(
        "  %zu shard(s) %zu worker(s): %9.0f ev/s  (%7llu events, %.3fs)  "
        "wall speedup %.2fx  balance %.2f  critical-path %.2fx  "
        "cross %llu (spilled %llu, sort-skipped drains %llu)\n",
        shards, workers, static_cast<double>(r.events) / r.wall_s,
        static_cast<unsigned long long>(r.events), r.wall_s, speedup,
        r.balance, r.critical_path, static_cast<unsigned long long>(r.cross),
        static_cast<unsigned long long>(r.spilled),
        static_cast<unsigned long long>(r.single_source_drains));
    if (r.checksum != base.checksum) {
      std::printf("FAIL: checksum mismatch at %zu shards — determinism "
                  "broken (%llx vs %llx)\n",
                  shards, static_cast<unsigned long long>(r.checksum),
                  static_cast<unsigned long long>(base.checksum));
      return 1;
    }
  }
  std::printf("  checksums identical across all configurations\n");

  // --- full-system worker scaling curve ------------------------------------
  // The same core::system deployment swept over worker counts: a single-
  // engine reference, the serial-rounds baseline, then workers
  // {2, 4, 8, 16} always and {32, 64} where the hardware has that many
  // threads. Shards scale with the worker count (never past the node
  // count), so every point is configured the way a user with that many
  // cores would run it — and every point's checksum must still equal the
  // single-engine reference, whatever the shard count.
  const duration sys_horizon = horizon == duration::milliseconds(400)
                                   ? duration::milliseconds(400)
                                   : duration::milliseconds(60);
  std::printf(
      "\nfull-system worker curve: %zu-node core::system, heartbeats + "
      "Delta-ordered broadcast + per-delivery burn\n",
      kSysNodes);
  struct sys_config {
    std::string label;
    std::size_t shards;
    std::size_t workers;
  };
  std::vector<sys_config> sys_configs = {
      {"single engine", 0, 0},
      {"4 shards serial", 4, 0},
  };
  std::size_t max_curve_workers = 0;
  for (const std::size_t w : {2u, 4u, 8u, 16u, 32u, 64u}) {
    if (w > 16 && hw < w) continue;  // 32/64 only where hardware allows
    const std::size_t s = std::min(std::max<std::size_t>(4, w), kSysNodes);
    sys_configs.push_back({std::to_string(s) + " shards " + std::to_string(w) +
                               " workers",
                           s, w});
    max_curve_workers = w;
  }
  bench_result sys_base;
  double sys_best_speedup = 0.0;
  bool first = true;
  std::uint64_t reference_checksum = 0;
  std::size_t curve_points = 0;
  for (const sys_config& c : sys_configs) {
    const bench_result r = run_full_system(c.shards, c.workers, sys_horizon);
    if (first) {
      reference_checksum = r.checksum;
      first = false;
    }
    if (c.shards == 4 && c.workers == 0) sys_base = r;
    double speedup = 0.0;
    if (sys_base.wall_s > 0 && !(c.shards == 4 && c.workers == 0))
      speedup = (static_cast<double>(r.events) / r.wall_s) /
                (static_cast<double>(sys_base.events) / sys_base.wall_s);
    if (c.workers == max_curve_workers) sys_best_speedup = speedup;
    if (c.shards > 0) {
      ++curve_points;
      json.num("full_system_events_per_sec_" + std::to_string(c.shards) +
                   "shards_" + std::to_string(c.workers) + "workers",
               static_cast<double>(r.events) / r.wall_s);
      json.num("full_system_speedup_" + std::to_string(c.workers) + "workers",
               speedup);
    } else {
      json.num("full_system_events_per_sec_single_engine",
               static_cast<double>(r.events) / r.wall_s);
    }
    std::printf("  %-20s %9.0f ev/s  (%7llu events, %.3fs)", c.label.c_str(),
                static_cast<double>(r.events) / r.wall_s,
                static_cast<unsigned long long>(r.events), r.wall_s);
    if (c.shards > 0 && c.workers > 0)
      std::printf("  wall speedup vs serial rounds %.2fx", speedup);
    if (c.shards > 0)
      std::printf("  cross %llu (spilled %llu, sort-skipped drains %llu)",
                  static_cast<unsigned long long>(r.cross),
                  static_cast<unsigned long long>(r.spilled),
                  static_cast<unsigned long long>(r.single_source_drains));
    std::printf("\n");
    if (r.checksum != reference_checksum) {
      std::printf("FAIL: full-system checksum mismatch at %s — shard "
                  "confinement broken (%llx vs %llx)\n",
                  c.label.c_str(), static_cast<unsigned long long>(r.checksum),
                  static_cast<unsigned long long>(reference_checksum));
      return 1;
    }
  }
  std::printf("  full-system checksums identical across all configurations\n");

  json.num("wall_speedup_at_4_shards", speedup_at_4);
  json.num("full_system_worker_curve_points", static_cast<double>(curve_points));
  json.num("full_system_max_curve_workers",
           static_cast<double>(max_curve_workers));
  json.num("full_system_best_worker_speedup", sys_best_speedup);
  if (!json_path.empty()) json.write(json_path);
  // The 2x gates need real parallel hardware: on fewer threads than the
  // gated configuration the speedup is physically unreachable, so the gate
  // skips loudly rather than failing the build on a small runner.
  if (require_2x) {
    if (hw < 4) {
      std::printf(
          "SKIP: --require-2x raw-workload gate needs >= 4 hardware "
          "threads (have %u)\n",
          hw);
    } else if (speedup_at_4 < 2.0) {
      std::printf("FAIL: 4-shard wall speedup %.2fx < 2x (hw threads: %u)\n",
                  speedup_at_4, hw);
      return 1;
    }
    if (hw < 8) {
      std::printf(
          "SKIP: --require-2x full-system worker gate needs >= 8 hardware "
          "threads (have %u)\n",
          hw);
    } else if (sys_best_speedup < 2.0) {
      std::printf(
          "FAIL: full-system %zu-worker wall speedup %.2fx < 2x "
          "(hw threads: %u)\n",
          max_curve_workers, sys_best_speedup, hw);
      return 1;
    }
  }
  return 0;
}
