// E8 — replication styles (Poledna taxonomy): steady-state request cost and
// failover behaviour of active / passive / semi-active replication.
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/system.hpp"
#include "services/fault_detector.hpp"
#include "services/replication.hpp"
#include "util/stats.hpp"

using namespace hades;
using namespace hades::literals;

namespace {

core::system::config lan() {
  core::system::config cfg;
  cfg.costs = core::cost_model::zero();
  cfg.kernel_background = false;
  cfg.tracing = false;
  cfg.net.delta_min = 20_us;
  cfg.net.delta_max = 60_us;
  return cfg;
}

struct result {
  double reply_latency_us = 0;
  std::uint64_t executions = 0;
  std::uint64_t checkpoints = 0;
  duration failover = duration::zero();  // gap in replies around the crash
};

result run(svc::replication_style style) {
  core::system sys(4, lan());
  svc::fault_detector fd(sys, {5_ms, 12_ms});
  fd.start();
  svc::replicated_service svc(sys, fd, {style, {0, 1, 2}});
  sample_set lat;
  std::map<std::uint64_t, time_point> sent_at;
  std::vector<time_point> reply_times;
  std::uint64_t req_counter = 0;
  svc.on_reply([&](std::uint64_t id, std::int64_t) {
    reply_times.push_back(sys.now());
    auto it = sent_at.find(id);
    if (it != sent_at.end()) lat.add(sys.now() - it->second);
  });
  // Steady state: one request per 2ms for 200ms, crash primary at 100ms.
  for (int i = 0; i < 100; ++i) {
    sys.engine().at(time_point::at(2_ms * i), [&sys, &svc, &sent_at,
                                               &req_counter] {
      sent_at[++req_counter] = sys.now();
      svc.submit(3, 1);
    });
  }
  sys.engine().at(time_point::at(100_ms), [&] { sys.crash_node(0); });
  sys.run_for(400_ms);

  result r;
  r.reply_latency_us = lat.empty() ? 0 : lat.percentile(50) / 1e3;
  r.executions = svc.executions();
  r.checkpoints = svc.checkpoints();
  // Failover = largest inter-reply gap around the crash window.
  duration worst_gap = duration::zero();
  for (std::size_t i = 1; i < reply_times.size(); ++i) {
    if (reply_times[i] < time_point::at(95_ms) ||
        reply_times[i - 1] > time_point::at(160_ms))
      continue;
    worst_gap = std::max(worst_gap, reply_times[i] - reply_times[i - 1]);
  }
  r.failover = worst_gap;
  return r;
}

void sweep() {
  bench::table t({"style", "median reply latency", "replica executions",
                  "checkpoints", "reply gap across crash"});
  for (auto style : {svc::replication_style::active,
                     svc::replication_style::passive,
                     svc::replication_style::semi_active}) {
    const auto r = run(style);
    t.row({svc::to_string(style), bench::fmt(r.reply_latency_us, 1) + "us",
           std::to_string(r.executions), std::to_string(r.checkpoints),
           r.failover.to_string()});
  }
  t.print("E8/table-7: replication styles — 100 requests at 2ms spacing, "
          "primary crash at t=100ms (detector timeout 12ms)");
  std::printf("expected shape: active masks the crash with no visible gap "
              "but 3x executions; passive executes once + checkpoints and "
              "pays a detector-bound failover gap; semi-active executes "
              "everywhere with leader-order messages and fails over without "
              "state transfer.\n");
}

void bm_active_request(benchmark::State& state) {
  core::system sys(4, lan());
  svc::fault_detector fd(sys, {5_ms, 12_ms});
  svc::replicated_service svc(sys, fd,
                              {svc::replication_style::active, {0, 1, 2}});
  for (auto _ : state) {
    svc.submit(3, 1);
    sys.engine().run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_active_request);

}  // namespace

int main(int argc, char** argv) {
  sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
