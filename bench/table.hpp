// Small fixed-width table printer shared by the benchmark binaries: every
// bench regenerates its experiment's table (EXPERIMENTS.md) before running
// the google-benchmark microbenchmarks.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace hades::bench {

class table {
 public:
  explicit table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(const std::string& title) const {
    std::printf("\n== %s ==\n", title.c_str());
    std::vector<std::size_t> w(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < w.size(); ++c)
        if (r[c].size() > w[c]) w[c] = r[c].size();
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < headers_.size(); ++c)
        std::printf("%-*s  ", static_cast<int>(w[c]),
                    c < cells.size() ? cells[c].c_str() : "");
      std::printf("\n");
    };
    line(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c)
      rule += std::string(w[c], '-') + "  ";
    std::printf("%s\n", rule.c_str());
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int digits = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}
inline std::string pct(double v) { return fmt(100.0 * v, 1) + "%"; }

}  // namespace hades::bench
