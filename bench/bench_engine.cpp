// Event-core throughput: pooled engine vs the seed design.
//
// `legacy_engine` below reproduces the pre-refactor `sim::engine` exactly:
// a heap-allocating std::function per event, a std::priority_queue of fat
// entries, and two unordered_sets tracking pending and cancelled ids. The
// pooled engine replaces all of that with slab slots, a 4-ary heap of
// 24-byte records, and generation-counted ids (see DESIGN.md).
//
// Workload: schedule/cancel churn — a standing population of armed timeout
// timers, each op cancelling and re-arming one while simulated time creeps
// forward so a slice of timers genuinely fires. This is the fingerprint of
// the dispatcher (latest-start and completion timers torn down on every
// preemption) and of reliable_comm's retransmission timers.
//
// Usage: bench_engine [--smoke] [--require-2x] [--json PATH]
//   --smoke       100k events instead of 1M (CI compile/perf-path check)
//   --require-2x  exit non-zero unless pooled >= 2x legacy on churn
//   --json PATH   write machine-readable BENCH_engine results to PATH
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench/json_out.hpp"
#include "sim/engine.hpp"

using namespace hades;
using namespace hades::literals;

namespace {

// --- the seed engine, verbatim semantics ------------------------------------

class legacy_engine {
 public:
  using event_fn = std::function<void()>;
  struct event_id {
    std::uint64_t value = 0;
  };

  [[nodiscard]] time_point now() const { return now_; }

  event_id at(time_point t, event_fn fn) {
    const std::uint64_t seq = next_seq_++;
    queue_.push(entry{t, seq, std::move(fn)});
    pending_ids_.insert(seq);
    return event_id{seq};
  }

  event_id after(duration d, event_fn fn) {
    if (d.is_infinite()) return event_id{0};
    return at(now_ + d, std::move(fn));
  }

  void cancel(event_id id) {
    if (id.value == 0) return;
    if (pending_ids_.erase(id.value) > 0) cancelled_.insert(id.value);
  }

  bool step() {
    while (!queue_.empty()) {
      entry e = queue_.top();
      queue_.pop();
      if (cancelled_.erase(e.seq) > 0) continue;
      pending_ids_.erase(e.seq);
      now_ = e.t;
      ++executed_;
      e.fn();
      return true;
    }
    return false;
  }

  std::size_t run() {
    std::size_t n = 0;
    while (step()) ++n;
    return n;
  }

  std::size_t run_until(time_point t) {
    std::size_t n = 0;
    for (;;) {
      if (queue_.empty()) break;
      const entry& top = queue_.top();
      if (cancelled_.contains(top.seq)) {
        cancelled_.erase(top.seq);
        queue_.pop();
        continue;
      }
      if (top.t > t) break;
      step();
      ++n;
    }
    if (!t.is_infinite() && t > now_) now_ = t;
    return n;
  }

  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct entry {
    time_point t;
    std::uint64_t seq;
    event_fn fn;
  };
  struct later {
    bool operator()(const entry& a, const entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<entry, std::vector<entry>, later> queue_;
  std::unordered_set<std::uint64_t> pending_ids_;
  std::unordered_set<std::uint64_t> cancelled_;
  time_point now_ = time_point::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
};

// --- workloads ---------------------------------------------------------------

/// `total` re-arm ops against a standing population of 16k armed timers:
/// cancel one at random, schedule its replacement 100–1000us out, advance
/// time a little every 512 ops so untouched timers expire. Returns ops/sec.
template <typename Engine>
double churn_rate(Engine& e, std::size_t total) {
  constexpr std::size_t sessions = 16 * 1024;
  std::uint64_t fired = 0;
  std::uint32_t rng = 0x9e3779b9u;
  const auto next_deadline = [&rng] {
    rng = rng * 1664525u + 1013904223u;
    return duration::microseconds(100 + (rng >> 8) % 900);
  };
  std::vector<decltype(e.after(1_us, [] {}))> timers;
  timers.reserve(sessions);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < sessions; ++s)
    timers.push_back(e.after(next_deadline(), [&fired] { ++fired; }));
  std::size_t ops = sessions;
  while (ops < total) {
    for (int k = 0; k < 512 && ops < total; ++k, ++ops) {
      rng = rng * 1664525u + 1013904223u;
      auto& t = timers[rng % sessions];
      e.cancel(t);
      t = e.after(next_deadline(), [&fired] { ++fired; });
    }
    e.run_until(e.now() + 5_us);  // a slice of surviving timers expires
  }
  e.run();  // drain the tail
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  if (fired == 0) std::puts("?");  // keep the callbacks observable
  return static_cast<double>(ops) / dt.count();
}

/// 256 periodic timers ticking for `total` combined firings. The legacy
/// engine re-arms with a fresh closure per tick; the pooled engine uses its
/// schedule_periodic primitive (one registration, zero steady-state work).
double legacy_periodic_rate(legacy_engine& e, std::size_t total) {
  std::uint64_t fired = 0;
  std::function<void(int)> arm = [&](int k) {
    e.after(duration::microseconds(1 + k % 17), [&arm, &fired, k] {
      ++fired;
      arm(k);
    });
  };
  for (int k = 0; k < 256; ++k) arm(k);
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t n = 0;
  while (n < total && e.step()) ++n;
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return static_cast<double>(n) / dt.count();
}

double pooled_periodic_rate(sim::engine& e, std::size_t total) {
  std::uint64_t fired = 0;
  for (int k = 0; k < 256; ++k)
    e.schedule_periodic(e.now() + duration::microseconds(1 + k % 17),
                        duration::microseconds(1 + k % 17),
                        [&fired] { ++fired; });
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t n = 0;
  while (n < total && e.step()) ++n;
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return static_cast<double>(n) / dt.count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t total = 1'000'000;
  bool require_2x = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) total = 100'000;
    if (std::strcmp(argv[i], "--require-2x") == 0) require_2x = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  std::printf("event-core throughput, %zu-event schedule/cancel churn\n",
              total);

  legacy_engine legacy;
  const double legacy_churn = churn_rate(legacy, total);
  sim::engine pooled;
  const double pooled_churn = churn_rate(pooled, total);
  const double churn_speedup = pooled_churn / legacy_churn;
  std::printf("  churn     legacy %12.0f ev/s   pooled %12.0f ev/s   %.2fx\n",
              legacy_churn, pooled_churn, churn_speedup);

  legacy_engine legacy2;
  const double legacy_periodic = legacy_periodic_rate(legacy2, total);
  sim::engine pooled2;
  const double pooled_periodic = pooled_periodic_rate(pooled2, total);
  std::printf("  periodic  legacy %12.0f ev/s   pooled %12.0f ev/s   %.2fx\n",
              legacy_periodic, pooled_periodic,
              pooled_periodic / legacy_periodic);

  const auto pool = pooled.pool();
  std::printf(
      "  pooled engine footprint: %zu slab(s), %zu slots, %zu heap records, "
      "%zu compactions\n",
      pool.slabs, pool.slots, pool.heap_records, pool.compactions);

  if (!json_path.empty()) {
    hades::bench::json_doc json;
    json.str("bench", "engine");
    hades::bench::stamp(json, 0, 1, 0);  // engine-level: no node workload
    json.num("events", static_cast<std::uint64_t>(total));
    json.num("churn_events_per_sec_legacy", legacy_churn);
    json.num("churn_events_per_sec_pooled", pooled_churn);
    json.num("churn_speedup", churn_speedup);
    json.num("periodic_events_per_sec_legacy", legacy_periodic);
    json.num("periodic_events_per_sec_pooled", pooled_periodic);
    json.num("periodic_speedup", pooled_periodic / legacy_periodic);
    json.write(json_path);
  }
  if (require_2x && churn_speedup < 2.0) {
    std::printf("FAIL: churn speedup %.2fx < 2x\n", churn_speedup);
    return 1;
  }
  return 0;
}
