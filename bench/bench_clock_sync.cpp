// E6 — clock synchronization service: achieved worst-case skew as a
// function of drift rate, resync period and number of Byzantine clocks
// (Lundelius–Lynch style fault-tolerant averaging, n >= 3f+1).
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/system.hpp"
#include "services/clock_sync.hpp"

using namespace hades;
using namespace hades::literals;

namespace {

duration measure(std::size_t nodes, double drift, duration period, int f,
                 int byzantine) {
  core::system::config cfg;
  cfg.costs = core::cost_model::zero();
  cfg.kernel_background = false;
  cfg.tracing = false;
  cfg.net.delta_min = 20_us;
  cfg.net.delta_max = 60_us;
  for (std::size_t n = 0; n < nodes; ++n)
    cfg.clock_drift.push_back((n % 2 == 0 ? 1.0 : -1.0) * drift *
                              (1.0 + 0.3 * static_cast<double>(n) /
                                         static_cast<double>(nodes)));
  core::system sys(nodes, cfg);
  std::vector<node_id> correct;
  for (std::size_t n = 0; n < nodes; ++n) {
    if (static_cast<int>(n) >= static_cast<int>(nodes) - byzantine) {
      sys.clock(static_cast<node_id>(n)).set_fault([n](time_point now) {
        return duration::seconds(static_cast<std::int64_t>(n) * 100) +
               now.since_epoch() * 3;
      });
    } else {
      correct.push_back(static_cast<node_id>(n));
    }
  }
  svc::clock_sync_service::params p;
  p.resync_period = period;
  p.collect_window = 1_ms;
  p.max_faulty = f;
  svc::clock_sync_service svc(sys, p);
  svc.start();
  // Sample the skew over the run, keep the worst.
  duration worst = duration::zero();
  for (int s = 0; s < 40; ++s) {
    sys.run_for(100_ms);
    worst = std::max(worst, svc.max_skew(correct));
  }
  return worst;
}

void sweep() {
  bench::table t({"nodes", "drift", "resync", "byzantine", "f (trim)",
                  "worst skew (correct nodes)"});
  for (double drift : {1e-5, 1e-4}) {
    for (auto period : {duration::milliseconds(50), duration::milliseconds(200)}) {
      t.row({"4", bench::fmt(drift * 1e6, 0) + "ppm", period.to_string(), "0",
             "0", measure(4, drift, period, 0, 0).to_string()});
    }
  }
  t.row({"4", "100ppm", "50.000ms", "1", "1",
         measure(4, 1e-4, 50_ms, 1, 1).to_string()});
  t.row({"7", "100ppm", "50.000ms", "2", "2",
         measure(7, 1e-4, 50_ms, 2, 2).to_string()});
  t.print("E6/table-4: clock synchronization — worst observed skew over 4s");
  std::printf("expected shape: skew ~ 2*drift*period + reading jitter; "
              "Byzantine clocks masked while n >= 3f+1.\n");
}

void bm_sync_round(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(measure(4, 1e-4, 100_ms, 0, 0));
}
BENCHMARK(bm_sync_round)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
