// E10 — monitoring activities (paper section 3.2.1): detection latency for
// every monitored event class. The paper notes no existing environment
// implemented all of them; this bench exercises each detector and reports
// how long after the fault the monitor event fires.
#include <benchmark/benchmark.h>

#include "bench/table.hpp"
#include "core/system.hpp"
#include "services/fault_detector.hpp"

using namespace hades;
using namespace hades::literals;

namespace {

core::system::config quiet() {
  core::system::config cfg;
  cfg.costs = core::cost_model::zero();
  cfg.kernel_background = false;
  cfg.net.delta_min = 20_us;
  cfg.net.delta_max = 60_us;
  return cfg;
}

duration first_event_latency(core::system& sys, core::monitor_event_kind k,
                             time_point fault_at) {
  for (const auto& e : sys.mon().events())
    if (e.kind == k) return e.at - fault_at;
  return duration::infinity();
}

void sweep() {
  bench::table t({"monitored event", "scenario", "detection latency",
                  "bound / comment"});

  {  // deadline violation: D=2ms task runs 5ms.
    core::system sys(1, quiet());
    core::task_builder b("late");
    b.deadline(2_ms);
    b.add_code_eu("late", 0, 5_ms);
    const auto id = sys.register_task(b.build());
    sys.activate(id);
    sys.run_for(20_ms);
    t.row({"deadline violation", "D=2ms, C=5ms",
           first_event_latency(sys, core::monitor_event_kind::deadline_miss,
                               time_point::at(2_ms))
               .to_string(),
           "= 0 (timer at a+D)"});
  }
  {  // arrival-law violation: sporadic re-activated too early.
    core::system sys(1, quiet());
    core::task_builder b("s");
    b.deadline(50_ms).law(core::arrival_law::sporadic(10_ms));
    b.add_code_eu("s", 0, 1_ms);
    const auto id = sys.register_task(b.build());
    sys.activate(id);
    sys.run_for(3_ms);
    sys.activate(id);
    sys.run_for(20_ms);
    t.row({"arrival-law violation", "gap 3ms < pseudo-period 10ms",
           first_event_latency(
               sys, core::monitor_event_kind::arrival_law_violation,
               time_point::at(3_ms))
               .to_string(),
           "= 0 (checked at the request)"});
  }
  {  // early termination.
    core::system sys(1, quiet());
    core::task_builder b("e");
    core::code_eu eu;
    eu.name = "e";
    eu.wcet = 10_ms;
    eu.actual = [](instance_number) { return 2_ms; };
    b.add_code_eu(std::move(eu));
    const auto id = sys.register_task(b.build());
    sys.activate(id);
    sys.run_for(20_ms);
    t.row({"early termination", "actual 2ms < wcet 10ms",
           first_event_latency(sys,
                               core::monitor_event_kind::early_termination,
                               time_point::at(2_ms))
               .to_string(),
           "= 0 (at thread end)"});
  }
  {  // orphan execution: abort-on-miss kills a started thread.
    core::system sys(1, quiet());
    core::task_builder b("o");
    b.deadline(2_ms).abort_on_deadline_miss(true);
    b.add_code_eu("o", 0, 6_ms);
    const auto id = sys.register_task(b.build());
    sys.activate(id);
    sys.run_for(20_ms);
    t.row({"orphan execution", "instance aborted at its deadline",
           first_event_latency(sys, core::monitor_event_kind::orphan_killed,
                               time_point::at(2_ms))
               .to_string(),
           "= 0 (killed with the abort)"});
  }
  {  // deadlock via condition-variable cycle.
    core::system sys(1, quiet());
    auto make = [&](const std::string& n, condition_id w, condition_id s) {
      core::task_builder b(n);
      core::code_eu e;
      e.name = n;
      e.wcet = 1_ms;
      e.waits_all = {w};
      e.sets = {s};
      b.add_code_eu(std::move(e));
      return sys.register_task(b.build());
    };
    const auto a = make("a", 1, 2);
    const auto bb = make("b", 2, 1);
    sys.arm_deadlock_scan(5_ms);
    sys.activate(a);
    sys.activate(bb);
    sys.run_for(50_ms);
    t.row({"deadlock", "condvar wait cycle, scan period 5ms",
           first_event_latency(sys,
                               core::monitor_event_kind::deadlock_suspected,
                               time_point::zero())
               .to_string(),
           "<= scan period"});
  }
  {  // network omission via remote precedence + latest start.
    core::system sys(2, quiet());
    core::task_builder b("dist");
    b.deadline(100_ms);
    const auto p = b.add_code_eu("prod", 0, 1_ms);
    core::code_eu c;
    c.name = "cons";
    c.processor = 1;
    c.wcet = 1_ms;
    c.attrs.latest_offset = 4_ms;
    const auto ci = b.add_code_eu(std::move(c));
    b.precede(p, ci, 64);
    const auto id = sys.register_task(b.build());
    sys.network().drop_next(0, 1, 1);
    sys.activate(id);
    sys.run_for(50_ms);
    t.row({"network omission", "precedence token lost, latest=4ms",
           first_event_latency(
               sys, core::monitor_event_kind::network_omission_suspected,
               time_point::at(1_ms))
               .to_string(),
           "<= latest - completion of producer"});
  }
  {  // node crash via heartbeat detector.
    core::system sys(2, quiet());
    svc::fault_detector fd(sys, {5_ms, 12_ms});
    fd.start();
    sys.run_for(50_ms);
    sys.crash_node(1);
    sys.run_for(50_ms);
    const auto at = fd.suspected_at(0, 1);
    t.row({"node crash", "heartbeat 5ms, timeout 12ms",
           at.has_value() ? (*at - time_point::at(50_ms)).to_string() : "-",
           "<= timeout + period + delta"});
  }
  t.print("E10/table-9: monitoring — detection latency per event class");
}

void bm_monitor_event_path(benchmark::State& state) {
  for (auto _ : state) {
    core::system::config cfg = quiet();
    cfg.tracing = false;
    core::system sys(1, cfg);
    core::task_builder b("late");
    b.deadline(1_ms);
    b.add_code_eu("late", 0, 2_ms);
    const auto id = sys.register_task(b.build());
    sys.activate(id);
    sys.run_for(5_ms);
    benchmark::DoNotOptimize(sys.mon().events().size());
  }
}
BENCHMARK(bm_monitor_event_path)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
