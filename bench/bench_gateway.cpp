// bench_gateway — open-loop admission hot path (ISSUE 9, ROADMAP item 3).
//
// Drives the traffic edge's decision path raw — arrival_process straight
// into admission_controller, no simulator in between — in virtual time,
// with a single-server completion model (finish = max(arrival, busy) +
// cost) so admits, completes, value-density sheds and rejections all occur
// at steady-state rates. Three arrival mixes (poisson / bursty / diurnal)
// sweep the rate shapes the scenario layer runs.
//
// Two hard promises, both CI-gated via --require-throughput:
//   * throughput: >= 1M admission decisions per second, single thread,
//     on every mix (loud SKIP on starved runners with < 4 hardware
//     threads);
//   * zero allocation: the global operator-new counter must not move at
//     all across the measured phase — admit, complete, shed, histogram
//     record and the completion heap all run in preallocated storage.
//
// End-to-end virtual latency (arrival -> completion) per mix lands in the
// HDR histogram; p50/p99/p99.9 go to BENCH_gateway.json.
//
// Usage: bench_gateway [--smoke] [--require-throughput] [--json PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench/json_out.hpp"
#include "traffic/admission.hpp"
#include "traffic/arrival.hpp"
#include "util/hdr_histogram.hpp"

// --- global allocation counter ----------------------------------------------
// Counts every operator-new in the binary; the measured decision loop must
// not move it at all.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (size + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1)))
    return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace hades;
using namespace hades::traffic;

namespace {

struct mix_outcome {
  const char* name;
  std::uint64_t decisions = 0;
  double wall_s = 0.0;
  double per_s = 0.0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t steady_allocs = 0;
  std::int64_t p50 = 0, p99 = 0, p999 = 0;
};

struct comp_entry {
  std::int64_t finish;
  std::int64_t arrival;
  admission_controller::handle h;
  std::uint32_t gen;
  // Min-heap on finish date via std::push_heap's max-heap ordering.
  [[nodiscard]] bool operator<(const comp_entry& o) const {
    return finish > o.finish;
  }
};

mix_outcome run_mix(arrival_mix mix, const char* name, std::uint64_t warmup,
                    std::uint64_t measured, hdr_histogram& hist) {
  // Cost/deadline taxonomy compressed ~100x versus the scenario classes so
  // one virtual second holds ~10^5 arrivals: the decision path's work per
  // offer is identical, only the dates shrink.
  static const request_class classes[3] = {
      {duration::microseconds(2), duration::microseconds(60), 4, 5},
      {duration::microseconds(5), duration::microseconds(200), 3, 3},
      {duration::microseconds(15), duration::microseconds(800), 1, 2},
  };
  arrival_params ap;
  ap.mix = mix;
  ap.rate_per_s = 150'000.0;  // ~0.7 mean load; bursts push far past 1.0
  ap.population = 10'000'000;
  ap.burst_period = duration::milliseconds(2);
  ap.burst_factor = 8.0;
  ap.diurnal_period = duration::milliseconds(40);
  ap.classes = classes;
  ap.class_count = 3;
  arrival_process arr(ap, 42, 0);

  admission_controller::config cc;
  cc.feas.slot_width = duration::microseconds(20);  // 1.28ms wheel window
  cc.feas.available = 0.6;
  cc.max_outstanding = 4096;
  admission_controller ctrl(cc);

  hist.reset();
  std::vector<comp_entry> done;
  done.reserve(8 * static_cast<std::size_t>(cc.max_outstanding));
  std::vector<std::uint32_t> gen(cc.max_outstanding, 0);
  std::int64_t busy_until = 0;
  ctrl.on_shed([&gen](admission_controller::handle h, std::uint64_t) {
    ++gen[h];  // invalidate the victim's pending completion
  });

  const auto step = [&] {
    const std::int64_t now = arr.peek().nanoseconds();
    while (!done.empty() && done.front().finish <= now) {
      const comp_entry e = done.front();
      std::pop_heap(done.begin(), done.end());
      done.pop_back();
      if (gen[e.h] != e.gen) continue;  // shed before service
      ++gen[e.h];
      ctrl.complete(e.h);
      hist.record(e.finish - e.arrival);
    }
    const request r = arr.take();
    const auto d = ctrl.offer(r, time_point::zero() +
                                     duration::nanoseconds(now));
    if (d.admitted) {
      const std::int64_t start = std::max(now, busy_until);
      busy_until = start + r.cost.count();
      done.push_back({busy_until, now, d.h, gen[d.h]});
      std::push_heap(done.begin(), done.end());
    }
  };

  for (std::uint64_t i = 0; i < warmup; ++i) step();

  const std::uint64_t allocs_before = g_allocs.load();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < measured; ++i) step();
  const auto t1 = std::chrono::steady_clock::now();

  mix_outcome out;
  out.name = name;
  out.decisions = measured;
  out.steady_allocs = g_allocs.load() - allocs_before;
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.per_s = static_cast<double>(measured) / out.wall_s;
  const auto& s = ctrl.stats();
  out.admitted = s.admitted;
  out.rejected = s.rejected;
  out.shed = s.shed;
  out.completed = s.completed;
  out.p50 = hist.value_at_quantile(0.50);
  out.p99 = hist.value_at_quantile(0.99);
  out.p999 = hist.value_at_quantile(0.999);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool require_throughput = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--require-throughput") == 0)
      require_throughput = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  const std::uint64_t warmup = smoke ? 50'000 : 200'000;
  const std::uint64_t measured = smoke ? 500'000 : 4'000'000;
  const unsigned hw = std::thread::hardware_concurrency();

  // The histogram is ~57KB of atomics; one instance, reset per mix.
  static hdr_histogram hist;

  struct {
    arrival_mix mix;
    const char* name;
  } mixes[] = {{arrival_mix::poisson, "poisson"},
               {arrival_mix::bursty, "bursty"},
               {arrival_mix::diurnal, "diurnal"}};

  bench::json_doc json;
  bench::stamp(json, 1, 1, 0);
  json.num("decisions_per_mix", measured);

  std::printf("bench_gateway: %llu decisions/mix (+%llu warmup), "
              "single thread\n\n",
              static_cast<unsigned long long>(measured),
              static_cast<unsigned long long>(warmup));
  std::printf("%-8s %12s %10s %10s %10s %10s %9s %9s %9s %7s\n", "mix",
              "decisions/s", "admitted", "rejected", "shed", "completed",
              "p50_ns", "p99_ns", "p999_ns", "allocs");

  double min_per_s = 1e18;
  std::uint64_t total_allocs = 0;
  for (const auto& m : mixes) {
    const mix_outcome r = run_mix(m.mix, m.name, warmup, measured, hist);
    min_per_s = std::min(min_per_s, r.per_s);
    total_allocs += r.steady_allocs;
    std::printf("%-8s %12.0f %10llu %10llu %10llu %10llu %9lld %9lld %9lld "
                "%7llu\n",
                r.name, r.per_s,
                static_cast<unsigned long long>(r.admitted),
                static_cast<unsigned long long>(r.rejected),
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.completed),
                static_cast<long long>(r.p50), static_cast<long long>(r.p99),
                static_cast<long long>(r.p999),
                static_cast<unsigned long long>(r.steady_allocs));
    const std::string p = r.name;
    json.num(p + "_decisions_per_s", r.per_s);
    json.num(p + "_admitted", r.admitted);
    json.num(p + "_rejected", r.rejected);
    json.num(p + "_shed", r.shed);
    json.num(p + "_completed", r.completed);
    json.num(p + "_latency_p50_ns", static_cast<std::uint64_t>(r.p50));
    json.num(p + "_latency_p99_ns", static_cast<std::uint64_t>(r.p99));
    json.num(p + "_latency_p999_ns", static_cast<std::uint64_t>(r.p999));
    json.num(p + "_steady_allocs", r.steady_allocs);
  }
  json.num("min_decisions_per_s", min_per_s);
  json.num("steady_allocs_total", total_allocs);
  if (!json_path.empty()) json.write(json_path);

  // The zero-allocation contract is absolute — no SKIP, no threshold: any
  // steady-state allocation on the admit/complete/shed path is a defect on
  // every machine.
  if (total_allocs != 0) {
    std::printf("\nFAIL: %llu steady-state allocations on the admission "
                "path (contract: 0)\n",
                static_cast<unsigned long long>(total_allocs));
    return 1;
  }
  std::printf("\nsteady-state allocations: 0 (contract held)\n");

  if (require_throughput) {
    if (hw < 4) {
      std::printf("SKIP: --require-throughput needs >= 4 hardware threads "
                  "(have %u) — starved runner, numbers not meaningful\n",
                  hw);
    } else if (min_per_s < 1e6) {
      std::printf("FAIL: slowest mix %.0f decisions/s < 1M/s gate "
                  "(hw threads: %u)\n",
                  min_per_s, hw);
      return 1;
    } else {
      std::printf("PASS: slowest mix %.2fM decisions/s >= 1M/s gate\n",
                  min_per_s / 1e6);
    }
  }
  return 0;
}
