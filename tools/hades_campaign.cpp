// hades_campaign — the scenario-campaign CLI (DESIGN.md, "Scenario layer").
//
// Sweeps the registered fault scenarios across seeds, runtime shard counts
// {1, 2, 4} and sharded-backend worker counts {0, 2, 4}, grades the
// property checkers after every run, asserts bit-identical checksums
// across every (shards, workers) combination, and writes one JSON verdict
// per cell. CI runs `hades_campaign --smoke --out <dir>` as a required
// step: any checker violation or checksum mismatch exits non-zero.
//
// Beyond the curated sweep, the binary fronts the scenario fuzzer
// (src/scenario/fuzz.hpp): `--fuzz N` generates and replays N random
// admissible plans across the shards × workers determinism matrix, guided
// by the checker-signal coverage map, shrinking any failure to a minimal
// repro; `--shrink FILE` minimizes one failing case/plan document. Both
// are byte-deterministic in --fuzz-seed.
//
// Usage: hades_campaign [--smoke] [--scale] [--list] [--scenario NAME]...
//                       [--seeds N] [--nodes N] [--workers CSV] [--out DIR]
//                       [--jobs N] [--quiet]
//                       [--fuzz N] [--fuzz-seed S] [--shrink FILE]
//   --smoke         CI matrix: every scenario, seeds {1, 2}, shards {1,2,4},
//                   workers {0,2,4} (the default is the same sweep with
//                   seeds {1..4})
//   --fuzz N        fuzz mode: run N generated cases (each across shards
//                   {1,2,4} x workers {0,4}), write coverage.json +
//                   summary.json + shrunken repros to --out, exit nonzero
//                   on any finding
//   --fuzz-seed S   the fuzz campaign seed (default 1); same seed =>
//                   byte-identical artifacts on every run and compiler
//   --shrink FILE   minimize a failing "hades-fuzz-case v1" (or bare
//                   "hades-plan v1") document and print the shrunken case
//   --scale         also sweep the 1k-node scale family (cluster_crash_1k,
//                   cluster_partition_1k) — hierarchical detector, tree
//                   diffusion, clustered clock sync
//   --list          print the registered scenarios (both families) and exit
//   --scenario NAME restrict to one scenario (repeatable; scale names work)
//   --seeds N       sweep seeds 1..N
//   --nodes N       override every selected scenario's node count (raise
//                   only: plans reference their original node ids)
//   --workers CSV   worker counts for sharded cells, e.g. "0,4" (default
//                   "0,2,4"; "0" = serial rounds only)
//   --out DIR       write per-cell verdict JSONs + summary.json to DIR
//   --jobs N        run cells on N pool threads (0 = auto: half the
//                   hardware threads capped at 4; 1 = serial). Output
//                   order is deterministic regardless of N.
//   --quiet         suppress the per-cell progress lines
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/campaign.hpp"
#include "scenario/fuzz.hpp"

int main(int argc, char** argv) {
  hades::scenario::campaign_options opt;
  opt.verbose = true;
  int max_seed = 4;
  bool list = false;
  long fuzz_cases = 0;
  std::uint64_t fuzz_seed = 1;
  std::string shrink_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      max_seed = 2;
    } else if (arg == "--fuzz" && i + 1 < argc) {
      fuzz_cases = std::atol(argv[++i]);
      if (fuzz_cases < 1) {
        std::fprintf(stderr, "--fuzz must be >= 1\n");
        return 2;
      }
    } else if (arg == "--fuzz-seed" && i + 1 < argc) {
      fuzz_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--shrink" && i + 1 < argc) {
      shrink_file = argv[++i];
    } else if (arg == "--scale") {
      opt.include_scale = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--scenario" && i + 1 < argc) {
      opt.scenarios.emplace_back(argv[++i]);
    } else if (arg == "--seeds" && i + 1 < argc) {
      max_seed = std::atoi(argv[++i]);
    } else if (arg == "--nodes" && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n < 1) {
        std::fprintf(stderr, "--nodes must be >= 1\n");
        return 2;
      }
      opt.nodes = static_cast<std::size_t>(n);
    } else if (arg == "--workers" && i + 1 < argc) {
      opt.worker_counts.clear();
      std::stringstream ss(argv[++i]);
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        if (tok.empty() ||
            tok.find_first_not_of("0123456789") != std::string::npos) {
          std::fprintf(stderr, "--workers: '%s' is not a number\n",
                       tok.c_str());
          return 2;
        }
        opt.worker_counts.push_back(
            static_cast<std::size_t>(std::atoi(tok.c_str())));
      }
      if (opt.worker_counts.empty()) {
        std::fprintf(stderr, "--workers needs a comma-separated list\n");
        return 2;
      }
    } else if (arg == "--jobs" && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n < 0) {
        std::fprintf(stderr, "--jobs must be >= 0\n");
        return 2;
      }
      opt.jobs = static_cast<std::size_t>(n);
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out_dir = argv[++i];
    } else if (arg == "--quiet") {
      opt.verbose = false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  if (list) {
    for (const auto& s : hades::scenario::all_scenarios())
      std::printf("%-20s %s\n", s.name.c_str(), s.description.c_str());
    for (const auto& s : hades::scenario::scale_scenarios())
      std::printf("%-20s %s\n", s.name.c_str(), s.description.c_str());
    return 0;
  }

  for (const std::string& name : opt.scenarios) {
    try {
      hades::scenario::find_scenario(name);
    } catch (const std::exception&) {
      std::fprintf(stderr, "unknown scenario: %s (see --list)\n",
                   name.c_str());
      return 2;
    }
  }

  if (!shrink_file.empty()) {
    std::ifstream f(shrink_file);
    if (!f) {
      std::fprintf(stderr, "--shrink: cannot read %s\n", shrink_file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << f.rdbuf();
    try {
      const auto c = hades::scenario::fuzz_case_from_json(text.str());
      const auto v = hades::scenario::run_matrix(c, opt.jobs);
      if (v.passed) {
        std::printf("case %s passes the full matrix — nothing to shrink\n",
                    c.spec.name.c_str());
        return 0;
      }
      std::printf("shrinking %s (signature: %s)\n", c.spec.name.c_str(),
                  v.failure_signature.c_str());
      const auto shrunk = hades::scenario::shrink_case(
          c, v.failure_signature, opt.jobs, opt.verbose);
      const std::string doc = hades::scenario::fuzz_case_to_json(shrunk);
      std::printf("%s", doc.c_str());
      if (!opt.out_dir.empty()) {
        std::filesystem::create_directories(opt.out_dir);
        std::ofstream out(std::filesystem::path(opt.out_dir) /
                          "shrunk.json");
        out << doc;
      }
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--shrink: %s\n", e.what());
      return 2;
    }
  }

  if (fuzz_cases > 0) {
    hades::scenario::fuzz_options fopt;
    fopt.campaign_seed = fuzz_seed;
    fopt.cases = static_cast<std::size_t>(fuzz_cases);
    fopt.jobs = opt.jobs;
    fopt.out_dir = opt.out_dir;
    fopt.verbose = opt.verbose;
    const auto res = hades::scenario::run_fuzz(fopt);
    std::printf(
        "\nfuzz: %zu cases, corpus %zu, coverage %zu bits, %zu failures — "
        "%s\n",
        res.cases_run, res.corpus_size, res.coverage.popcount(),
        res.failing.size(), res.failing.empty() ? "PASS" : "FAIL");
    for (std::size_t i = 0; i < res.failing.size(); ++i) {
      std::printf("  FAIL %s (%s), shrunken to %zu actions:\n%s",
                  res.failing[i].spec.name.c_str(),
                  res.failure_signatures[i].c_str(),
                  res.shrunken[i].spec.p.actions.size(),
                  hades::scenario::fuzz_case_to_json(res.shrunken[i]).c_str());
    }
    return res.failing.empty() ? 0 : 1;
  }

  if (max_seed < 1) {
    std::fprintf(stderr, "--seeds must be >= 1\n");
    return 2;
  }
  opt.seeds.clear();
  for (int s = 1; s <= max_seed; ++s)
    opt.seeds.push_back(static_cast<std::uint64_t>(s));

  const auto result = hades::scenario::run_campaign(opt);
  std::printf("\ncampaign: %zu cells, %zu failures — %s\n",
              result.cells.size(), result.failures.size(),
              result.passed ? "PASS" : "FAIL");
  for (const auto& f : result.failures)
    std::printf("  FAIL %s\n", f.c_str());
  // A checksum divergence is a determinism bug: dump the offending plan
  // so the failing timeline replays (e.g. via --shrink) without the
  // binary's scenario registry.
  for (const auto& p : result.diverged_plans)
    std::printf("diverged plan:\n%s\n", p.c_str());
  return result.passed ? 0 : 1;
}
