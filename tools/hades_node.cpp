// hades_node — realtime node-group launcher + multi-process loopback
// harness (DESIGN.md, "Runtime factory & injector API").
//
// Worker mode runs one OS process owning a contiguous block of a
// scenario's nodes on the realtime backend: the same scenario::deployment
// the simulation campaign builds, driven by steady_clock timers, with
// cross-process frames riding UDP datagrams on 127.0.0.1 through the
// socket transport's netem-style fault shim. After the horizon the worker
// writes its partial observation (owned nodes only) for the parent to
// merge.
//
// Harness mode is the sim-vs-real gate CI runs: for each (scenario, seed)
// it runs an in-process simulation reference with identical
// real-clock-friendly timing, then forks N worker processes against a
// shared future epoch, merges their partials, grades the same property
// checkers, and diffs the verdicts check-by-check. Any verdict diff, any
// worker failure, or any Δ-bound violation measured on the real wire
// exits non-zero.
//
// Usage:
//   hades_node --harness [--procs N] [--scenarios CSV] [--seeds CSV]
//              [--base-port P] [--time-scale X] [--out DIR]
//   hades_node --worker --scenario NAME --seed S --proc I --procs N
//              --base-port P --epoch-ns E [--time-scale X] --out FILE
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "rt/codecs.hpp"
#include "rt/socket_transport.hpp"
#include "scenario/deployment.hpp"
#include "scenario/observation_io.hpp"
#include "scenario/plan.hpp"

using namespace hades;
using namespace hades::literals;

namespace {

// Real-clock-friendly wire timing shared by the sim reference and the real
// run: the verdicts can only be compared when both runs were graded
// against bounds the wall clock can honor (loopback UDP plus scheduling
// jitter fits comfortably under 5ms; the simulated 60us LAN does not).
constexpr duration rt_delta_min = duration::microseconds(100);
constexpr duration rt_delta_max = duration::milliseconds(5);
constexpr duration rt_switch_latency = duration::milliseconds(25);
constexpr duration rt_bound_margin = duration::milliseconds(2);

scenario::deployment_options harness_options(std::uint64_t seed) {
  scenario::deployment_options o;
  o.seed = seed;
  o.net.delta_min = rt_delta_min;
  o.net.delta_max = rt_delta_max;
  o.net.per_byte = duration::zero();
  o.bound_margin = rt_bound_margin;
  o.switch_latency = rt_switch_latency;
  return o;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

struct verdict {
  std::map<std::string, bool> by_check;  // name -> passed
};

verdict to_verdict(const std::vector<scenario::check_result>& checks) {
  verdict v;
  for (const auto& c : checks) v.by_check[c.name] = c.passed;
  return v;
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ------------------------------------------------------------- worker --

int run_worker(const std::string& scenario_name, std::uint64_t seed,
               std::uint32_t proc, std::size_t procs, std::uint16_t base_port,
               std::int64_t epoch_ns, double time_scale,
               const std::string& out_path) {
  const scenario::scenario_spec spec = scenario::find_scenario(scenario_name);
  rt::register_hades_codecs();

  scenario::deployment_options dopt = harness_options(seed);
  dopt.backend.backend = "realtime";
  dopt.backend.process_index = proc;
  dopt.backend.process_count = procs;
  dopt.backend.epoch_ns = epoch_ns;
  dopt.backend.time_scale = time_scale;
  scenario::deployment d(spec, dopt);

  rt::socket_transport_params tp;
  tp.process_index = proc;
  tp.process_count = procs;
  tp.node_count = spec.nodes;
  tp.base_port = base_port;
  tp.seed = seed;
  tp.delta_max = rt_delta_max;
  tp.time_scale = time_scale;
  rt::socket_transport tx(d.sys().engine(), d.sys().network(), d.sys().mon(),
                          tp);
  // The shim consumes the same declarative plan the networks do.
  scenario::preregister(tx, spec.p);
  tx.start();

  d.start();
  d.run();
  tx.stop();

  const scenario::observation obs = d.collect();
  std::vector<bool> owned(spec.nodes, false);
  for (node_id n = 0; n < spec.nodes; ++n)
    owned[n] = tx.owner(n) == proc;
  const bool has_mode = tx.owner(d.modes().home()) == proc;

  const auto st = tx.stats();
  std::vector<std::string> extra;
  {
    std::ostringstream os;
    os << "transport proc=" << proc << " sent=" << st.sent
       << " received=" << st.received << " dropped_fault=" << st.dropped_fault
       << " delayed=" << st.delayed << " dup=" << st.dup_dropped
       << " gaps=" << st.gaps_declared << " late=" << st.late_delivered
       << " delta_violations=" << st.delta_violations
       << " max_latency_ns=" << st.max_latency_ns;
    extra.push_back(os.str());
  }
  {
    std::ostringstream os;
    os << "delta_violations " << st.delta_violations;
    extra.push_back(os.str());
  }
  scenario::write_partial_observation(out_path, obs, owned, has_mode, extra);
  return 0;
}

// ------------------------------------------------------------ harness --

struct case_result {
  std::string name;
  bool passed = true;
  std::vector<std::string> notes;
};

case_result run_case_once(const std::string& scenario_name, std::uint64_t seed,
                          std::size_t procs, std::uint16_t base_port,
                          double time_scale, const std::string& exe,
                          const std::filesystem::path& work_dir) {
  case_result res;
  res.name = scenario_name + "/seed" + std::to_string(seed);
  const scenario::scenario_spec spec = scenario::find_scenario(scenario_name);

  // In-process simulation reference, identical timing.
  verdict sim_v;
  {
    scenario::deployment d(spec, harness_options(seed));
    d.start();
    d.run();
    sim_v = to_verdict(d.grade(d.collect()));
  }

  // Real run: N worker processes against a shared epoch far enough out
  // that every child finishes fork/exec/construction before virtual time
  // starts — a late starter sees virtual time already advanced and fires
  // its early timers clamped in a burst, producing spurious diffs. The
  // headroom scales with the fork fan-out and scenario size rather than
  // assuming a fixed cost on an otherwise-idle box.
  const std::int64_t epoch_headroom_ns =
      400'000'000 +
      200'000'000 * static_cast<std::int64_t>(procs) +
      1'000'000 * static_cast<std::int64_t>(spec.nodes);
  const std::int64_t epoch_ns = steady_now_ns() + epoch_headroom_ns;
  std::vector<pid_t> pids;
  std::vector<std::string> partials;
  for (std::uint32_t p = 0; p < procs; ++p) {
    const std::string out =
        (work_dir / (res.name + "_proc" + std::to_string(p) + ".obs"))
            .string();
    std::filesystem::create_directories(
        std::filesystem::path(out).parent_path());
    partials.push_back(out);
    const pid_t pid = ::fork();
    if (pid == 0) {
      std::vector<std::string> args = {
          exe,          "--worker",
          "--scenario", scenario_name,
          "--seed",     std::to_string(seed),
          "--proc",     std::to_string(p),
          "--procs",    std::to_string(procs),
          "--base-port", std::to_string(base_port),
          "--epoch-ns", std::to_string(epoch_ns),
          "--time-scale", std::to_string(time_scale),
          "--out",      out};
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(exe.c_str(), argv.data());
      std::perror("execv");
      std::_Exit(127);
    }
    pids.push_back(pid);
  }
  for (std::size_t p = 0; p < pids.size(); ++p) {
    int status = 0;
    ::waitpid(pids[p], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      res.passed = false;
      res.notes.push_back("worker " + std::to_string(p) +
                          " failed (status " + std::to_string(status) + ")");
    }
  }
  if (!res.passed) return res;

  scenario::merged_observation merged;
  try {
    merged = scenario::merge_partial_observations(partials);
  } catch (const std::exception& e) {
    res.passed = false;
    res.notes.push_back(std::string("merge failed: ") + e.what());
    return res;
  }

  // The real run must have honored the Δ bound the checkers assume — a
  // violated bound means the verdicts below grade a run outside the model.
  std::uint64_t delta_violations = 0;
  for (const auto& line : merged.extra) {
    std::istringstream is(line);
    std::string key;
    is >> key;
    if (key == "delta_violations") {
      std::uint64_t v = 0;
      is >> v;
      delta_violations += v;
    } else if (key == "transport") {
      res.notes.push_back(line);
    }
  }
  if (delta_violations > 0) {
    res.passed = false;
    res.notes.push_back("real run violated delta_max " +
                        std::to_string(delta_violations) + " time(s)");
  }

  std::vector<scenario::check_result> real_checks;
  for (auto& c : scenario::check_detector(spec.p, merged.obs))
    real_checks.push_back(c);
  for (auto& c : scenario::check_broadcast(spec.p, merged.obs,
                                           spec.expect_order_faults))
    real_checks.push_back(c);
  for (auto& c : scenario::check_modes(spec.p, merged.obs,
                                       spec.modes.final_mode,
                                       rt_switch_latency))
    real_checks.push_back(c);
  for (auto& c : scenario::check_clocks(merged.obs)) real_checks.push_back(c);
  const verdict real_v = to_verdict(real_checks);

  // The gate: identical checker verdicts, check by check.
  for (const auto& [name, sim_pass] : sim_v.by_check) {
    auto it = real_v.by_check.find(name);
    if (it == real_v.by_check.end()) {
      res.passed = false;
      res.notes.push_back("check \"" + name + "\" missing from real run");
    } else if (it->second != sim_pass) {
      res.passed = false;
      res.notes.push_back("verdict diff on \"" + name + "\": sim " +
                          (sim_pass ? "PASS" : "FAIL") + " vs real " +
                          (it->second ? "PASS" : "FAIL"));
      for (const auto& c : real_checks)
        if (c.name == name && !c.detail.empty())
          res.notes.push_back("  real detail: " + c.detail);
    }
  }
  for (const auto& [name, real_pass] : real_v.by_check)
    if (sim_v.by_check.find(name) == sim_v.by_check.end()) {
      res.passed = false;
      res.notes.push_back("check \"" + name + "\" missing from sim run");
    }
  return res;
}

case_result run_case(const std::string& scenario_name, std::uint64_t seed,
                     std::size_t procs, std::uint16_t base_port,
                     double time_scale, const std::string& exe,
                     const std::filesystem::path& work_dir) {
  case_result res = run_case_once(scenario_name, seed, procs, base_port,
                                  time_scale, exe, work_dir);
  if (res.passed) return res;
  // A shared CI box can stall a worker for tens of real milliseconds — long
  // enough to breach the virtual Delta even though nothing is wrong with the
  // stack. One retry at doubled slow-motion doubles the real-time headroom
  // behind every virtual bound; a genuine divergence diffs again.
  case_result retry = run_case_once(scenario_name, seed, procs, base_port,
                                    time_scale * 2.0, exe, work_dir);
  // Keep the first attempt's full diagnostics: a divergence that reproduces
  // at the doubled scale still needs the original verdict diffs and
  // transport stats in the CI log.
  std::vector<std::string> notes;
  notes.push_back("first attempt at time scale " + std::to_string(time_scale) +
                  " diffed; retried at " + std::to_string(time_scale * 2.0));
  for (const auto& n : res.notes) notes.push_back("attempt 1: " + n);
  notes.insert(notes.end(), retry.notes.begin(), retry.notes.end());
  retry.notes = std::move(notes);
  return retry;
}

int run_harness(std::size_t procs, const std::vector<std::string>& scenarios,
                const std::vector<std::uint64_t>& seeds,
                std::uint16_t base_port, double time_scale,
                const std::string& out_dir, const std::string& exe) {
  const std::filesystem::path work =
      out_dir.empty() ? std::filesystem::temp_directory_path() /
                            ("hades_rt_" + std::to_string(::getpid()))
                      : std::filesystem::path(out_dir);
  std::filesystem::create_directories(work);

  bool all_passed = true;
  std::ostringstream summary;
  for (const auto& name : scenarios) {
    for (std::uint64_t seed : seeds) {
      const case_result r =
          run_case(name, seed, procs, base_port, time_scale, exe, work);
      all_passed = all_passed && r.passed;
      std::printf("%-28s %s\n", r.name.c_str(), r.passed ? "MATCH" : "DIFF");
      summary << r.name << ' ' << (r.passed ? "MATCH" : "DIFF") << '\n';
      for (const auto& n : r.notes) {
        std::printf("    %s\n", n.c_str());
        summary << "    " << n << '\n';
      }
    }
  }
  std::ofstream(work / "summary.txt") << summary.str()
                                      << (all_passed ? "PASS\n" : "FAIL\n");
  std::printf("realtime harness: %s\n", all_passed ? "PASS" : "FAIL");
  return all_passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool worker = false, harness = false;
  std::string scenario_name, out;
  std::uint64_t seed = 1;
  std::uint32_t proc = 0;
  std::size_t procs = 4;
  std::uint16_t base_port = 0;
  std::int64_t epoch_ns = 0;
  double time_scale = 0.0;  // 0 = auto (harness) / 1.0 (worker)
  std::vector<std::string> scenarios = {"clean", "single_crash",
                                        "crash_recover", "partition_heal"};
  std::vector<std::uint64_t> seeds = {1, 2};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--worker") {
      worker = true;
    } else if (arg == "--harness") {
      harness = true;
    } else if (arg == "--scenario") {
      scenario_name = next();
    } else if (arg == "--scenarios") {
      scenarios = split_csv(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--seeds") {
      seeds.clear();
      for (const auto& s : split_csv(next()))
        seeds.push_back(std::strtoull(s.c_str(), nullptr, 10));
    } else if (arg == "--proc") {
      proc = static_cast<std::uint32_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--procs") {
      procs = std::strtoul(next().c_str(), nullptr, 10);
    } else if (arg == "--base-port") {
      base_port = static_cast<std::uint16_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--epoch-ns") {
      epoch_ns = std::strtoll(next().c_str(), nullptr, 10);
    } else if (arg == "--time-scale") {
      time_scale = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--out") {
      out = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  if (base_port == 0)
    base_port = static_cast<std::uint16_t>(
        40000 + (::getpid() * 131) % 20000);  // avoid collisions between runs

  if (time_scale <= 0.0) {
    // Harness auto scale: on a box with fewer cores than worker processes
    // the run-loop threads time-share one CPU, so real wake-up jitter must
    // shrink by the oversubscription factor to stay inside the virtual
    // Delta. Plain runs on many-core hosts still get 2x headroom.
    const double cores = std::max(1u, std::thread::hardware_concurrency());
    time_scale =
        std::clamp(2.0 * static_cast<double>(procs) / cores, 2.0, 8.0);
    if (worker) time_scale = 1.0;  // workers always receive it explicitly
  }

  try {
    if (worker) {
      if (scenario_name.empty() || out.empty()) {
        std::fprintf(stderr,
                     "--worker needs --scenario, --out (plus --proc/--procs/"
                     "--base-port/--epoch-ns)\n");
        return 2;
      }
      return run_worker(scenario_name, seed, proc, procs, base_port, epoch_ns,
                        time_scale, out);
    }
    if (harness)
      return run_harness(procs, scenarios, seeds, base_port, time_scale, out,
                         "/proc/self/exe");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hades_node: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "pick a mode: --harness or --worker\n");
  return 2;
}
