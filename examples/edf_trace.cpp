// Figure 2 of the paper, reproduced end-to-end (experiment E1).
//
// Two threads t1 and t2 under EDF. t1 runs; t2 with a shorter deadline is
// activated; the dispatcher inserts Atv(t2) into the shared FIFO; the
// scheduler thread (highest priority) processes it, raises t2 and lowers
// t1; t2 runs to completion; its Trm notification is ignored by EDF; t1
// resumes. The program prints the notification trace, the dispatcher
// primitive calls, and the resulting timeline.
#include <cstdio>

#include "core/system.hpp"
#include "sched/edf.hpp"

using namespace hades;
using namespace hades::literals;

int main() {
  core::system::config cfg;
  cfg.costs = core::cost_model::zero();
  cfg.costs.scheduler_per_event = 200_us;  // make t_edf visible in the chart
  cfg.kernel_background = false;
  core::system sys(1, cfg);

  core::task_builder b1("t1");
  b1.deadline(100_ms).law(core::arrival_law::aperiodic());
  b1.add_code_eu("t1", 0, 10_ms);
  const auto t1 = sys.register_task(b1.build());

  core::task_builder b2("t2");
  b2.deadline(10_ms).law(core::arrival_law::aperiodic());
  b2.add_code_eu("t2", 0, 2_ms);
  const auto t2 = sys.register_task(b2.build());

  sys.attach_policy(0, std::make_shared<sched::edf_policy>());
  sys.activate(t1);
  sys.activate_at(t2, time_point::at(3_ms));
  sys.run_for(30_ms);

  std::printf("Figure 2 reproduction — EDF / dispatcher cooperation\n\n");
  std::printf("%-12s %-22s %s\n", "time", "event", "detail");
  for (const auto& e : sys.trace().events()) {
    if (e.kind == sim::trace_kind::notification ||
        e.kind == sim::trace_kind::priority_change) {
      std::printf("%-12s %-22s %s -> %s\n", e.t.to_string().c_str(),
                  std::string(sim::to_string(e.kind)).c_str(),
                  e.subject.c_str(), e.detail.c_str());
    }
  }

  std::printf("\nTimeline (one column = 0.25ms):\n%s\n",
              sys.trace()
                  .render_gantt(time_point::zero(), time_point::at(16_ms),
                                250_us)
                  .c_str());
  std::printf("t2 response: %s (paper: runs immediately after Atv)\n",
              duration::nanoseconds(static_cast<std::int64_t>(
                                        sys.stats_for(t2).response_times.max()))
                  .to_string()
                  .c_str());
  std::printf("t1 response: %s (preempted for t2's execution)\n",
              duration::nanoseconds(static_cast<std::int64_t>(
                                        sys.stats_for(t1).response_times.max()))
                  .to_string()
                  .c_str());
  return 0;
}
