// Avionics scenario (the application domain the paper targets: its planned
// validation was "a large real-time application from the avionics
// application domain", section 7).
//
// Three nodes: a sensor node samples the air-data state, a compute node
// runs the control law, an actuator node applies surface commands. The
// pipeline is one distributed HEUG (remote precedence constraints carry the
// data across the LAN through the net_mngt task). Robustness services are
// layered on: clock synchronization across the drifting node clocks, a
// heartbeat fault detector, and a mode manager that degrades the flight
// mode on deadline misses and goes SAFE when a node crashes — which this
// demo triggers at t = 600ms.
#include <cstdio>

#include "core/system.hpp"
#include "sched/edf.hpp"
#include "services/clock_sync.hpp"
#include "services/fault_detector.hpp"
#include "services/mode_manager.hpp"

using namespace hades;
using namespace hades::literals;

int main() {
  core::system::config cfg;
  cfg.costs = core::cost_model::chorus_like();
  cfg.clock_drift = {4e-5, -3e-5, 1e-5};
  cfg.net.delta_min = 20_us;
  cfg.net.delta_max = 80_us;
  core::system sys(3, cfg);

  // --- the control pipeline: sample -> control -> actuate ----------------
  core::task_builder pipe("fcs");
  pipe.deadline(8_ms).law(core::arrival_law::periodic(10_ms));
  core::code_eu sample;
  sample.name = "sample";
  sample.processor = 0;
  sample.wcet = 900_us;
  core::code_eu control;
  control.name = "control";
  control.processor = 1;
  control.wcet = 2_ms;
  control.attrs.latest_offset = 5_ms;  // omission monitoring hook
  core::code_eu actuate;
  actuate.name = "actuate";
  actuate.processor = 2;
  actuate.wcet = 600_us;
  const auto i_sample = pipe.add_code_eu(std::move(sample));
  const auto i_control = pipe.add_code_eu(std::move(control));
  const auto i_actuate = pipe.add_code_eu(std::move(actuate));
  pipe.precede(i_sample, i_control, 128).precede(i_control, i_actuate, 64);
  const auto fcs = sys.register_task(pipe.build());

  // A slower navigation task sharing the compute node.
  core::task_builder navb("nav");
  navb.deadline(50_ms).law(core::arrival_law::periodic(50_ms));
  navb.add_code_eu("nav", 1, 6_ms);
  const auto nav = sys.register_task(navb.build());

  for (node_id n = 0; n < 3; ++n)
    sys.attach_policy(n, std::make_shared<sched::edf_policy>());

  // --- robustness services -------------------------------------------------
  svc::clock_sync_service::params cs;
  cs.resync_period = 100_ms;
  cs.collect_window = 1_ms;
  svc::clock_sync_service clocks(sys, cs);
  clocks.start();

  svc::fault_detector fd(sys, {10_ms, 25_ms});
  fd.start();

  svc::mode_manager modes(sys, {3, 10, 1});
  modes.on_switch([&](svc::op_mode from, svc::op_mode to, time_point at) {
    std::printf("%-10s MODE SWITCH %s -> %s\n", at.to_string().c_str(),
                svc::to_string(from), svc::to_string(to));
  });

  // Crash the sensor node mid-flight.
  sys.engine().at(time_point::at(600_ms), [&] {
    std::printf("t=600ms    injecting crash of node 0 (sensor)\n");
    sys.crash_node(0);
  });

  sys.run_for(1_s);

  std::printf("\nFlight-control demo — 1s simulated on 3 nodes\n");
  std::printf("fcs: activations=%llu completions=%llu misses=%zu\n",
              static_cast<unsigned long long>(sys.stats_for(fcs).activations),
              static_cast<unsigned long long>(sys.stats_for(fcs).completions),
              sys.mon().count_for_task(core::monitor_event_kind::deadline_miss,
                                       fcs));
  std::printf("nav: completions=%llu\n",
              static_cast<unsigned long long>(sys.stats_for(nav).completions));
  std::printf("clock skew at end: %s (drift would give ~70us/s unsynced)\n",
              clocks.max_skew({1, 2}).to_string().c_str());
  std::printf("node 0 suspected by node 1: %s\n",
              fd.suspects(1, 0) ? "yes" : "no");
  std::printf("final mode: %s\n", svc::to_string(modes.mode()));
  std::printf("monitor events after the crash (first 5):\n");
  int shown = 0;
  for (const auto& e : sys.mon().events()) {
    if (e.at < time_point::at(600_ms)) continue;
    if (++shown > 5) break;
    std::printf("  %s [%s] %s\n", e.at.to_string().c_str(),
                core::to_string(e.kind), e.subject.c_str());
  }
  return 0;
}
