// Figure 3 + section 5 of the paper: translating Spuri's task model into
// HEUGs, analysing feasibility with and without the section 5.3 cost
// integration, and validating the verdicts by simulation under EDF+SRP.
#include <cstdio>
#include <vector>

#include "core/system.hpp"
#include "sched/feasibility.hpp"
#include "sched/srp.hpp"

using namespace hades;
using namespace hades::literals;

int main() {
  // Three Spuri-model sporadic tasks; tau0 and tau2 share resource S.
  std::vector<sched::analyzed_task> ts(3);
  ts[0] = {.name = "tau0", .c = 2_ms, .d = 8_ms, .t = 10_ms,
           .cs = 800_us, .resource = 1, .uses_resource = true};
  ts[1] = {.name = "tau1", .c = 3_ms, .d = 16_ms, .t = 20_ms};
  ts[2] = {.name = "tau2", .c = 5_ms, .d = 40_ms, .t = 40_ms,
           .cs = 2_ms, .resource = 1, .uses_resource = true};

  std::printf("Figure 3 / section 5 walk-through\n\n");
  std::printf("%-6s %-9s %-9s %-9s %-10s\n", "task", "C", "D", "T", "cs(S)");
  for (const auto& t : ts)
    std::printf("%-6s %-9s %-9s %-9s %-10s\n", t.name.c_str(),
                t.c.to_string().c_str(), t.d.to_string().c_str(),
                t.t.to_string().c_str(),
                t.uses_resource ? t.cs.to_string().c_str() : "-");

  // Feasibility: plain Spuri test vs section 5.3 cost-integrated test.
  const auto plain = sched::edf_feasible(ts);
  const auto costs = core::cost_model::chorus_like();
  const auto with_costs = sched::edf_feasible_with_costs(ts, costs);
  std::printf("\nSpuri theorem 7.1 (no system costs): %s\n",
              plain.feasible ? "FEASIBLE" : "infeasible");
  std::printf("Section 5.3 cost-integrated test:     %s\n",
              with_costs.feasible ? "FEASIBLE" : "infeasible");
  const auto inflated = sched::inflate_costs(ts, costs);
  std::printf("Inflated C'_i per section 5.3: ");
  for (const auto& t : inflated) std::printf("%s=%s  ", t.name.c_str(),
                                             t.c.to_string().c_str());
  std::printf("\n");

  // Translate to HEUGs (Figure 3) and run under EDF+SRP with the same cost
  // model charged by the simulated dispatcher.
  core::system::config cfg;
  cfg.costs = costs;
  core::system sys(1, cfg);
  std::vector<task_id> ids;
  std::vector<const core::task_graph*> graphs;
  for (const auto& t : ts) {
    core::spuri_task s;
    s.name = t.name;
    s.cs = t.cs;
    if (t.uses_resource) s.resource = t.resource;
    const duration rest = t.c - t.cs;
    s.c_before = rest / 2;
    s.c_after = rest - s.c_before;
    s.deadline = t.d;
    s.pseudo_period = t.t;
    ids.push_back(sys.register_task(core::translate_spuri(s)));
    graphs.push_back(&sys.graph(ids.back()));
    std::printf("%s -> HEUG with %zu Code_EUs, %zu local precedences\n",
                t.name.c_str(), graphs.back()->eu_count(),
                graphs.back()->local_precedence_count());
  }
  sys.attach_policy(0, std::make_shared<sched::edf_srp_policy>(graphs));
  for (std::size_t i = 0; i < ids.size(); ++i)
    for (time_point a = time_point::zero(); a < time_point::at(400_ms);
         a += ts[i].t)
      sys.activate_at(ids[i], a);
  sys.run_for(500_ms);

  std::printf("\nSimulation over 500ms at maximum sporadic rate:\n");
  for (std::size_t i = 0; i < ids.size(); ++i)
    std::printf("  %-6s completions=%llu\n", ts[i].name.c_str(),
                static_cast<unsigned long long>(
                    sys.stats_for(ids[i]).completions));
  std::printf("  deadline misses: %zu (analysis said %s)\n",
              sys.mon().count(core::monitor_event_kind::deadline_miss),
              with_costs.feasible ? "feasible — must be 0" : "infeasible");
  return 0;
}
