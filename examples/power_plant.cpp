// Safety-critical plant supervision scenario (the paper's motivating
// domains include nuclear power plants, section 1).
//
// Sporadic alarm bursts arrive at a supervision node and are admitted by a
// planning-based Spring scheduler — overload is shed by rejecting the
// alarms that cannot be guaranteed, never by missing a guaranteed one.
// Accepted alarms are disseminated to all operator consoles through the
// totally-ordered reliable broadcast, and the alarm log is replicated
// passively with automatic failover when the logger's primary node crashes.
#include <cstdio>

#include "core/system.hpp"
#include "sched/spring.hpp"
#include "services/fault_detector.hpp"
#include "services/reliable_comm.hpp"
#include "services/replication.hpp"

using namespace hades;
using namespace hades::literals;

int main() {
  core::system::config cfg;
  cfg.costs = core::cost_model::chorus_like();
  cfg.net.delta_min = 20_us;
  cfg.net.delta_max = 80_us;
  core::system sys(4, cfg);

  // Alarm-handling tasks on node 0 (three severities; tight deadlines).
  auto pol = std::make_shared<sched::spring_policy>();
  sys.attach_policy(0, pol);
  struct alarm_class {
    const char* name;
    duration work;
    duration deadline;
    task_id id = invalid_task;
  };
  alarm_class classes[] = {{"alarm_critical", 2_ms, 6_ms},
                           {"alarm_major", 3_ms, 15_ms},
                           {"alarm_minor", 4_ms, 40_ms}};
  for (auto& c : classes) {
    core::task_builder b(c.name);
    b.deadline(c.deadline).law(core::arrival_law::aperiodic());
    b.add_code_eu(c.name, 0, c.work);
    c.id = sys.register_task(b.build());
  }

  // Operator consoles: totally ordered alarm dissemination.
  svc::reliable_broadcast::params bp;
  bp.total_order = true;
  bp.stability_delay = 2_ms;
  svc::reliable_broadcast consoles(sys, bp);

  // Passively replicated alarm log on nodes 1..3.
  svc::fault_detector fd(sys, {10_ms, 25_ms});
  fd.start();
  svc::replicated_service log(sys, fd,
                              {svc::replication_style::passive, {1, 2, 3}});

  // Alarm burst generator: random bursts over 2 seconds. Each accepted
  // alarm is broadcast to the consoles and appended to the replicated log.
  rng r(2026);
  int submitted = 0;
  for (time_point t = time_point::at(1_ms); t < time_point::at(2_s);
       t += duration::microseconds(r.uniform_int(1'000, 7'000))) {
    const std::size_t cls = static_cast<std::size_t>(r.uniform_int(0, 2));
    ++submitted;
    sys.engine().at(t, [&sys, &consoles, &log, id = classes[cls].id, t] {
      if (sys.activate(id)) {
        consoles.broadcast(0, t.nanoseconds());
        log.submit(0, 1);
      }
    });
  }

  // Crash the log primary mid-run; failover must keep the log growing.
  sys.engine().at(time_point::at(900_ms), [&] { sys.crash_node(1); });

  sys.run_for(2500_ms);

  std::printf("Plant supervision demo — 2.5s simulated, 4 nodes\n\n");
  std::printf("alarm load: %d bursts submitted\n", submitted);
  std::printf("Spring admission: accepted=%llu rejected=%llu\n",
              static_cast<unsigned long long>(pol->accepted()),
              static_cast<unsigned long long>(pol->rejected()));
  std::printf("guaranteed alarms missing deadlines: %zu (must be 0)\n",
              sys.mon().count(core::monitor_event_kind::deadline_miss));
  for (const auto& c : classes)
    std::printf("  %-16s completions=%llu rejections=%llu\n", c.name,
                static_cast<unsigned long long>(
                    sys.stats_for(c.id).completions),
                static_cast<unsigned long long>(
                    sys.stats_for(c.id).rejections));
  std::printf("\nconsole deliveries (node 2): %zu, identical order on every "
              "console: %s\n",
              consoles.delivery_log(2).size(),
              consoles.delivery_log(2) == consoles.delivery_log(3) ? "yes"
                                                                   : "NO");
  std::printf("alarm log primary after failover: node %u, entries=%lld\n",
              log.current_primary(),
              static_cast<long long>(
                  log.replica_state(log.current_primary()).accumulator));
  return 0;
}
