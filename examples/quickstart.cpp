// Quickstart: two periodic tasks under EDF on one node.
//
// Shows the minimal HADES workflow: build HEUGs, register them with a
// system, attach a scheduling policy, run, and inspect monitoring events,
// response times and the execution trace.
#include <cstdio>

#include "core/system.hpp"
#include "sched/edf.hpp"

using namespace hades;
using namespace hades::literals;

int main() {
  // A two-node-capable system with paper-plausible kernel costs.
  core::system::config cfg;
  cfg.costs = core::cost_model::chorus_like();
  core::system sys(1, cfg);

  // Task "control": 2ms of work every 10ms, deadline = period.
  core::task_builder control("control");
  control.deadline(10_ms).law(core::arrival_law::periodic(10_ms));
  control.add_code_eu("control", 0, 2_ms);
  const auto t_control = sys.register_task(control.build());

  // Task "logger": 5ms of work every 40ms.
  core::task_builder logger("logger");
  logger.deadline(40_ms).law(core::arrival_law::periodic(40_ms));
  logger.add_code_eu("logger", 0, 5_ms);
  const auto t_logger = sys.register_task(logger.build());

  sys.attach_policy(0, std::make_shared<sched::edf_policy>());
  sys.run_for(200_ms);

  std::printf("HADES quickstart — EDF on one node, 200ms simulated\n\n");
  for (const auto t : {t_control, t_logger}) {
    auto& st = sys.stats_for(t);
    std::printf("%-8s activations=%-3llu completions=%-3llu worst-response=%s\n",
                sys.graph(t).name().c_str(),
                static_cast<unsigned long long>(st.activations),
                static_cast<unsigned long long>(st.completions),
                duration::nanoseconds(static_cast<std::int64_t>(
                                          st.response_times.max()))
                    .to_string()
                    .c_str());
  }
  std::printf("deadline misses: %zu\n",
              sys.mon().count(core::monitor_event_kind::deadline_miss));
  std::printf("\nFirst 30ms as a Gantt chart (one column = 0.5ms):\n%s\n",
              sys.trace()
                  .render_gantt(time_point::zero(), time_point::at(30_ms),
                                500_us)
                  .c_str());
  return 0;
}
