// The sharded multi-engine backend (DESIGN.md, "Sharded backend"):
// conservative-horizon rounds, deterministic cross-shard merge order, and —
// the load-bearing property — a merged trace bit-identical to the
// single-engine backend from the same workload, serial or threaded.
#include "sim/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/system.hpp"
#include "services/reliable_comm.hpp"

namespace hades {
namespace {

using namespace hades::literals;

constexpr std::size_t kNodes = 32;
constexpr std::size_t kGroups = 8;
constexpr duration kLookahead = duration::microseconds(10);

sim::sharded_params make_params(std::size_t shards, std::size_t workers) {
  sim::sharded_params p;
  p.shards = shards;
  p.workers = workers;
  p.lookahead = kLookahead;
  p.node_shard.resize(kNodes);
  for (std::size_t n = 0; n < kNodes; ++n)
    p.node_shard[n] = static_cast<std::uint32_t>(n * shards / kNodes);
  return p;
}

// --- the 8-group reference workload -----------------------------------------
//
// Every node runs a self-rescheduling local chain; every fourth firing sends
// a cross-group event whose delay honours the lookahead. Local events sit on
// the whole-microsecond grid and cross arrivals half a microsecond off it
// (as continuously-sampled network latencies are in practice), so no node
// ever sees a cross arrival collide with a local event at the same instant
// — the one tie the single engine breaks with global scheduling order,
// which a sharded run cannot observe (DESIGN.md, "Sharded backend").

struct wl_trace {
  // Per node: (nanosecond date, marker). The merged trace of the run.
  std::vector<std::vector<std::pair<std::int64_t, std::uint64_t>>> log;
};

struct node_driver {
  runtime* rt = nullptr;
  wl_trace* out = nullptr;
  node_id n = 0;
  int iter = 0;
  int max_iter = 0;

  void fire() {
    out->log[n].emplace_back(rt->now().since_epoch().count(), iter);
    if (iter % 4 == 3) {
      const auto dst = static_cast<node_id>((n + 5) % kNodes);
      const duration delay = kLookahead +
                             duration::microseconds(1 + (n * 11 + iter * 3) % 17) +
                             duration::nanoseconds(500);
      const std::uint64_t marker = 1000000u + n * 1000u + iter;
      rt->at_node(dst, rt->now() + delay, [rt = rt, out = out, dst, marker] {
        out->log[dst].emplace_back(rt->now().since_epoch().count(), marker);
      });
    }
    if (++iter < max_iter) {
      const duration next =
          duration::microseconds(1 + (n * 7 + iter * 13) % 23);
      rt->at_node(n, rt->now() + next, [this] { fire(); });
    }
  }
};

wl_trace run_workload(runtime& rt, int iters) {
  wl_trace out;
  out.log.resize(kNodes);
  std::vector<node_driver> drivers(kNodes);
  for (node_id n = 0; n < kNodes; ++n) {
    drivers[n] = node_driver{&rt, &out, n, 0, iters};
    rt.at_node(n, time_point::at(duration::microseconds(3 * (n + 1))),
               [d = &drivers[n]] { d->fire(); });
  }
  rt.run();
  return out;
}

TEST(ShardedEngineTest, MergedTraceIdenticalToSingleEngine) {
  auto single = sim::make_engine();
  const wl_trace reference = run_workload(*single, 64);

  auto serial = sim::make_sharded_engine(make_params(kGroups, 0));
  const wl_trace sharded_serial = run_workload(*serial, 64);

  ASSERT_EQ(reference.log.size(), sharded_serial.log.size());
  for (node_id n = 0; n < kNodes; ++n)
    EXPECT_EQ(reference.log[n], sharded_serial.log[n]) << "node " << n;
}

TEST(ShardedEngineTest, WorkerThreadsPreserveTheTrace) {
  auto serial = sim::make_sharded_engine(make_params(kGroups, 0));
  const wl_trace a = run_workload(*serial, 64);

  auto threaded = sim::make_sharded_engine(make_params(kGroups, 4));
  const wl_trace b = run_workload(*threaded, 64);

  auto threaded2 = sim::make_sharded_engine(make_params(kGroups, 2));
  const wl_trace c = run_workload(*threaded2, 64);

  for (node_id n = 0; n < kNodes; ++n) {
    EXPECT_EQ(a.log[n], b.log[n]) << "node " << n;
    EXPECT_EQ(a.log[n], c.log[n]) << "node " << n;
  }
}

TEST(ShardedEngineTest, ShardMappingAndAccounting) {
  auto eng = std::make_unique<sim::sharded_engine>(make_params(kGroups, 0));
  EXPECT_EQ(eng->shard_count(), kGroups);
  EXPECT_EQ(eng->shard_of(0), 0u);
  EXPECT_EQ(eng->shard_of(kNodes - 1), kGroups - 1);
  // Nodes beyond the map fall back to modulo.
  EXPECT_EQ(eng->shard_of(kNodes), (kNodes % kGroups));

  const wl_trace t = run_workload(*eng, 16);
  std::size_t logged = 0;
  for (const auto& l : t.log) logged += l.size();
  EXPECT_EQ(eng->executed(), logged);
  EXPECT_TRUE(eng->empty());
  EXPECT_EQ(eng->pending(), 0u);

  const auto st = eng->stats();
  EXPECT_GT(st.rounds, 0u);
  EXPECT_GT(st.cross_events, 0u);  // the workload genuinely crossed shards
  std::uint64_t per_shard_total = 0;
  for (std::uint64_t e : st.executed_per_shard) per_shard_total += e;
  EXPECT_EQ(per_shard_total, eng->executed());
}

TEST(ShardedEngineTest, RuntimeContractBasics) {
  auto rt = sim::make_sharded_engine(make_params(4, 0));
  EXPECT_EQ(rt->now(), time_point::zero());
  EXPECT_TRUE(rt->empty());

  std::vector<int> order;
  rt->at(time_point::at(2_us), [&] { order.push_back(2); });
  rt->after(1_us, [&] { order.push_back(1); });
  auto dropped = rt->after(3_us, [&] { order.push_back(3); });
  rt->cancel(dropped);
  rt->cancel(sim::invalid_event);
  rt->run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(rt->executed(), 2u);

  // Periodic through the interface, drift-free, cancellable.
  int count = 0;
  auto id = rt->every(2_us, [&] { ++count; });
  rt->run_until(rt->now() + 9_us);
  EXPECT_EQ(count, 4);
  rt->cancel(id);
  rt->run_until(rt->now() + 20_us);
  EXPECT_EQ(count, 4);
}

TEST(ShardedEngineTest, RunUntilAdvancesEveryShardClock) {
  auto rt = sim::make_sharded_engine(make_params(4, 0));
  rt->run_until(time_point::at(5_ms));
  EXPECT_EQ(rt->now(), time_point::at(5_ms));
  // A fresh event scheduled "now" on any node is legal afterwards.
  int fired = 0;
  rt->at_node(3, rt->now() + 1_us, [&] { ++fired; });
  rt->run_until(rt->now() + 2_us);
  EXPECT_EQ(fired, 1);
}

TEST(ShardedEngineTest, CancelTargetsTheOwningShard) {
  auto eng = std::make_unique<sim::sharded_engine>(make_params(8, 0));
  int fired = 0;
  // Schedule on a node owned by shard 5, from outside any callback.
  const auto id =
      eng->at_node(22, time_point::at(1_ms), [&] { ++fired; });
  ASSERT_NE(id, sim::invalid_event);
  eng->cancel(id);
  eng->cancel(id);  // idempotent
  eng->run();
  EXPECT_EQ(fired, 0);
}

TEST(ShardedEngineTest, CrossShardBelowLookaheadIsRejected) {
  auto eng = std::make_unique<sim::sharded_engine>(make_params(8, 0));
  bool threw = false;
  // From inside a callback on node 0 (shard 0), target node 31 (shard 7)
  // with a delay below the lookahead: the conservative horizon would be
  // unsound, so the backend must refuse.
  eng->at_node(0, time_point::at(1_us), [&] {
    try {
      eng->at_node(31, eng->now() + kLookahead / 2, [] {});
    } catch (const hades::invariant_violation&) {
      threw = true;
    }
  });
  eng->run();
  EXPECT_TRUE(threw);
}

// --- full-system equivalence -------------------------------------------------
//
// The same HADES deployment (8 nodes, reliable broadcast under load) run on
// the single-engine backend and on the sharded backend (4 groups, serial
// rounds) must produce bit-identical per-node delivery traces: the network
// draws per-source streams and schedules deliveries with at_node, so no
// observable depends on the backend's internal event interleaving.

core::system::config system_cfg(std::size_t shards) {
  core::system::config cfg;
  cfg.costs = core::cost_model::zero();
  cfg.kernel_background = false;
  cfg.net.delta_min = 20_us;
  cfg.net.delta_max = 60_us;
  cfg.net.per_byte = 8_ns;
  cfg.shards = shards;
  return cfg;
}

std::vector<std::vector<std::pair<node_id, std::uint64_t>>> broadcast_storm(
    std::size_t shards, bool total_order) {
  constexpr std::size_t n_nodes = 8;
  core::system sys(n_nodes, system_cfg(shards));
  svc::reliable_broadcast::params p;
  p.total_order = total_order;
  p.stability_delay = 500_us;
  svc::reliable_broadcast bcast(sys, p);
  for (int i = 0; i < 24; ++i) {
    const auto origin = static_cast<node_id>((i * 5) % n_nodes);
    sys.engine().at_node(origin,
                         time_point::at(duration::microseconds(40 * i + 7)),
                         [&bcast, origin, i] { bcast.broadcast(origin, i); });
  }
  sys.run_for(50_ms);
  std::vector<std::vector<std::pair<node_id, std::uint64_t>>> logs;
  for (node_id n = 0; n < n_nodes; ++n) logs.push_back(bcast.delivery_log(n));
  return logs;
}

TEST(ShardedSystemTest, BroadcastStormIdenticalAcrossBackends) {
  const auto single = broadcast_storm(0, /*total_order=*/false);
  const auto sharded = broadcast_storm(4, /*total_order=*/false);
  EXPECT_EQ(single, sharded);
  // And reproducible: a second sharded run is bit-identical too.
  EXPECT_EQ(sharded, broadcast_storm(4, /*total_order=*/false));
}

TEST(ShardedSystemTest, TotalOrderStormIdenticalAcrossBackends) {
  const auto single = broadcast_storm(0, /*total_order=*/true);
  const auto sharded = broadcast_storm(4, /*total_order=*/true);
  EXPECT_EQ(single, sharded);
  for (std::size_t n = 1; n < sharded.size(); ++n)
    EXPECT_EQ(sharded[0], sharded[n]) << "total order broken at node " << n;
}

}  // namespace
}  // namespace hades
